//! Regenerates the paper's figures (2-8) as PPM images under
//! `out/figures/`.
//!
//! ```text
//! cargo run --release -p rd-bench --bin repro_figs -- [--scale paper|smoke] [--seed 42] [--audit] [--threads N] [--profile] \
//!     [--checkpoint-every N] [--checkpoint-dir DIR] [--resume] [--deadline-secs N] [--max-retries N]
//! ```

use rd_bench::{arg, flag};
use road_decals::experiments::{prepare_environment_with, run_figures, Scale};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro_figs: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    rd_bench::run_supervised("figures", || run_body().map_err(|e| e.to_string()))?;
    Ok(())
}

fn run_body() -> Result<(), Box<dyn std::error::Error>> {
    rd_bench::setup_substrate()?;
    let scale: Scale = arg("--scale", "paper".to_owned())?.parse()?;
    let seed: u64 = arg("--seed", 42)?;
    let recovery = rd_bench::recovery_from_args()?;
    let mut env = prepare_environment_with(scale, seed, recovery)?.with_audit(flag("--audit"));
    let written = run_figures(&mut env, seed, "out/figures")?;
    println!("wrote {} figures:", written.len());
    for p in written {
        println!("  {}", p.display());
    }
    rd_bench::report_substrate()?;
    Ok(())
}
