//! Regenerates the paper's figures (2-8) as PPM images under
//! `out/figures/`.
//!
//! ```text
//! cargo run --release -p rd-bench --bin repro_figs -- [--scale paper|smoke] [--seed 42] [--audit] [--threads N] [--profile]
//! ```

use rd_bench::{arg, flag};
use road_decals::experiments::{prepare_environment, run_figures, Scale};

fn main() {
    rd_bench::setup_substrate();
    let scale: Scale = arg("--scale", "paper".to_owned())
        .parse()
        .expect("bad --scale");
    let seed: u64 = arg("--seed", 42);
    let mut env = prepare_environment(scale, seed).with_audit(flag("--audit"));
    let written = run_figures(&mut env, seed, "out/figures");
    println!("wrote {} figures:", written.len());
    for p in written {
        println!("  {}", p.display());
    }
    rd_bench::report_substrate();
}
