//! Regenerates Table I: real-world comparison of our attack (with and
//! without consecutive frames) against the colored baseline [34].
//!
//! ```text
//! cargo run --release -p rd-bench --bin repro_table1 -- [--scale paper|smoke] [--seed 42] [--audit] [--threads N] [--profile] \
//!     [--checkpoint-every N] [--checkpoint-dir DIR] [--resume] [--deadline-secs N] [--max-retries N]
//! ```

use rd_bench::{arg, compare, flag, paper};
use road_decals::experiments::{prepare_environment_with, run_table1, Scale};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro_table1: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    rd_bench::run_supervised("table1", || run_body().map_err(|e| e.to_string()))?;
    Ok(())
}

fn run_body() -> Result<(), Box<dyn std::error::Error>> {
    rd_bench::setup_substrate()?;
    let scale: Scale = arg("--scale", "paper".to_owned())?.parse()?;
    let seed: u64 = arg("--seed", 42)?;
    let recovery = rd_bench::recovery_from_args()?;
    let mut env = prepare_environment_with(scale, seed, recovery)?.with_audit(flag("--audit"));
    println!(
        "victim detector class-accuracy: {:.2}\n",
        env.detector_accuracy
    );
    let measured = run_table1(&mut env, seed)?;
    println!("{}", paper::table1());
    println!("{measured}");
    println!("shape checks (paper's qualitative claims on our measurement):");
    let ours = "Ours (w/ 3 consecutive frames)";
    let solo = "Ours (w/o 3 consecutive frames)";
    compare::report(&[
        compare::row_near_zero(&measured, "w/o Attack", 0.05),
        compare::row_dominates(&measured, ours, solo),
        compare::row_dominates(&measured, solo, "[34]"),
        compare::row_dominates(&measured, ours, "[34]"),
        compare::monotone_decreasing(&measured, ours, &["slow", "normal", "fast"]),
        compare::monotone_decreasing(&measured, "[34]", &["slow", "normal", "fast"]),
    ]);
    rd_bench::report_substrate()?;
    Ok(())
}
