//! Static plan audit: runs the `rd-analysis` plan analyzer over every
//! compiled plan in the workspace's model zoo and certifies ulp-error
//! bounds for the ROADMAP item-1 kernel substitution.
//!
//! ```text
//! cargo run --release -p rd-bench --bin plan_audit -- \
//!     [--out target/PLAN_AUDIT.json]
//! ```
//!
//! Audited plans (everything the models cache at their compile sites):
//!
//! * TinyYolo — inference plan, training plan, gradient (frozen-eval)
//!   plan, at the standard 96×96 configuration;
//! * Generator / Discriminator — inference plans. Their training runs
//!   on the tape (the generator's linear head has no train-plan
//!   lowering yet), so the binary *attempts* the train compile and
//!   reports `tape-only` instead of failing when it is unsupported.
//!
//! Per plan it prints op/buffer statistics (op count, fused convs,
//! slots, peak live per-sample activation footprint) and every analyzer
//! finding; per inference plan it additionally certifies a
//! [`rd_analysis::LogitBound`] for the `f32x8-fma` candidate kernel
//! model. The process exits nonzero on any finding, any orphan
//! parameter, or an inference bound that fails to certify — this is the
//! hard gate ci.sh runs.
//!
//! This binary lives in `rd-bench` rather than `rd-analysis` because
//! the model crates already depend on `rd-analysis` for the
//! compile-site audit hook; a bin in `rd-analysis` that built the
//! models would close a dependency cycle.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rd_analysis::{certify_logit_bounds, liveness, KernelModel, PlanIr};
use rd_bench::arg;
use rd_detector::{TinyYolo, YoloConfig};
use rd_gan::{Discriminator, GanConfig, Generator};
use rd_tensor::{Graph, ParamSet, PlanMeta, TrainPlan};

/// One audited plan's statistics and findings.
struct Report {
    tag: String,
    kind: &'static str,
    ops: usize,
    convs: usize,
    slots: usize,
    peak_live_f32: usize,
    issues: Vec<String>,
    /// Certified max-abs divergence in logit-scale ulps for the
    /// `f32x8-fma` candidate, when the plan admits a static bound.
    bound_ulps: Option<f64>,
}

impl Report {
    /// The highest execution tier this plan certifies under: inference
    /// plans with a finite f32x8-fma bound may run the fast tier;
    /// training/gradient plans (and plans whose bound failed to
    /// certify) stay on the scalar reference, which is the oracle
    /// itself and needs no certificate.
    fn certified_tier(&self) -> &'static str {
        match self.bound_ulps {
            Some(u) if u.is_finite() => "fast",
            _ => "reference",
        }
    }
}

/// Audits one plan: lints + liveness statistics + (for inference
/// plans over `[input_lo, input_hi]` inputs) the candidate-kernel
/// ulp-bound certificate.
fn audit(tag: &str, meta: &PlanMeta, ps: &ParamSet, input_box: Option<(f64, f64)>) -> Report {
    let issues: Vec<String> = rd_analysis::audit_plan(meta, ps)
        .iter()
        .map(|i| i.to_string())
        .collect();
    let (slots, peak) = match PlanIr::lift(meta) {
        Ok(ir) => (meta.slots.len(), liveness::peak_live_elems(&ir)),
        Err(_) => (meta.slots.len(), 0), // already reported as issues
    };
    let mut issues = issues;
    let bound_ulps = input_box.and_then(|(lo, hi)| {
        match certify_logit_bounds(meta, ps, lo, hi, &KernelModel::f32x8_fma()) {
            Ok(bounds) => bounds
                .iter()
                .map(|b| b.ulps_at_scale)
                .fold(None, |acc: Option<f64>, u| {
                    Some(acc.map_or(u, |a| a.max(u)))
                }),
            Err(e) => {
                issues.push(format!("[ulp-bound] {tag}: certification failed: {e}"));
                None
            }
        }
    });
    Report {
        tag: tag.to_string(),
        kind: match meta.kind {
            rd_tensor::PlanKind::Infer => "infer",
            rd_tensor::PlanKind::Train => "train",
        },
        ops: meta.ops.len(),
        convs: meta.num_convs(),
        slots,
        peak_live_f32: peak,
        issues,
        bound_ulps,
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("plan_audit: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let out: String = arg("--out", "target/PLAN_AUDIT.json".to_owned())?;
    let mut rng = StdRng::seed_from_u64(7);
    let mut reports = Vec::new();
    let mut orphan_msgs: Vec<String> = Vec::new();

    // --- detector: the three cached plan sites -----------------------
    let mut ps_det = ParamSet::new();
    let det = TinyYolo::new(&mut ps_det, &mut rng, YoloConfig::standard());
    let det_infer = det.infer_plan(&ps_det).meta();
    let det_train = det.train_plan(&ps_det).meta();
    let det_grad = det.grad_plan(&ps_det).meta();
    // Rendered frames are normalized RGB in [0, 1].
    reports.push(audit(
        "detector/infer",
        &det_infer,
        &ps_det,
        Some((0.0, 1.0)),
    ));
    reports.push(audit("detector/train", &det_train, &ps_det, None));
    reports.push(audit("detector/grad", &det_grad, &ps_det, None));
    orphan_msgs.extend(
        rd_analysis::orphan_params(&[&det_infer, &det_train, &det_grad], &ps_det)
            .iter()
            .map(|i| format!("detector: {i}")),
    );

    // --- GAN: inference plans, plus a train-compile attempt ----------
    let cfg = GanConfig::default();
    let mut ps_g = ParamSet::new();
    let mut ps_d = ParamSet::new();
    let gen = Generator::new(&mut ps_g, &mut rng, cfg);
    let disc = Discriminator::new(&mut ps_d, &mut rng, cfg);
    let gen_infer = gen.infer_plan(&ps_g).meta();
    let disc_infer = disc.infer_plan(&ps_d).meta();
    // Latents are standard normal; ±6σ is far beyond anything sampled.
    reports.push(audit("gan/generator", &gen_infer, &ps_g, Some((-6.0, 6.0))));
    // Decals leave the generator through a sigmoid, so inputs are [0, 1].
    reports.push(audit(
        "gan/discriminator",
        &disc_infer,
        &ps_d,
        Some((0.0, 1.0)),
    ));
    orphan_msgs.extend(
        rd_analysis::orphan_params(&[&gen_infer], &ps_g)
            .iter()
            .map(|i| format!("generator: {i}")),
    );
    orphan_msgs.extend(
        rd_analysis::orphan_params(&[&disc_infer], &ps_d)
            .iter()
            .map(|i| format!("discriminator: {i}")),
    );

    // GAN training runs on the tape today; audit the train lowering
    // when it compiles so it is covered the day it lands.
    for (tag, g, root, ps) in [
        (
            "gan/generator/train",
            {
                let mut g = Graph::new();
                let r = gen.declare_forward(&mut g, &ps_g, 1);
                (g, r)
            },
            &ps_g,
        ),
        (
            "gan/discriminator/train",
            {
                let mut g = Graph::new();
                let r = disc.declare_forward(&mut g, &ps_d, 1);
                (g, r)
            },
            &ps_d,
        ),
    ]
    .map(|(tag, (g, r), ps)| (tag, g, r, ps))
    {
        match TrainPlan::compile(&g, &[root]) {
            Ok(plan) => reports.push(audit(tag, &plan.meta(), ps, None)),
            Err(e) => println!("{tag:<24} tape-only (train plan unsupported: {e})"),
        }
    }

    // --- render ------------------------------------------------------
    println!(
        "{:<24} {:<6} {:>5} {:>6} {:>6} {:>14} {:>16} {:>10}",
        "plan", "kind", "ops", "convs", "slots", "peak-live f32", "f32x8 bound ulps", "tier"
    );
    let mut failed = false;
    for r in &reports {
        let bound = r.bound_ulps.map_or("-".to_string(), |u| format!("{u:.3}"));
        println!(
            "{:<24} {:<6} {:>5} {:>6} {:>6} {:>14} {:>16} {:>10}",
            r.tag,
            r.kind,
            r.ops,
            r.convs,
            r.slots,
            r.peak_live_f32,
            bound,
            r.certified_tier()
        );
        for i in &r.issues {
            failed = true;
            println!("    FAIL {i}");
        }
    }
    for m in &orphan_msgs {
        failed = true;
        println!("    FAIL {m}");
    }

    // --- JSON for scripts/perf_trajectory.sh -------------------------
    let plans_json: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{\"tag\": \"{}\", \"kind\": \"{}\", \"ops\": {}, \"convs\": {}, \
                 \"slots\": {}, \"peak_live_f32\": {}, \"issues\": {}, \"bound_ulps\": {}, \
                 \"certified_tier\": \"{}\"}}",
                r.tag,
                r.kind,
                r.ops,
                r.convs,
                r.slots,
                r.peak_live_f32,
                r.issues.len(),
                r.bound_ulps
                    .map_or("null".to_string(), |u| format!("{u:.6}")),
                r.certified_tier(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"plan_audit\",\n  \"clean\": {},\n  \"plans\": [\n{}\n  ]\n}}\n",
        !failed && orphan_msgs.is_empty(),
        plans_json.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("plan_audit: wrote {out}");

    if failed {
        return Err("plan audit found issues (see FAIL lines above)".into());
    }
    println!(
        "plan_audit: {} plan(s) clean, every inference bound certified",
        reports.len()
    );
    Ok(())
}
