//! Training-substrate benchmark: attack steps/sec serial vs parallel,
//! scratch-arena effectiveness, peak RSS, and grad-free eval frames/sec.
//!
//! ```text
//! cargo run --release -p rd-bench --bin bench_substrate -- \
//!     [--quick] [--steps 12] [--threads 4] [--out BENCH_pr2.json] \
//!     [--eval-out BENCH_pr4.json] [--train-out BENCH_pr5.json] \
//!     [--tier fast] [--tier-out BENCH_pr7.json] \
//!     [--stream-out BENCH_pr9.json] [--render-out BENCH_pr10.json]
//! ```
//!
//! Runs the *same* smoke-scale decal attack twice — worker pool capped
//! at one thread, then at `--threads` — and reports steps/sec for both.
//! The two runs must produce bitwise-identical training curves (the
//! fan-out's fixed-order reduction guarantees it); this binary asserts
//! that before reporting, so it doubles as a determinism smoke check.
//! It also exercises the per-op profiler for one serial run so CI fails
//! loudly if profiling breaks.
//!
//! A second section times detector *evaluation* over rendered frames —
//! the reverse-mode tape `forward_frozen` against the compiled
//! [`TinyYolo::infer`] plan, serial and parallel — asserts the two are
//! bitwise-identical, and writes frames/sec to `--eval-out`.
//!
//! A third section times *training*: the same attack run on the tape
//! path (`compiled: false`) against the compiled
//! [`rd_tensor::TrainPlan`] step, plus a detector fine-tune on both
//! paths with activation-column cache statistics. Both the
//! compiled-vs-tape bitwise gate and the 1-vs-N-thread determinism
//! gate must hold in the same run; results go to `--train-out`.
//!
//! A fourth section times the `--tier` execution tier (default `fast`,
//! the f32x8 microkernels) against the scalar reference on the same
//! compiled eval, gates the observed per-head divergence against the
//! static `rd_analysis::bounds` certificate, and gates decoded
//! detections, mAP and the attack's PWC/CWC for zero drift between
//! tiers; results go to `--tier-out`.
//!
//! A fifth section times the *streaming* evaluation pipeline against
//! the buffered reference oracle on the same challenge videos: gates
//! the two bitwise (per-frame detections, at 1 and `--threads` threads,
//! on both tiers), asserts the streamed peak-live-frame bound and the
//! drive-length invariance of the arena high-water mark, runs a
//! `--fleet-drives` drive fleet through supervised per-job runtimes,
//! and writes videos/sec for all of it to `--stream-out`.
//!
//! A sixth section times the *render fast path* — the pose-keyed
//! [`FrameRenderer`] with arena frame buffers and SIMD sparse gather —
//! against a frozen copy of the pre-fast-path seed renderer (full-grid
//! homography scan, entry-order scatter, per-frame background and
//! canvas clones). It gates all three paths bitwise per frame (seed
//! copy, fresh [`render_attacked_frame`], cached renderer — cold and
//! warm), gates streamed == buffered on a noise-bearing capture channel,
//! requires a >= 2x serial frames/sec speedup on a pose-repeating
//! workload, and writes the end-to-end streamed videos/sec headline to
//! `--render-out`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rd_analysis::{certify_logit_bounds, KernelModel};
use rd_bench::{arg, flag};
use rd_detector::map::mean_average_precision;
use rd_detector::{postprocess, Detection, DetectorTrainer, TinyYolo, TrainConfig, YoloConfig};
use rd_scene::dataset::{generate, DatasetConfig, Sample};
use rd_scene::{
    CameraPose, CameraRig, GtBox, ObjectClass, PhysicalChannel, RotationSetting, Speed,
};
use rd_tensor::optim::StepOutcome;
use rd_tensor::{tier, Graph, LinearMap, ParamSet, Runtime, RuntimeConfig, Tensor, Tier};
use rd_vision::warp::homography;
use rd_vision::{Image, Plane, Rgb};
use road_decals::attack::{deploy, train_decal_attack, AttackConfig, TrainedDecal};
use road_decals::decal::Decal;
use road_decals::eval::{
    evaluate_challenge, evaluate_challenge_traced, render_attacked_frame, Challenge, EvalConfig,
    EvalMode,
};
use road_decals::render::FrameRenderer;
use road_decals::scenario::AttackScenario;
use road_decals::stream::{eval_fleet, evaluate_streamed, FleetConfig, BATCH_FRAMES};

/// Peak resident-set size of this process in kB (Linux `VmHWM`; 0 where
/// /proc is unavailable).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// The pre-CSR warp apply frozen for the render baseline: zero-fill then
/// entry-order scatter. The CSR row accumulation in
/// [`LinearMap::apply_plane`] is bitwise-identical to this (gated in the
/// tensor crate), which is what lets the seed copy stay a fair referee.
fn scatter_apply(map: &LinearMap, src: &[f32]) -> Vec<f32> {
    let (h, w) = map.out_hw();
    let mut out = vec![0.0f32; h * w];
    for e in map.entries() {
        out[e.dst as usize] += e.weight * src[e.src as usize];
    }
    out
}

/// A frozen copy of the seed-era frame renderer, kept bench-local as the
/// baseline the fast path is timed (and bitwise-gated) against. Per
/// frame it rebuilds everything the fast path caches: the full-grid
/// camera homography scan, the ones-coverage plane, the background, the
/// full-grid decal homographies and alpha masks, plus the seed's
/// per-frame `Plane` clone of each mono decal canvas. The capture
/// channel is shared with the fast path (its kernels are bitwise-gated
/// separately), which makes the measured speedup conservative.
fn seed_render_frame(
    scenario: &AttackScenario,
    printed: &[Decal],
    cfg: &EvalConfig,
    pose: &CameraPose,
    motion: f32,
    rng: &mut StdRng,
) -> Image {
    let rig = &scenario.rig;
    let (h, w) = rig.image_hw;
    let map = homography(rig.canvas_hw, rig.image_hw, &rig.world_to_image(pose))
        .expect("camera homography must be invertible");
    let ones = vec![1.0f32; rig.canvas_hw.0 * rig.canvas_hw.1];
    let cov = scatter_apply(&map, &ones);
    let mut out = rig.background();
    let world = scenario.world.canvas();
    let hw_world = rig.canvas_hw.0 * rig.canvas_hw.1;
    for ch in 0..3 {
        let plane = scatter_apply(&map, &world.data()[ch * hw_world..(ch + 1) * hw_world]);
        for y in 0..h {
            if (y as f32) < rig.horizon_v - 1.0 {
                continue; // keep the sky
            }
            for x in 0..w {
                let i = y * w + x;
                let a = cov[i].clamp(0.0, 1.0);
                if a > 0.0 {
                    let cur = out.get(y, x);
                    let v = (plane[i] / a.max(1e-3)).clamp(0.0, 1.0);
                    let mixed = match ch {
                        0 => Rgb(cur.0 * (1.0 - a) + v * a, cur.1, cur.2),
                        1 => Rgb(cur.0, cur.1 * (1.0 - a) + v * a, cur.2),
                        _ => Rgb(cur.0, cur.1, cur.2 * (1.0 - a) + v * a),
                    };
                    out.set(y, x, mixed);
                }
            }
        }
    }
    for (i, d) in printed.iter().enumerate() {
        let dmap = homography(
            (d.canvas(), d.canvas()),
            rig.image_hw,
            &scenario.decal_to_image(i, pose, None),
        )
        .expect("decal homography must be invertible");
        let alpha: Vec<f32> = scatter_apply(&dmap, d.mask().data())
            .into_iter()
            .map(|v| v.clamp(0.0, 1.0))
            .collect();
        match d.num_channels() {
            1 => {
                // the seed's per-frame canvas clone, kept on purpose
                let patch = Plane::from_vec(d.channel_data().to_vec(), d.canvas(), d.canvas());
                let warped = scatter_apply(&dmap, patch.data());
                for y in 0..h {
                    for x in 0..w {
                        let a = alpha[y * w + x];
                        if a > 0.0 {
                            let v = warped[y * w + x].clamp(0.0, 1.0);
                            out.blend(y, x, Rgb::gray(v), a);
                        }
                    }
                }
            }
            _ => {
                let cs = d.canvas() * d.canvas();
                let planes: Vec<Vec<f32>> = (0..3)
                    .map(|c| scatter_apply(&dmap, &d.channel_data()[c * cs..(c + 1) * cs]))
                    .collect();
                for y in 0..h {
                    for x in 0..w {
                        let a = alpha[y * w + x];
                        if a > 0.0 {
                            let i2 = y * w + x;
                            let cl = |v: f32| v.clamp(0.0, 1.0);
                            out.blend(
                                y,
                                x,
                                Rgb(cl(planes[0][i2]), cl(planes[1][i2]), cl(planes[2][i2])),
                                a,
                            );
                        }
                    }
                }
            }
        }
    }
    cfg.channel.capture.apply(&mut out, motion, rng);
    out
}

struct RunStats {
    seconds: f64,
    steps_per_sec: f64,
    decal: TrainedDecal,
}

fn run_attack(threads: usize, cfg: &AttackConfig, scenario: &AttackScenario) -> RunStats {
    rd_tensor::parallel::set_max_threads(threads);
    let mut rng = StdRng::seed_from_u64(3);
    let mut ps_det = ParamSet::new();
    let detector = TinyYolo::new(&mut ps_det, &mut rng, YoloConfig::smoke());
    let t0 = Instant::now();
    let decal = train_decal_attack(scenario, &detector, &mut ps_det, cfg);
    let seconds = t0.elapsed().as_secs_f64();
    RunStats {
        seconds,
        steps_per_sec: cfg.steps as f64 / seconds,
        decal,
    }
}

/// One timed evaluation pass over `batches`: tape `forward_frozen` or
/// the compiled plan, at a given worker-pool cap. Returns the elapsed
/// seconds plus every head output for the bitwise gate.
fn eval_pass(
    threads: usize,
    model: &TinyYolo,
    ps: &ParamSet,
    batches: &[Tensor],
    compiled: bool,
) -> (f64, Vec<(Tensor, Tensor)>) {
    rd_tensor::parallel::set_max_threads(threads);
    let t0 = Instant::now();
    let outs: Vec<(Tensor, Tensor)> = batches
        .iter()
        .map(|b| {
            if compiled {
                model.infer(ps, b)
            } else {
                let mut g = Graph::new();
                let x = g.input(b.clone());
                let out = model.forward_frozen(&mut g, ps, x);
                (g.value(out.coarse).clone(), g.value(out.fine).clone())
            }
        })
        .collect();
    let seconds = t0.elapsed().as_secs_f64();
    rd_tensor::parallel::set_max_threads(0);
    (seconds, outs)
}

/// Result of one detector fine-tune: elapsed seconds, optimizer
/// steps, per-step losses, final parameter values and the cumulative
/// column-cache (hits, misses).
type TrainPassResult = (f64, u64, Vec<f32>, Vec<Vec<f32>>, (u64, u64));

/// One complete detector fine-tune at a worker-pool cap.
fn train_pass(threads: usize, data: &[Sample], compiled: bool) -> TrainPassResult {
    rd_tensor::parallel::set_max_threads(threads);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        lr: 5e-4,
        compiled,
        ..TrainConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(5);
    let mut ps = ParamSet::new();
    let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
    let t0 = Instant::now();
    let mut losses = Vec::new();
    let mut trainer = DetectorTrainer::new(&model, &mut ps, data, cfg);
    while !trainer.is_done() {
        match trainer.step(None) {
            StepOutcome::Ran { loss } => losses.push(loss),
            StepOutcome::NonFinite { .. } => trainer.skip_step(),
        }
    }
    let steps = trainer.steps_done();
    let cache = trainer.col_cache_stats();
    drop(trainer);
    let seconds = t0.elapsed().as_secs_f64();
    rd_tensor::parallel::set_max_threads(0);
    let params = ps.iter().map(|(_, p)| p.value().data().to_vec()).collect();
    (seconds, steps, losses, params, cache)
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_substrate: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    rd_bench::run_supervised("bench_substrate", || run_body().map_err(|e| e.to_string()))?;
    Ok(())
}

fn run_body() -> Result<(), Box<dyn std::error::Error>> {
    let quick = flag("--quick");
    let steps: usize = arg("--steps", if quick { 4 } else { 12 })?;
    let threads: usize = arg("--threads", 4)?;
    let out: String = arg("--out", "BENCH_pr2.json".to_owned())?;
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // the runtime shape every section runs (and is recorded) under
    rd_tensor::parallel::set_max_threads(threads);
    let runtime_json = rd_bench::runtime_config_json()?;
    rd_tensor::parallel::set_max_threads(0);

    let scenario = AttackScenario::parking_lot(CameraRig::smoke(), 2, 60, 16, 5);
    let cfg = AttackConfig {
        steps,
        clips_per_batch: 2,
        ..AttackConfig::smoke()
    };

    // profiled serial warm-up: a short run with the per-op profiler on,
    // so a broken profiler fails this binary (and CI) immediately
    rd_tensor::profile::reset();
    rd_tensor::profile::set_enabled(true);
    let warm_cfg = AttackConfig { steps: 1, ..cfg };
    let _ = run_attack(1, &warm_cfg, &scenario);
    rd_tensor::profile::set_enabled(false);
    let profiled = rd_tensor::profile::snapshot();
    if profiled.is_empty() {
        return Err("profiler captured no ops during the warm-up step".into());
    }
    println!(
        "profiler: {} op paths captured in warm-up; top entries:",
        profiled.len()
    );
    for line in rd_tensor::profile::report_text().lines().take(8) {
        println!("  {line}");
    }
    rd_tensor::profile::reset();

    println!(
        "\ntiming {} attack steps (smoke scale), serial vs {threads} threads...",
        cfg.steps
    );
    let serial = run_attack(1, &cfg, &scenario);
    let parallel = run_attack(threads, &cfg, &scenario);
    // the pool clamps oversubscribed requests to the host; report both
    let threads_requested = rd_tensor::parallel::requested_max_threads();
    let threads_effective = rd_tensor::parallel::max_threads();
    rd_tensor::parallel::set_max_threads(0);

    // determinism gate: the parallel run must retrace the serial run
    if serial.decal.attack_loss != parallel.decal.attack_loss {
        return Err(format!("attack-loss curve diverged between 1 and {threads} threads").into());
    }
    if serial.decal.adv_loss != parallel.decal.adv_loss {
        return Err(format!("adv-loss curve diverged between 1 and {threads} threads").into());
    }
    if serial.decal.decal.channel_data() != parallel.decal.decal.channel_data() {
        return Err(format!("trained decal diverged between 1 and {threads} threads").into());
    }
    println!("determinism: 1-thread and {threads}-thread runs are bitwise identical");

    let (hits, misses, pooled) = rd_tensor::arena::stats();
    let speedup = parallel.steps_per_sec / serial.steps_per_sec;
    println!(
        "serial:   {:.2} steps/sec ({:.2}s)",
        serial.steps_per_sec, serial.seconds
    );
    println!(
        "parallel: {:.2} steps/sec ({:.2}s) at {threads} threads — {speedup:.2}x",
        parallel.steps_per_sec, parallel.seconds
    );
    println!("arena: {hits} hits / {misses} misses ({pooled} buffers pooled)");
    println!(
        "host: {host_cpus} logical cpu(s), peak RSS {} kB",
        peak_rss_kb()
    );

    let note = if host_cpus < threads {
        format!(
            "host exposes only {host_cpus} logical cpu(s); the requested {threads}-thread \
             run is clamped to {threads_effective} effective worker(s), so the parallel \
             numbers measure pool overhead + determinism, not scaling"
        )
    } else {
        String::new()
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr2_parallel_substrate\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"runtime\": {rt},\n",
            "  \"host_logical_cpus\": {cpus},\n",
            "  \"threads_requested\": {treq},\n",
            "  \"threads_effective\": {teff},\n",
            "  \"attack_steps\": {steps},\n",
            "  \"serial\": {{ \"seconds\": {ss:.3}, \"steps_per_sec\": {sp:.3} }},\n",
            "  \"parallel\": {{ \"seconds\": {ps:.3}, \"steps_per_sec\": {pp:.3} }},\n",
            "  \"speedup\": {speedup:.3},\n",
            "  \"bitwise_deterministic\": true,\n",
            "  \"arena\": {{ \"hits\": {hits}, \"misses\": {misses}, \"pooled\": {pooled} }},\n",
            "  \"peak_rss_kb\": {rss},\n",
            "  \"note\": \"{note}\"\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        rt = runtime_json,
        cpus = host_cpus,
        treq = threads_requested,
        teff = threads_effective,
        steps = cfg.steps,
        ss = serial.seconds,
        sp = serial.steps_per_sec,
        ps = parallel.seconds,
        pp = parallel.steps_per_sec,
        speedup = speedup,
        hits = hits,
        misses = misses,
        pooled = pooled,
        rss = peak_rss_kb(),
        note = note,
    );
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");

    // --- grad-free eval: tape vs compiled, serial vs parallel ---------
    let eval_out: String = arg("--eval-out", "BENCH_pr4.json".to_owned())?;
    let n_frames = if quick { 32 } else { 96 };
    println!("\ntiming detector eval over {n_frames} rendered frames (smoke scale)...");
    let samples = generate(&DatasetConfig {
        rig: CameraRig::smoke(),
        n_images: n_frames,
        seed: 11,
        augment: false,
    });
    let images: Vec<Image> = samples.iter().map(|s| s.image.clone()).collect();
    let batches: Vec<Tensor> = images.chunks(16).map(Image::batch_to_tensor).collect();
    let mut rng = StdRng::seed_from_u64(3);
    let mut ps_det = ParamSet::new();
    let detector = TinyYolo::new(&mut ps_det, &mut rng, YoloConfig::smoke());
    // warm both paths once (plan compilation, arena buffers) off the clock
    let _ = eval_pass(1, &detector, &ps_det, &batches[..1], false);
    let _ = eval_pass(1, &detector, &ps_det, &batches[..1], true);

    let fps = |secs: f64| n_frames as f64 / secs;
    let (tape_1s, tape_ref) = eval_pass(1, &detector, &ps_det, &batches, false);
    let (tape_ns, _) = eval_pass(threads, &detector, &ps_det, &batches, false);
    let (comp_1s, comp_1) = eval_pass(1, &detector, &ps_det, &batches, true);
    let (comp_ns, comp_n) = eval_pass(threads, &detector, &ps_det, &batches, true);

    // equivalence gate: the compiled path must retrace the tape bitwise
    // at every thread count
    for (which, outs) in [
        ("1-thread", &comp_1),
        (&format!("{threads}-thread"), &comp_n),
    ] {
        for (i, ((tc, tf), (cc, cf))) in tape_ref.iter().zip(outs).enumerate() {
            if tc.data() != cc.data() || tf.data() != cf.data() {
                return Err(
                    format!("compiled {which} eval diverged from the tape on batch {i}").into(),
                );
            }
        }
    }
    println!(
        "equivalence: compiled eval is bitwise-identical to the tape at 1 and {threads} threads"
    );
    println!(
        "tape:     {:.1} frames/sec serial, {:.1} at {threads} threads",
        fps(tape_1s),
        fps(tape_ns)
    );
    println!(
        "compiled: {:.1} frames/sec serial, {:.1} at {threads} threads",
        fps(comp_1s),
        fps(comp_ns)
    );
    println!(
        "speedup:  {:.2}x serial, {:.2}x at {threads} threads",
        tape_1s / comp_1s,
        tape_ns / comp_ns
    );

    let eval_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr4_compiled_inference\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"runtime\": {rt},\n",
            "  \"host_logical_cpus\": {cpus},\n",
            "  \"threads\": {threads},\n",
            "  \"frames\": {frames},\n",
            "  \"batch_size\": 16,\n",
            "  \"tape\": {{ \"fps_serial\": {t1:.1}, \"fps_parallel\": {tn:.1} }},\n",
            "  \"compiled\": {{ \"fps_serial\": {c1:.1}, \"fps_parallel\": {cn:.1} }},\n",
            "  \"speedup_serial\": {su1:.3},\n",
            "  \"speedup_parallel\": {sun:.3},\n",
            "  \"bitwise_identical_to_tape\": true\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        rt = runtime_json,
        cpus = host_cpus,
        threads = threads,
        frames = n_frames,
        t1 = fps(tape_1s),
        tn = fps(tape_ns),
        c1 = fps(comp_1s),
        cn = fps(comp_ns),
        su1 = tape_1s / comp_1s,
        sun = tape_ns / comp_ns,
    );
    std::fs::write(&eval_out, &eval_json).map_err(|e| format!("cannot write {eval_out}: {e}"))?;
    println!("wrote {eval_out}");

    // --- compiled training step: tape vs TrainPlan ---------------------
    let train_out: String = arg("--train-out", "BENCH_pr5.json".to_owned())?;

    // attack training: the PR's headline number. The tape baseline
    // re-runs the identical attack with `compiled: false`.
    println!(
        "\ntiming {} attack-training steps, tape vs compiled...",
        cfg.steps
    );
    let tape_cfg = AttackConfig {
        compiled: false,
        ..cfg
    };
    let atk_tape = run_attack(1, &tape_cfg, &scenario);
    let atk_comp = run_attack(1, &cfg, &scenario);
    let atk_comp_n = run_attack(threads, &cfg, &scenario);
    rd_tensor::parallel::set_max_threads(0);

    // bitwise gate: the compiled step must retrace the tape exactly
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    if bits(&atk_comp.decal.attack_loss) != bits(&atk_tape.decal.attack_loss)
        || bits(&atk_comp.decal.adv_loss) != bits(&atk_tape.decal.adv_loss)
        || atk_comp.decal.decal.channel_data() != atk_tape.decal.decal.channel_data()
    {
        return Err("compiled attack training diverged from the tape".into());
    }
    // determinism gate: the compiled step must be thread-count invariant
    if bits(&atk_comp_n.decal.attack_loss) != bits(&atk_comp.decal.attack_loss)
        || atk_comp_n.decal.decal.channel_data() != atk_comp.decal.decal.channel_data()
    {
        return Err(
            format!("compiled attack training diverged between 1 and {threads} threads").into(),
        );
    }
    let atk_speedup = atk_comp.steps_per_sec / atk_tape.steps_per_sec;
    println!("gates: compiled == tape (bitwise), 1 == {threads} threads (bitwise)");
    println!(
        "tape:     {:.2} steps/sec ({:.2}s)",
        atk_tape.steps_per_sec, atk_tape.seconds
    );
    println!(
        "compiled: {:.2} steps/sec ({:.2}s) — {atk_speedup:.2}x; {:.2} steps/sec at {threads} threads",
        atk_comp.steps_per_sec, atk_comp.seconds, atk_comp_n.steps_per_sec
    );

    // detector fine-tune: exercises the activation-column cache (the
    // attack path never needs parameter gradients, so only this section
    // reuses forward im2col columns in grad-weight)
    let n_train = if quick { 24 } else { 48 };
    println!("\ntiming a detector fine-tune over {n_train} images, tape vs compiled...");
    let train_data = generate(&DatasetConfig {
        rig: CameraRig::smoke(),
        n_images: n_train,
        seed: 21,
        augment: false,
    });
    let (det_tape_s, det_steps, det_tape_losses, det_tape_params, _) =
        train_pass(1, &train_data, false);
    let (det_comp_s, _, det_comp_losses, det_comp_params, (hits, misses)) =
        train_pass(1, &train_data, true);
    if bits(&det_comp_losses) != bits(&det_tape_losses) || det_comp_params != det_tape_params {
        return Err("compiled detector training diverged from the tape".into());
    }
    let det_speedup = det_tape_s / det_comp_s;
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    println!("gate: compiled == tape (bitwise losses + final params)");
    println!(
        "tape:     {:.2} steps/sec ({det_tape_s:.2}s for {det_steps} steps)",
        det_steps as f64 / det_tape_s
    );
    println!(
        "compiled: {:.2} steps/sec ({det_comp_s:.2}s) — {det_speedup:.2}x",
        det_steps as f64 / det_comp_s
    );
    println!(
        "column cache: {hits} hits / {misses} misses ({:.0}% hit rate)",
        hit_rate * 100.0
    );

    let train_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr5_compiled_training\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"runtime\": {rt},\n",
            "  \"host_logical_cpus\": {cpus},\n",
            "  \"threads\": {threads},\n",
            "  \"attack\": {{\n",
            "    \"steps\": {asteps},\n",
            "    \"tape_steps_per_sec\": {ats:.3},\n",
            "    \"compiled_steps_per_sec\": {acs:.3},\n",
            "    \"compiled_steps_per_sec_parallel\": {acn:.3},\n",
            "    \"speedup\": {asp:.3},\n",
            "    \"bitwise_identical_to_tape\": true,\n",
            "    \"thread_deterministic\": true\n",
            "  }},\n",
            "  \"detector\": {{\n",
            "    \"steps\": {dsteps},\n",
            "    \"tape_steps_per_sec\": {dts:.3},\n",
            "    \"compiled_steps_per_sec\": {dcs:.3},\n",
            "    \"speedup\": {dsp:.3},\n",
            "    \"col_cache\": {{ \"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {hr:.3} }},\n",
            "    \"bitwise_identical_to_tape\": true\n",
            "  }}\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        rt = runtime_json,
        cpus = host_cpus,
        threads = threads,
        asteps = cfg.steps,
        ats = atk_tape.steps_per_sec,
        acs = atk_comp.steps_per_sec,
        acn = atk_comp_n.steps_per_sec,
        asp = atk_speedup,
        dsteps = det_steps,
        dts = det_steps as f64 / det_tape_s,
        dcs = det_steps as f64 / det_comp_s,
        dsp = det_speedup,
        hits = hits,
        misses = misses,
        hr = hit_rate,
    );
    std::fs::write(&train_out, &train_json)
        .map_err(|e| format!("cannot write {train_out}: {e}"))?;
    println!("wrote {train_out}");

    // --- execution tiers: f32x8 fast tier vs scalar reference ----------
    let tier_out: String = arg("--tier-out", "BENCH_pr7.json".to_owned())?;
    let cand: Tier = arg("--tier", Tier::Fast)?;
    let backend = rd_tensor::simd::backend();
    println!(
        "\ntiming compiled eval at the '{}' tier vs the scalar reference (backend: {})...",
        cand.label(),
        backend.label()
    );

    // static certificate for the candidate tier's kernel model, over the
    // rendered-frame input box [0, 1]
    let meta = detector.infer_plan(&ps_det).meta();
    let cert = certify_logit_bounds(&meta, &ps_det, 0.0, 1.0, &KernelModel::for_tier(cand))?;
    if cert.len() != 2 {
        return Err(format!("expected one bound per detector head, got {}", cert.len()).into());
    }

    // the pr7 fragment records the *candidate* tier it measured
    tier::set_tier(cand);
    rd_tensor::parallel::set_max_threads(threads);
    let tier_runtime_json = rd_bench::runtime_config_json()?;
    rd_tensor::parallel::set_max_threads(0);
    tier::set_tier(Tier::Reference);

    let timed_tier = |t: Tier, n_threads: usize| {
        tier::set_tier(t);
        let r = eval_pass(n_threads, &detector, &ps_det, &batches, true);
        tier::set_tier(Tier::Reference);
        r
    };
    // warm the candidate tier off the clock (backend detection, buffers)
    let _ = timed_tier(cand, 1);
    let (ref_1s, ref_outs) = timed_tier(Tier::Reference, 1);
    let (ref_ns, _) = timed_tier(Tier::Reference, threads);
    let (cand_1s, cand_outs) = timed_tier(cand, 1);
    let (cand_ns, cand_outs_n) = timed_tier(cand, threads);

    // determinism gate: the candidate tier must be thread-count invariant
    for (i, ((ac, af), (bc, bf))) in cand_outs.iter().zip(&cand_outs_n).enumerate() {
        if ac.data() != bc.data() || af.data() != bf.data() {
            return Err(format!(
                "'{}'-tier eval diverged between 1 and {threads} threads on batch {i}",
                cand.label()
            )
            .into());
        }
    }

    // divergence gate: per-head observed max-abs error vs the certificate
    let mut observed = [0.0f64; 2];
    for ((rc, rf), (cc, cfine)) in ref_outs.iter().zip(&cand_outs) {
        for (h, (a, b)) in [(rc, cc), (rf, cfine)].into_iter().enumerate() {
            for (&x, &y) in a.data().iter().zip(b.data()) {
                observed[h] = observed[h].max((x as f64 - y as f64).abs());
            }
        }
    }
    let mut obs_ulps = [0.0f64; 2];
    for (h, b) in cert.iter().enumerate() {
        let scale = b.lo.abs().max(b.hi.abs());
        obs_ulps[h] = observed[h] / rd_analysis::bounds::ulp32(scale);
        println!(
            "head {h}: observed {:.3e} abs ({:.2e} ulp) vs certified {:.3e} abs ({:.1} ulp)",
            observed[h], obs_ulps[h], b.max_abs_err, b.ulps_at_scale
        );
        if observed[h] > b.max_abs_err {
            return Err(format!(
                "head {h}: '{}'-tier divergence {:.3e} exceeds the static certificate {:.3e}",
                cand.label(),
                observed[h],
                b.max_abs_err
            )
            .into());
        }
    }

    // end-to-end drift gates: decoded detections and mAP must not move
    let nc = detector.config().num_classes;
    let decode = |outs: &[(Tensor, Tensor)]| -> Vec<Vec<Detection>> {
        outs.iter()
            .flat_map(|(c, f)| postprocess(c, f, nc, 0.05, 0.45))
            .collect()
    };
    let dets_ref = decode(&ref_outs);
    let dets_cand = decode(&cand_outs);
    for (i, (a, b)) in dets_ref.iter().zip(&dets_cand).enumerate() {
        if a.len() != b.len()
            || a.iter()
                .zip(b)
                .any(|(x, y)| x.class != y.class || x.head != y.head)
        {
            return Err(format!(
                "decoded detections drifted between tiers on frame {i} \
                 ({} vs {} detections)",
                a.len(),
                b.len()
            )
            .into());
        }
    }
    let frames_of = |dets: Vec<Vec<Detection>>| -> Vec<(Vec<Detection>, Vec<GtBox>)> {
        dets.into_iter()
            .zip(&samples)
            .map(|(d, s)| (d, s.boxes.clone()))
            .collect()
    };
    let map_ref = mean_average_precision(&frames_of(dets_ref), 0.5);
    let map_cand = mean_average_precision(&frames_of(dets_cand), 0.5);
    if map_ref.to_bits() != map_cand.to_bits() {
        return Err(format!("mAP drifted between tiers: {map_ref} vs {map_cand}").into());
    }

    // attack-metric drift gate: PWC/CWC of the trained decal must agree
    let deployment = deploy(&serial.decal.decal, &scenario);
    let ecfg = EvalConfig {
        conf_threshold: 0.05,
        ..EvalConfig::smoke(13)
    };
    let challenge_at = |t: Tier| {
        tier::set_tier(t);
        let o = evaluate_challenge(
            &scenario,
            &deployment,
            &detector,
            &ps_det,
            ObjectClass::Bicycle,
            Challenge::Rotation(RotationSetting::Fix),
            &ecfg,
        );
        tier::set_tier(Tier::Reference);
        o
    };
    let cell_ref = challenge_at(Tier::Reference);
    let cell_cand = challenge_at(cand);
    if cell_ref.cell != cell_cand.cell || cell_ref.victim_detected != cell_cand.victim_detected {
        return Err(format!(
            "challenge cell drifted between tiers: PWC {} vs {}, CWC {} vs {}",
            cell_ref.cell.pwc, cell_cand.cell.pwc, cell_ref.cell.cwc, cell_cand.cell.cwc
        )
        .into());
    }
    println!(
        "gates: thread-invariant, within certificate, zero mAP/PWC/CWC drift \
         (mAP {map_ref:.3}, PWC {:.2}, CWC {})",
        cell_ref.cell.pwc, cell_ref.cell.cwc
    );

    let tier_speedup = ref_1s / cand_1s;
    let tier_speedup_n = ref_ns / cand_ns;
    println!(
        "reference: {:.1} frames/sec serial, {:.1} at {threads} threads",
        fps(ref_1s),
        fps(ref_ns)
    );
    println!(
        "{}:      {:.1} frames/sec serial, {:.1} at {threads} threads — {tier_speedup:.2}x serial",
        cand.label(),
        fps(cand_1s),
        fps(cand_ns)
    );
    // the 1.5x floor is the PR's acceptance bar; quick CI runs are too
    // short/noisy to hard-gate a wall-clock ratio on
    if !quick && cand == Tier::Fast && tier_speedup < 1.5 {
        return Err(format!(
            "fast tier is only {tier_speedup:.2}x the scalar reference (need >= 1.5x)"
        )
        .into());
    }

    let tier_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr7_fast_tier\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"runtime\": {rt},\n",
            "  \"host_logical_cpus\": {cpus},\n",
            "  \"threads_requested\": {treq},\n",
            "  \"threads_effective\": {teff},\n",
            "  \"tier\": \"{tier}\",\n",
            "  \"backend\": \"{backend}\",\n",
            "  \"frames\": {frames},\n",
            "  \"reference\": {{ \"fps_serial\": {r1:.1}, \"fps_parallel\": {rn:.1} }},\n",
            "  \"candidate\": {{ \"fps_serial\": {c1:.1}, \"fps_parallel\": {cn:.1} }},\n",
            "  \"speedup_serial\": {su1:.3},\n",
            "  \"speedup_parallel\": {sun:.3},\n",
            "  \"certificate\": [\n",
            "    {{ \"head\": 0, \"bound_abs\": {b0:.3e}, \"bound_ulps\": {bu0:.1}, ",
            "\"observed_abs\": {o0:.3e}, \"observed_ulps\": {ou0:.3e} }},\n",
            "    {{ \"head\": 1, \"bound_abs\": {b1:.3e}, \"bound_ulps\": {bu1:.1}, ",
            "\"observed_abs\": {o1:.3e}, \"observed_ulps\": {ou1:.3e} }}\n",
            "  ],\n",
            "  \"within_certificate\": true,\n",
            "  \"thread_deterministic\": true,\n",
            "  \"map\": {map:.4},\n",
            "  \"challenge\": {{ \"pwc\": {pwc:.4}, \"cwc\": {cwc} }},\n",
            "  \"zero_metric_drift\": true\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        rt = tier_runtime_json,
        cpus = host_cpus,
        treq = threads_requested,
        teff = threads_effective,
        tier = cand.label(),
        backend = backend.label(),
        frames = n_frames,
        r1 = fps(ref_1s),
        rn = fps(ref_ns),
        c1 = fps(cand_1s),
        cn = fps(cand_ns),
        su1 = tier_speedup,
        sun = tier_speedup_n,
        b0 = cert[0].max_abs_err,
        bu0 = cert[0].ulps_at_scale,
        o0 = observed[0],
        ou0 = obs_ulps[0],
        b1 = cert[1].max_abs_err,
        bu1 = cert[1].ulps_at_scale,
        o1 = observed[1],
        ou1 = obs_ulps[1],
        map = map_ref,
        pwc = cell_ref.cell.pwc,
        cwc = cell_ref.cell.cwc,
    );
    std::fs::write(&tier_out, &tier_json).map_err(|e| format!("cannot write {tier_out}: {e}"))?;
    println!("wrote {tier_out}");

    // --- streaming evaluation: render/infer overlap vs buffered --------
    let stream_out: String = arg("--stream-out", "BENCH_pr9.json".to_owned())?;
    let fleet_drives: usize = arg("--fleet-drives", if quick { 48 } else { 10_000 })?;
    // a drive long enough that the buffered path materializes several
    // chunks while the streamed path stays at one chunk pair
    let stream_cfg = EvalConfig {
        rotation_frames: 4 * BATCH_FRAMES,
        runs: 3,
        conf_threshold: 0.05,
        ..EvalConfig::smoke(13)
    };
    let stream_challenge = Challenge::Rotation(RotationSetting::Slight);
    println!(
        "\ntiming streamed vs buffered evaluation ({} frames x {} runs per video)...",
        stream_cfg.rotation_frames, stream_cfg.runs
    );

    // bitwise gate first: per-frame detections must agree at 1 and
    // {threads} threads, on both tiers
    for gate_tier in [Tier::Reference, Tier::Fast] {
        for n_threads in [1usize, threads] {
            let rt = Runtime::new(RuntimeConfig {
                threads: n_threads,
                tier: gate_tier,
                profiling: false,
            });
            let traced = |mode| {
                rt.enter(|| {
                    evaluate_challenge_traced(
                        &scenario,
                        &deployment,
                        &detector,
                        &ps_det,
                        ObjectClass::Bicycle,
                        stream_challenge,
                        &stream_cfg,
                        mode,
                    )
                })
            };
            let (s_out, s_trace) = traced(EvalMode::Streamed);
            let (b_out, b_trace) = traced(EvalMode::Buffered);
            if s_out.cell.pwc.to_bits() != b_out.cell.pwc.to_bits()
                || s_out.cell.cwc != b_out.cell.cwc
                || s_out.victim_detected.to_bits() != b_out.victim_detected.to_bits()
                || s_trace != b_trace
            {
                return Err(format!(
                    "streamed evaluation diverged from the buffered oracle \
                     ('{}' tier, {n_threads} threads)",
                    gate_tier.label()
                )
                .into());
            }
        }
    }
    println!(
        "gate: streamed == buffered bitwise (per-frame detections, 1 and {threads} threads, \
         both tiers)"
    );

    // throughput: same videos through both paths, on one runtime shape
    let reps = if quick { 2 } else { 6 };
    let timed_mode = |mode: EvalMode| -> (f64, usize, usize) {
        let rt = Runtime::new(RuntimeConfig {
            threads,
            ..RuntimeConfig::default()
        });
        let cfg = EvalConfig { mode, ..stream_cfg };
        rt.enter(|| {
            let mut peak_live = 0usize;
            // warm-up off the clock (plan compile, arena buffers)
            let _ = evaluate_challenge(
                &scenario,
                &deployment,
                &detector,
                &ps_det,
                ObjectClass::Bicycle,
                stream_challenge,
                &cfg,
            );
            let t0 = Instant::now();
            for _ in 0..reps {
                if mode == EvalMode::Streamed {
                    let eval = evaluate_streamed(
                        &scenario,
                        &deployment,
                        &detector,
                        &ps_det,
                        ObjectClass::Bicycle,
                        stream_challenge,
                        &cfg,
                    );
                    peak_live = peak_live.max(eval.stats.peak_live_frames);
                } else {
                    let out = evaluate_challenge(
                        &scenario,
                        &deployment,
                        &detector,
                        &ps_det,
                        ObjectClass::Bicycle,
                        stream_challenge,
                        &cfg,
                    );
                    // the buffered oracle materializes the whole run
                    peak_live = peak_live.max(out.frames_per_run);
                }
            }
            (t0.elapsed().as_secs_f64(), peak_live, rt.arena_high_water())
        })
    };
    let videos = (reps * stream_cfg.runs) as f64;
    let (buf_s, buf_peak, buf_hw) = timed_mode(EvalMode::Buffered);
    let (str_s, str_peak, str_hw) = timed_mode(EvalMode::Streamed);
    let overlap_speedup = buf_s / str_s;
    if str_peak > 2 * BATCH_FRAMES {
        return Err(format!(
            "streamed peak live frames {str_peak} exceeds the chunk-pair bound {}",
            2 * BATCH_FRAMES
        )
        .into());
    }
    println!(
        "buffered: {:.2} videos/sec (peak {} live frames)",
        videos / buf_s,
        buf_peak
    );
    println!(
        "streamed: {:.2} videos/sec (peak {} live frames, bound {}) — {overlap_speedup:.2}x",
        videos / str_s,
        str_peak,
        2 * BATCH_FRAMES
    );

    // bounded-memory gate: a 4x longer streamed drive must not deepen
    // the arena high-water mark
    let hw_at = |rotation_frames: usize| {
        let rt = Runtime::new(RuntimeConfig::default());
        let cfg = EvalConfig {
            rotation_frames,
            runs: 1,
            ..stream_cfg
        };
        rt.enter(|| {
            let _ = evaluate_streamed(
                &scenario,
                &deployment,
                &detector,
                &ps_det,
                ObjectClass::Bicycle,
                stream_challenge,
                &cfg,
            );
        });
        rt.arena_high_water()
    };
    // frame buffers are arena-backed (FrameRenderer), so the pipeline's
    // steady state — one chunk rendering while another is inferred —
    // first appears at two chunks; measure from there
    let hw_short = hw_at(2 * BATCH_FRAMES);
    let hw_long = hw_at(4 * BATCH_FRAMES);
    if hw_long > hw_short + hw_short / 8 {
        return Err(format!(
            "streamed arena high-water scales with drive length: \
             {hw_short} elems for 2 chunks vs {hw_long} for 4"
        )
        .into());
    }
    println!(
        "arena high-water: {str_hw} elems streamed vs {buf_hw} buffered \
         (length-invariant: {hw_short} @ 2 chunks, {hw_long} @ 4 chunks)"
    );

    // fleet: the drives partitioned over per-job supervised runtimes
    let fleet_jobs = threads.max(2);
    println!("running a {fleet_drives}-drive fleet over {fleet_jobs} supervised jobs...");
    let fleet_cfg = EvalConfig {
        runs: 1,
        ..EvalConfig::smoke(13)
    };
    let fleet = FleetConfig::new(fleet_drives, fleet_jobs);
    let t0 = Instant::now();
    let fleet_report = eval_fleet(
        &scenario,
        &deployment,
        &detector,
        &ps_det,
        ObjectClass::Bicycle,
        stream_challenge,
        &fleet_cfg,
        &fleet,
    );
    let fleet_s = t0.elapsed().as_secs_f64();
    if !fleet_report.finished() || fleet_report.drives_finished != fleet_drives {
        return Err(format!(
            "fleet lost drives: {}/{} finished",
            fleet_report.drives_finished, fleet_drives
        )
        .into());
    }
    let fleet_vps = fleet_drives as f64 / fleet_s;
    println!(
        "fleet: {fleet_drives} drives ({} frames) in {fleet_s:.2}s — {fleet_vps:.1} videos/sec",
        fleet_report.frames
    );

    let stream_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr9_streaming_eval\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"runtime\": {rt},\n",
            "  \"host_logical_cpus\": {cpus},\n",
            "  \"threads\": {threads},\n",
            "  \"video\": {{ \"frames\": {vframes}, \"runs\": {vruns} }},\n",
            "  \"buffered\": {{ \"seconds\": {bs:.3}, \"videos_per_sec\": {bv:.3} }},\n",
            "  \"streamed\": {{ \"seconds\": {ss:.3}, \"videos_per_sec\": {sv:.3} }},\n",
            "  \"overlap_speedup\": {osp:.3},\n",
            "  \"bitwise_identical\": true,\n",
            "  \"peak_live_frames\": {{ \"streamed\": {pls}, \"buffered\": {plb}, ",
            "\"bound\": {plbound} }},\n",
            "  \"arena_high_water_elems\": {{ \"streamed\": {hws}, \"buffered\": {hwb}, ",
            "\"two_chunk_drive\": {hw1}, \"four_chunk_drive\": {hw4}, ",
            "\"length_invariant\": true }},\n",
            "  \"fleet\": {{ \"drives\": {fd}, \"jobs\": {fj}, \"frames\": {ff}, ",
            "\"seconds\": {fs:.2}, \"videos_per_sec\": {fv:.2}, \"finished\": true }}\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        rt = runtime_json,
        cpus = host_cpus,
        threads = threads,
        vframes = stream_cfg.rotation_frames,
        vruns = stream_cfg.runs,
        bs = buf_s,
        bv = videos / buf_s,
        ss = str_s,
        sv = videos / str_s,
        osp = overlap_speedup,
        pls = str_peak,
        plb = buf_peak,
        plbound = 2 * BATCH_FRAMES,
        hws = str_hw,
        hwb = buf_hw,
        hw1 = hw_short,
        hw4 = hw_long,
        fd = fleet_drives,
        fj = fleet_jobs,
        ff = fleet_report.frames,
        fs = fleet_s,
        fv = fleet_vps,
    );
    std::fs::write(&stream_out, &stream_json)
        .map_err(|e| format!("cannot write {stream_out}: {e}"))?;
    println!("wrote {stream_out}");

    // --- render fast path: pose-keyed caches vs the frozen seed path ---
    let render_out: String = arg("--render-out", "BENCH_pr10.json".to_owned())?;
    // a noise-bearing channel, so the capture blur/noise kernels and the
    // pre-sampled draw streams sit on every gated and timed path — the
    // digital channel the streaming section uses skips both
    let render_cfg = EvalConfig {
        channel: PhysicalChannel::simulated(),
        conf_threshold: 0.05,
        ..EvalConfig::smoke(17)
    };
    println!(
        "\ntiming the render fast path vs the frozen seed renderer (backend: {})...",
        backend.label()
    );
    let mut print_rng = StdRng::seed_from_u64(29);
    let render_printed: Vec<Decal> = deployment
        .iter()
        .map(|d| d.print(&render_cfg.channel.print, &mut print_rng))
        .collect();
    let mut pose_rng = StdRng::seed_from_u64(31);
    // the rotation challenge holds one fixed pose all drive (every frame
    // after the first hits the pose cache); the approach drives visit a
    // fresh pose every frame (the cache-miss-dominated workload)
    let repeat_poses = {
        let cfg = EvalConfig {
            rotation_frames: if quick { 64 } else { 256 },
            ..render_cfg
        };
        Challenge::Rotation(RotationSetting::Fix).poses(&cfg, &mut pose_rng)
    };
    let unique_poses: Vec<CameraPose> = (0..if quick { 4 } else { 12 })
        .flat_map(|_| Challenge::Speed(Speed::Slow).poses(&render_cfg, &mut pose_rng))
        .collect();
    let drive_motion = Speed::Slow.m_per_frame(render_cfg.fps);

    // bitwise gate: frozen seed renderer == fresh per-frame path ==
    // cached fast path, on a cold cache and again on a warm one
    let renderer = FrameRenderer::new(&scenario);
    let mut gate_poses: Vec<(CameraPose, f32)> = vec![(repeat_poses[0], 0.0)];
    gate_poses.extend(unique_poses.iter().take(8).map(|p| (*p, drive_motion)));
    for (f, (pose, motion)) in gate_poses.iter().enumerate() {
        let frame_seed = 900 + f as u64;
        let seed_frame = seed_render_frame(
            &scenario,
            &render_printed,
            &render_cfg,
            pose,
            *motion,
            &mut StdRng::seed_from_u64(frame_seed),
        );
        let fresh = render_attacked_frame(
            &scenario,
            &render_printed,
            pose,
            &render_cfg,
            *motion,
            &mut StdRng::seed_from_u64(frame_seed),
        );
        for round in 0..2 {
            let mut rng = StdRng::seed_from_u64(frame_seed);
            let draws = render_cfg
                .channel
                .capture
                .sample_draws(scenario.rig.image_hw, &mut rng);
            let fast = renderer.render(
                &scenario,
                &render_printed,
                pose,
                &render_cfg,
                *motion,
                &draws,
            );
            draws.recycle();
            let drift = seed_frame
                .data()
                .iter()
                .zip(fast.data())
                .any(|(a, b)| a.to_bits() != b.to_bits())
                || seed_frame
                    .data()
                    .iter()
                    .zip(fresh.data())
                    .any(|(a, b)| a.to_bits() != b.to_bits());
            rd_tensor::arena::recycle(fast.into_vec());
            if drift {
                return Err(format!(
                    "render fast path diverged from the seed renderer on pose {f} (round {round})"
                )
                .into());
            }
        }
    }
    println!(
        "gate: seed renderer == fresh path == cached fast path, bitwise \
         ({} poses, cold and warm cache)",
        gate_poses.len()
    );

    // the per-stage profile paths must attribute render time
    rd_tensor::profile::reset();
    rd_tensor::profile::set_enabled(true);
    {
        let mut rng = StdRng::seed_from_u64(43);
        let draws = render_cfg
            .channel
            .capture
            .sample_draws(scenario.rig.image_hw, &mut rng);
        let f = renderer.render(
            &scenario,
            &render_printed,
            &repeat_poses[0],
            &render_cfg,
            0.0,
            &draws,
        );
        draws.recycle();
        rd_tensor::arena::recycle(f.into_vec());
    }
    rd_tensor::profile::set_enabled(false);
    let snap = rd_tensor::profile::snapshot();
    for key in ["render/world", "render/decals", "render/capture"] {
        if !snap.iter().any(|(k, _)| k == key) {
            return Err(format!("profiler did not attribute the {key} render stage").into());
        }
    }
    rd_tensor::profile::reset();
    println!("gate: render/world, render/decals, render/capture profile paths attributed");

    // the streamed pipeline must still match the buffered oracle when
    // the channel actually draws noise (per-frame pre-sampled streams)
    let noise_gate_cfg = EvalConfig {
        rotation_frames: 2 * BATCH_FRAMES + 8,
        runs: 2,
        ..render_cfg
    };
    for gate_tier in [Tier::Reference, Tier::Fast] {
        for n_threads in [1usize, threads] {
            let rt = Runtime::new(RuntimeConfig {
                threads: n_threads,
                tier: gate_tier,
                profiling: false,
            });
            let traced = |mode| {
                rt.enter(|| {
                    evaluate_challenge_traced(
                        &scenario,
                        &deployment,
                        &detector,
                        &ps_det,
                        ObjectClass::Bicycle,
                        stream_challenge,
                        &noise_gate_cfg,
                        mode,
                    )
                })
            };
            let (s_out, s_trace) = traced(EvalMode::Streamed);
            let (b_out, b_trace) = traced(EvalMode::Buffered);
            if s_out.cell.pwc.to_bits() != b_out.cell.pwc.to_bits()
                || s_out.cell.cwc != b_out.cell.cwc
                || s_trace != b_trace
            {
                return Err(format!(
                    "streamed diverged from buffered on the simulated (noisy) channel \
                     ('{}' tier, {n_threads} threads)",
                    gate_tier.label()
                )
                .into());
            }
        }
    }
    println!(
        "gate: streamed == buffered bitwise on the simulated (noisy) channel \
         (1 and {threads} threads, both tiers)"
    );

    // serial frames/sec, both renderers on the same pose stream
    rd_tensor::parallel::set_max_threads(1);
    let time_paths = |poses: &[CameraPose],
                      motion: f32,
                      passes: usize|
     -> (f64, f64, road_decals::RenderCacheStats) {
        let mut rng = StdRng::seed_from_u64(41);
        // one warm frame off the clock per path (allocator, arena)
        let _ = seed_render_frame(
            &scenario,
            &render_printed,
            &render_cfg,
            &poses[0],
            motion,
            &mut rng,
        );
        let t0 = Instant::now();
        for _ in 0..passes {
            for pose in poses {
                let _ = seed_render_frame(
                    &scenario,
                    &render_printed,
                    &render_cfg,
                    pose,
                    motion,
                    &mut rng,
                );
            }
        }
        let seed_s = t0.elapsed().as_secs_f64();
        let fast_renderer = FrameRenderer::new(&scenario);
        let render_once = |pose: &CameraPose, rng: &mut StdRng| {
            let draws = render_cfg
                .channel
                .capture
                .sample_draws(scenario.rig.image_hw, rng);
            let f = fast_renderer.render(
                &scenario,
                &render_printed,
                pose,
                &render_cfg,
                motion,
                &draws,
            );
            draws.recycle();
            rd_tensor::arena::recycle(f.into_vec());
        };
        let mut rng = StdRng::seed_from_u64(41);
        render_once(&poses[0], &mut rng);
        let t0 = Instant::now();
        for _ in 0..passes {
            for pose in poses {
                render_once(pose, &mut rng);
            }
        }
        let fast_s = t0.elapsed().as_secs_f64();
        (seed_s, fast_s, fast_renderer.cache_stats())
    };
    let rep_passes = if quick { 2 } else { 4 };
    let (rep_seed_s, rep_fast_s, rep_stats) = time_paths(&repeat_poses, 0.0, rep_passes);
    let rep_frames = rep_passes * repeat_poses.len();
    let (uni_seed_s, uni_fast_s, uni_stats) = time_paths(&unique_poses, drive_motion, 1);
    let uni_frames = unique_poses.len();
    let rep_speedup = rep_seed_s / rep_fast_s;
    let uni_speedup = uni_seed_s / uni_fast_s;
    println!(
        "repeated pose ({rep_frames} frames): seed {:.1} -> fast {:.1} frames/sec serial \
         — {rep_speedup:.2}x (cam cache {}h/{}m)",
        rep_frames as f64 / rep_seed_s,
        rep_frames as f64 / rep_fast_s,
        rep_stats.cam_hits,
        rep_stats.cam_misses
    );
    println!(
        "unique poses  ({uni_frames} frames): seed {:.1} -> fast {:.1} frames/sec serial \
         — {uni_speedup:.2}x (cam cache {}h/{}m)",
        uni_frames as f64 / uni_seed_s,
        uni_frames as f64 / uni_fast_s,
        uni_stats.cam_hits,
        uni_stats.cam_misses
    );
    // the 2x floor is the PR's acceptance bar on the cache-friendly
    // workload; quick CI runs are too short to hard-gate wall clock on
    if !quick && rep_speedup < 2.0 {
        return Err(format!(
            "render fast path is only {rep_speedup:.2}x the seed renderer \
             on the pose-repeating workload (need >= 2.0x)"
        )
        .into());
    }

    // end-to-end headline: streamed videos/sec on the noisy channel with
    // the parallel chunk renderer in play
    let e2e_cfg = EvalConfig {
        rotation_frames: 4 * BATCH_FRAMES,
        runs: 3,
        ..render_cfg
    };
    let e2e_reps = if quick { 2 } else { 4 };
    let rt = Runtime::new(RuntimeConfig {
        threads,
        ..RuntimeConfig::default()
    });
    let e2e_s = rt.enter(|| {
        let run = || {
            evaluate_streamed(
                &scenario,
                &deployment,
                &detector,
                &ps_det,
                ObjectClass::Bicycle,
                stream_challenge,
                &e2e_cfg,
            )
        };
        let _ = run(); // warm-up off the clock
        let t0 = Instant::now();
        for _ in 0..e2e_reps {
            let _ = run();
        }
        t0.elapsed().as_secs_f64()
    });
    let e2e_videos = (e2e_reps * e2e_cfg.runs) as f64;
    let e2e_vps = e2e_videos / e2e_s;
    println!(
        "end-to-end streamed (simulated channel, {threads} threads): \
         {e2e_vps:.2} videos/sec"
    );

    let render_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr10_render_fast_path\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"runtime\": {rt},\n",
            "  \"host_logical_cpus\": {cpus},\n",
            "  \"threads\": {threads},\n",
            "  \"backend\": \"{backend}\",\n",
            "  \"bitwise\": {{ \"seed_eq_fresh_eq_cached\": true, ",
            "\"streamed_eq_buffered_noisy_channel\": true, ",
            "\"profile_stages_attributed\": true }},\n",
            "  \"repeated_pose\": {{ \"frames\": {rf}, \"seed_fps_serial\": {rs:.1}, ",
            "\"fast_fps_serial\": {rfp:.1}, \"speedup_serial\": {rsu:.3} }},\n",
            "  \"unique_pose\": {{ \"frames\": {uf}, \"seed_fps_serial\": {us:.1}, ",
            "\"fast_fps_serial\": {ufp:.1}, \"speedup_serial\": {usu:.3} }},\n",
            "  \"cache\": {{ \"cam_hits\": {ch}, \"cam_misses\": {cm}, ",
            "\"decal_hits\": {dh}, \"decal_misses\": {dm} }},\n",
            "  \"streamed_end_to_end\": {{ \"videos\": {ev}, \"seconds\": {es:.3}, ",
            "\"videos_per_sec\": {evps:.3} }}\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        rt = runtime_json,
        cpus = host_cpus,
        threads = threads,
        backend = backend.label(),
        rf = rep_frames,
        rs = rep_frames as f64 / rep_seed_s,
        rfp = rep_frames as f64 / rep_fast_s,
        rsu = rep_speedup,
        uf = uni_frames,
        us = uni_frames as f64 / uni_seed_s,
        ufp = uni_frames as f64 / uni_fast_s,
        usu = uni_speedup,
        ch = rep_stats.cam_hits + uni_stats.cam_hits,
        cm = rep_stats.cam_misses + uni_stats.cam_misses,
        dh = rep_stats.decal_hits + uni_stats.decal_hits,
        dm = rep_stats.decal_misses + uni_stats.decal_misses,
        ev = e2e_videos,
        es = e2e_s,
        evps = e2e_vps,
    );
    std::fs::write(&render_out, &render_json)
        .map_err(|e| format!("cannot write {render_out}: {e}"))?;
    println!("wrote {render_out}");
    Ok(())
}
