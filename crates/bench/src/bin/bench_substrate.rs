//! Training-substrate benchmark: attack steps/sec serial vs parallel,
//! scratch-arena effectiveness, and peak RSS.
//!
//! ```text
//! cargo run --release -p rd-bench --bin bench_substrate -- \
//!     [--quick] [--steps 12] [--threads 4] [--out BENCH_pr2.json]
//! ```
//!
//! Runs the *same* smoke-scale decal attack twice — worker pool capped
//! at one thread, then at `--threads` — and reports steps/sec for both.
//! The two runs must produce bitwise-identical training curves (the
//! fan-out's fixed-order reduction guarantees it); this binary asserts
//! that before reporting, so it doubles as a determinism smoke check.
//! It also exercises the per-op profiler for one serial run so CI fails
//! loudly if profiling breaks.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rd_bench::{arg, flag};
use rd_detector::{TinyYolo, YoloConfig};
use rd_scene::CameraRig;
use rd_tensor::ParamSet;
use road_decals::attack::{train_decal_attack, AttackConfig, TrainedDecal};
use road_decals::scenario::AttackScenario;

/// Peak resident-set size of this process in kB (Linux `VmHWM`; 0 where
/// /proc is unavailable).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct RunStats {
    seconds: f64,
    steps_per_sec: f64,
    decal: TrainedDecal,
}

fn run_attack(threads: usize, cfg: &AttackConfig, scenario: &AttackScenario) -> RunStats {
    rd_tensor::parallel::set_max_threads(threads);
    let mut rng = StdRng::seed_from_u64(3);
    let mut ps_det = ParamSet::new();
    let detector = TinyYolo::new(&mut ps_det, &mut rng, YoloConfig::smoke());
    let t0 = Instant::now();
    let decal = train_decal_attack(scenario, &detector, &mut ps_det, cfg);
    let seconds = t0.elapsed().as_secs_f64();
    RunStats {
        seconds,
        steps_per_sec: cfg.steps as f64 / seconds,
        decal,
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_substrate: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let quick = flag("--quick");
    let steps: usize = arg("--steps", if quick { 4 } else { 12 })?;
    let threads: usize = arg("--threads", 4)?;
    let out: String = arg("--out", "BENCH_pr2.json".to_owned())?;
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let scenario = AttackScenario::parking_lot(CameraRig::smoke(), 2, 60, 16, 5);
    let cfg = AttackConfig {
        steps,
        clips_per_batch: 2,
        ..AttackConfig::smoke()
    };

    // profiled serial warm-up: a short run with the per-op profiler on,
    // so a broken profiler fails this binary (and CI) immediately
    rd_tensor::profile::reset();
    rd_tensor::profile::set_enabled(true);
    let warm_cfg = AttackConfig { steps: 1, ..cfg };
    let _ = run_attack(1, &warm_cfg, &scenario);
    rd_tensor::profile::set_enabled(false);
    let profiled = rd_tensor::profile::snapshot();
    if profiled.is_empty() {
        return Err("profiler captured no ops during the warm-up step".into());
    }
    println!(
        "profiler: {} op paths captured in warm-up; top entries:",
        profiled.len()
    );
    for line in rd_tensor::profile::report_text().lines().take(8) {
        println!("  {line}");
    }
    rd_tensor::profile::reset();

    println!(
        "\ntiming {} attack steps (smoke scale), serial vs {threads} threads...",
        cfg.steps
    );
    let serial = run_attack(1, &cfg, &scenario);
    let parallel = run_attack(threads, &cfg, &scenario);
    rd_tensor::parallel::set_max_threads(0);

    // determinism gate: the parallel run must retrace the serial run
    if serial.decal.attack_loss != parallel.decal.attack_loss {
        return Err(format!("attack-loss curve diverged between 1 and {threads} threads").into());
    }
    if serial.decal.adv_loss != parallel.decal.adv_loss {
        return Err(format!("adv-loss curve diverged between 1 and {threads} threads").into());
    }
    if serial.decal.decal.channel_data() != parallel.decal.decal.channel_data() {
        return Err(format!("trained decal diverged between 1 and {threads} threads").into());
    }
    println!("determinism: 1-thread and {threads}-thread runs are bitwise identical");

    let (hits, misses, pooled) = rd_tensor::arena::stats();
    let speedup = parallel.steps_per_sec / serial.steps_per_sec;
    println!(
        "serial:   {:.2} steps/sec ({:.2}s)",
        serial.steps_per_sec, serial.seconds
    );
    println!(
        "parallel: {:.2} steps/sec ({:.2}s) at {threads} threads — {speedup:.2}x",
        parallel.steps_per_sec, parallel.seconds
    );
    println!("arena: {hits} hits / {misses} misses ({pooled} buffers pooled)");
    println!(
        "host: {host_cpus} logical cpu(s), peak RSS {} kB",
        peak_rss_kb()
    );

    let note = if host_cpus < threads {
        format!(
            "host exposes only {host_cpus} logical cpu(s); the {threads}-thread run is \
             time-sliced, so wall-clock speedup is hardware-limited and the numbers \
             below measure overhead + determinism, not scaling"
        )
    } else {
        String::new()
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr2_parallel_substrate\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"host_logical_cpus\": {cpus},\n",
            "  \"threads\": {threads},\n",
            "  \"attack_steps\": {steps},\n",
            "  \"serial\": {{ \"seconds\": {ss:.3}, \"steps_per_sec\": {sp:.3} }},\n",
            "  \"parallel\": {{ \"seconds\": {ps:.3}, \"steps_per_sec\": {pp:.3} }},\n",
            "  \"speedup\": {speedup:.3},\n",
            "  \"bitwise_deterministic\": true,\n",
            "  \"arena\": {{ \"hits\": {hits}, \"misses\": {misses}, \"pooled\": {pooled} }},\n",
            "  \"peak_rss_kb\": {rss},\n",
            "  \"note\": \"{note}\"\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        cpus = host_cpus,
        threads = threads,
        steps = cfg.steps,
        ss = serial.seconds,
        sp = serial.steps_per_sec,
        ps = parallel.seconds,
        pp = parallel.steps_per_sec,
        speedup = speedup,
        hits = hits,
        misses = misses,
        pooled = pooled,
        rss = peak_rss_kb(),
        note = note,
    );
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}
