//! Regenerates Table II: our attack in the indoor simulated environment.
//!
//! ```text
//! cargo run --release -p rd-bench --bin repro_table2 -- [--scale paper|smoke] [--seed 42] [--audit] [--threads N] [--profile] \
//!     [--checkpoint-every N] [--checkpoint-dir DIR] [--resume] [--deadline-secs N] [--max-retries N]
//! ```

use rd_bench::{arg, compare, flag, paper};
use road_decals::experiments::{prepare_environment_with, run_table2, Scale};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro_table2: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    rd_bench::run_supervised("table2", || run_body().map_err(|e| e.to_string()))?;
    Ok(())
}

fn run_body() -> Result<(), Box<dyn std::error::Error>> {
    rd_bench::setup_substrate()?;
    let scale: Scale = arg("--scale", "paper".to_owned())?.parse()?;
    let seed: u64 = arg("--seed", 42)?;
    let recovery = rd_bench::recovery_from_args()?;
    let mut env = prepare_environment_with(scale, seed, recovery)?.with_audit(flag("--audit"));
    println!(
        "victim detector class-accuracy: {:.2}\n",
        env.detector_accuracy
    );
    let measured = run_table2(&mut env, seed)?;
    println!("{}", paper::table2());
    println!("{measured}");
    println!("shape checks:");
    compare::report(&[compare::monotone_decreasing(
        &measured,
        "Ours",
        &["slow", "normal", "fast"],
    )]);
    // the simulated environment should beat the real-world Table I cell;
    // cross-table checks are reported in EXPERIMENTS.md
    rd_bench::report_substrate()?;
    Ok(())
}
