//! Regenerates Table III: ablation over the number of decals N.
//!
//! ```text
//! cargo run --release -p rd-bench --bin repro_table3 -- [--scale paper|smoke] [--seed 42] [--audit] [--threads N] [--profile] \
//!     [--checkpoint-every N] [--checkpoint-dir DIR] [--resume] [--deadline-secs N] [--max-retries N]
//! ```

use rd_bench::{arg, compare, flag, paper};
use road_decals::experiments::{prepare_environment_with, run_table3, Scale};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro_table3: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    rd_bench::run_supervised("table3", || run_body().map_err(|e| e.to_string()))?;
    Ok(())
}

fn run_body() -> Result<(), Box<dyn std::error::Error>> {
    rd_bench::setup_substrate()?;
    let scale: Scale = arg("--scale", "paper".to_owned())?.parse()?;
    let seed: u64 = arg("--seed", 42)?;
    let recovery = rd_bench::recovery_from_args()?;
    let mut env = prepare_environment_with(scale, seed, recovery)?.with_audit(flag("--audit"));
    println!(
        "victim detector class-accuracy: {:.2}\n",
        env.detector_accuracy
    );
    let measured = run_table3(&mut env, seed)?;
    println!("{}", paper::table3());
    println!("{measured}");
    println!("shape checks (mid-range N wins):");
    compare::report(&[
        compare::row_dominates(&measured, "N=4", "N=8"),
        compare::row_dominates(&measured, "N=6", "N=8"),
        compare::monotone_decreasing(&measured, "N=4", &["slow", "normal", "fast"]),
    ]);
    rd_bench::report_substrate()?;
    Ok(())
}
