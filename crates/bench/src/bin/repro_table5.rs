//! Regenerates Table V: ablation over decal shapes.
//!
//! ```text
//! cargo run --release -p rd-bench --bin repro_table5 -- [--scale paper|smoke] [--seed 42] [--audit] [--threads N] [--profile]
//! ```

use rd_bench::{arg, compare, flag, paper};
use road_decals::experiments::{prepare_environment, run_table5, Scale};

fn main() {
    rd_bench::setup_substrate();
    let scale: Scale = arg("--scale", "paper".to_owned())
        .parse()
        .expect("bad --scale");
    let seed: u64 = arg("--seed", 42);
    let mut env = prepare_environment(scale, seed).with_audit(flag("--audit"));
    println!(
        "victim detector class-accuracy: {:.2}\n",
        env.detector_accuracy
    );
    let measured = run_table5(&mut env, seed);
    println!("{}", paper::table5());
    println!("{measured}");
    println!("shape checks (star wins, circle loses):");
    compare::report(&[
        compare::row_dominates(&measured, "star", "triangle"),
        compare::row_dominates(&measured, "star", "circle"),
        compare::row_dominates(&measured, "star", "square"),
        compare::row_dominates(&measured, "triangle", "circle"),
    ]);
    rd_bench::report_substrate();
}
