//! # rd-bench
//!
//! Benchmarks and table/figure reproduction support for the
//! `road-decals` workspace.
//!
//! * [`paper`] — the DSN 2024 paper's reported numbers, transcribed as
//!   [`road_decals::Table`]s so the `repro_*` binaries can print
//!   paper-vs-measured side by side.
//! * [`compare`] — qualitative "shape" checks (orderings, crossovers)
//!   between a measured table and its paper counterpart.
//! * `benches/` — criterion benchmarks for each table's distinctive
//!   pipeline stage plus the substrate hot paths.
//! * `src/bin/repro_table*.rs` — binaries that regenerate each table.

#![warn(missing_docs)]

pub mod paper {
    //! The paper's reported values (PWC %, CWC ✓/✗), transcribed from
    //! Tables I–VI.

    use road_decals::{Cell, Table};

    fn c(pwc: u32, cwc: bool) -> Cell {
        Cell {
            pwc: pwc as f32 / 100.0,
            cwc,
        }
    }

    const TABLE1_COLS: [&str; 8] = [
        "fix",
        "slight rotation",
        "slow",
        "normal",
        "fast",
        "-15 deg",
        "0 deg",
        "+15 deg",
    ];
    const ABLATION_COLS: [&str; 6] = ["slow", "normal", "fast", "-15 deg", "0 deg", "+15 deg"];

    /// Table I as reported by the paper.
    pub fn table1() -> Table {
        let mut t = Table::new("Table I (paper)", &TABLE1_COLS);
        t.push_row("w/o Attack", vec![c(0, false); 8]);
        t.push_row(
            "Ours (w/ 3 consecutive frames)",
            vec![
                c(92, true),
                c(80, true),
                c(78, true),
                c(45, true),
                c(26, true),
                c(70, true),
                c(78, true),
                c(74, true),
            ],
        );
        t.push_row(
            "Ours (w/o 3 consecutive frames)",
            vec![
                c(62, true),
                c(56, true),
                c(53, true),
                c(38, true),
                c(20, false),
                c(58, true),
                c(53, true),
                c(53, true),
            ],
        );
        t.push_row(
            "[34]",
            vec![
                c(46, true),
                c(38, false),
                c(34, true),
                c(19, false),
                c(10, false),
                c(22, false),
                c(34, true),
                c(30, true),
            ],
        );
        t
    }

    /// Table II as reported by the paper.
    pub fn table2() -> Table {
        let mut t = Table::new("Table II (paper)", &TABLE1_COLS);
        t.push_row(
            "Ours",
            vec![
                c(100, true),
                c(100, true),
                c(100, true),
                c(87, true),
                c(40, false),
                c(64, true),
                c(87, true),
                c(68, true),
            ],
        );
        t
    }

    /// Table III as reported by the paper.
    pub fn table3() -> Table {
        let mut t = Table::new("Table III (paper)", &ABLATION_COLS);
        t.push_row(
            "N=2",
            vec![
                c(68, true),
                c(44, true),
                c(12, false),
                c(62, true),
                c(68, true),
                c(66, true),
            ],
        );
        t.push_row(
            "N=4",
            vec![
                c(78, true),
                c(45, true),
                c(26, true),
                c(70, true),
                c(78, true),
                c(74, true),
            ],
        );
        t.push_row(
            "N=6",
            vec![
                c(76, true),
                c(48, true),
                c(18, false),
                c(72, true),
                c(76, true),
                c(70, true),
            ],
        );
        t.push_row(
            "N=8",
            vec![
                c(68, true),
                c(40, true),
                c(18, false),
                c(60, true),
                c(66, true),
                c(59, true),
            ],
        );
        t
    }

    /// Table IV as reported by the paper.
    pub fn table4() -> Table {
        let mut t = Table::new("Table IV (paper)", &ABLATION_COLS);
        t.push_row(
            "(1)+(2)+(3)+(5)",
            vec![
                c(64, true),
                c(42, true),
                c(14, false),
                c(62, true),
                c(64, true),
                c(58, true),
            ],
        );
        t.push_row(
            "(1)+(2)+(4)+(5)",
            vec![
                c(78, true),
                c(45, true),
                c(26, true),
                c(70, true),
                c(78, true),
                c(76, true),
            ],
        );
        t.push_row(
            "(2)+(3)+(4)+(5)",
            vec![
                c(76, true),
                c(44, true),
                c(26, false),
                c(73, true),
                c(76, true),
                c(71, true),
            ],
        );
        t.push_row(
            "(1)+(3)+(4)+(5)",
            vec![
                c(72, true),
                c(48, true),
                c(26, false),
                c(72, true),
                c(72, true),
                c(70, true),
            ],
        );
        t.push_row(
            "(1)+(2)+(3)+(4)",
            vec![
                c(45, true),
                c(18, false),
                c(10, false),
                c(45, true),
                c(45, true),
                c(35, false),
            ],
        );
        t.push_row(
            "All",
            vec![
                c(78, true),
                c(45, true),
                c(26, false),
                c(70, true),
                c(78, true),
                c(74, true),
            ],
        );
        t
    }

    /// Table V as reported by the paper.
    pub fn table5() -> Table {
        let mut t = Table::new("Table V (paper)", &ABLATION_COLS);
        t.push_row(
            "triangle",
            vec![
                c(36, true),
                c(20, false),
                c(11, false),
                c(33, true),
                c(36, true),
                c(36, true),
            ],
        );
        t.push_row(
            "circle",
            vec![
                c(27, true),
                c(13, false),
                c(8, false),
                c(24, true),
                c(27, true),
                c(27, true),
            ],
        );
        t.push_row(
            "star",
            vec![
                c(78, true),
                c(45, true),
                c(26, true),
                c(70, true),
                c(78, true),
                c(76, true),
            ],
        );
        t.push_row(
            "square",
            vec![
                c(34, true),
                c(19, true),
                c(10, false),
                c(34, true),
                c(34, true),
                c(11, true),
            ],
        );
        t
    }

    /// Table VI as reported by the paper.
    pub fn table6() -> Table {
        let mut t = Table::new("Table VI (paper)", &ABLATION_COLS);
        t.push_row(
            "k=20",
            vec![
                c(12, false),
                c(8, false),
                c(0, false),
                c(10, false),
                c(12, false),
                c(11, false),
            ],
        );
        t.push_row(
            "k=40",
            vec![
                c(66, true),
                c(40, true),
                c(12, false),
                c(60, true),
                c(66, true),
                c(63, true),
            ],
        );
        t.push_row(
            "k=60",
            vec![
                c(78, true),
                c(45, true),
                c(26, true),
                c(70, true),
                c(78, true),
                c(74, true),
            ],
        );
        t.push_row(
            "k=80",
            vec![
                c(32, true),
                c(12, false),
                c(5, false),
                c(36, true),
                c(32, true),
                c(32, true),
            ],
        );
        t
    }
}

pub mod compare {
    //! Shape checks: does a measured table preserve the paper's
    //! qualitative structure (who wins, monotonicities, crossovers)?

    use road_decals::Table;

    /// A single qualitative check and its verdict.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ShapeCheck {
        /// Human-readable description.
        pub description: String,
        /// Whether the measured table satisfies it.
        pub holds: bool,
    }

    fn pwc(t: &Table, row: &str, col: &str) -> f32 {
        t.cell(row, col).map(|c| c.pwc).unwrap_or(f32::NAN)
    }

    /// Mean PWC of a row (NaN when the row is missing).
    pub fn mean_pwc(t: &Table, row: &str) -> f32 {
        let (_, cells) = match t.rows.iter().find(|(l, _)| l == row) {
            Some(r) => r,
            None => return f32::NAN,
        };
        cells.iter().map(|c| c.pwc).sum::<f32>() / cells.len() as f32
    }

    /// Row A beats row B on mean PWC.
    pub fn row_dominates(t: &Table, a: &str, b: &str) -> ShapeCheck {
        ShapeCheck {
            description: format!("'{a}' outperforms '{b}' on mean PWC"),
            holds: mean_pwc(t, a) > mean_pwc(t, b),
        }
    }

    /// PWC decreases monotonically across the given columns of one row.
    pub fn monotone_decreasing(t: &Table, row: &str, cols: &[&str]) -> ShapeCheck {
        let vals: Vec<f32> = cols.iter().map(|c| pwc(t, row, c)).collect();
        ShapeCheck {
            description: format!("'{row}' PWC decreases over {cols:?}"),
            holds: vals.windows(2).all(|w| w[0] >= w[1] - 1e-6),
        }
    }

    /// A row's mean PWC is (near) zero.
    pub fn row_near_zero(t: &Table, row: &str, tol: f32) -> ShapeCheck {
        ShapeCheck {
            description: format!("'{row}' PWC is ~0"),
            holds: mean_pwc(t, row) <= tol,
        }
    }

    /// Prints the verdicts and returns how many held.
    pub fn report(checks: &[ShapeCheck]) -> usize {
        let mut ok = 0;
        for c in checks {
            println!(
                "  [{}] {}",
                if c.holds { "PASS" } else { "MISS" },
                c.description
            );
            if c.holds {
                ok += 1;
            }
        }
        println!("  {}/{} shape checks hold", ok, checks.len());
        ok
    }
}

/// Parses a `--name value` style CLI argument, falling back to `default`
/// when the flag is absent.
///
/// # Errors
///
/// A flag that is present but missing its value, or whose value fails to
/// parse, is a hard error — the binaries exit nonzero instead of
/// silently running with the default.
pub fn arg<T>(name: &str, default: T) -> Result<T, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let args: Vec<String> = std::env::args().collect();
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(default);
    };
    let Some(v) = args.get(i + 1) else {
        return Err(format!("{name} expects a value"));
    };
    v.parse()
        .map_err(|e| format!("bad value '{v}' for {name}: {e}"))
}

/// Tests for the presence of a bare `--name` CLI switch.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parses the recovery switches every repro binary accepts:
/// `--checkpoint-every N` writes a checkpoint every N optimizer steps
/// (0 disables), `--checkpoint-dir DIR` picks where the per-stage files
/// live (default `out/ckpt`), and `--resume` restarts each training
/// stage from its checkpoint when one exists.
///
/// # Errors
///
/// Returns a message for malformed flag values.
pub fn recovery_from_args() -> Result<road_decals::experiments::ExperimentRecovery, String> {
    let checkpoint_every: u64 = arg("--checkpoint-every", 0)?;
    let dir: String = arg("--checkpoint-dir", "out/ckpt".to_owned())?;
    let resume = flag("--resume");
    let checkpoint_dir = (checkpoint_every > 0 || resume).then(|| std::path::PathBuf::from(dir));
    Ok(road_decals::experiments::ExperimentRecovery {
        checkpoint_every,
        checkpoint_dir,
        resume,
    })
}

/// Runs a repro binary's body under the job supervisor when the
/// supervision switches are present: `--deadline-secs N` bounds the
/// whole run's wall clock (enforced cooperatively at step and frame
/// boundaries) and `--max-retries N` re-runs the body after a crash,
/// each attempt on a fresh quarantine-isolated
/// [`rd_tensor::Runtime`]. Without either switch the body runs
/// directly on the caller's runtime, exactly as before.
///
/// The body should parse its own flags and call [`setup_substrate`] /
/// [`report_substrate`] itself, so thread caps and profiling apply to
/// the runtime the supervised attempt actually executes on.
///
/// # Errors
///
/// Returns the body's error, a deadline-exceeded message, or the last
/// failure after the retry budget is exhausted.
pub fn run_supervised<F>(name: &str, body: F) -> Result<(), String>
where
    F: FnMut() -> Result<(), String>,
{
    let deadline_secs: u64 = arg("--deadline-secs", 0)?;
    let max_retries: u32 = arg("--max-retries", 0)?;
    let threads: usize = arg("--threads", 0)?;
    road_decals::supervise_main(name, deadline_secs, max_retries, threads, body)
}

/// Applies the substrate switches every repro binary accepts:
/// `--threads N` caps the tensor worker pool (`0` = one worker per
/// host core) and `--profile` turns on the per-op wall-clock profiler.
///
/// # Errors
///
/// Returns a message for malformed flag values.
pub fn setup_substrate() -> Result<(), String> {
    let threads: usize = arg("--threads", 0)?;
    rd_tensor::parallel::set_max_threads(threads);
    if flag("--profile") {
        rd_tensor::profile::reset();
        rd_tensor::profile::set_enabled(true);
    }
    Ok(())
}

/// Renders the current runtime configuration as a JSON object fragment
/// — worker threads requested and effective (after the host clamp), the
/// execution tier, and the supervision knobs (`--deadline-secs`,
/// `--max-retries`) — so every benchmark section records the exact
/// runtime shape it measured under.
///
/// # Errors
///
/// Returns a message for malformed supervision flag values.
pub fn runtime_config_json() -> Result<String, String> {
    let deadline_secs: u64 = arg("--deadline-secs", 0)?;
    let max_retries: u32 = arg("--max-retries", 0)?;
    Ok(format!(
        "{{ \"threads_requested\": {}, \"threads_effective\": {}, \"tier\": \"{}\", \
         \"deadline_secs\": {}, \"max_retries\": {} }}",
        rd_tensor::parallel::requested_max_threads(),
        rd_tensor::parallel::max_threads(),
        rd_tensor::tier::current().label(),
        deadline_secs,
        max_retries,
    ))
}

/// Prints the per-op profiler report when `--profile` is on; with
/// `--profile-json PATH`, also writes the machine-readable histogram.
/// Call once at the end of `main`.
///
/// # Errors
///
/// Returns a message when the profile JSON cannot be written.
pub fn report_substrate() -> Result<(), String> {
    if !rd_tensor::profile::enabled() {
        return Ok(());
    }
    println!("\n{}", rd_tensor::profile::report_text());
    let path: String = arg("--profile-json", String::new())?;
    if !path.is_empty() {
        std::fs::write(&path, rd_tensor::profile::report_json())
            .map_err(|e| format!("cannot write profile json {path}: {e}"))?;
        println!("profile json written to {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_have_expected_shapes() {
        assert_eq!(paper::table1().rows.len(), 4);
        assert_eq!(paper::table1().columns.len(), 8);
        assert_eq!(paper::table4().rows.len(), 6);
        for t in [
            paper::table3(),
            paper::table4(),
            paper::table5(),
            paper::table6(),
        ] {
            assert_eq!(t.columns.len(), 6);
        }
    }

    #[test]
    fn paper_table1_encodes_the_headline_result() {
        let t = paper::table1();
        let ours = t.cell("Ours (w/ 3 consecutive frames)", "fix").unwrap();
        let baseline = t.cell("[34]", "fix").unwrap();
        assert!(ours.pwc > baseline.pwc);
        assert!((ours.pwc - 0.92).abs() < 1e-6);
    }

    #[test]
    fn shape_checks_on_paper_tables_pass() {
        let t = paper::table1();
        let checks = vec![
            compare::row_near_zero(&t, "w/o Attack", 0.01),
            compare::row_dominates(
                &t,
                "Ours (w/ 3 consecutive frames)",
                "Ours (w/o 3 consecutive frames)",
            ),
            compare::row_dominates(&t, "Ours (w/o 3 consecutive frames)", "[34]"),
            compare::monotone_decreasing(
                &t,
                "Ours (w/ 3 consecutive frames)",
                &["slow", "normal", "fast"],
            ),
        ];
        assert!(checks.iter().all(|c| c.holds), "{checks:?}");
    }

    #[test]
    fn star_dominates_in_paper_table5() {
        let t = paper::table5();
        for other in ["triangle", "circle", "square"] {
            assert!(compare::row_dominates(&t, "star", other).holds);
        }
    }
}
