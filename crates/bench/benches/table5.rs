//! Table V pipeline stage: anti-aliased mask rasterization per shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rd_vision::shapes::{mask, Shape};

fn bench_masks(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_shape_masks");
    for shape in Shape::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.name()),
            &shape,
            |b, &s| {
                b.iter(|| std::hint::black_box(mask(s, 32)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_masks);
criterion_main!(benches);
