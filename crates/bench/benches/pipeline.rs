//! End-to-end pipeline stages: detector inference and full evaluation
//! frames (render + channel + detect) — the figures' cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rd_detector::detect;
use rd_scene::{CameraPose, PhysicalChannel};
use rd_vision::shapes::{mask, Shape};
use rd_vision::Plane;
use road_decals::eval::{render_attacked_frame, EvalConfig};
use road_decals::experiments::{prepare_environment, Scale};
use road_decals::scenario::AttackScenario;
use road_decals::{attack::deploy, decal::Decal};

fn bench_pipeline(c: &mut Criterion) {
    let env = prepare_environment(Scale::Smoke, 42);
    let scenario = AttackScenario::parking_lot(Scale::Smoke.rig(), 4, 60, 16, 42);
    let decal = Decal::mono(&Plane::new(16, 16, 0.1), mask(Shape::Star, 16), Shape::Star);
    let decals = deploy(&decal, &scenario);
    let pose = CameraPose::at_distance(2.5);
    let cfg = EvalConfig {
        channel: PhysicalChannel::real_world(),
        ..EvalConfig::smoke(42)
    };
    let mut rng = StdRng::seed_from_u64(7);
    let frame = render_attacked_frame(&scenario, &decals, &pose, &cfg, 0.5, &mut rng);
    c.bench_function("detector_forward_one_frame", |b| {
        b.iter(|| {
            std::hint::black_box(detect(
                &env.detector,
                &env.params,
                std::slice::from_ref(&frame),
                0.35,
            ))
        });
    });
    c.bench_function("eval_frame_render_plus_detect", |b| {
        b.iter(|| {
            let f = render_attacked_frame(&scenario, &decals, &pose, &cfg, 0.5, &mut rng);
            std::hint::black_box(detect(&env.detector, &env.params, &[f], 0.35));
        });
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
