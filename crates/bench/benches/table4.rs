//! Table IV pipeline stage: EOT sampling + placement adjustment + map
//! construction per trick combination.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rd_eot::{adjust_placement, table4_combinations, EotConfig};
use rd_scene::CameraPose;
use road_decals::experiments::Scale;
use road_decals::scenario::AttackScenario;

fn bench_by_trickset(c: &mut Criterion) {
    let scenario = AttackScenario::parking_lot(Scale::Smoke.rig(), 4, 60, 16, 42);
    let pose = CameraPose::at_distance(2.5);
    let mut group = c.benchmark_group("table4_eot_warp");
    for tricks in table4_combinations() {
        let cfg = EotConfig::with_tricks(tricks);
        group.bench_with_input(
            BenchmarkId::from_parameter(tricks.to_string()),
            &cfg,
            |b, cfg| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| {
                    let ts = cfg.sample(&mut rng);
                    let adj = adjust_placement(scenario.decal_placements[0], &ts, 16);
                    std::hint::black_box(scenario.decal_map(0, &pose, Some(adj)));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_by_trickset);
criterion_main!(benches);
