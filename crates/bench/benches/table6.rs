//! Table VI pipeline stage: decal-to-image map construction per size k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rd_scene::CameraPose;
use road_decals::experiments::Scale;
use road_decals::scenario::AttackScenario;

fn bench_by_k(c: &mut Criterion) {
    let pose = CameraPose::at_distance(2.5);
    let mut group = c.benchmark_group("table6_decal_map_by_k");
    for k in [20usize, 40, 60, 80] {
        let scenario = AttackScenario::parking_lot(Scale::Smoke.rig(), 4, k, 16, 42);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| std::hint::black_box(scenario.decal_map(0, &pose, None)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_k);
criterion_main!(benches);
