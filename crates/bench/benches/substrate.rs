//! Substrate hot paths: GEMM, convolution forward/backward, warps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rd_tensor::{Graph, Tensor};
use rd_vision::geometry::Mat3;
use rd_vision::warp::{homography, resize};
use std::sync::Arc;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let a = Tensor::randn(&mut rng, &[n, n], 1.0);
        let b = Tensor::randn(&mut rng, &[n, n], 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x0 = Tensor::randn(&mut rng, &[1, 16, 48, 48], 1.0);
    let w0 = Tensor::randn(&mut rng, &[32, 16, 3, 3], 0.2);
    c.bench_function("conv2d_forward_16x48x48_to_32", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let w = g.input(w0.clone());
            std::hint::black_box(g.conv2d(x, w, None, 1, 1));
        });
    });
    c.bench_function("conv2d_fwd_bwd_16x48x48_to_32", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let w = g.input(w0.clone());
            let y = g.conv2d(x, w, None, 1, 1);
            let loss = g.sum_all(y);
            std::hint::black_box(g.backward(loss));
        });
    });
}

fn bench_warps(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let img = Tensor::randn(&mut rng, &[1, 3, 96, 96], 1.0);
    let map: Arc<_> = resize((96, 96), (96, 96)).into();
    c.bench_function("warp_resize_96", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let x = g.input(img.clone());
            std::hint::black_box(g.warp(x, &map));
        });
    });
    let h = Mat3::translation(20.0, 10.0).mul(&Mat3::perspective(0.001, -0.002));
    c.bench_function("build_homography_map_160_to_96", |bench| {
        bench.iter(|| std::hint::black_box(homography((160, 160), (96, 96), &h).unwrap()));
    });
}

criterion_group!(benches, bench_matmul, bench_conv2d, bench_warps);
criterion_main!(benches);
