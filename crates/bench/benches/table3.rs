//! Table III pipeline stage: compositing cost as the decal count N grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rd_scene::{CameraPose, PhysicalChannel};
use rd_vision::shapes::{mask, Shape};
use rd_vision::Plane;
use road_decals::eval::{render_attacked_frame, EvalConfig};
use road_decals::experiments::Scale;
use road_decals::scenario::AttackScenario;
use road_decals::{attack::deploy, decal::Decal};

fn bench_by_n(c: &mut Criterion) {
    let pose = CameraPose::at_distance(2.5);
    let cfg = EvalConfig {
        channel: PhysicalChannel::digital(),
        ..EvalConfig::smoke(42)
    };
    let mut group = c.benchmark_group("table3_composite_by_n");
    for n in [2usize, 4, 6, 8] {
        let scenario = AttackScenario::parking_lot(Scale::Smoke.rig(), n, 60, 16, 42);
        let decal = Decal::mono(&Plane::new(16, 16, 0.1), mask(Shape::Star, 16), Shape::Star);
        let decals = deploy(&decal, &scenario);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                std::hint::black_box(render_attacked_frame(
                    &scenario, &decals, &pose, &cfg, 0.0, &mut rng,
                ));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_n);
criterion_main!(benches);
