//! Table I pipeline stages: one optimization step of our GAN attack vs
//! one step of the colored baseline [34], at smoke scale.

use criterion::{criterion_group, criterion_main, Criterion};
use road_decals::experiments::{prepare_environment, Scale};
use road_decals::{
    attack::{train_decal_attack, AttackConfig},
    baseline::{train_baseline_patch, BaselineConfig},
    scenario::AttackScenario,
};

fn bench_attack_steps(c: &mut Criterion) {
    let mut env = prepare_environment(Scale::Smoke, 42);
    let scenario = AttackScenario::parking_lot(Scale::Smoke.rig(), 6, 60, 16, 42);
    let mut group = c.benchmark_group("table1_steps");
    group.sample_size(10);
    group.bench_function("ours_one_step", |b| {
        b.iter(|| {
            let cfg = AttackConfig {
                steps: 1,
                clips_per_batch: 2,
                ..AttackConfig::smoke()
            };
            std::hint::black_box(train_decal_attack(
                &scenario,
                &env.detector,
                &mut env.params,
                &cfg,
            ));
        });
    });
    group.bench_function("baseline_one_step", |b| {
        b.iter(|| {
            let cfg = BaselineConfig {
                steps: 1,
                batch_frames: 6,
                ..BaselineConfig::smoke()
            };
            std::hint::black_box(train_baseline_patch(
                &scenario,
                &env.detector,
                &mut env.params,
                &cfg,
            ));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_attack_steps);
criterion_main!(benches);
