//! Table II pipeline stage: rendering + capture channel per environment
//! (digital vs simulated vs real-world), which is what separates Tables I
//! and II.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rd_scene::{CameraPose, PhysicalChannel};
use rd_vision::shapes::{mask, Shape};
use rd_vision::Plane;
use road_decals::eval::{render_attacked_frame, EvalConfig};
use road_decals::experiments::Scale;
use road_decals::scenario::AttackScenario;
use road_decals::{attack::deploy, decal::Decal};

fn bench_channels(c: &mut Criterion) {
    let scenario = AttackScenario::parking_lot(Scale::Smoke.rig(), 4, 60, 16, 42);
    let decal = Decal::mono(&Plane::new(16, 16, 0.1), mask(Shape::Star, 16), Shape::Star);
    let decals = deploy(&decal, &scenario);
    let pose = CameraPose::at_distance(2.5);
    let mut group = c.benchmark_group("table2_channel_frame");
    for (name, channel) in [
        ("digital", PhysicalChannel::digital()),
        ("simulated", PhysicalChannel::simulated()),
        ("real_world", PhysicalChannel::real_world()),
    ] {
        let cfg = EvalConfig {
            channel,
            ..EvalConfig::smoke(42)
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                std::hint::black_box(render_attacked_frame(
                    &scenario, &decals, &pose, cfg, 0.5, &mut rng,
                ));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_channels);
criterion_main!(benches);
