//! Checked output-shape arithmetic for conv/pool lowerings.
//!
//! Model code used to compute declared conv output dims with
//! `saturating_sub`, so a kernel larger than its (padded) input
//! silently produced `ho = 1`/`wo = 1` instead of failing — the bogus
//! shape then surfaced far downstream as a buffer-length mismatch (or
//! not at all). These helpers make the underflow a descriptive error
//! at the declare site; `rd_analysis`'s shape validator additionally
//! flags any declared zero-sized dimension.

/// Checked conv/pool output dimension along one spatial axis:
/// `(in + 2·pad − kernel) / stride + 1`.
///
/// Returns a descriptive error when `kernel` is zero or larger than
/// the padded input, or when `stride` is zero — the cases the old
/// saturating arithmetic silently folded into a bogus `1`.
pub fn try_conv_out_dim(
    axis: &str,
    in_dim: usize,
    kernel: usize,
    pad: usize,
    stride: usize,
) -> Result<usize, String> {
    if stride == 0 {
        return Err(format!("conv {axis}: stride must be positive"));
    }
    if kernel == 0 {
        return Err(format!("conv {axis}: kernel must be positive"));
    }
    let padded = in_dim + 2 * pad;
    if padded < kernel {
        return Err(format!(
            "conv {axis}: kernel {kernel} larger than padded input {padded} \
             (input {in_dim} + 2·pad {pad}) — output dimension underflows"
        ));
    }
    Ok((padded - kernel) / stride + 1)
}

/// [`try_conv_out_dim`] for declare sites with no error channel.
///
/// # Panics
///
/// Panics with the descriptive shape error on underflow.
pub fn conv_out_dim(axis: &str, in_dim: usize, kernel: usize, pad: usize, stride: usize) -> usize {
    match try_conv_out_dim(axis, in_dim, kernel, pad, stride) {
        Ok(d) => d,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_out_dim_matches_reference_formula() {
        assert_eq!(conv_out_dim("h", 13, 3, 1, 1), 13);
        assert_eq!(conv_out_dim("h", 13, 1, 0, 1), 13);
        assert_eq!(conv_out_dim("h", 13, 2, 0, 2), 6);
        assert_eq!(conv_out_dim("w", 32, 3, 1, 2), 16);
        assert_eq!(conv_out_dim("h", 3, 3, 0, 1), 1);
    }

    #[test]
    fn underflow_is_a_descriptive_error_not_a_bogus_one() {
        let err = try_conv_out_dim("h", 2, 5, 1, 1).unwrap_err();
        assert!(err.contains("underflows"), "{err}");
        assert!(err.contains("kernel 5"), "{err}");
        assert!(try_conv_out_dim("w", 0, 2, 0, 2).is_err());
        assert!(try_conv_out_dim("h", 4, 3, 0, 0).is_err());
        assert!(try_conv_out_dim("h", 4, 0, 0, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "output dimension underflows")]
    fn panicking_form_reports_the_underflow() {
        conv_out_dim("h", 1, 4, 1, 1);
    }
}
