//! Compiled training step: a gradient-capable plan/executor over the
//! shape-only `declare` lowering.
//!
//! PR 4's [`crate::infer`] removed the tape's per-node overhead from
//! grad-free evaluation; this module does the same for the training
//! hot path. [`TrainPlan::compile`] lowers a declare tape into a flat
//! op list whose `conv2d → {add_bias_channel | batch_norm2d_train |
//! batch_norm2d_eval} → leaky_relu` chains are fused, and
//! [`TrainPlan::forward`] / [`TrainStep::backward`] execute it
//! full-batch with arena-backed activation, gradient and auxiliary
//! buffers.
//!
//! What the compiled step saves over the tape:
//!
//! - **Activation-column caching.** The tape's conv backward re-runs
//!   `im2col` per sample, recomputing the exact columns the forward
//!   built and threw away. The plan's forward writes them straight
//!   into a per-conv cache (greedy in op order, behind a configurable
//!   activation-memory budget) and the grad-weight GEMM reuses them.
//! - **No per-node bookkeeping.** No backward closures, no per-node
//!   `Tensor` allocation, no metadata pushes; buffers are arena
//!   recycled across steps.
//! - **Fused backward chains.** The leaky and batch-norm gradient
//!   transforms run in place on the output-slot gradient buffer
//!   instead of allocating `zip_map` temporaries per node.
//! - **Skippable work.** When parameter gradients are not needed (the
//!   frozen detector inside the attack loop) the backward skips
//!   `im2col` + grad-weight GEMMs entirely — about two thirds of the
//!   conv backward — and eval batch-norm reduces to `gx += g*scale`.
//!
//! ## Bitwise equivalence with the tape
//!
//! Every kernel the executor calls is the *same function* the tape
//! closures call ([`crate::conv`]'s GEMM/im2col/col2im family,
//! [`crate::bnorm`]'s `bn_*` kernels, [`crate::pool`]'s batched
//! fill/scatter kernels), invoked full-batch in the same op order with
//! the same fixed [`crate::parallel::groups_for`] partition, and the
//! backward walks ops in exact reverse tape order accumulating into
//! zeroed buffers just like [`crate::Graph::backward`]. The only
//! deltas are `±0.0` signs from dropped `0.0 + x` folds, which the
//! downstream scatter-adds re-fold before any gradient escapes — so
//! compiled-vs-tape identity and 1-vs-N-thread determinism both hold
//! bit for bit (asserted in tests and gated in `bench_substrate`).
//!
//! ## Execution tiers
//!
//! The bitwise contract above is [`crate::tier::Tier::Reference`], the
//! default. Under [`crate::tier::Tier::Fast`] the three conv GEMMs
//! (forward, grad-weight, grad-input) and the standalone leaky
//! epilogue route through the [`crate::simd`] f32x8 kernels instead,
//! trading bitwise tape identity for the certified-ulp contract. The
//! tier is latched once in [`TrainPlan::forward`] and carried on the
//! [`TrainStep`], so one step's forward and backward always agree.

use std::sync::Mutex;

use crate::arena;
use crate::bnorm::{
    bn_batch_stats, bn_eval_backward, bn_eval_backward_gx_only, bn_eval_forward, bn_ivstd,
    bn_train_backward_gx, bn_train_backward_sums, bn_train_forward, BatchStats,
};
use crate::conv::{col2im, conv_gemm, gemm_nt, gemm_tn_over, im2col};
use crate::graph::{Graph, VarId};
use crate::params::{ParamId, ParamSet};
use crate::plan_meta::{
    simple_op, ConvGeom, ParamRef, ParamRole, PlanKind, PlanMeta, PlanOpMeta, SlotMeta,
};
use crate::pool::{max_pool_backward, max_pool_forward, upsample2x_backward, upsample2x_forward};
use crate::profile;
use crate::runtime::{self, Runtime};
use crate::simd;
use crate::tensor::Tensor;
use crate::tier::{self, Tier};

/// Default im2col column-cache budget: 256 MiB of activation memory.
pub const DEFAULT_COL_BUDGET: usize = 256 << 20;

/// Batch-norm half of a fused conv: either training mode (batch
/// statistics, running-stat ids reported back for the momentum fold)
/// or eval mode (running statistics read from the [`ParamSet`]).
#[derive(Debug, Clone)]
struct TBn {
    gamma: ParamId,
    beta: ParamId,
    rmean: ParamId,
    rvar: ParamId,
    eps: f32,
    train: bool,
}

/// One fused convolution: conv + optional bias + optional batch norm +
/// optional leaky activation (bias and bn are mutually exclusive, as
/// in the declare lowering).
#[derive(Debug, Clone)]
struct TConv {
    x: usize,
    out: usize,
    w: ParamId,
    bias: Option<ParamId>,
    bn: Option<TBn>,
    leaky: Option<f32>,
    stride: usize,
    pad: usize,
    cin: usize,
    hin: usize,
    win: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    ho: usize,
    wo: usize,
    scope: String,
    /// Statically true when no later op consumes `x` (and `x` is not a
    /// plan root), so the backward can `col2im`-scatter straight into
    /// the input-slot gradient instead of a temp + add pass.
    gx_direct: bool,
}

impl TConv {
    fn fused_name(&self) -> String {
        let mut name = String::from("conv");
        if self.bias.is_some() {
            name.push_str("_bias");
        }
        if self.bn.is_some() {
            name.push_str("_bn");
        }
        if self.leaky.is_some() {
            name.push_str("_leaky");
        }
        name
    }
}

/// Executable op kinds. Slot indices refer to full-batch activation /
/// gradient buffers in a [`TrainStep`].
#[derive(Debug, Clone)]
enum TOp {
    Conv(TConv),
    MaxPool {
        x: usize,
        out: usize,
        k: usize,
        stride: usize,
        c: usize,
        h: usize,
        w: usize,
        ho: usize,
        wo: usize,
    },
    Upsample2x {
        x: usize,
        out: usize,
        c: usize,
        h: usize,
        w: usize,
    },
    Concat {
        a: usize,
        b: usize,
        out: usize,
        ca: usize,
        cb: usize,
        hw: usize,
    },
    Leaky {
        x: usize,
        out: usize,
        alpha: f32,
        len: usize,
    },
}

impl TOp {
    /// Slots this op reads in its forward pass (= slots its backward
    /// writes gradients into).
    fn reads(&self) -> [Option<usize>; 2] {
        match self {
            TOp::Conv(c) => [Some(c.x), None],
            TOp::MaxPool { x, .. } | TOp::Upsample2x { x, .. } | TOp::Leaky { x, .. } => {
                [Some(*x), None]
            }
            TOp::Concat { a, b, .. } => [Some(*a), Some(*b)],
        }
    }
}

#[derive(Debug, Clone)]
struct TPlanOp {
    kind: TOp,
    /// Forward profile key (`train/<scope>/<fused-op>`).
    path: String,
    /// Backward profile key (`train/<scope>/<fused-op>_bwd`).
    path_bwd: String,
}

/// How a tape node maps into the plan while compiling.
#[derive(Debug, Clone, Copy)]
enum NodeRef {
    Param(ParamId),
    Slot(usize),
}

/// A compiled training step: a flat, topologically ordered op list
/// with fused forward/backward kernels, derived from a shape-only
/// [`Graph::declare`] lowering at batch 1 and executable at any batch
/// size.
#[derive(Debug)]
pub struct TrainPlan {
    ops: Vec<TPlanOp>,
    /// Per-sample flat length of each activation slot.
    slot_lens: Vec<usize>,
    /// Per-sample shape of each activation slot (batch dim stripped).
    slot_shapes: Vec<Vec<usize>>,
    input_slot: usize,
    input_shape: Vec<usize>,
    outputs: Vec<usize>,
    /// Largest per-sample raw conv output any bn-fused conv stages.
    max_bn_raw: usize,
    /// im2col column-cache budget in bytes.
    col_budget: usize,
}

impl TrainPlan {
    /// Compiles a declare-lowered tape (built at batch 1) into a
    /// training plan producing the values of `roots`, in order.
    ///
    /// Fusion is peephole over the tape order, exactly as in
    /// [`crate::InferPlan::compile`], with `batch_norm2d_train`
    /// declares (carrying `rmean_pid`/`rvar_pid`/`eps_bits` attrs)
    /// accepted alongside the eval form. A leaky activation only fuses
    /// into its conv when `alpha > 0`, the condition under which the
    /// backward may reconstruct the input's sign from the fused
    /// output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending node when the tape
    /// contains an op the executor does not support, is missing
    /// required attrs, or was not declared at batch 1.
    pub fn compile(g: &Graph, roots: &[VarId]) -> Result<TrainPlan, String> {
        let metas = g.metas();
        let mut refs: Vec<Option<NodeRef>> = vec![None; metas.len()];
        let mut ops: Vec<TPlanOp> = Vec::new();
        let mut slot_lens: Vec<usize> = Vec::new();
        let mut slot_shapes: Vec<Vec<usize>> = Vec::new();
        let mut input: Option<usize> = None;

        fn new_slot(
            lens: &mut Vec<usize>,
            shapes: &mut Vec<Vec<usize>>,
            shape: &[usize],
            path: &str,
        ) -> Result<usize, String> {
            if shape.first() != Some(&1) {
                return Err(format!(
                    "train compile at {path}: plans must be declared at batch 1, got {shape:?}"
                ));
            }
            let per: Vec<usize> = shape[1..].to_vec();
            lens.push(per.iter().product());
            shapes.push(per);
            Ok(shapes.len() - 1)
        }

        for (idx, meta) in metas.iter().enumerate() {
            let fail = |msg: String| Err(format!("train compile at {}: {msg}", meta.path()));
            let slot_of = |refs: &[Option<NodeRef>], pi: usize| -> Result<usize, String> {
                match refs[meta.parents[pi].index()] {
                    Some(NodeRef::Slot(s)) => Ok(s),
                    _ => Err(format!(
                        "train compile at {}: parent {pi} is not a value node",
                        meta.path()
                    )),
                }
            };
            let param_of = |refs: &[Option<NodeRef>], pi: usize| -> Result<ParamId, String> {
                match refs[meta.parents[pi].index()] {
                    Some(NodeRef::Param(p)) => Ok(p),
                    _ => Err(format!(
                        "train compile at {}: parent {pi} is not a param node",
                        meta.path()
                    )),
                }
            };
            let attr = |name: &str| -> Result<usize, String> {
                meta.attr(name).ok_or(format!(
                    "train compile at {}: missing '{name}' attr",
                    meta.path()
                ))
            };

            match meta.op {
                "input" => {
                    if input.is_some() {
                        return fail("plan supports a single input".into());
                    }
                    let s = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    input = Some(s);
                    refs[idx] = Some(NodeRef::Slot(s));
                }
                "param" => {
                    refs[idx] = Some(NodeRef::Param(ParamId(attr("pid")?)));
                }
                "conv2d" => {
                    let x = slot_of(&refs, 0)?;
                    let w = param_of(&refs, 1)?;
                    let ws = &metas[meta.parents[1].index()].expected_shape;
                    let (cin, hin, win) = {
                        let xs = &slot_shapes[x];
                        (xs[0], xs[1], xs[2])
                    };
                    let (cout, kh, kw) = (ws[0], ws[2], ws[3]);
                    let out = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    let (ho, wo) = (slot_shapes[out][1], slot_shapes[out][2]);
                    ops.push(TPlanOp {
                        kind: TOp::Conv(TConv {
                            x,
                            out,
                            w,
                            bias: None,
                            bn: None,
                            leaky: None,
                            stride: attr("stride")?,
                            pad: attr("pad")?,
                            cin,
                            hin,
                            win,
                            cout,
                            kh,
                            kw,
                            ho,
                            wo,
                            scope: meta.scope.clone(),
                            gx_direct: false,
                        }),
                        path: String::new(),
                        path_bwd: String::new(),
                    });
                    refs[idx] = Some(NodeRef::Slot(out));
                }
                "add_bias_channel" => {
                    let y = slot_of(&refs, 0)?;
                    let b = param_of(&refs, 1)?;
                    match ops.last_mut().map(|o| &mut o.kind) {
                        Some(TOp::Conv(c))
                            if c.out == y
                                && c.bias.is_none()
                                && c.bn.is_none()
                                && c.leaky.is_none() =>
                        {
                            c.bias = Some(b);
                            refs[idx] = Some(NodeRef::Slot(y));
                        }
                        _ => return fail("add_bias_channel must directly follow its conv".into()),
                    }
                }
                "batch_norm2d_eval" | "batch_norm2d_train" => {
                    let y = slot_of(&refs, 0)?;
                    let gamma = param_of(&refs, 1)?;
                    let beta = param_of(&refs, 2)?;
                    let bn = TBn {
                        gamma,
                        beta,
                        rmean: ParamId(attr("rmean_pid")?),
                        rvar: ParamId(attr("rvar_pid")?),
                        eps: f32::from_bits(attr("eps_bits")? as u32),
                        train: meta.op == "batch_norm2d_train",
                    };
                    match ops.last_mut().map(|o| &mut o.kind) {
                        Some(TOp::Conv(c))
                            if c.out == y
                                && c.bias.is_none()
                                && c.bn.is_none()
                                && c.leaky.is_none() =>
                        {
                            c.bn = Some(bn);
                            refs[idx] = Some(NodeRef::Slot(y));
                        }
                        _ => return fail("batch norm must directly follow its conv".into()),
                    }
                }
                "leaky_relu" => {
                    let x = slot_of(&refs, 0)?;
                    let alpha = f32::from_bits(attr("alpha_bits")? as u32);
                    match ops.last_mut().map(|o| &mut o.kind) {
                        Some(TOp::Conv(c)) if c.out == x && c.leaky.is_none() && alpha > 0.0 => {
                            c.leaky = Some(alpha);
                            refs[idx] = Some(NodeRef::Slot(x));
                        }
                        _ => {
                            let out = new_slot(
                                &mut slot_lens,
                                &mut slot_shapes,
                                &meta.expected_shape,
                                &meta.path(),
                            )?;
                            let len = slot_lens[out];
                            let path = format!("train/{}", meta.path());
                            ops.push(TPlanOp {
                                kind: TOp::Leaky { x, out, alpha, len },
                                path_bwd: format!("{path}_bwd"),
                                path,
                            });
                            refs[idx] = Some(NodeRef::Slot(out));
                        }
                    }
                }
                "max_pool2d" => {
                    let x = slot_of(&refs, 0)?;
                    let xs = slot_shapes[x].clone();
                    let out = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    let path = format!("train/{}", meta.path());
                    ops.push(TPlanOp {
                        kind: TOp::MaxPool {
                            x,
                            out,
                            k: attr("k")?,
                            stride: attr("stride")?,
                            c: xs[0],
                            h: xs[1],
                            w: xs[2],
                            ho: slot_shapes[out][1],
                            wo: slot_shapes[out][2],
                        },
                        path_bwd: format!("{path}_bwd"),
                        path,
                    });
                    refs[idx] = Some(NodeRef::Slot(out));
                }
                "upsample_nearest2x" => {
                    let x = slot_of(&refs, 0)?;
                    let xs = slot_shapes[x].clone();
                    let out = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    let path = format!("train/{}", meta.path());
                    ops.push(TPlanOp {
                        kind: TOp::Upsample2x {
                            x,
                            out,
                            c: xs[0],
                            h: xs[1],
                            w: xs[2],
                        },
                        path_bwd: format!("{path}_bwd"),
                        path,
                    });
                    refs[idx] = Some(NodeRef::Slot(out));
                }
                "concat_channels" => {
                    let a = slot_of(&refs, 0)?;
                    let b = slot_of(&refs, 1)?;
                    let (asl, bsl) = (slot_shapes[a].clone(), slot_shapes[b].clone());
                    if asl[1..] != bsl[1..] {
                        return fail(format!("concat spatial mismatch {asl:?} vs {bsl:?}"));
                    }
                    let out = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    let path = format!("train/{}", meta.path());
                    ops.push(TPlanOp {
                        kind: TOp::Concat {
                            a,
                            b,
                            out,
                            ca: asl[0],
                            cb: bsl[0],
                            hw: asl[1] * asl[2],
                        },
                        path_bwd: format!("{path}_bwd"),
                        path,
                    });
                    refs[idx] = Some(NodeRef::Slot(out));
                }
                "reshape" => {
                    // flat per-sample data is unchanged; alias the slot
                    // (gradients alias it too, which is exactly right)
                    let x = slot_of(&refs, 0)?;
                    let len: usize = meta.expected_shape[1..].iter().product();
                    if len != slot_lens[x] {
                        return fail(format!(
                            "reshape changes per-sample length {} -> {len}",
                            slot_lens[x]
                        ));
                    }
                    refs[idx] = Some(NodeRef::Slot(x));
                }
                other => return fail(format!("unsupported op '{other}'")),
            }
        }

        let input_slot = input.ok_or("train compile: tape has no input node".to_string())?;
        let mut outputs = Vec::with_capacity(roots.len());
        for &r in roots {
            match refs[r.index()] {
                Some(NodeRef::Slot(s)) => outputs.push(s),
                _ => return Err(format!("train compile: root {} is not a value", r.index())),
            }
        }

        // finalize fused conv profile paths and the static direct-vs-temp
        // input-gradient routing now fusion/consumer state is known
        let mut max_bn_raw = 0usize;
        for oi in 0..ops.len() {
            let (later_reads, is_root);
            let x = match &ops[oi].kind {
                TOp::Conv(c) => c.x,
                _ => continue,
            };
            later_reads = ops[oi + 1..]
                .iter()
                .any(|o| o.kind.reads().into_iter().flatten().any(|s| s == x));
            is_root = outputs.contains(&x);
            if let TOp::Conv(c) = &mut ops[oi].kind {
                c.gx_direct = !later_reads && !is_root;
                if c.bn.is_some() {
                    max_bn_raw = max_bn_raw.max(c.cout * c.ho * c.wo);
                }
                let fused = c.fused_name();
                ops[oi].path = if c.scope.is_empty() {
                    format!("train/{fused}")
                } else {
                    format!("train/{}/{fused}", c.scope)
                };
                ops[oi].path_bwd = format!("{}_bwd", ops[oi].path);
            }
        }

        Ok(TrainPlan {
            ops,
            input_shape: slot_shapes[input_slot].clone(),
            slot_lens,
            slot_shapes,
            input_slot,
            outputs,
            max_bn_raw,
            col_budget: DEFAULT_COL_BUDGET,
        })
    }

    /// Number of (fused) ops in the plan.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Per-sample input shape (batch dimension stripped).
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Number of plan roots.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Lifts the plan into a plain-data [`PlanMeta`] description (op
    /// list with slot defs/uses, parameter references, fusion
    /// composition, conv geometry and `gx_direct` routing) for static
    /// analysis. Nothing is executed; the returned value owns all its
    /// data.
    pub fn meta(&self) -> PlanMeta {
        let ops = self
            .ops
            .iter()
            .map(|op| match &op.kind {
                TOp::Conv(c) => {
                    let mut params = vec![ParamRef {
                        role: ParamRole::ConvWeight,
                        index: c.w.index(),
                    }];
                    let mut fused = vec!["conv2d".to_string()];
                    if let Some(b) = c.bias {
                        params.push(ParamRef {
                            role: ParamRole::ConvBias,
                            index: b.index(),
                        });
                        fused.push("add_bias_channel".to_string());
                    }
                    let mut bn_eps = None;
                    if let Some(bn) = &c.bn {
                        for (role, pid) in [
                            (ParamRole::BnGamma, bn.gamma),
                            (ParamRole::BnBeta, bn.beta),
                            (ParamRole::BnRunningMean, bn.rmean),
                            (ParamRole::BnRunningVar, bn.rvar),
                        ] {
                            params.push(ParamRef {
                                role,
                                index: pid.index(),
                            });
                        }
                        fused.push(
                            if bn.train {
                                "batch_norm2d_train"
                            } else {
                                "batch_norm2d_eval"
                            }
                            .to_string(),
                        );
                        bn_eps = Some(bn.eps);
                    }
                    if c.leaky.is_some() {
                        fused.push("leaky_relu".to_string());
                    }
                    PlanOpMeta {
                        name: c.fused_name(),
                        path: op.path.clone(),
                        reads: vec![c.x],
                        writes: vec![c.out],
                        params,
                        fused,
                        conv: Some(ConvGeom {
                            stride: c.stride,
                            pad: c.pad,
                            cin: c.cin,
                            hin: c.hin,
                            win: c.win,
                            cout: c.cout,
                            kh: c.kh,
                            kw: c.kw,
                            ho: c.ho,
                            wo: c.wo,
                        }),
                        linear: None,
                        alpha: c.leaky,
                        bn_train: c.bn.as_ref().map(|bn| bn.train),
                        bn_eps,
                        gx_direct: Some(c.gx_direct),
                    }
                }
                TOp::MaxPool { x, out, .. } => simple_op("max_pool2d", &op.path, *x, *out),
                TOp::Upsample2x { x, out, .. } => {
                    simple_op("upsample_nearest2x", &op.path, *x, *out)
                }
                TOp::Concat { a, b, out, .. } => PlanOpMeta {
                    reads: vec![*a, *b],
                    ..simple_op("concat_channels", &op.path, *a, *out)
                },
                TOp::Leaky { x, out, alpha, .. } => PlanOpMeta {
                    alpha: Some(*alpha),
                    ..simple_op("leaky_relu", &op.path, *x, *out)
                },
            })
            .collect();
        PlanMeta {
            kind: PlanKind::Train,
            ops,
            slots: self
                .slot_lens
                .iter()
                .zip(&self.slot_shapes)
                .map(|(&len, shape)| SlotMeta {
                    len,
                    shape: shape.clone(),
                })
                .collect(),
            input_slot: self.input_slot,
            outputs: self.outputs.clone(),
            col_budget: Some(self.col_budget),
        }
    }

    /// Sets the im2col column-cache budget in bytes. Convs are cached
    /// greedily in op order while their full-batch column matrices fit;
    /// a budget of 0 disables the cache (the backward then recomputes
    /// `im2col` per sample, exactly like the tape).
    pub fn set_col_budget(&mut self, bytes: usize) {
        self.col_budget = bytes;
    }

    /// Runs the forward pass over a batched input `[N, ...input_shape]`
    /// and returns the in-flight step holding activations and
    /// auxiliaries for [`TrainStep::backward`].
    ///
    /// `need_param_grads = false` (frozen network, e.g. the detector
    /// inside the attack loop) skips everything only parameter
    /// gradients need: the column cache, eval-bn raw staging and, in
    /// the backward, the grad-weight GEMMs.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the plan's input shape or the
    /// batch is empty.
    pub fn forward<'p>(
        &'p self,
        ps: &ParamSet,
        input: &Tensor,
        need_param_grads: bool,
    ) -> TrainStep<'p> {
        assert!(
            !input.shape().is_empty() && input.shape()[1..] == self.input_shape[..],
            "train input {:?} does not match plan input [N, {:?}]",
            input.shape(),
            self.input_shape
        );
        let n = input.shape()[0];
        assert!(n > 0, "train batch must be non-empty");
        // latched once and carried on the step: forward and backward of
        // one step always run the same kernel tier
        let fast = tier::current() == Tier::Fast;

        let mut vals: Vec<Vec<f32>> = self.slot_lens.iter().map(|&l| arena::take(n * l)).collect();
        vals[self.input_slot].copy_from_slice(input.data());
        let mut aux: Vec<OpAux> = self.ops.iter().map(|_| OpAux::default()).collect();
        let mut bn_stats: Vec<(ParamId, ParamId, BatchStats)> = Vec::new();

        // Greedy column-cache allocation in op order under the budget.
        let mut cols_cache: Vec<Option<Vec<f32>>> = self.ops.iter().map(|_| None).collect();
        if need_param_grads {
            let mut left = self.col_budget / std::mem::size_of::<f32>();
            for (oi, op) in self.ops.iter().enumerate() {
                if let TOp::Conv(c) = &op.kind {
                    let elems = n * c.cin * c.kh * c.kw * c.ho * c.wo;
                    if elems <= left {
                        left -= elems;
                        cols_cache[oi] = Some(arena::take(elems));
                    }
                }
            }
        }

        // Shared staging buffer for raw conv outputs feeding a batch norm.
        let mut raw = arena::take(n * self.max_bn_raw);

        for (oi, op) in self.ops.iter().enumerate() {
            let t0 = profile::enabled().then(std::time::Instant::now);
            match &op.kind {
                TOp::Conv(c) => {
                    let (ckk, howo, o) = (c.cin * c.kh * c.kw, c.ho * c.wo, c.cout);
                    let in_len = c.cin * c.hin * c.win;
                    let mut out = std::mem::take(&mut vals[c.out]);
                    // Eval-bn backward needs the raw conv output when
                    // parameter gradients are requested; keep a per-op
                    // copy then instead of the shared scratch.
                    let keep_raw = matches!(&c.bn, Some(bn) if !bn.train) && need_param_grads;
                    if keep_raw {
                        aux[oi].raw = arena::take(n * o * howo);
                    }
                    {
                        let dst: &mut [f32] = if keep_raw {
                            &mut aux[oi].raw
                        } else if c.bn.is_some() {
                            &mut raw[..n * o * howo]
                        } else {
                            &mut out
                        };
                        let xd = &vals[c.x];
                        let wd_flat = ps.get(c.w).value().data();
                        // Same fixed batch partition as the tape's conv2d
                        // forward: groups depend only on n.
                        let per = n.div_ceil(crate::parallel::groups_for(n));
                        let dst_cells: Vec<Mutex<Option<&mut [f32]>>> = dst
                            .chunks_mut(per * o * howo)
                            .map(|ch| Mutex::new(Some(ch)))
                            .collect();
                        let cache_cells: Option<Vec<Mutex<Option<&mut [f32]>>>> =
                            cols_cache[oi].as_mut().map(|cb| {
                                cb.chunks_mut(per * ckk * howo)
                                    .map(|ch| Mutex::new(Some(ch)))
                                    .collect()
                            });
                        crate::parallel::run_indexed(dst_cells.len(), |gi| {
                            let chunk = dst_cells[gi]
                                .lock()
                                .expect("train conv dst cell poisoned")
                                .take()
                                .expect("train conv dst chunk taken twice");
                            let mut cache_chunk: Option<&mut [f32]> =
                                cache_cells.as_ref().map(|cells| {
                                    cells[gi]
                                        .lock()
                                        .expect("train conv cache cell poisoned")
                                        .take()
                                        .expect("train conv cache chunk taken twice")
                                });
                            let mut scratch = if cache_chunk.is_none() {
                                Some(arena::ScratchBuf::zeroed(ckk * howo))
                            } else {
                                None
                            };
                            for (li, oslice) in chunk.chunks_mut(o * howo).enumerate() {
                                let ni = gi * per + li;
                                let cols: &mut [f32] = match cache_chunk.as_deref_mut() {
                                    Some(cc) => &mut cc[li * ckk * howo..(li + 1) * ckk * howo],
                                    None => &mut scratch.as_mut().unwrap()[..],
                                };
                                im2col(
                                    &xd[ni * in_len..(ni + 1) * in_len],
                                    c.cin,
                                    c.hin,
                                    c.win,
                                    c.kh,
                                    c.kw,
                                    c.stride,
                                    c.pad,
                                    c.ho,
                                    c.wo,
                                    cols,
                                );
                                if fast {
                                    simd::gemm(wd_flat, cols, oslice, o, ckk, howo);
                                } else {
                                    conv_gemm(wd_flat, cols, oslice, o, ckk, howo);
                                }
                            }
                        });
                    }
                    if let Some(b) = c.bias {
                        // same per-(sample, channel) add as the tape's
                        // add_bias_channel forward
                        let bv = ps.get(b).value().data();
                        for i in 0..n {
                            for ch in 0..o {
                                let add = bv[ch];
                                let off = (i * o + ch) * howo;
                                for v in &mut out[off..off + howo] {
                                    *v += add;
                                }
                            }
                        }
                    }
                    if let Some(bn) = &c.bn {
                        let gv = ps.get(bn.gamma).value().data();
                        let bv = ps.get(bn.beta).value().data();
                        let a = &mut aux[oi];
                        a.ivstd = vec![0.0; o];
                        let src: &[f32] = if keep_raw {
                            &a.raw
                        } else {
                            &raw[..n * o * howo]
                        };
                        if bn.train {
                            let mut mean = Tensor::zeros(&[o]);
                            let mut var = Tensor::zeros(&[o]);
                            bn_batch_stats(src, n, o, howo, mean.data_mut(), var.data_mut());
                            bn_ivstd(var.data(), bn.eps, &mut a.ivstd);
                            a.xhat = arena::take(n * o * howo);
                            bn_train_forward(
                                src,
                                n,
                                o,
                                howo,
                                mean.data(),
                                &a.ivstd,
                                gv,
                                bv,
                                &mut a.xhat,
                                &mut out,
                            );
                            bn_stats.push((bn.rmean, bn.rvar, BatchStats { mean, var }));
                        } else {
                            a.mean = ps.get(bn.rmean).value().data().to_vec();
                            bn_ivstd(ps.get(bn.rvar).value().data(), bn.eps, &mut a.ivstd);
                            bn_eval_forward(src, n, o, howo, &a.mean, &a.ivstd, gv, bv, &mut out);
                        }
                    }
                    if let Some(alpha) = c.leaky {
                        if fast {
                            simd::act_inplace(&mut out, simd::Act::Leaky(alpha));
                        } else {
                            for v in out.iter_mut() {
                                let t = *v;
                                *v = if t > 0.0 { t } else { alpha * t };
                            }
                        }
                    }
                    vals[c.out] = out;
                }
                TOp::MaxPool {
                    x,
                    out,
                    k,
                    stride,
                    c,
                    h,
                    w,
                    ho,
                    wo,
                } => {
                    let mut o = std::mem::take(&mut vals[*out]);
                    aux[oi].argmax = vec![0u32; n * c * ho * wo];
                    max_pool_forward(
                        &vals[*x],
                        n * c,
                        *h,
                        *w,
                        *k,
                        *stride,
                        *ho,
                        *wo,
                        &mut o,
                        &mut aux[oi].argmax,
                    );
                    vals[*out] = o;
                }
                TOp::Upsample2x { x, out, c, h, w } => {
                    let mut o = std::mem::take(&mut vals[*out]);
                    upsample2x_forward(&vals[*x], n * c, *h, *w, &mut o);
                    vals[*out] = o;
                }
                TOp::Concat {
                    a,
                    b,
                    out,
                    ca,
                    cb,
                    hw,
                } => {
                    let mut o = std::mem::take(&mut vals[*out]);
                    for i in 0..n {
                        let doff = i * (ca + cb) * hw;
                        o[doff..doff + ca * hw]
                            .copy_from_slice(&vals[*a][i * ca * hw..(i + 1) * ca * hw]);
                        o[doff + ca * hw..doff + (ca + cb) * hw]
                            .copy_from_slice(&vals[*b][i * cb * hw..(i + 1) * cb * hw]);
                    }
                    vals[*out] = o;
                }
                TOp::Leaky { x, out, alpha, len } => {
                    let mut o = std::mem::take(&mut vals[*out]);
                    for (ov, &xv) in o.iter_mut().zip(&vals[*x][..n * len]) {
                        *ov = if xv > 0.0 { xv } else { alpha * xv };
                    }
                    vals[*out] = o;
                }
            }
            if let Some(t0) = t0 {
                profile::add_sample(&op.path, t0.elapsed().as_nanos() as u64);
            }
        }
        arena::recycle(raw);

        TrainStep {
            plan: self,
            rt: runtime::current(),
            n,
            fast,
            need_param_grads,
            vals,
            grads: Vec::new(),
            aux,
            cols_cache,
            param_grads: Vec::new(),
            bn_stats,
            col_hits: 0,
            col_misses: 0,
            ran_backward: false,
        }
    }
}

/// Per-op auxiliary state the backward pass needs, produced by the
/// forward pass. All vectors are empty for ops that don't need them.
#[derive(Default)]
struct OpAux {
    /// bn-train: normalized activations.
    xhat: Vec<f32>,
    /// bn: per-channel `1/sqrt(var + eps)`.
    ivstd: Vec<f32>,
    /// bn-eval: per-channel mean snapshot.
    mean: Vec<f32>,
    /// bn-eval with param grads: raw conv output.
    raw: Vec<f32>,
    /// max-pool: plane-relative argmax per output element.
    argmax: Vec<u32>,
}

/// An in-flight compiled training step: activations and auxiliaries
/// from [`TrainPlan::forward`], gradients after
/// [`TrainStep::backward`]. All buffers are arena-recycled on drop.
pub struct TrainStep<'p> {
    plan: &'p TrainPlan,
    /// Runtime current at forward time; backward and drop re-enter it
    /// so the step's buffers stay within one runtime's arena.
    rt: Runtime,
    n: usize,
    /// Kernel tier latched at forward time; backward reuses it.
    fast: bool,
    need_param_grads: bool,
    vals: Vec<Vec<f32>>,
    grads: Vec<Vec<f32>>,
    aux: Vec<OpAux>,
    cols_cache: Vec<Option<Vec<f32>>>,
    param_grads: Vec<(ParamId, Vec<f32>)>,
    bn_stats: Vec<(ParamId, ParamId, BatchStats)>,
    col_hits: u64,
    col_misses: u64,
    ran_backward: bool,
}

/// Finds or inserts the zeroed gradient buffer for `pid`.
fn pg_buf(pgs: &mut Vec<(ParamId, Vec<f32>)>, pid: ParamId, len: usize) -> &mut [f32] {
    if let Some(i) = pgs.iter().position(|(p, _)| *p == pid) {
        return &mut pgs[i].1;
    }
    pgs.push((pid, arena::take(len)));
    &mut pgs.last_mut().expect("pushed above").1
}

impl TrainStep<'_> {
    /// Batch size of this step.
    pub fn batch(&self) -> usize {
        self.n
    }

    /// The `i`-th plan root's full-batch value, `[N, ...slot_shape]`.
    pub fn output(&self, i: usize) -> Tensor {
        let slot = self.plan.outputs[i];
        let mut shape = vec![self.n];
        shape.extend_from_slice(&self.plan.slot_shapes[slot]);
        Tensor::from_vec(self.vals[slot].clone(), &shape)
    }

    /// Batch statistics of every training-mode batch norm, in op order,
    /// each with the running mean/var [`ParamId`]s its declare carried —
    /// everything the caller needs for the momentum fold.
    pub fn bn_stats(&self) -> &[(ParamId, ParamId, BatchStats)] {
        &self.bn_stats
    }

    /// Column-cache reuse counters for this step, in per-sample conv
    /// backward visits: `(cache hits, im2col recomputes)`.
    pub fn col_cache_stats(&self) -> (u64, u64) {
        (self.col_hits, self.col_misses)
    }

    /// Runs the backward pass. `seeds` are the loss gradients w.r.t.
    /// the plan roots, in root order (each `[N, ...slot_shape]`) —
    /// typically read off a small loss tape built on [`Self::output`]
    /// values. `need_input_grad` controls whether the gradient w.r.t.
    /// the plan input is produced (the attack loop needs it, the
    /// detector trainer does not).
    ///
    /// # Panics
    ///
    /// Panics on seed count/shape mismatches or if called twice.
    pub fn backward(&mut self, ps: &ParamSet, seeds: &[&Tensor], need_input_grad: bool) {
        let rt = self.rt.clone();
        rt.enter(|| self.backward_inner(ps, seeds, need_input_grad));
    }

    fn backward_inner(&mut self, ps: &ParamSet, seeds: &[&Tensor], need_input_grad: bool) {
        assert!(!self.ran_backward, "TrainStep::backward called twice");
        self.ran_backward = true;
        let plan = self.plan;
        assert_eq!(
            seeds.len(),
            plan.outputs.len(),
            "expected one seed per plan root"
        );
        self.grads = plan
            .slot_lens
            .iter()
            .map(|&l| arena::take(self.n * l))
            .collect();
        for (si, seed) in seeds.iter().enumerate() {
            let slot = plan.outputs[si];
            assert_eq!(
                seed.len(),
                self.n * plan.slot_lens[slot],
                "seed {si} length mismatch"
            );
            self.grads[slot].copy_from_slice(seed.data());
        }
        for oi in (0..plan.ops.len()).rev() {
            let op = &plan.ops[oi];
            let t0 = profile::enabled().then(std::time::Instant::now);
            match &op.kind {
                TOp::Conv(c) => self.conv_backward(ps, oi, c, need_input_grad),
                TOp::MaxPool {
                    x,
                    out,
                    c,
                    h,
                    w,
                    ho,
                    wo,
                    ..
                } => {
                    let gout = std::mem::take(&mut self.grads[*out]);
                    max_pool_backward(
                        &gout,
                        &self.aux[oi].argmax,
                        self.n * c,
                        *h,
                        *w,
                        *ho,
                        *wo,
                        &mut self.grads[*x],
                    );
                    arena::recycle(gout);
                }
                TOp::Upsample2x { x, out, c, h, w } => {
                    let gout = std::mem::take(&mut self.grads[*out]);
                    upsample2x_backward(&gout, self.n * c, *h, *w, &mut self.grads[*x]);
                    arena::recycle(gout);
                }
                TOp::Concat {
                    a,
                    b,
                    out,
                    ca,
                    cb,
                    hw,
                } => {
                    // exact tape loop: per sample, the a-half then the b-half
                    let gout = std::mem::take(&mut self.grads[*out]);
                    for i in 0..self.n {
                        let src = &gout[i * (ca + cb) * hw..];
                        let ga = &mut self.grads[*a];
                        for j in 0..ca * hw {
                            ga[i * ca * hw + j] += src[j];
                        }
                        let gb = &mut self.grads[*b];
                        for j in 0..cb * hw {
                            gb[i * cb * hw + j] += src[ca * hw + j];
                        }
                    }
                    arena::recycle(gout);
                }
                TOp::Leaky { x, out, alpha, len } => {
                    let gout = std::mem::take(&mut self.grads[*out]);
                    let xv = &self.vals[*x];
                    let gx = &mut self.grads[*x];
                    for i in 0..self.n * len {
                        let t = if xv[i] > 0.0 {
                            gout[i]
                        } else {
                            alpha * gout[i]
                        };
                        gx[i] += t;
                    }
                    arena::recycle(gout);
                }
            }
            if let Some(t0) = t0 {
                profile::add_sample(&op.path_bwd, t0.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Backward of one fused conv: leaky grad transform in place on the
    /// output-slot gradient, bn / bias gradients, then the conv core
    /// with cached columns and the direct-vs-temp `col2im` routing.
    fn conv_backward(&mut self, ps: &ParamSet, oi: usize, c: &TConv, need_input_grad: bool) {
        let n = self.n;
        let (ckk, howo, o) = (c.cin * c.kh * c.kw, c.ho * c.wo, c.cout);
        let in_len = c.cin * c.hin * c.win;
        let mut gout = std::mem::take(&mut self.grads[c.out]);

        if let Some(alpha) = c.leaky {
            // The fused output stores leaky(y); with alpha > 0 (enforced
            // at compile) out > 0 iff y > 0, so the tape's input-sign
            // branch is reproduced from the output.
            for (gv, &yv) in gout.iter_mut().zip(self.vals[c.out].iter()) {
                if yv > 0.0 {
                    continue;
                }
                *gv *= alpha;
            }
        }

        if let Some(bn) = &c.bn {
            let aux = &self.aux[oi];
            let gamma_v = ps.get(bn.gamma).value().data();
            let mut gx = arena::take(gout.len());
            if bn.train {
                let mut sum_g = vec![0.0f32; o];
                let mut sum_gx = vec![0.0f32; o];
                bn_train_backward_sums(&gout, &aux.xhat, n, o, howo, &mut sum_g, &mut sum_gx);
                if self.need_param_grads {
                    let pg = pg_buf(&mut self.param_grads, bn.gamma, o);
                    for (dst, &src) in pg.iter_mut().zip(sum_gx.iter()) {
                        *dst += src;
                    }
                    let pg = pg_buf(&mut self.param_grads, bn.beta, o);
                    for (dst, &src) in pg.iter_mut().zip(sum_g.iter()) {
                        *dst += src;
                    }
                }
                bn_train_backward_gx(
                    &gout, &aux.xhat, n, o, howo, gamma_v, &aux.ivstd, &sum_g, &sum_gx, &mut gx,
                );
            } else if self.need_param_grads {
                let mut gg = vec![0.0f32; o];
                let mut gb = vec![0.0f32; o];
                bn_eval_backward(
                    &gout, &aux.raw, n, o, howo, &aux.mean, &aux.ivstd, gamma_v, &mut gx, &mut gg,
                    &mut gb,
                );
                let pg = pg_buf(&mut self.param_grads, bn.gamma, o);
                for (dst, &src) in pg.iter_mut().zip(gg.iter()) {
                    *dst += src;
                }
                let pg = pg_buf(&mut self.param_grads, bn.beta, o);
                for (dst, &src) in pg.iter_mut().zip(gb.iter()) {
                    *dst += src;
                }
            } else {
                bn_eval_backward_gx_only(&gout, n, o, howo, &aux.ivstd, gamma_v, &mut gx);
            }
            arena::recycle(std::mem::replace(&mut gout, gx));
        }

        if let (Some(b), true) = (c.bias, self.need_param_grads) {
            // same per-(sample, channel) partial sums as the tape
            let pg = pg_buf(&mut self.param_grads, b, o);
            for i in 0..n {
                for ch in 0..o {
                    let off = (i * o + ch) * howo;
                    let s: f32 = gout[off..off + howo].iter().sum();
                    pg[ch] += s;
                }
            }
        }

        // conv core: gw needs columns (cached or recomputed), gx needs
        // the weight-transposed GEMM + col2im scatter
        let compute_gx = c.x != self.plan.input_slot || need_input_grad;
        if self.need_param_grads {
            if self.cols_cache[oi].is_some() {
                self.col_hits += n as u64;
            } else {
                self.col_misses += n as u64;
            }
        }
        if compute_gx || self.need_param_grads {
            let per = n.div_ceil(crate::parallel::groups_for(n));
            let ngroups = n.div_ceil(per);
            let wd_flat = ps.get(c.w).value().data();
            let xd = &self.vals[c.x];
            let cache: Option<&[f32]> = self.cols_cache[oi].as_deref();
            let need_pg = self.need_param_grads;
            let fast = self.fast;
            let mut gx_tmp: Option<Vec<f32>> =
                (compute_gx && !c.gx_direct).then(|| arena::take(n * in_len));
            let gw_partials: Vec<Option<Vec<f32>>> = {
                let gx_data: Option<&mut [f32]> = if compute_gx {
                    Some(match gx_tmp.as_mut() {
                        Some(t) => &mut t[..],
                        None => &mut self.grads[c.x],
                    })
                } else {
                    None
                };
                let gx_cells: Vec<Mutex<Option<&mut [f32]>>> = match gx_data {
                    Some(d) => d
                        .chunks_mut(per * in_len)
                        .map(|ch| Mutex::new(Some(ch)))
                        .collect(),
                    None => Vec::new(),
                };
                crate::parallel::run_indexed(ngroups, |gi| {
                    let mut gx_chunk: Option<&mut [f32]> = if compute_gx {
                        Some(
                            gx_cells[gi]
                                .lock()
                                .expect("train conv gx cell poisoned")
                                .take()
                                .expect("train conv gx chunk taken twice"),
                        )
                    } else {
                        None
                    };
                    let mut gw: Option<Vec<f32>> = need_pg.then(|| arena::take(o * ckk));
                    let mut cols_scratch =
                        (need_pg && cache.is_none()).then(|| arena::ScratchBuf::zeroed(ckk * howo));
                    let mut gcols = compute_gx.then(|| arena::ScratchBuf::zeroed(ckk * howo));
                    let count = per.min(n - gi * per);
                    for li in 0..count {
                        let ni = gi * per + li;
                        let gslice = &gout[ni * o * howo..(ni + 1) * o * howo];
                        if let Some(gw) = gw.as_mut() {
                            let cols: &[f32] = match cache {
                                Some(cb) => &cb[ni * ckk * howo..(ni + 1) * ckk * howo],
                                None => {
                                    let sc = cols_scratch.as_mut().expect("scratch gated above");
                                    im2col(
                                        &xd[ni * in_len..(ni + 1) * in_len],
                                        c.cin,
                                        c.hin,
                                        c.win,
                                        c.kh,
                                        c.kw,
                                        c.stride,
                                        c.pad,
                                        c.ho,
                                        c.wo,
                                        &mut sc[..],
                                    );
                                    &sc[..]
                                }
                            };
                            if fast {
                                simd::gemm_nt_acc(gslice, cols, gw, o, howo, ckk);
                            } else {
                                gemm_nt(gslice, cols, gw, o, howo, ckk);
                            }
                        }
                        if let Some(gx_chunk) = gx_chunk.as_deref_mut() {
                            let gc = gcols.as_mut().expect("gcols gated above");
                            if fast {
                                simd::gemm_tn_over(wd_flat, gslice, &mut gc[..], o, ckk, howo);
                            } else {
                                gemm_tn_over(wd_flat, gslice, &mut gc[..], o, ckk, howo);
                            }
                            col2im(
                                &gc[..],
                                c.cin,
                                c.hin,
                                c.win,
                                c.kh,
                                c.kw,
                                c.stride,
                                c.pad,
                                c.ho,
                                c.wo,
                                &mut gx_chunk[li * in_len..(li + 1) * in_len],
                            );
                        }
                    }
                    gw
                })
            };
            if let Some(t) = gx_tmp {
                // same full-batch serial add as the tape's
                // add_scaled_assign(gx, 1.0)
                for (dst, &src) in self.grads[c.x].iter_mut().zip(t.iter()) {
                    *dst += src;
                }
                arena::recycle(t);
            }
            if need_pg {
                // reduce group partials in group order, as the tape does
                let pg = pg_buf(&mut self.param_grads, c.w, o * ckk);
                for part in gw_partials.into_iter().flatten() {
                    for (dst, &src) in pg.iter_mut().zip(part.iter()) {
                        *dst += src;
                    }
                    arena::recycle(part);
                }
            }
        }
        arena::recycle(gout);
    }

    /// Gradient w.r.t. the plan input, `[N, ...input_shape]`.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::backward`] has not run.
    pub fn input_grad(&self) -> Tensor {
        assert!(self.ran_backward, "input_grad before backward");
        let mut shape = vec![self.n];
        shape.extend_from_slice(&self.plan.input_shape);
        Tensor::from_vec(self.grads[self.plan.input_slot].clone(), &shape)
    }

    /// Adds the accumulated parameter gradients into `ps`'s gradient
    /// accumulators — the compiled equivalent of
    /// [`Graph::write_grads`].
    ///
    /// # Panics
    ///
    /// Panics if [`Self::backward`] has not run.
    pub fn write_param_grads(&self, ps: &mut ParamSet) {
        assert!(self.ran_backward, "write_param_grads before backward");
        for (pid, buf) in &self.param_grads {
            let g = ps.get_mut(*pid).grad_mut().data_mut();
            debug_assert_eq!(g.len(), buf.len(), "param grad length mismatch");
            for (dst, &src) in g.iter_mut().zip(buf.iter()) {
                *dst += src;
            }
        }
    }
}

impl Drop for TrainStep<'_> {
    fn drop(&mut self) {
        // Recycle into the runtime the step was created under, even
        // when the drop happens from another runtime's scope (e.g. a
        // supervisor unwinding a panicked job).
        let rt = self.rt.clone();
        rt.enter(|| {
            for b in self.vals.drain(..) {
                arena::recycle(b);
            }
            for b in self.grads.drain(..) {
                arena::recycle(b);
            }
            for a in self.aux.drain(..) {
                arena::recycle(a.xhat);
                arena::recycle(a.raw);
            }
            for b in self.cols_cache.drain(..).flatten() {
                arena::recycle(b);
            }
            for (_, b) in self.param_grads.drain(..) {
                arena::recycle(b);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f32 = 1e-5;
    const ALPHA: f32 = 0.1;

    struct Net {
        w1: ParamId,
        gamma: ParamId,
        beta: ParamId,
        rmean: ParamId,
        rvar: ParamId,
        w2: ParamId,
        b2: ParamId,
        w3: ParamId,
    }

    /// conv_bn_leaky(x) = y0; a = conv_bias(y0); b = conv(up(pool(y0)));
    /// root = leaky(concat(a, b)). Covers every op kind, the shared-slot
    /// temp path (y0 feeds both the a-conv and the pool) and the direct
    /// path (the b-conv is y0's chain's sole consumer of `u`).
    fn net(ps: &mut ParamSet) -> Net {
        let mut rng = StdRng::seed_from_u64(7);
        Net {
            w1: ps.register("w1", crate::init::kaiming_conv(&mut rng, 4, 3, 3, 3)),
            gamma: ps.register("gamma", Tensor::randn(&mut rng, &[4], 0.3).map(|v| v + 1.0)),
            beta: ps.register("beta", Tensor::randn(&mut rng, &[4], 0.1)),
            rmean: ps.register("rmean", Tensor::randn(&mut rng, &[4], 0.2)),
            rvar: ps.register("rvar", Tensor::full(&[4], 0.9)),
            w2: ps.register("w2", crate::init::kaiming_conv(&mut rng, 2, 4, 1, 1)),
            b2: ps.register("b2", Tensor::randn(&mut rng, &[2], 0.5)),
            w3: ps.register("w3", crate::init::kaiming_conv(&mut rng, 2, 4, 1, 1)),
        }
    }

    fn declare_net(g: &mut Graph, ids: &Net, train_bn: bool) -> VarId {
        let bn_op = if train_bn {
            "batch_norm2d_train"
        } else {
            "batch_norm2d_eval"
        };
        let x = g.declare("input", &[], &[], &[1, 3, 8, 8]);
        let w = g.declare("param", &[], &[("pid", ids.w1.index())], &[4, 3, 3, 3]);
        let y = g.declare(
            "conv2d",
            &[x, w],
            &[("stride", 1), ("pad", 1)],
            &[1, 4, 8, 8],
        );
        let ga = g.declare("param", &[], &[("pid", ids.gamma.index())], &[4]);
        let be = g.declare("param", &[], &[("pid", ids.beta.index())], &[4]);
        let y = g.declare(
            bn_op,
            &[y, ga, be],
            &[
                ("rmean_pid", ids.rmean.index()),
                ("rvar_pid", ids.rvar.index()),
                ("eps_bits", EPS.to_bits() as usize),
            ],
            &[1, 4, 8, 8],
        );
        let y0 = g.declare(
            "leaky_relu",
            &[y],
            &[("alpha_bits", ALPHA.to_bits() as usize)],
            &[1, 4, 8, 8],
        );
        let w = g.declare("param", &[], &[("pid", ids.w2.index())], &[2, 4, 1, 1]);
        let a = g.declare(
            "conv2d",
            &[y0, w],
            &[("stride", 1), ("pad", 0)],
            &[1, 2, 8, 8],
        );
        let b2 = g.declare("param", &[], &[("pid", ids.b2.index())], &[2]);
        let a = g.declare("add_bias_channel", &[a, b2], &[], &[1, 2, 8, 8]);
        let p = g.declare(
            "max_pool2d",
            &[y0],
            &[("k", 2), ("stride", 2), ("pad", 0)],
            &[1, 4, 4, 4],
        );
        let u = g.declare("upsample_nearest2x", &[p], &[], &[1, 4, 8, 8]);
        let w = g.declare("param", &[], &[("pid", ids.w3.index())], &[2, 4, 1, 1]);
        let b = g.declare(
            "conv2d",
            &[u, w],
            &[("stride", 1), ("pad", 0)],
            &[1, 2, 8, 8],
        );
        let cat = g.declare("concat_channels", &[a, b], &[], &[1, 4, 8, 8]);
        g.declare(
            "leaky_relu",
            &[cat],
            &[("alpha_bits", ALPHA.to_bits() as usize)],
            &[1, 4, 8, 8],
        )
    }

    /// Tape reference: full forward + loss `sum((root+0.5)^2)` +
    /// backward, gradients written into `ps`. Returns (loss value,
    /// input grad, bn stats).
    fn tape_step(
        ps: &mut ParamSet,
        ids: &Net,
        x0: &Tensor,
        train_bn: bool,
    ) -> (f32, Tensor, Option<BatchStats>) {
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let w1 = g.param(ps, ids.w1);
        let y = g.conv2d(x, w1, None, 1, 1);
        let ga = g.param(ps, ids.gamma);
        let be = g.param(ps, ids.beta);
        let (y, stats) = if train_bn {
            let (y, s) = g.batch_norm2d_train(y, ga, be, EPS);
            (y, Some(s))
        } else {
            let rm = ps.get(ids.rmean).value().clone();
            let rv = ps.get(ids.rvar).value().clone();
            (g.batch_norm2d_eval(y, ga, be, &rm, &rv, EPS), None)
        };
        let y0 = g.leaky_relu(y, ALPHA);
        let w2 = g.param(ps, ids.w2);
        let b2 = g.param(ps, ids.b2);
        let a = g.conv2d(y0, w2, Some(b2), 1, 0);
        let p = g.max_pool2d(y0, 2, 2, 0);
        let u = g.upsample_nearest2x(p);
        let w3 = g.param(ps, ids.w3);
        let b = g.conv2d(u, w3, None, 1, 0);
        let cat = g.concat_channels(a, b);
        let root = g.leaky_relu(cat, ALPHA);
        let sh = g.add_scalar(root, 0.5);
        let sq = g.mul(sh, sh);
        let loss = g.sum_all(sq);
        let lv = g.value(loss).data()[0];
        let grads = g.backward(loss);
        let gx = grads.get(x).clone();
        g.write_grads(&grads, ps);
        (lv, gx, stats)
    }

    /// Compiled step with the same loss built as a mini-tape on the
    /// plan output. Gradients written into `ps`.
    fn plan_step(
        plan: &TrainPlan,
        ps: &mut ParamSet,
        x0: &Tensor,
        need_param_grads: bool,
    ) -> (f32, Tensor, TrainStepStats) {
        let mut step = plan.forward(ps, x0, need_param_grads);
        let out = step.output(0);
        let mut mg = Graph::new();
        let yin = mg.input(out);
        let sh = mg.add_scalar(yin, 0.5);
        let sq = mg.mul(sh, sh);
        let loss = mg.sum_all(sq);
        let lv = mg.value(loss).data()[0];
        let grads = mg.backward(loss);
        step.backward(ps, &[grads.get(yin)], true);
        let gx = step.input_grad();
        step.write_param_grads(ps);
        let stats = TrainStepStats {
            bn: step.bn_stats().to_vec(),
            cache: step.col_cache_stats(),
        };
        (lv, gx, stats)
    }

    struct TrainStepStats {
        bn: Vec<(ParamId, ParamId, BatchStats)>,
        cache: (u64, u64),
    }

    fn snapshot_grads(ps: &ParamSet) -> Vec<Vec<f32>> {
        ps.iter().map(|(_, p)| p.grad().data().to_vec()).collect()
    }

    #[test]
    fn compiled_train_step_matches_tape_bitwise() {
        let mut ps = ParamSet::new();
        let ids = net(&mut ps);
        let mut g = Graph::new();
        let root = declare_net(&mut g, &ids, true);
        let plan = TrainPlan::compile(&g, &[root]).expect("net compiles");
        // conv_bn_leaky, conv_bias, pool, upsample, conv, concat, leaky
        assert_eq!(plan.num_ops(), 7);

        let mut rng = StdRng::seed_from_u64(11);
        let x0 = Tensor::randn(&mut rng, &[4, 3, 8, 8], 1.0);

        ps.zero_grads();
        let (tape_loss, tape_gx, tape_stats) = tape_step(&mut ps, &ids, &x0, true);
        let tape_grads = snapshot_grads(&ps);

        ps.zero_grads();
        let (plan_loss, plan_gx, stats) = plan_step(&plan, &mut ps, &x0, true);
        let plan_grads = snapshot_grads(&ps);

        assert_eq!(plan_loss.to_bits(), tape_loss.to_bits(), "loss differs");
        assert_eq!(plan_gx.data(), tape_gx.data(), "input grad differs");
        assert_eq!(plan_grads, tape_grads, "param grads differ");
        let ts = tape_stats.expect("train bn ran");
        assert_eq!(stats.bn.len(), 1);
        assert_eq!(stats.bn[0].0, ids.rmean);
        assert_eq!(stats.bn[0].1, ids.rvar);
        assert_eq!(stats.bn[0].2.mean.data(), ts.mean.data(), "bn mean differs");
        assert_eq!(stats.bn[0].2.var.data(), ts.var.data(), "bn var differs");
        // all three convs fit the default budget: every backward visit hits
        assert_eq!(stats.cache, (12, 0), "expected 3 convs x 4 samples cached");
    }

    #[test]
    fn compiled_eval_bn_step_matches_tape_bitwise() {
        let mut ps = ParamSet::new();
        let ids = net(&mut ps);
        let mut g = Graph::new();
        let root = declare_net(&mut g, &ids, false);
        let plan = TrainPlan::compile(&g, &[root]).expect("net compiles");

        let mut rng = StdRng::seed_from_u64(12);
        let x0 = Tensor::randn(&mut rng, &[3, 3, 8, 8], 1.0);

        ps.zero_grads();
        let (tape_loss, tape_gx, _) = tape_step(&mut ps, &ids, &x0, false);
        let tape_grads = snapshot_grads(&ps);

        ps.zero_grads();
        let (plan_loss, plan_gx, _) = plan_step(&plan, &mut ps, &x0, true);
        let plan_grads = snapshot_grads(&ps);

        assert_eq!(plan_loss.to_bits(), tape_loss.to_bits(), "loss differs");
        assert_eq!(plan_gx.data(), tape_gx.data(), "input grad differs");
        assert_eq!(plan_grads, tape_grads, "param grads differ");
    }

    #[test]
    fn column_cache_budget_does_not_change_gradients() {
        let mut ps = ParamSet::new();
        let ids = net(&mut ps);
        let mut g = Graph::new();
        let root = declare_net(&mut g, &ids, true);
        let mut plan = TrainPlan::compile(&g, &[root]).expect("net compiles");

        let mut rng = StdRng::seed_from_u64(13);
        let x0 = Tensor::randn(&mut rng, &[2, 3, 8, 8], 1.0);

        ps.zero_grads();
        let (loss_cached, gx_cached, stats_cached) = plan_step(&plan, &mut ps, &x0, true);
        let grads_cached = snapshot_grads(&ps);
        assert_eq!(stats_cached.cache.1, 0, "default budget should cache all");
        assert!(stats_cached.cache.0 > 0);

        plan.set_col_budget(0);
        ps.zero_grads();
        let (loss_plain, gx_plain, stats_plain) = plan_step(&plan, &mut ps, &x0, true);
        let grads_plain = snapshot_grads(&ps);
        assert_eq!(stats_plain.cache.0, 0, "budget 0 must disable the cache");
        assert!(stats_plain.cache.1 > 0);

        assert_eq!(loss_cached.to_bits(), loss_plain.to_bits());
        assert_eq!(gx_cached.data(), gx_plain.data());
        assert_eq!(grads_cached, grads_plain);
    }

    #[test]
    fn frozen_path_input_grad_matches_full_backward() {
        let mut ps = ParamSet::new();
        let ids = net(&mut ps);
        let mut g = Graph::new();
        let root = declare_net(&mut g, &ids, false);
        let plan = TrainPlan::compile(&g, &[root]).expect("net compiles");

        let mut rng = StdRng::seed_from_u64(14);
        let x0 = Tensor::randn(&mut rng, &[2, 3, 8, 8], 1.0);

        ps.zero_grads();
        let (_, gx_full, _) = plan_step(&plan, &mut ps, &x0, true);
        let before = snapshot_grads(&ps);
        let (_, gx_frozen, stats) = plan_step(&plan, &mut ps, &x0, false);
        let after = snapshot_grads(&ps);

        assert_eq!(gx_frozen.data(), gx_full.data(), "frozen gx differs");
        assert_eq!(before, after, "frozen path must not touch param grads");
        assert_eq!(stats.cache, (0, 0), "frozen path never visits columns");
    }

    #[test]
    fn compile_rejects_unsupported_and_batched() {
        let mut g = Graph::new();
        let x = g.declare("input", &[], &[], &[1, 4]);
        let _ = g.declare("softmax", &[x], &[], &[1, 4]);
        let err = TrainPlan::compile(&g, &[VarId::from_index(1)]).unwrap_err();
        assert!(err.contains("unsupported op 'softmax'"), "got: {err}");

        let mut g = Graph::new();
        let _ = g.declare("input", &[], &[], &[2, 3, 8, 8]);
        let err = TrainPlan::compile(&g, &[VarId::from_index(0)]).unwrap_err();
        assert!(err.contains("batch 1"), "got: {err}");
    }
}
