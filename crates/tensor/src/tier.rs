//! Execution-tier selection for the compiled engines.
//!
//! The workspace runs its compiled plans ([`crate::InferPlan`] /
//! [`crate::TrainPlan`]) under one of two numeric contracts:
//!
//! * [`Tier::Reference`] — the scalar kernels whose f32 instruction
//!   sequence retraces the autodiff tape exactly. Compiled results are
//!   **bitwise identical** to the tape at any thread count. This is the
//!   default and the oracle every other tier is measured against.
//! * [`Tier::Fast`] — the [`crate::simd`] f32x8 microkernels (AVX2+FMA
//!   where the host supports it, a portable unrolled fallback
//!   otherwise). Results may diverge from the reference tier, but only
//!   within the static per-head ulp certificate emitted by
//!   `rd_analysis::bounds` for the `f32x8-fma` kernel model; the bench
//!   and CI gates enforce the observed divergence against that
//!   certificate.
//!
//! The tier lives on the [`crate::runtime::Runtime`] current at the
//! call site (the free functions here are the default-runtime shim) and
//! is read **once per executor run** (plan compilation is
//! tier-independent), so toggling it mid-run never mixes kernels within
//! one forward/backward pass, and two concurrent runtimes can run
//! different tiers in one process. The autodiff tape itself always runs
//! the reference kernels — it is the oracle.

use crate::runtime;

/// Which kernel family the compiled engines execute with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Scalar kernels, bitwise-identical to the tape (the default).
    Reference,
    /// f32x8 microkernels under the certified-ulp contract.
    Fast,
}

impl Tier {
    /// Stable label used in reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Reference => "reference",
            Tier::Fast => "fast",
        }
    }
}

impl std::str::FromStr for Tier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" | "ref" | "scalar" => Ok(Tier::Reference),
            "fast" | "f32x8" | "simd" => Ok(Tier::Fast),
            other => Err(format!(
                "unknown tier '{other}' (expected 'reference' or 'fast')"
            )),
        }
    }
}

/// Selects the execution tier for subsequently *started* compiled runs
/// on the **current runtime** (the default runtime outside any
/// [`crate::runtime::Runtime::enter`] scope, matching the old global
/// behavior). Executors latch it when a run begins, so an in-flight
/// forward or backward pass never mixes tiers.
pub fn set_tier(t: Tier) {
    runtime::current().set_tier(t);
}

/// The current runtime's selected execution tier.
pub fn current() -> Tier {
    runtime::current().tier()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_parses_and_labels_roundtrip() {
        assert_eq!("reference".parse::<Tier>().unwrap(), Tier::Reference);
        assert_eq!("fast".parse::<Tier>().unwrap(), Tier::Fast);
        assert_eq!("f32x8".parse::<Tier>().unwrap(), Tier::Fast);
        assert!("warp9".parse::<Tier>().is_err());
        assert_eq!(Tier::Reference.label(), "reference");
        assert_eq!(Tier::Fast.label(), "fast");
    }
}
