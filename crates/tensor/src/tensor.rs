//! Dense row-major `f32` tensors.
//!
//! [`Tensor`] is the value type everything else in the workspace is built
//! on: images, network weights, gradients and intermediate activations.
//! It is deliberately small — a shape vector plus a flat `Vec<f32>` — and
//! favours clarity over micro-optimization except in [`Tensor::matmul`],
//! which is the hot path of every convolution in the workspace.

use std::fmt;

use rand::Rng;

/// A dense row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use rd_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.at2(1, 0), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, .., {:.4}] (n={})",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

impl Tensor {
    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` contains a zero dimension.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        assert!(n > 0, "tensor shape {shape:?} has zero elements");
        Tensor {
            shape: shape.to_vec(),
            // Large buffers come from the scratch arena (and return to
            // it when a Graph/Gradients drops), so per-step activation
            // allocations are reused across attack steps.
            data: crate::arena::take_filled(n, value),
        }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a scalar (rank-1, single-element) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![1],
            data: vec![value],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "buffer length {} != shape {shape:?}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Samples every element i.i.d. from `N(0, std^2)` using Box–Muller.
    pub fn randn<R: Rng>(rng: &mut R, shape: &[usize], std: f32) -> Self {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let th = 2.0 * std::f32::consts::PI * u2;
            data.push(r * th.cos() * std);
            if data.len() < n {
                data.push(r * th.sin() * std);
            }
        }
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Samples every element i.i.d. from `U(lo, hi)`.
    pub fn rand_uniform<R: Rng>(rng: &mut R, shape: &[usize], lo: f32, hi: f32) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped copy sharing no structure (cheap move of the buffer).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            n,
            "cannot reshape {:?} to {shape:?}",
            self.shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element at `(i, j)` of a rank-2 tensor.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Element at `(n, c, h, w)` of a rank-4 tensor.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Sets the element at `(n, c, h, w)` of a rank-4 tensor.
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w] = v;
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise product.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Adds `other * s` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Tensor, s: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element of the flat buffer.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of the buffer.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Dense matrix product of two rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Blocked i-k-j loop ordering; this is the workhorse behind im2col
    /// convolution so it matters that the inner loop is stride-1 over both
    /// the output row and the right-hand operand.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} != {k2}");
        let mut out = crate::arena::take(m * n);
        // Output rows are disjoint, so any row partition yields bitwise
        // identical results; split large products across the worker
        // pool (nested calls from inside conv/frame workers run inline
        // via the pool's nesting guard).
        if m > 1 && m * k * n >= 1 << 20 {
            let groups = crate::parallel::groups_for(m);
            let rows_per = m.div_ceil(groups);
            let a = &self.data;
            let b = &other.data;
            crate::parallel::for_each_chunk_mut(&mut out, rows_per * n, |gi, chunk| {
                let r0 = gi * rows_per;
                let rows = chunk.len() / n;
                matmul_into(&a[r0 * k..(r0 + rows) * k], b, chunk, rows, k, n);
            });
        } else {
            matmul_into(&self.data, &other.data, &mut out, m, k, n);
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2d needs rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut data = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data,
        }
    }
}

/// `out += a[m,k] * b[k,n]` with i-k-j ordering.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn rank4_access() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        t.set4(1, 2, 3, 4, 7.5);
        assert_eq!(t.at4(1, 2, 3, 4), 7.5);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.sum(), 7.5);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 3.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -7.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, -10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
    }

    #[test]
    fn add_scaled_assign_is_axpy() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 12.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -3.0, 2.0], &[3]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.mean() - 0.0).abs() < 1e-6);
        assert_eq!(t.sq_norm(), 14.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(&mut rng, &[4, 4], 1.0);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data_mut()[i * 4 + i] = 1.0;
        }
        let c = a.matmul(&eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&mut rng, &[3, 5], 1.0);
        let back = a.transpose2d().transpose2d();
        assert_eq!(a, back);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&mut rng, &[10_000], 2.0);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::rand_uniform(&mut rng, &[1000], -0.5, 0.25);
        assert!(t.min() >= -0.5 && t.max() < 0.25);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).reshape(&[2, 2]);
        assert_eq!(t.at2(1, 1), 4.0);
    }
}
