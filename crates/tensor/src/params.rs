//! Named parameter storage shared between modules, graphs and optimizers.
//!
//! Network modules (convolutions, batch norms, linear layers) do not own
//! their weights directly; they hold [`ParamId`]s into a [`ParamSet`]. A
//! forward pass registers the parameter values as graph leaves, a backward
//! pass writes gradients back into the set, and an optimizer steps the set.
//! This keeps borrow-checking trivial while letting one optimizer drive an
//! arbitrary composite of modules.

use crate::tensor::Tensor;

/// Handle to a parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Position of the parameter inside its [`ParamSet`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// A single named parameter with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
}

impl Param {
    /// The name the parameter was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable value (used by optimizers and weight loading).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// Accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable gradient accumulator.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }
}

/// A flat, ordered collection of parameters.
///
/// Each set carries a unique identity so a [`crate::Graph`] holding
/// parameters from several sets (e.g. a frozen detector plus a trainable
/// generator) can route gradients back to the right one.
///
/// # Examples
///
/// ```
/// use rd_tensor::{ParamSet, Tensor};
///
/// let mut ps = ParamSet::new();
/// let w = ps.register("w", Tensor::ones(&[2, 2]));
/// assert_eq!(ps.get(w).value().sum(), 4.0);
/// assert_eq!(ps.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ParamSet {
    params: Vec<Param>,
    uid: u64,
}

fn next_uid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

impl Default for ParamSet {
    fn default() -> Self {
        ParamSet {
            params: Vec::new(),
            uid: next_uid(),
        }
    }
}

impl ParamSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The set's unique identity. Clones keep the identity of the
    /// original, so a checkpointed copy still receives gradients from
    /// graphs built against the original.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Registers a parameter, returning its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.params.push(Param {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Borrows a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    pub fn get(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Mutably borrows a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    /// Iterates over all parameters in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Iterates mutably over all parameters in registration order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Param)> {
        self.params
            .iter_mut()
            .enumerate()
            .map(|(i, p)| (ParamId(i), p))
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.fill(0.0);
        }
    }

    /// Global L2 norm of all gradients (useful for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.sq_norm())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                let g = p.grad.scale(s);
                p.grad = g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut ps = ParamSet::new();
        let a = ps.register("a", Tensor::ones(&[3]));
        let b = ps.register("b", Tensor::zeros(&[2, 2]));
        assert_eq!(ps.get(a).name(), "a");
        assert_eq!(ps.get(b).value().shape(), &[2, 2]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_scalars(), 7);
    }

    #[test]
    fn zero_grads_resets() {
        let mut ps = ParamSet::new();
        let a = ps.register("a", Tensor::ones(&[2]));
        ps.get_mut(a).grad_mut().fill(3.0);
        assert_eq!(ps.grad_norm(), (18.0f32).sqrt());
        ps.zero_grads();
        assert_eq!(ps.grad_norm(), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut ps = ParamSet::new();
        let a = ps.register("a", Tensor::ones(&[1]));
        ps.get_mut(a).grad_mut().fill(10.0);
        ps.clip_grad_norm(5.0);
        assert!((ps.get(a).grad().data()[0] - 5.0).abs() < 1e-6);
        ps.clip_grad_norm(100.0);
        assert!((ps.get(a).grad().data()[0] - 5.0).abs() < 1e-6);
    }
}
