//! Weight initialization schemes.

use rand::Rng;

use crate::tensor::Tensor;

/// Kaiming/He normal initialization for a conv kernel `[O, C, kh, kw]`,
/// suitable for (leaky) ReLU networks.
pub fn kaiming_conv<R: Rng>(rng: &mut R, o: usize, c: usize, kh: usize, kw: usize) -> Tensor {
    let fan_in = (c * kh * kw) as f32;
    let std = (2.0 / fan_in).sqrt();
    Tensor::randn(rng, &[o, c, kh, kw], std)
}

/// Xavier/Glorot normal initialization for a linear weight `[O, I]`.
pub fn xavier_linear<R: Rng>(rng: &mut R, o: usize, i: usize) -> Tensor {
    let std = (2.0 / (o + i) as f32).sqrt();
    Tensor::randn(rng, &[o, i], std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = kaiming_conv(&mut rng, 64, 32, 3, 3);
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / w.len() as f32;
        let want = 2.0 / (32.0 * 9.0);
        assert!((var - want).abs() / want < 0.2, "var {var} want {want}");
    }

    #[test]
    fn xavier_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = xavier_linear(&mut rng, 10, 20);
        assert_eq!(w.shape(), &[10, 20]);
    }
}
