//! Per-op wall-clock profiler keyed on `OpMeta` scope paths.
//!
//! PR 1 attached an [`crate::OpMeta`] (op name + scope path) to every
//! tape node; this module hangs a timing histogram off that metadata so
//! speedups are measured rather than asserted.
//!
//! Forward timing is *gap attribution*: ops compute their value before
//! calling `Graph::record`, so the elapsed time since the previous
//! recorded op is charged to the op being recorded. Leaf ops (`input`,
//! `param`, `declare`) reset the mark without charging anyone, so host
//! work (rendering, sampling) between tape touches is not misattributed
//! to a tensor op. Backward timing is exact: `Graph::backward` brackets
//! each back-closure call and records it under `<path>/bwd`.
//!
//! The enable flag and the sample registry live on the
//! [`crate::runtime::Runtime`] current at the call site; the free
//! functions here are the default-runtime shim, so two concurrent jobs
//! profile into disjoint registries. Profiling is off by default and
//! costs one relaxed atomic load per recorded op when disabled. Worker
//! threads record into their runtime's registry through a mutex; with
//! profiling on, contention is an accepted observer cost. The forward
//! gap mark is thread-local (a worker's gaps are its own).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use std::cell::Cell;

use crate::runtime;

thread_local! {
    static LAST_MARK: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Number of log2(ns) histogram buckets per op.
pub const BUCKETS: usize = 32;

/// Aggregated timing for one op path.
#[derive(Clone, Debug)]
pub struct OpStat {
    /// Number of samples recorded.
    pub count: u64,
    /// Total wall-clock nanoseconds across all samples.
    pub total_ns: u64,
    /// Fastest single sample, in nanoseconds.
    pub min_ns: u64,
    /// Slowest single sample, in nanoseconds.
    pub max_ns: u64,
    /// Histogram: bucket `i` counts samples with `floor(log2(ns)) == i`.
    pub buckets: [u64; BUCKETS],
}

impl OpStat {
    fn new() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn add(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
    }
}

/// One runtime's profiler: enable flag + sample registry.
pub(crate) struct ProfilerState {
    enabled: AtomicBool,
    registry: Mutex<Option<HashMap<String, OpStat>>>,
}

impl ProfilerState {
    pub(crate) fn new(enabled: bool) -> Self {
        ProfilerState {
            enabled: AtomicBool::new(enabled),
            registry: Mutex::new(None),
        }
    }

    /// Locks the registry, recovering from poison by discarding the
    /// recorded samples of this runtime only — timing data is pure
    /// observability, so dropping a half-updated map is always sound.
    fn registry_guard(&self) -> MutexGuard<'_, Option<HashMap<String, OpStat>>> {
        match self.registry.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.registry.clear_poison();
                let mut g = poisoned.into_inner();
                *g = None;
                g
            }
        }
    }

    fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn add_sample(&self, key: &str, ns: u64) {
        let mut guard = self.registry_guard();
        let map = guard.get_or_insert_with(HashMap::new);
        map.entry(key.to_string())
            .or_insert_with(OpStat::new)
            .add(ns);
    }

    fn reset(&self) {
        *self.registry_guard() = None;
    }

    fn snapshot(&self) -> Vec<(String, OpStat)> {
        let guard = self.registry_guard();
        let mut rows: Vec<(String, OpStat)> = guard
            .as_ref()
            .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
        rows
    }
}

/// Turns the current runtime's profiler on or off. Turning it on clears
/// the forward mark so the first charged interval starts from the next
/// recorded op.
pub fn set_enabled(on: bool) {
    runtime::current().inner_profiler(|p| p.set_enabled(on));
    if on {
        LAST_MARK.with(|m| m.set(None));
    }
}

/// Whether profiling is enabled on the current runtime.
pub fn enabled() -> bool {
    runtime::current().inner_profiler(|p| p.enabled())
}

/// Resets the forward gap-attribution mark **without** charging the
/// elapsed time to any op. Called for leaf tape nodes whose "compute"
/// is host-side work.
pub fn mark() {
    LAST_MARK.with(|m| m.set(Some(Instant::now())));
}

/// Charges the time since the last mark to `path` (forward pass gap
/// attribution), then re-marks. No-op if there is no prior mark.
pub fn note_forward(path: &str) {
    let now = Instant::now();
    LAST_MARK.with(|m| {
        if let Some(prev) = m.get() {
            add_sample(path, (now - prev).as_nanos() as u64);
        }
        m.set(Some(Instant::now()));
    });
}

/// Records one exact sample of `ns` nanoseconds under `key` in the
/// current runtime's registry.
pub fn add_sample(key: &str, ns: u64) {
    runtime::current().inner_profiler(|p| p.add_sample(key, ns));
}

/// Clears the current runtime's recorded samples and the forward mark.
pub fn reset() {
    runtime::current().inner_profiler(|p| p.reset());
    LAST_MARK.with(|m| m.set(None));
}

/// Snapshot of the current runtime's op stats, sorted by total time
/// descending.
pub fn snapshot() -> Vec<(String, OpStat)> {
    runtime::current().inner_profiler(|p| p.snapshot())
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the timing table as aligned text, one row per op path.
pub fn report_text() -> String {
    let rows = snapshot();
    let mut out = String::new();
    let total: u64 = rows.iter().map(|r| r.1.total_ns).sum();
    let width = rows.iter().map(|r| r.0.len()).max().unwrap_or(6).max(6);
    let _ = writeln!(
        out,
        "{:<width$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>6}",
        "op", "count", "total", "mean", "min", "max", "share"
    );
    for (path, s) in &rows {
        let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
        let share = if total > 0 {
            100.0 * s.total_ns as f64 / total as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<width$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {share:>5.1}%",
            path,
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(mean),
            fmt_ns(s.min_ns),
            fmt_ns(s.max_ns),
        );
    }
    let _ = writeln!(out, "{:<width$}  {:>9}  {:>10}", "TOTAL", "", fmt_ns(total));
    out
}

/// Renders the timing table as a JSON object (hand-rolled; no serde in
/// the dependency tree). Keys are op paths; each value carries count,
/// total/min/max nanoseconds, and the non-empty log2-ns buckets.
pub fn report_json() -> String {
    let rows = snapshot();
    let mut out = String::from("{\n  \"ops\": {\n");
    for (i, (path, s)) in rows.iter().enumerate() {
        let esc: String = path
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c => vec![c],
            })
            .collect();
        let _ = write!(
            out,
            "    \"{esc}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"log2_buckets\": {{",
            s.count,
            s.total_ns,
            if s.count > 0 { s.min_ns } else { 0 },
            s.max_ns
        );
        let mut first = true;
        for (b, &c) in s.buckets.iter().enumerate() {
            if c > 0 {
                if !first {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{b}\": {c}");
                first = false;
            }
        }
        out.push_str("}}");
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, RuntimeConfig};

    #[test]
    fn samples_aggregate_per_key() {
        // A private runtime keeps the registry under test isolated from
        // concurrently running tests.
        Runtime::new(RuntimeConfig::default()).enter(|| {
            add_sample("test-agg/conv2d", 1_000);
            add_sample("test-agg/conv2d", 3_000);
            let rows = snapshot();
            assert_eq!(rows.len(), 1, "private registry holds only this key");
            let stat = &rows.iter().find(|(k, _)| k == "test-agg/conv2d").unwrap().1;
            assert_eq!(stat.count, 2);
            assert_eq!(stat.total_ns, 4_000);
            assert_eq!(stat.min_ns, 1_000);
            assert_eq!(stat.max_ns, 3_000);
            let text = report_text();
            assert!(text.contains("test-agg/conv2d"));
            let json = report_json();
            assert!(json.contains("\"test-agg/conv2d\""));
            assert!(json.contains("\"total_ns\": 4000"));
        });
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut s = OpStat::new();
        s.add(1); // bucket 0
        s.add(1024); // bucket 10
        s.add(1536); // bucket 10
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[10], 2);
    }

    #[test]
    fn forward_marks_gate_attribution() {
        Runtime::new(RuntimeConfig::default()).enter(|| {
            LAST_MARK.with(|m| m.set(None));
            note_forward("test-mark/op"); // no prior mark on this thread: not charged
            note_forward("test-mark/op"); // now marked: charged once
            let rows = snapshot();
            let stat = &rows.iter().find(|(k, _)| k == "test-mark/op").unwrap().1;
            assert_eq!(stat.count, 1);
        });
    }

    #[test]
    fn registries_are_isolated_per_runtime() {
        let a = Runtime::new(RuntimeConfig {
            profiling: true,
            ..RuntimeConfig::default()
        });
        let b = Runtime::new(RuntimeConfig::default());
        a.enter(|| {
            assert!(enabled());
            add_sample("iso/a", 10);
        });
        b.enter(|| {
            assert!(!enabled(), "profiling flag is per-runtime");
            assert!(snapshot().is_empty(), "B must not see A's samples");
        });
        a.enter(|| assert_eq!(snapshot().len(), 1));
    }
}
