//! Per-op wall-clock profiler keyed on `OpMeta` scope paths.
//!
//! PR 1 attached an [`crate::OpMeta`] (op name + scope path) to every
//! tape node; this module hangs a timing histogram off that metadata so
//! speedups are measured rather than asserted.
//!
//! Forward timing is *gap attribution*: ops compute their value before
//! calling `Graph::record`, so the elapsed time since the previous
//! recorded op is charged to the op being recorded. Leaf ops (`input`,
//! `param`, `declare`) reset the mark without charging anyone, so host
//! work (rendering, sampling) between tape touches is not misattributed
//! to a tensor op. Backward timing is exact: `Graph::backward` brackets
//! each back-closure call and records it under `<path>/bwd`.
//!
//! Profiling is off by default and costs one relaxed atomic load per
//! recorded op when disabled. Worker threads record into the same
//! global registry through a mutex; with profiling on, contention is an
//! accepted observer cost.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use std::cell::Cell;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<HashMap<String, OpStat>>> = Mutex::new(None);

thread_local! {
    static LAST_MARK: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Number of log2(ns) histogram buckets per op.
pub const BUCKETS: usize = 32;

/// Aggregated timing for one op path.
#[derive(Clone, Debug)]
pub struct OpStat {
    /// Number of samples recorded.
    pub count: u64,
    /// Total wall-clock nanoseconds across all samples.
    pub total_ns: u64,
    /// Fastest single sample, in nanoseconds.
    pub min_ns: u64,
    /// Slowest single sample, in nanoseconds.
    pub max_ns: u64,
    /// Histogram: bucket `i` counts samples with `floor(log2(ns)) == i`.
    pub buckets: [u64; BUCKETS],
}

impl OpStat {
    fn new() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn add(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
    }
}

/// Turns the profiler on or off. Turning it on clears the forward mark
/// so the first charged interval starts from the next recorded op.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
    if on {
        LAST_MARK.with(|m| m.set(None));
    }
}

/// Whether profiling is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Resets the forward gap-attribution mark **without** charging the
/// elapsed time to any op. Called for leaf tape nodes whose "compute"
/// is host-side work.
pub fn mark() {
    LAST_MARK.with(|m| m.set(Some(Instant::now())));
}

/// Charges the time since the last mark to `path` (forward pass gap
/// attribution), then re-marks. No-op if there is no prior mark.
pub fn note_forward(path: &str) {
    let now = Instant::now();
    LAST_MARK.with(|m| {
        if let Some(prev) = m.get() {
            add_sample(path, (now - prev).as_nanos() as u64);
        }
        m.set(Some(Instant::now()));
    });
}

/// Records one exact sample of `ns` nanoseconds under `key`.
pub fn add_sample(key: &str, ns: u64) {
    let mut guard = REGISTRY.lock().expect("profiler registry poisoned");
    let map = guard.get_or_insert_with(HashMap::new);
    map.entry(key.to_string())
        .or_insert_with(OpStat::new)
        .add(ns);
}

/// Clears all recorded samples and the forward mark.
pub fn reset() {
    let mut guard = REGISTRY.lock().expect("profiler registry poisoned");
    *guard = None;
    LAST_MARK.with(|m| m.set(None));
}

/// Snapshot of all op stats, sorted by total time descending.
pub fn snapshot() -> Vec<(String, OpStat)> {
    let guard = REGISTRY.lock().expect("profiler registry poisoned");
    let mut rows: Vec<(String, OpStat)> = guard
        .as_ref()
        .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
        .unwrap_or_default();
    rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
    rows
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the timing table as aligned text, one row per op path.
pub fn report_text() -> String {
    let rows = snapshot();
    let mut out = String::new();
    let total: u64 = rows.iter().map(|r| r.1.total_ns).sum();
    let width = rows.iter().map(|r| r.0.len()).max().unwrap_or(6).max(6);
    let _ = writeln!(
        out,
        "{:<width$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>6}",
        "op", "count", "total", "mean", "min", "max", "share"
    );
    for (path, s) in &rows {
        let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
        let share = if total > 0 {
            100.0 * s.total_ns as f64 / total as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<width$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {share:>5.1}%",
            path,
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(mean),
            fmt_ns(s.min_ns),
            fmt_ns(s.max_ns),
        );
    }
    let _ = writeln!(out, "{:<width$}  {:>9}  {:>10}", "TOTAL", "", fmt_ns(total));
    out
}

/// Renders the timing table as a JSON object (hand-rolled; no serde in
/// the dependency tree). Keys are op paths; each value carries count,
/// total/min/max nanoseconds, and the non-empty log2-ns buckets.
pub fn report_json() -> String {
    let rows = snapshot();
    let mut out = String::from("{\n  \"ops\": {\n");
    for (i, (path, s)) in rows.iter().enumerate() {
        let esc: String = path
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c => vec![c],
            })
            .collect();
        let _ = write!(
            out,
            "    \"{esc}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"log2_buckets\": {{",
            s.count,
            s.total_ns,
            if s.count > 0 { s.min_ns } else { 0 },
            s.max_ns
        );
        let mut first = true;
        for (b, &c) in s.buckets.iter().enumerate() {
            if c > 0 {
                if !first {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{b}\": {c}");
                first = false;
            }
        }
        out.push_str("}}");
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_aggregate_per_key() {
        // The registry is global and tests run concurrently, so only
        // assert on keys this test owns.
        add_sample("test-agg/conv2d", 1_000);
        add_sample("test-agg/conv2d", 3_000);
        let rows = snapshot();
        let stat = &rows.iter().find(|(k, _)| k == "test-agg/conv2d").unwrap().1;
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_ns, 4_000);
        assert_eq!(stat.min_ns, 1_000);
        assert_eq!(stat.max_ns, 3_000);
        let text = report_text();
        assert!(text.contains("test-agg/conv2d"));
        let json = report_json();
        assert!(json.contains("\"test-agg/conv2d\""));
        assert!(json.contains("\"total_ns\": 4000"));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut s = OpStat::new();
        s.add(1); // bucket 0
        s.add(1024); // bucket 10
        s.add(1536); // bucket 10
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[10], 2);
    }

    #[test]
    fn forward_marks_gate_attribution() {
        // The mark is thread-local, so this is race-free even though
        // the registry is shared.
        LAST_MARK.with(|m| m.set(None));
        note_forward("test-mark/op"); // no prior mark on this thread: not charged
        note_forward("test-mark/op"); // now marked: charged once
        let rows = snapshot();
        let stat = &rows.iter().find(|(k, _)| k == "test-mark/op").unwrap().1;
        assert_eq!(stat.count, 1);
    }
}
