//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a single-use tape: every operation appends a node holding
//! the forward value and (optionally) a backward closure. Calling
//! [`Graph::backward`] walks the tape in reverse, producing a [`Gradients`]
//! table indexed by [`VarId`]. Parameters registered via [`Graph::param`]
//! remember their [`ParamId`] so gradients can be written back into the
//! owning [`ParamSet`] with [`Graph::write_grads`].
//!
//! # Examples
//!
//! ```
//! use rd_tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_vec(vec![2.0, -3.0], &[2]));
//! let y = g.mul(x, x); // y = x^2
//! let loss = g.sum_all(y);
//! let grads = g.backward(loss);
//! assert_eq!(grads.get(x).data(), &[4.0, -6.0]); // d(x^2)/dx = 2x
//! ```

use crate::params::{ParamId, ParamSet};
use crate::smallvec::SmallVec;
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Position of the node on the tape.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a handle from a tape position. Used by analyses that
    /// walk the metadata tape; referencing a position past the end of the
    /// graph it came from will panic on first use.
    pub fn from_index(index: usize) -> Self {
        VarId(index)
    }
}

/// Declarative description of one tape node, recorded alongside its
/// opaque [`BackFn`]. Static analyses (shape validation, graph lints,
/// NaN provenance in `rd-analysis`) work entirely off this metadata, so
/// every op records its name, parents and the shape it claims to
/// produce. For eagerly-executed ops `expected_shape` always equals the
/// forward value's shape; for [`Graph::declare`] nodes it is the only
/// shape information there is.
#[derive(Debug, Clone)]
pub struct OpMeta {
    /// Stable op name (`"conv2d"`, `"add"`, ...); `"custom"` for fused
    /// ops recorded through [`Graph::custom`] without metadata.
    pub op: &'static str,
    /// Tape positions this node reads. Must be complete for analyses to
    /// trace reachability; `custom` nodes with unknown parents are
    /// treated conservatively.
    pub parents: SmallVec,
    /// The output shape this node claims to produce.
    pub expected_shape: Vec<usize>,
    /// Scalar op attributes, e.g. `("stride", 2)` for a conv.
    pub attrs: Vec<(&'static str, usize)>,
    /// `/`-joined scope path active when the node was recorded, e.g.
    /// `"head16/conv3"`. Empty outside any scope.
    pub scope: String,
}

impl OpMeta {
    /// Looks up a scalar attribute by name.
    pub fn attr(&self, name: &str) -> Option<usize> {
        self.attrs.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// Human-readable `scope/op` label for diagnostics.
    pub fn path(&self) -> String {
        if self.scope.is_empty() {
            self.op.to_string()
        } else {
            format!("{}/{}", self.scope, self.op)
        }
    }
}

/// Backward closure contract: `back(grad_out, values, grads)` must *add*
/// contributions into `grads[parent.index()]` for each of its parents and
/// must not touch any other entry. `values` is the full forward tape.
pub type BackFn = Box<dyn Fn(&Tensor, &[Tensor], &mut [Tensor])>;

/// Gradients produced by [`Graph::backward`], indexed by [`VarId`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Tensor>,
}

impl Gradients {
    /// Gradient of the loss with respect to the given node.
    pub fn get(&self, id: VarId) -> &Tensor {
        &self.grads[id.0]
    }
}

/// A single-use autodiff tape.
#[derive(Default)]
pub struct Graph {
    values: Vec<Tensor>,
    backs: Vec<Option<BackFn>>,
    metas: Vec<OpMeta>,
    param_links: Vec<(VarId, ParamId, u64)>,
    scope_stack: Vec<String>,
    scope_path: String,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.values.len())
            .field("params", &self.param_links.len())
            .finish()
    }
}

impl Drop for Graph {
    /// Returns every forward buffer to the scratch arena so the next
    /// tape (the attack loop builds one per step) reuses the capacity
    /// instead of reallocating.
    fn drop(&mut self) {
        for t in self.values.drain(..) {
            crate::arena::recycle(t.into_vec());
        }
    }
}

impl Drop for Gradients {
    /// Gradient buffers are recycled like forward buffers; consumers
    /// copy what they keep (`write_grads` accumulates into the
    /// `ParamSet`), so nothing aliases these by the time we drop.
    fn drop(&mut self) {
        for t in self.grads.drain(..) {
            crate::arena::recycle(t.into_vec());
        }
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Forward value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.values[id.0]
    }

    /// Recorded metadata of a node.
    pub fn meta(&self, id: VarId) -> &OpMeta {
        &self.metas[id.0]
    }

    /// Metadata of every node, in tape order.
    pub fn metas(&self) -> &[OpMeta] {
        &self.metas
    }

    /// Whether the node has a backward closure (leaves and explicit
    /// gradient stops do not).
    pub fn has_back(&self, id: VarId) -> bool {
        self.backs[id.0].is_some()
    }

    /// The `(node, parameter, param-set uid)` links recorded by
    /// [`Graph::param`], in registration order.
    pub fn param_links(&self) -> &[(VarId, ParamId, u64)] {
        &self.param_links
    }

    /// Enters a named scope; nodes recorded until the matching
    /// [`Graph::pop_scope`] carry `.../name` in their [`OpMeta::scope`].
    pub fn push_scope(&mut self, name: &str) {
        self.scope_stack.push(name.to_string());
        self.scope_path = self.scope_stack.join("/");
    }

    /// Leaves the innermost scope.
    pub fn pop_scope(&mut self) {
        self.scope_stack.pop();
        self.scope_path = self.scope_stack.join("/");
    }

    /// Runs `f` inside a named scope.
    ///
    /// SAFETY-adjacent note (this is *not* an `unsafe` block — the
    /// PR-6 audit found none in the workspace, and
    /// `unsafe_code = "deny"` in the workspace lints keeps it that
    /// way): this helper is merely *panic*-unsafe in that a panicking
    /// `f` skips the `pop_scope`, leaving the scope stack deeper than
    /// the caller entered with. That is harmless by construction —
    /// every `Graph` is single-use and is dropped when a panic unwinds
    /// past its owner, so no later op can observe the stale scope path.
    pub fn scoped<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_scope(name);
        let r = f(self);
        self.pop_scope();
        r
    }

    /// Internal append: every public op funnels through here so the
    /// metadata tape stays in lockstep with the value tape.
    pub(crate) fn record(
        &mut self,
        op: &'static str,
        parents: &[VarId],
        attrs: &[(&'static str, usize)],
        value: Tensor,
        back: Option<BackFn>,
    ) -> VarId {
        let meta = OpMeta {
            op,
            parents: SmallVec::from_slice(parents),
            expected_shape: value.shape().to_vec(),
            attrs: attrs.to_vec(),
            scope: self.scope_path.clone(),
        };
        if crate::profile::enabled() {
            // Forward timing is gap attribution: the value was computed
            // just before this call, so the elapsed time since the last
            // recorded op belongs to this op. Leaves re-mark without
            // charging so host-side work between tape touches (render,
            // sampling) is not misattributed to a tensor op.
            match op {
                "input" | "param" => crate::profile::mark(),
                _ => crate::profile::note_forward(&meta.path()),
            }
        }
        self.values.push(value);
        self.backs.push(back);
        self.metas.push(meta);
        VarId(self.values.len() - 1)
    }

    /// Appends a node. This is the extension point for fused ops defined in
    /// other crates (e.g. the detector's YOLO loss): `back` receives the
    /// output gradient, the full value tape and the mutable gradient tape,
    /// and must accumulate into its parents' entries only.
    ///
    /// Nodes appended this way carry opaque metadata (`op = "custom"`, no
    /// parents), which forces graph analyses to be conservative around
    /// them. Prefer [`Graph::custom_named`] so lints and shape validation
    /// can see through the op.
    pub fn custom(&mut self, value: Tensor, back: Option<BackFn>) -> VarId {
        self.record("custom", &[], &[], value, back)
    }

    /// Appends a fused op node with full metadata: a stable `op` name,
    /// the complete list of tape positions the closure reads, and any
    /// scalar attributes worth surfacing in diagnostics.
    pub fn custom_named(
        &mut self,
        op: &'static str,
        parents: &[VarId],
        attrs: &[(&'static str, usize)],
        value: Tensor,
        back: Option<BackFn>,
    ) -> VarId {
        self.record(op, parents, attrs, value, back)
    }

    /// Appends a *shape-only* node: no forward value is computed or
    /// stored, only metadata claiming `shape`. This lets model builders
    /// lower their architecture onto a tape and run
    /// `rd-analysis` shape validation before any kernel executes.
    /// Declared nodes must not be used with [`Graph::backward`].
    pub fn declare(
        &mut self,
        op: &'static str,
        parents: &[VarId],
        attrs: &[(&'static str, usize)],
        shape: &[usize],
    ) -> VarId {
        let meta = OpMeta {
            op,
            parents: SmallVec::from_slice(parents),
            expected_shape: shape.to_vec(),
            attrs: attrs.to_vec(),
            scope: self.scope_path.clone(),
        };
        // Placeholder value: the claimed shape lives in `expected_shape`,
        // and a scalar keeps memory flat for declaration-only graphs.
        self.values.push(Tensor::zeros(&[1]));
        self.backs.push(None);
        self.metas.push(meta);
        VarId(self.values.len() - 1)
    }

    /// Registers an input/constant leaf (gradients are still tracked so
    /// adversarial attacks can differentiate with respect to inputs).
    pub fn input(&mut self, value: Tensor) -> VarId {
        self.record("input", &[], &[], value, None)
    }

    /// Registers a parameter leaf linked back to `ps`.
    pub fn param(&mut self, ps: &ParamSet, id: ParamId) -> VarId {
        let v = self.record("param", &[], &[], ps.get(id).value().clone(), None);
        self.param_links.push((v, id, ps.uid()));
        v
    }

    /// Runs reverse-mode differentiation from `loss` (which must be a
    /// single-element tensor).
    ///
    /// # Panics
    ///
    /// Panics if `loss` holds more than one element.
    pub fn backward(&self, loss: VarId) -> Gradients {
        assert_eq!(
            self.values[loss.0].len(),
            1,
            "backward() needs a scalar loss"
        );
        let mut grads: Vec<Tensor> = self
            .values
            .iter()
            .map(|v| Tensor::zeros(v.shape()))
            .collect();
        grads[loss.0] = Tensor::ones(self.values[loss.0].shape());
        let profiling = crate::profile::enabled();
        for i in (0..=loss.0).rev() {
            if self.backs[i].is_none() {
                continue;
            }
            if grads[i].data().iter().all(|&x| x == 0.0) {
                continue;
            }
            let g = std::mem::replace(&mut grads[i], Tensor::scalar(0.0));
            if let Some(back) = &self.backs[i] {
                if profiling {
                    let t0 = std::time::Instant::now();
                    back(&g, &self.values, &mut grads);
                    let key = format!("{}/bwd", self.metas[i].path());
                    crate::profile::add_sample(&key, t0.elapsed().as_nanos() as u64);
                } else {
                    back(&g, &self.values, &mut grads);
                }
            }
            grads[i] = g;
        }
        Gradients { grads }
    }

    /// Consumes the tape and moves out the forward value of `id`
    /// without cloning it; every other buffer on the tape is recycled
    /// into the scratch arena by `Drop`.
    pub fn into_value(mut self, id: VarId) -> Tensor {
        std::mem::replace(&mut self.values[id.0], Tensor::scalar(0.0))
    }

    /// Accumulates parameter gradients into their [`ParamSet`]. Links
    /// belonging to *other* parameter sets (e.g. a frozen co-model in the
    /// same graph) are skipped, so call this once per trainable set.
    pub fn write_grads(&self, grads: &Gradients, ps: &mut ParamSet) {
        for &(var, pid, uid) in &self.param_links {
            if uid == ps.uid() {
                ps.get_mut(pid)
                    .grad_mut()
                    .add_scaled_assign(grads.get(var), 1.0);
            }
        }
    }

    // ---- pointwise and structural ops ----

    /// Elementwise sum of two same-shaped nodes.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.values[a.0].add(&self.values[b.0]);
        self.record(
            "add",
            &[a, b],
            &[],
            v,
            Some(Box::new(move |g, _vals, grads| {
                grads[a.0].add_scaled_assign(g, 1.0);
                grads[b.0].add_scaled_assign(g, 1.0);
            })),
        )
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.values[a.0].sub(&self.values[b.0]);
        self.record(
            "sub",
            &[a, b],
            &[],
            v,
            Some(Box::new(move |g, _vals, grads| {
                grads[a.0].add_scaled_assign(g, 1.0);
                grads[b.0].add_scaled_assign(g, -1.0);
            })),
        )
    }

    /// Elementwise product of two same-shaped nodes.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.values[a.0].mul(&self.values[b.0]);
        self.record(
            "mul",
            &[a, b],
            &[],
            v,
            Some(Box::new(move |g, vals, grads| {
                let ga = g.mul(&vals[b.0]);
                let gb = g.mul(&vals[a.0]);
                grads[a.0].add_scaled_assign(&ga, 1.0);
                grads[b.0].add_scaled_assign(&gb, 1.0);
            })),
        )
    }

    /// Multiplies a node by a constant scalar.
    pub fn scale(&mut self, a: VarId, c: f32) -> VarId {
        let v = self.values[a.0].scale(c);
        self.record(
            "scale",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, _vals, grads| {
                grads[a.0].add_scaled_assign(g, c);
            })),
        )
    }

    /// Adds a constant scalar to every element.
    pub fn add_scalar(&mut self, a: VarId, c: f32) -> VarId {
        let v = self.values[a.0].map(|x| x + c);
        self.record(
            "add_scalar",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, _vals, grads| {
                grads[a.0].add_scaled_assign(g, 1.0);
            })),
        )
    }

    /// Elementwise product with a constant tensor (e.g. a fixed mask).
    pub fn mul_const(&mut self, a: VarId, t: &Tensor) -> VarId {
        let v = self.values[a.0].mul(t);
        let t = t.clone();
        self.record(
            "mul_const",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, _vals, grads| {
                let ga = g.mul(&t);
                grads[a.0].add_scaled_assign(&ga, 1.0);
            })),
        )
    }

    /// Elementwise sum with a constant tensor.
    pub fn add_const(&mut self, a: VarId, t: &Tensor) -> VarId {
        let v = self.values[a.0].add(t);
        self.record(
            "add_const",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, _vals, grads| {
                grads[a.0].add_scaled_assign(g, 1.0);
            })),
        )
    }

    /// Mask interpolation `a * (1 - m) + b * m` with a constant mask `m`.
    ///
    /// This is the differentiable patch-compositing primitive: `a` is the
    /// scene, `b` the (warped) decal and `m` its alpha mask.
    pub fn lerp_mask(&mut self, a: VarId, b: VarId, mask: &Tensor) -> VarId {
        assert_eq!(self.values[a.0].shape(), self.values[b.0].shape());
        assert_eq!(self.values[a.0].shape(), mask.shape());
        let va = &self.values[a.0];
        let vb = &self.values[b.0];
        let mut out = va.clone();
        for ((o, &bv), &m) in out.data_mut().iter_mut().zip(vb.data()).zip(mask.data()) {
            *o = *o * (1.0 - m) + bv * m;
        }
        let mask = mask.clone();
        self.record(
            "lerp_mask",
            &[a, b],
            &[],
            out,
            Some(Box::new(move |g, _vals, grads| {
                for ((ga, &gv), &m) in grads[a.0]
                    .data_mut()
                    .iter_mut()
                    .zip(g.data())
                    .zip(mask.data())
                {
                    *ga += gv * (1.0 - m);
                }
                for ((gb, &gv), &m) in grads[b.0]
                    .data_mut()
                    .iter_mut()
                    .zip(g.data())
                    .zip(mask.data())
                {
                    *gb += gv * m;
                }
            })),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.values[a.0].map(|x| x.max(0.0));
        self.record(
            "relu",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, vals, grads| {
                let ga = g.zip_map(&vals[a.0], |gv, x| if x > 0.0 { gv } else { 0.0 });
                grads[a.0].add_scaled_assign(&ga, 1.0);
            })),
        )
    }

    /// Leaky rectified linear unit with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: VarId, alpha: f32) -> VarId {
        let v = self.values[a.0].map(|x| if x > 0.0 { x } else { alpha * x });
        self.record(
            "leaky_relu",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, vals, grads| {
                let ga = g.zip_map(&vals[a.0], |gv, x| if x > 0.0 { gv } else { alpha * gv });
                grads[a.0].add_scaled_assign(&ga, 1.0);
            })),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.values[a.0].map(|x| 1.0 / (1.0 + (-x).exp()));
        let out = self.record("sigmoid", &[a], &[], v, None);
        let o = out.0;
        self.backs[o] = Some(Box::new(move |g, vals, grads| {
            let y = &vals[o];
            let ga = g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv));
            grads[a.0].add_scaled_assign(&ga, 1.0);
        }));
        out
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.values[a.0].map(f32::tanh);
        let out = self.record("tanh", &[a], &[], v, None);
        let o = out.0;
        self.backs[o] = Some(Box::new(move |g, vals, grads| {
            let y = &vals[o];
            let ga = g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv));
            grads[a.0].add_scaled_assign(&ga, 1.0);
        }));
        out
    }

    /// Elementwise power with a constant exponent, `max(x, eps)^p`.
    ///
    /// Inputs are clamped to `eps = 1e-6` from below so gamma correction of
    /// near-black pixels stays finite in both directions.
    pub fn powf_const(&mut self, a: VarId, p: f32) -> VarId {
        const EPS: f32 = 1e-6;
        let v = self.values[a.0].map(|x| x.max(EPS).powf(p));
        self.record(
            "powf_const",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, vals, grads| {
                let ga = g.zip_map(&vals[a.0], |gv, x| {
                    let xc = x.max(EPS);
                    gv * p * xc.powf(p - 1.0)
                });
                grads[a.0].add_scaled_assign(&ga, 1.0);
            })),
        )
    }

    /// Clamps every element to `[lo, hi]`; gradient passes only inside.
    pub fn clamp(&mut self, a: VarId, lo: f32, hi: f32) -> VarId {
        let v = self.values[a.0].map(|x| x.clamp(lo, hi));
        self.record(
            "clamp",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, vals, grads| {
                let ga = g.zip_map(&vals[a.0], |gv, x| if x > lo && x < hi { gv } else { 0.0 });
                grads[a.0].add_scaled_assign(&ga, 1.0);
            })),
        )
    }

    /// Reinterprets the node with a new shape of equal element count.
    pub fn reshape(&mut self, a: VarId, shape: &[usize]) -> VarId {
        let v = self.values[a.0].clone().reshape(shape);
        let old_shape = self.values[a.0].shape().to_vec();
        self.record(
            "reshape",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, _vals, grads| {
                let gr = g.clone().reshape(&old_shape);
                grads[a.0].add_scaled_assign(&gr, 1.0);
            })),
        )
    }

    /// Repeats a single-channel NCHW node `k` times along the channel axis.
    pub fn repeat_channels(&mut self, a: VarId, k: usize) -> VarId {
        let x = &self.values[a.0];
        assert_eq!(x.shape().len(), 4, "repeat_channels needs NCHW");
        assert_eq!(x.shape()[1], 1, "repeat_channels input must have 1 channel");
        let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let hw = h * w;
        let mut out = Tensor::zeros(&[n, k, h, w]);
        for i in 0..n {
            let src = &x.data()[i * hw..(i + 1) * hw];
            for c in 0..k {
                let off = (i * k + c) * hw;
                out.data_mut()[off..off + hw].copy_from_slice(src);
            }
        }
        self.record(
            "repeat_channels",
            &[a],
            &[("k", k)],
            out,
            Some(Box::new(move |g, _vals, grads| {
                let ga = &mut grads[a.0];
                for i in 0..n {
                    for c in 0..k {
                        let off = (i * k + c) * hw;
                        for j in 0..hw {
                            ga.data_mut()[i * hw + j] += g.data()[off + j];
                        }
                    }
                }
            })),
        )
    }

    /// Concatenates two NCHW nodes along the channel axis.
    pub fn concat_channels(&mut self, a: VarId, b: VarId) -> VarId {
        let (xa, xb) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(xa.shape().len(), 4);
        assert_eq!(xb.shape().len(), 4);
        let (n, ca, h, w) = (xa.shape()[0], xa.shape()[1], xa.shape()[2], xa.shape()[3]);
        let cb = xb.shape()[1];
        assert_eq!(&xb.shape()[2..], &[h, w], "spatial dims must match");
        assert_eq!(xb.shape()[0], n, "batch dims must match");
        let hw = h * w;
        let mut out = Tensor::zeros(&[n, ca + cb, h, w]);
        for i in 0..n {
            let dst = &mut out.data_mut()[i * (ca + cb) * hw..];
            dst[..ca * hw].copy_from_slice(&xa.data()[i * ca * hw..(i + 1) * ca * hw]);
            dst[ca * hw..(ca + cb) * hw]
                .copy_from_slice(&xb.data()[i * cb * hw..(i + 1) * cb * hw]);
        }
        self.record(
            "concat_channels",
            &[a, b],
            &[],
            out,
            Some(Box::new(move |g, _vals, grads| {
                for i in 0..n {
                    let src = &g.data()[i * (ca + cb) * hw..];
                    let ga = &mut grads[a.0];
                    for j in 0..ca * hw {
                        ga.data_mut()[i * ca * hw + j] += src[j];
                    }
                    let gb = &mut grads[b.0];
                    for j in 0..cb * hw {
                        gb.data_mut()[i * cb * hw + j] += src[ca * hw + j];
                    }
                }
            })),
        )
    }

    /// Concatenates nodes along the batch (first) axis. All inputs must
    /// share their remaining dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing dimensions differ.
    pub fn concat_batch(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_batch needs at least one node");
        let first_shape = self.values[parts[0].0].shape().to_vec();
        assert!(!first_shape.is_empty());
        let item_rest: Vec<usize> = first_shape[1..].to_vec();
        let mut total_n = 0usize;
        let mut sizes = Vec::with_capacity(parts.len());
        for &p in parts {
            let sh = self.values[p.0].shape();
            assert_eq!(
                &sh[1..],
                &item_rest[..],
                "concat_batch trailing dims differ"
            );
            total_n += sh[0];
            sizes.push(self.values[p.0].len());
        }
        let mut shape = vec![total_n];
        shape.extend_from_slice(&item_rest);
        let mut data = Vec::with_capacity(shape.iter().product());
        for &p in parts {
            data.extend_from_slice(self.values[p.0].data());
        }
        let out = Tensor::from_vec(data, &shape);
        let parent_ids = parts;
        let parts = parts.to_vec();
        self.record(
            "concat_batch",
            parent_ids,
            &[],
            out,
            Some(Box::new(move |g, _vals, grads| {
                let mut off = 0usize;
                for (&p, &len) in parts.iter().zip(&sizes) {
                    let gp = &mut grads[p.0];
                    for (dst, &src) in gp.data_mut().iter_mut().zip(&g.data()[off..off + len]) {
                        *dst += src;
                    }
                    off += len;
                }
            })),
        )
    }

    /// Sum of all elements, producing a scalar node.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(self.values[a.0].sum());
        self.record(
            "sum_all",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, _vals, grads| {
                let gv = g.data()[0];
                for x in grads[a.0].data_mut() {
                    *x += gv;
                }
            })),
        )
    }

    /// Mean of all elements, producing a scalar node.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let n = self.values[a.0].len() as f32;
        let v = Tensor::scalar(self.values[a.0].mean());
        self.record(
            "mean_all",
            &[a],
            &[],
            v,
            Some(Box::new(move |g, _vals, grads| {
                let gv = g.data()[0] / n;
                for x in grads[a.0].data_mut() {
                    *x += gv;
                }
            })),
        )
    }

    /// Matrix product of two rank-2 nodes.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.values[a.0].matmul(&self.values[b.0]);
        self.record(
            "matmul",
            &[a, b],
            &[],
            v,
            Some(Box::new(move |g, vals, grads| {
                let ga = g.matmul(&vals[b.0].transpose2d());
                let gb = vals[a.0].transpose2d().matmul(g);
                grads[a.0].add_scaled_assign(&ga, 1.0);
                grads[b.0].add_scaled_assign(&gb, 1.0);
            })),
        )
    }

    /// Fully connected layer `y = x w^T + b` for `x: [N, I]`, `w: [O, I]`,
    /// `b: [O]`.
    pub fn linear(&mut self, x: VarId, w: VarId, b: VarId) -> VarId {
        let xv = &self.values[x.0];
        let wv = &self.values[w.0];
        let bv = &self.values[b.0];
        assert_eq!(xv.shape().len(), 2);
        assert_eq!(wv.shape().len(), 2);
        let (n, i) = (xv.shape()[0], xv.shape()[1]);
        let (o, i2) = (wv.shape()[0], wv.shape()[1]);
        assert_eq!(i, i2, "linear: input dim mismatch");
        assert_eq!(bv.len(), o, "linear: bias dim mismatch");
        let mut v = xv.matmul(&wv.transpose2d());
        for r in 0..n {
            for c in 0..o {
                let idx = r * o + c;
                let add = bv.data()[c];
                v.data_mut()[idx] += add;
            }
        }
        self.record(
            "linear",
            &[x, w, b],
            &[],
            v,
            Some(Box::new(move |g, vals, grads| {
                let gx = g.matmul(&vals[w.0]);
                grads[x.0].add_scaled_assign(&gx, 1.0);
                let gw = g.transpose2d().matmul(&vals[x.0]);
                grads[w.0].add_scaled_assign(&gw, 1.0);
                let gb = &mut grads[b.0];
                for r in 0..n {
                    for c in 0..o {
                        gb.data_mut()[c] += g.data()[r * o + c];
                    }
                }
            })),
        )
    }

    /// Adds a per-channel bias `b: [C]` to an NCHW node.
    pub fn add_bias_channel(&mut self, x: VarId, b: VarId) -> VarId {
        let xv = &self.values[x.0];
        let bv = &self.values[b.0];
        assert_eq!(xv.shape().len(), 4);
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        assert_eq!(bv.len(), c, "bias length must equal channel count");
        let hw = h * w;
        let mut v = xv.clone();
        for i in 0..n {
            for ch in 0..c {
                let add = bv.data()[ch];
                let off = (i * c + ch) * hw;
                for o in &mut v.data_mut()[off..off + hw] {
                    *o += add;
                }
            }
        }
        self.record(
            "add_bias_channel",
            &[x, b],
            &[],
            v,
            Some(Box::new(move |g, _vals, grads| {
                grads[x.0].add_scaled_assign(g, 1.0);
                let gb = &mut grads[b.0];
                for i in 0..n {
                    for ch in 0..c {
                        let off = (i * c + ch) * hw;
                        let s: f32 = g.data()[off..off + hw].iter().sum();
                        gb.data_mut()[ch] += s;
                    }
                }
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::numeric_grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_unary(op: impl Fn(&mut Graph, VarId) -> VarId, x0: Tensor, tol: f32) {
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let y = op(&mut g, x);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        let num = numeric_grad(
            |t| {
                let mut g = Graph::new();
                let x = g.input(t.clone());
                let y = op(&mut g, x);
                let loss = g.sum_all(y);
                g.value(loss).data()[0]
            },
            &x0,
            1e-3,
        );
        for (a, n) in grads.get(x).data().iter().zip(num.data()) {
            assert!((a - n).abs() < tol, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn grad_sigmoid() {
        check_unary(
            |g, x| g.sigmoid(x),
            Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0], &[4]),
            1e-3,
        );
    }

    #[test]
    fn grad_tanh() {
        check_unary(
            |g, x| g.tanh(x),
            Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0], &[4]),
            1e-3,
        );
    }

    #[test]
    fn grad_leaky_relu() {
        check_unary(
            |g, x| g.leaky_relu(x, 0.1),
            Tensor::from_vec(vec![0.5, -0.5, 2.0, -2.0], &[4]),
            1e-3,
        );
    }

    #[test]
    fn grad_powf() {
        check_unary(
            |g, x| g.powf_const(x, 1.7),
            Tensor::from_vec(vec![0.5, 0.9, 0.1, 0.3], &[4]),
            1e-2,
        );
    }

    #[test]
    fn grad_mul_and_add() {
        let mut g = Graph::new();
        let a0 = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b0 = Tensor::from_vec(vec![3.0, -4.0], &[2]);
        let a = g.input(a0);
        let b = g.input(b0);
        let p = g.mul(a, b);
        let s = g.add(p, a);
        let loss = g.sum_all(s);
        let grads = g.backward(loss);
        // d/da (a*b + a) = b + 1 ; d/db = a
        assert_eq!(grads.get(a).data(), &[4.0, -3.0]);
        assert_eq!(grads.get(b).data(), &[1.0, 2.0]);
    }

    #[test]
    fn grad_linear_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(11);
        let x0 = Tensor::randn(&mut rng, &[3, 4], 1.0);
        let w0 = Tensor::randn(&mut rng, &[2, 4], 1.0);
        let b0 = Tensor::randn(&mut rng, &[2], 1.0);
        let run = |x0: &Tensor, w0: &Tensor, b0: &Tensor| -> (f32, Option<Gradients>, Vec<VarId>) {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let w = g.input(w0.clone());
            let b = g.input(b0.clone());
            let y = g.linear(x, w, b);
            let y2 = g.mul(y, y);
            let loss = g.sum_all(y2);
            let grads = g.backward(loss);
            let l = g.value(loss).data()[0];
            (l, Some(grads), vec![x, w, b])
        };
        let (_, grads, vars) = run(&x0, &w0, &b0);
        let grads = grads.unwrap();
        let numw = numeric_grad(|w| run(&x0, w, &b0).0, &w0, 1e-3);
        for (a, n) in grads.get(vars[1]).data().iter().zip(numw.data()) {
            assert!((a - n).abs() < 0.05, "analytic {a} vs numeric {n}");
        }
        let numb = numeric_grad(|b| run(&x0, &w0, b).0, &b0, 1e-3);
        for (a, n) in grads.get(vars[2]).data().iter().zip(numb.data()) {
            assert!((a - n).abs() < 0.05, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn grad_matmul() {
        let mut rng = StdRng::seed_from_u64(5);
        let a0 = Tensor::randn(&mut rng, &[2, 3], 1.0);
        let b0 = Tensor::randn(&mut rng, &[3, 2], 1.0);
        let mut g = Graph::new();
        let a = g.input(a0.clone());
        let b = g.input(b0.clone());
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        let num = numeric_grad(
            |t| {
                let mut g = Graph::new();
                let a = g.input(t.clone());
                let b = g.input(b0.clone());
                let c = g.matmul(a, b);
                let loss = g.sum_all(c);
                g.value(loss).data()[0]
            },
            &a0,
            1e-3,
        );
        for (x, n) in grads.get(a).data().iter().zip(num.data()) {
            assert!((x - n).abs() < 1e-2);
        }
    }

    #[test]
    fn grad_lerp_mask() {
        let a0 = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let b0 = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[1, 1, 2, 2]);
        let m = Tensor::from_vec(vec![0.0, 0.25, 0.75, 1.0], &[1, 1, 2, 2]);
        let mut g = Graph::new();
        let a = g.input(a0);
        let b = g.input(b0);
        let o = g.lerp_mask(a, b, &m);
        assert_eq!(g.value(o).data(), &[1.0, 3.0, 6.0, 8.0]);
        let loss = g.sum_all(o);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).data(), &[1.0, 0.75, 0.25, 0.0]);
        assert_eq!(grads.get(b).data(), &[0.0, 0.25, 0.75, 1.0]);
    }

    #[test]
    fn grad_repeat_channels() {
        let x0 = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let mut g = Graph::new();
        let x = g.input(x0);
        let y = g.repeat_channels(x, 3);
        assert_eq!(g.value(y).shape(), &[1, 3, 2, 2]);
        assert_eq!(g.value(y).at4(0, 2, 1, 1), 4.0);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn grad_concat_channels() {
        let a0 = Tensor::ones(&[2, 2, 2, 2]);
        let b0 = Tensor::full(&[2, 1, 2, 2], 5.0);
        let mut g = Graph::new();
        let a = g.input(a0);
        let b = g.input(b0);
        let c = g.concat_channels(a, b);
        assert_eq!(g.value(c).shape(), &[2, 3, 2, 2]);
        assert_eq!(g.value(c).at4(1, 2, 0, 0), 5.0);
        assert_eq!(g.value(c).at4(1, 1, 0, 0), 1.0);
        let s = g.sum_all(c);
        let grads = g.backward(s);
        assert!(grads.get(a).data().iter().all(|&x| x == 1.0));
        assert!(grads.get(b).data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn grad_bias_channel() {
        let x0 = Tensor::zeros(&[2, 3, 2, 2]);
        let b0 = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let mut g = Graph::new();
        let x = g.input(x0);
        let b = g.input(b0);
        let y = g.add_bias_channel(x, b);
        assert_eq!(g.value(y).at4(1, 2, 1, 1), 3.0);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        // each channel has N*H*W = 2*2*2 = 8 elements
        assert_eq!(grads.get(b).data(), &[8.0, 8.0, 8.0]);
    }

    #[test]
    fn param_grads_flow_to_paramset() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::from_vec(vec![2.0, 3.0], &[2]));
        let mut g = Graph::new();
        let wv = g.param(&ps, w);
        let y = g.mul(wv, wv);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        g.write_grads(&grads, &mut ps);
        assert_eq!(ps.get(w).grad().data(), &[4.0, 6.0]);
        // accumulation: second write adds
        g.write_grads(&grads, &mut ps);
        assert_eq!(ps.get(w).grad().data(), &[8.0, 12.0]);
    }

    #[test]
    fn concat_batch_values_and_grads() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        let b = g.input(Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]));
        let c = g.concat_batch(&[a, b]);
        assert_eq!(g.value(c).shape(), &[3, 2]);
        assert_eq!(g.value(c).data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c2 = g.mul(c, c);
        let loss = g.sum_all(c2);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).data(), &[2.0, 4.0]);
        assert_eq!(grads.get(b).data(), &[6.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn grads_route_to_the_correct_param_set() {
        let mut trainable = ParamSet::new();
        let mut frozen = ParamSet::new();
        let w = trainable.register("w", Tensor::from_vec(vec![2.0], &[1]));
        let f = frozen.register("f", Tensor::from_vec(vec![3.0], &[1]));
        let mut g = Graph::new();
        let wv = g.param(&trainable, w);
        let fv = g.param(&frozen, f);
        let y = g.mul(wv, fv);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        g.write_grads(&grads, &mut trainable);
        assert_eq!(trainable.get(w).grad().data(), &[3.0]);
        // the frozen set was never written
        assert_eq!(frozen.get(f).grad().data(), &[0.0]);
        // and writing to it works independently
        g.write_grads(&grads, &mut frozen);
        assert_eq!(frozen.get(f).grad().data(), &[2.0]);
    }

    #[test]
    fn mean_all_scales_gradient() {
        let x0 = Tensor::ones(&[4]);
        let mut g = Graph::new();
        let x = g.input(x0);
        let m = g.mean_all(x);
        let grads = g.backward(m);
        assert!(grads.get(x).data().iter().all(|&v| (v - 0.25).abs() < 1e-7));
    }

    #[test]
    fn clamp_blocks_gradient_outside() {
        let x0 = Tensor::from_vec(vec![-2.0, 0.5, 2.0], &[3]);
        let mut g = Graph::new();
        let x = g.input(x0);
        let y = g.clamp(x, 0.0, 1.0);
        assert_eq!(g.value(y).data(), &[0.0, 0.5, 1.0]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).data(), &[0.0, 1.0, 0.0]);
    }
}
