//! Max pooling and nearest-neighbour upsampling.
//!
//! Both ops are embarrassingly parallel over `N*C` planes; large
//! inputs fan the planes out across [`crate::parallel`] in fixed
//! groups (disjoint output chunks, so determinism is structural).
//!
//! The batched forward/backward kernels are free functions shared
//! between the tape closures here and the compiled training plan
//! (`crate::train_plan`), so the two paths are bitwise identical by
//! construction — including the serial-vs-parallel gating, which only
//! decides which thread touches a plane, never its arithmetic.

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

/// Below this much per-op work the plane loops stay serial — the
/// worker-pool bookkeeping would cost more than it saves.
const PAR_THRESHOLD: usize = 1 << 14;

/// Batched max-pool forward over `planes = N*C` planes, recording the
/// plane-relative argmax of every window (ties pick the first index,
/// darknet semantics).
#[allow(clippy::too_many_arguments)]
pub(crate) fn max_pool_forward(
    xd: &[f32],
    planes: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    ho: usize,
    wo: usize,
    od: &mut [f32],
    argmax: &mut [u32],
) {
    let hw = h * w;
    let howo = ho * wo;
    let fill = |nc: usize, oplane: &mut [f32], aplane: &mut [u32]| {
        let xoff = nc * hw;
        for oh in 0..ho {
            for ow in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0u32;
                for ki in 0..k {
                    let ih = oh * stride + ki;
                    if ih >= h {
                        continue;
                    }
                    for kj in 0..k {
                        let iw = ow * stride + kj;
                        if iw >= w {
                            continue;
                        }
                        let v = xd[xoff + ih * w + iw];
                        if v > best {
                            best = v;
                            best_idx = (ih * w + iw) as u32;
                        }
                    }
                }
                oplane[oh * wo + ow] = best;
                aplane[oh * wo + ow] = best_idx;
            }
        }
    };
    if planes > 1 && planes * k * k * howo >= PAR_THRESHOLD {
        let per = planes.div_ceil(crate::parallel::groups_for(planes));
        crate::parallel::for_each_chunk2_mut(od, argmax, per * howo, per * howo, |gi, oc, ac| {
            for (li, (op, ap)) in oc.chunks_mut(howo).zip(ac.chunks_mut(howo)).enumerate() {
                fill(gi * per + li, op, ap);
            }
        });
    } else {
        for nc in 0..planes {
            let (op, ap) = (
                &mut od[nc * howo..(nc + 1) * howo],
                &mut argmax[nc * howo..(nc + 1) * howo],
            );
            fill(nc, op, ap);
        }
    }
}

/// Batched max-pool backward: scatter-adds each output gradient onto
/// its recorded argmax position.
#[allow(clippy::too_many_arguments)]
pub(crate) fn max_pool_backward(
    gd: &[f32],
    argmax: &[u32],
    planes: usize,
    h: usize,
    w: usize,
    ho: usize,
    wo: usize,
    gx: &mut [f32],
) {
    let hw = h * w;
    let howo = ho * wo;
    let scatter = |nc: usize, gxplane: &mut [f32]| {
        for i in 0..howo {
            let src = argmax[nc * howo + i] as usize;
            gxplane[src] += gd[nc * howo + i];
        }
    };
    if planes > 1 && planes * howo >= PAR_THRESHOLD {
        let per = planes.div_ceil(crate::parallel::groups_for(planes));
        crate::parallel::for_each_chunk_mut(gx, per * hw, |gi, gxc| {
            for (li, gxp) in gxc.chunks_mut(hw).enumerate() {
                scatter(gi * per + li, gxp);
            }
        });
    } else {
        for nc in 0..planes {
            scatter(nc, &mut gx[nc * hw..(nc + 1) * hw]);
        }
    }
}

/// Batched nearest-neighbour 2x upsampling forward; `h`/`w` are the
/// *input* plane dims.
pub(crate) fn upsample2x_forward(xd: &[f32], planes: usize, h: usize, w: usize, od: &mut [f32]) {
    let hw = h * w;
    let (ho, wo) = (h * 2, w * 2);
    let howo = ho * wo;
    let fill = |nc: usize, oplane: &mut [f32]| {
        for oh in 0..ho {
            for ow in 0..wo {
                oplane[oh * wo + ow] = xd[nc * hw + (oh / 2) * w + ow / 2];
            }
        }
    };
    if planes > 1 && planes * howo >= PAR_THRESHOLD {
        let per = planes.div_ceil(crate::parallel::groups_for(planes));
        crate::parallel::for_each_chunk_mut(od, per * howo, |gi, oc| {
            for (li, op) in oc.chunks_mut(howo).enumerate() {
                fill(gi * per + li, op);
            }
        });
    } else {
        for nc in 0..planes {
            fill(nc, &mut od[nc * howo..(nc + 1) * howo]);
        }
    }
}

/// Batched 2x upsampling backward: each input pixel accumulates its
/// four output gradients in `(oh, ow)` scan order.
pub(crate) fn upsample2x_backward(gd: &[f32], planes: usize, h: usize, w: usize, gx: &mut [f32]) {
    let hw = h * w;
    let (ho, wo) = (h * 2, w * 2);
    let howo = ho * wo;
    let scatter = |nc: usize, gxplane: &mut [f32]| {
        for oh in 0..ho {
            for ow in 0..wo {
                gxplane[(oh / 2) * w + ow / 2] += gd[nc * howo + oh * wo + ow];
            }
        }
    };
    if planes > 1 && planes * howo >= PAR_THRESHOLD {
        let per = planes.div_ceil(crate::parallel::groups_for(planes));
        crate::parallel::for_each_chunk_mut(gx, per * hw, |gi, gxc| {
            for (li, gxp) in gxc.chunks_mut(hw).enumerate() {
                scatter(gi * per + li, gxp);
            }
        });
    } else {
        for nc in 0..planes {
            scatter(nc, &mut gx[nc * hw..(nc + 1) * hw]);
        }
    }
}

impl Graph {
    /// Max pooling over `k x k` windows. `pad` pads with `-inf` on the
    /// bottom/right only when needed to keep YOLOv3-tiny's `size=2,stride=1`
    /// pool shape-preserving (darknet semantics).
    ///
    /// # Panics
    ///
    /// Panics if the input is not NCHW.
    pub fn max_pool2d(&mut self, x: VarId, k: usize, stride: usize, pad: usize) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape().len(), 4, "max_pool2d input must be NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        let ho = (h + pad - k) / stride + 1;
        let wo = (w + pad - k) / stride + 1;
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        let mut argmax: Vec<u32> = vec![0; n * c * ho * wo];
        let planes = n * c;
        max_pool_forward(
            xv.data(),
            planes,
            h,
            w,
            k,
            stride,
            ho,
            wo,
            out.data_mut(),
            &mut argmax,
        );
        self.record(
            "max_pool2d",
            &[x],
            &[("k", k), ("stride", stride), ("pad", pad)],
            out,
            Some(Box::new(move |g, _vals, grads| {
                max_pool_backward(
                    g.data(),
                    &argmax,
                    planes,
                    h,
                    w,
                    ho,
                    wo,
                    grads[x.0].data_mut(),
                );
            })),
        )
    }

    /// Nearest-neighbour 2x upsampling of an NCHW node.
    pub fn upsample_nearest2x(&mut self, x: VarId) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape().len(), 4, "upsample input must be NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        let mut out = Tensor::zeros(&[n, c, h * 2, w * 2]);
        let planes = n * c;
        upsample2x_forward(xv.data(), planes, h, w, out.data_mut());
        self.record(
            "upsample_nearest2x",
            &[x],
            &[],
            out,
            Some(Box::new(move |g, _vals, grads| {
                upsample2x_backward(g.data(), planes, h, w, grads[x.0].data_mut());
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2_stride2() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
            &[1, 1, 4, 4],
        ));
        let y = g.max_pool2d(x, 2, 2, 0);
        assert_eq!(g.value(y).shape(), &[1, 1, 2, 2]);
        assert_eq!(g.value(y).data(), &[4.0, 8.0, 12.0, 16.0]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        // gradient lands only on the max positions
        let gx = grads.get(x);
        assert_eq!(gx.at4(0, 0, 1, 1), 1.0);
        assert_eq!(gx.at4(0, 0, 0, 0), 0.0);
        assert_eq!(gx.data().iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn max_pool_stride1_same_shape() {
        // darknet-style size=2 stride=1 pad=1 keeps H,W
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 2, 2]));
        let y = g.max_pool2d(x, 2, 1, 1);
        assert_eq!(g.value(y).shape(), &[1, 1, 2, 2]);
        assert_eq!(g.value(y).data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn upsample_values_and_grad() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 2, 2]));
        let y = g.upsample_nearest2x(x);
        assert_eq!(g.value(y).shape(), &[1, 1, 4, 4]);
        assert_eq!(g.value(y).at4(0, 0, 0, 1), 1.0);
        assert_eq!(g.value(y).at4(0, 0, 3, 3), 4.0);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        // each input pixel feeds 4 outputs
        assert!(grads.get(x).data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn max_pool_ties_pick_first() {
        let mut g = Graph::new();
        let x = g.input(Tensor::full(&[1, 1, 2, 2], 7.0));
        let y = g.max_pool2d(x, 2, 2, 0);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).data(), &[1.0, 0.0, 0.0, 0.0]);
    }
}
