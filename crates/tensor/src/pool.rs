//! Max pooling and nearest-neighbour upsampling.

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

impl Graph {
    /// Max pooling over `k x k` windows. `pad` pads with `-inf` on the
    /// bottom/right only when needed to keep YOLOv3-tiny's `size=2,stride=1`
    /// pool shape-preserving (darknet semantics).
    ///
    /// # Panics
    ///
    /// Panics if the input is not NCHW.
    pub fn max_pool2d(&mut self, x: VarId, k: usize, stride: usize, pad: usize) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape().len(), 4, "max_pool2d input must be NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        let ho = (h + pad - k) / stride + 1;
        let wo = (w + pad - k) / stride + 1;
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        let mut argmax: Vec<u32> = vec![0; n * c * ho * wo];
        {
            let xd = xv.data();
            let od = out.data_mut();
            for nc in 0..n * c {
                let xoff = nc * h * w;
                let ooff = nc * ho * wo;
                for oh in 0..ho {
                    for ow in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0u32;
                        for ki in 0..k {
                            let ih = oh * stride + ki;
                            if ih >= h {
                                continue;
                            }
                            for kj in 0..k {
                                let iw = ow * stride + kj;
                                if iw >= w {
                                    continue;
                                }
                                let v = xd[xoff + ih * w + iw];
                                if v > best {
                                    best = v;
                                    best_idx = (ih * w + iw) as u32;
                                }
                            }
                        }
                        od[ooff + oh * wo + ow] = best;
                        argmax[ooff + oh * wo + ow] = best_idx;
                    }
                }
            }
        }
        let hw = h * w;
        let howo = ho * wo;
        self.record(
            "max_pool2d",
            &[x],
            &[("k", k), ("stride", stride), ("pad", pad)],
            out,
            Some(Box::new(move |g, _vals, grads| {
                let gx = &mut grads[x.0];
                for nc in 0..n * c {
                    for i in 0..howo {
                        let src = argmax[nc * howo + i] as usize;
                        gx.data_mut()[nc * hw + src] += g.data()[nc * howo + i];
                    }
                }
            })),
        )
    }

    /// Nearest-neighbour 2x upsampling of an NCHW node.
    pub fn upsample_nearest2x(&mut self, x: VarId) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape().len(), 4, "upsample input must be NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        let (ho, wo) = (h * 2, w * 2);
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        {
            let xd = xv.data();
            let od = out.data_mut();
            for nc in 0..n * c {
                for oh in 0..ho {
                    for ow in 0..wo {
                        od[nc * ho * wo + oh * wo + ow] = xd[nc * h * w + (oh / 2) * w + ow / 2];
                    }
                }
            }
        }
        self.record(
            "upsample_nearest2x",
            &[x],
            &[],
            out,
            Some(Box::new(move |g, _vals, grads| {
                let gx = &mut grads[x.0];
                for nc in 0..n * c {
                    for oh in 0..ho {
                        for ow in 0..wo {
                            gx.data_mut()[nc * h * w + (oh / 2) * w + ow / 2] +=
                                g.data()[nc * ho * wo + oh * wo + ow];
                        }
                    }
                }
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2_stride2() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
            &[1, 1, 4, 4],
        ));
        let y = g.max_pool2d(x, 2, 2, 0);
        assert_eq!(g.value(y).shape(), &[1, 1, 2, 2]);
        assert_eq!(g.value(y).data(), &[4.0, 8.0, 12.0, 16.0]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        // gradient lands only on the max positions
        let gx = grads.get(x);
        assert_eq!(gx.at4(0, 0, 1, 1), 1.0);
        assert_eq!(gx.at4(0, 0, 0, 0), 0.0);
        assert_eq!(gx.data().iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn max_pool_stride1_same_shape() {
        // darknet-style size=2 stride=1 pad=1 keeps H,W
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 2, 2]));
        let y = g.max_pool2d(x, 2, 1, 1);
        assert_eq!(g.value(y).shape(), &[1, 1, 2, 2]);
        assert_eq!(g.value(y).data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn upsample_values_and_grad() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 2, 2]));
        let y = g.upsample_nearest2x(x);
        assert_eq!(g.value(y).shape(), &[1, 1, 4, 4]);
        assert_eq!(g.value(y).at4(0, 0, 0, 1), 1.0);
        assert_eq!(g.value(y).at4(0, 0, 3, 3), 4.0);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        // each input pixel feeds 4 outputs
        assert!(grads.get(x).data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn max_pool_ties_pick_first() {
        let mut g = Graph::new();
        let x = g.input(Tensor::full(&[1, 1, 2, 2], 7.0));
        let y = g.max_pool2d(x, 2, 2, 0);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).data(), &[1.0, 0.0, 0.0, 0.0]);
    }
}
