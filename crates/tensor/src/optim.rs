//! First-order optimizers over a [`ParamSet`].

use crate::params::ParamSet;
use crate::tensor::Tensor;

/// Result of one training step, shared by every step-wise trainer in the
/// workspace so the recovery runner can treat them uniformly.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// The step completed and the optimizer update was applied.
    Ran {
        /// The step's scalar loss.
        loss: f32,
    },
    /// A non-finite loss or gradient was detected **before** any update
    /// was applied; parameters and optimizer state are untouched.
    NonFinite {
        /// Human-readable provenance (offending params, tape audit).
        detail: String,
    },
}

/// Stochastic gradient descent with optional classical momentum.
///
/// # Examples
///
/// ```
/// use rd_tensor::{optim::Sgd, ParamSet, Tensor};
///
/// let mut ps = ParamSet::new();
/// let w = ps.register("w", Tensor::from_vec(vec![1.0], &[1]));
/// ps.get_mut(w).grad_mut().fill(0.5);
/// let mut opt = Sgd::new(0.1, 0.0);
/// opt.step(&mut ps);
/// assert!((ps.get(w).value().data()[0] - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr` and momentum
    /// coefficient `momentum` (0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step using the gradients accumulated in `ps`.
    pub fn step(&mut self, ps: &mut ParamSet) {
        while self.velocity.len() < ps.len() {
            let idx = self.velocity.len();
            let shape = ps
                .iter()
                .nth(idx)
                .map(|(_, p)| p.value().shape().to_vec())
                .expect("param exists");
            self.velocity.push(Tensor::zeros(&shape));
        }
        for (i, (_, p)) in ps.iter_mut().enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                let updated = v.scale(self.momentum).add(&p.grad().scale(1.0));
                *v = updated;
                let vstep = self.velocity[i].clone();
                p.value_mut().add_scaled_assign(&vstep, -self.lr);
            } else {
                let g = p.grad().clone();
                p.value_mut().add_scaled_assign(&g, -self.lr);
            }
        }
    }
}

/// A complete snapshot of an [`Adam`] optimizer's state, for
/// checkpointing and bitwise-identical resume.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Steps taken (drives bias correction).
    pub t: u64,
    /// First moments, one per parameter in registration order.
    pub m: Vec<Tensor>,
    /// Second moments, one per parameter in registration order.
    pub v: Vec<Tensor>,
}

/// Adam (Kingma & Ba) with bias correction — the optimizer the paper uses
/// for both GAN training and patch optimization (lr = 1e-4).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard (0.9, 0.999) betas.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Creates an Adam optimizer with explicit betas (GAN training often
    /// uses beta1 = 0.5).
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Snapshots the full optimizer state (hyper-parameters, step
    /// counter, both moment buffers) for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores a state exported by [`export_state`](Self::export_state).
    /// Moment buffers may be shorter than the parameter set (state grows
    /// lazily), but paired buffers must have matching lengths.
    ///
    /// # Errors
    ///
    /// Returns a message when the snapshot is internally inconsistent.
    pub fn load_state(&mut self, st: AdamState) -> Result<(), String> {
        if st.m.len() != st.v.len() {
            return Err(format!(
                "Adam state has {} first moment(s) but {} second moment(s)",
                st.m.len(),
                st.v.len()
            ));
        }
        for (i, (m, v)) in st.m.iter().zip(&st.v).enumerate() {
            if m.shape() != v.shape() {
                return Err(format!(
                    "Adam moment #{i} shape mismatch: m {:?} vs v {:?}",
                    m.shape(),
                    v.shape()
                ));
            }
        }
        self.lr = st.lr;
        self.beta1 = st.beta1;
        self.beta2 = st.beta2;
        self.eps = st.eps;
        self.t = st.t;
        self.m = st.m;
        self.v = st.v;
        Ok(())
    }

    /// Applies one update step using the gradients accumulated in `ps`.
    pub fn step(&mut self, ps: &mut ParamSet) {
        while self.m.len() < ps.len() {
            let idx = self.m.len();
            let shape = ps
                .iter()
                .nth(idx)
                .map(|(_, p)| p.value().shape().to_vec())
                .expect("param exists");
            self.m.push(Tensor::zeros(&shape));
            self.v.push(Tensor::zeros(&shape));
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (_, p)) in ps.iter_mut().enumerate() {
            let g = p.grad().clone();
            let m = &mut self.m[i];
            for (mv, &gv) in m.data_mut().iter_mut().zip(g.data()) {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
            }
            let v = &mut self.v[i];
            for (vv, &gv) in v.data_mut().iter_mut().zip(g.data()) {
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            let lr = self.lr;
            let eps = self.eps;
            let mslice = self.m[i].data();
            let vslice = self.v[i].data();
            for ((w, &mv), &vv) in p.value_mut().data_mut().iter_mut().zip(mslice).zip(vslice) {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizes (w - 3)^2 and checks convergence.
    fn converges(step: &mut dyn FnMut(&mut ParamSet)) -> f32 {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::from_vec(vec![0.0], &[1]));
        for _ in 0..400 {
            ps.zero_grads();
            let mut g = Graph::new();
            let wv = g.param(&ps, w);
            let shifted = g.add_scalar(wv, -3.0);
            let sq = g.mul(shifted, shifted);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            g.write_grads(&grads, &mut ps);
            step(&mut ps);
        }
        ps.get(w).value().data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let w = converges(&mut |ps| opt.step(ps));
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.02, 0.9);
        let w = converges(&mut |ps| opt.step(ps));
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let w = converges(&mut |ps| opt.step(ps));
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the very first Adam step has magnitude ~lr.
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::from_vec(vec![1.0], &[1]));
        ps.get_mut(w).grad_mut().fill(123.0);
        let mut opt = Adam::new(0.01);
        opt.step(&mut ps);
        assert!((ps.get(w).value().data()[0] - 0.99).abs() < 1e-4);
    }

    #[test]
    fn adam_state_roundtrip_resumes_identically() {
        let run = |resume_at: Option<usize>| -> Vec<f32> {
            let mut ps = ParamSet::new();
            let w = ps.register("w", Tensor::from_vec(vec![0.0, 4.0], &[2]));
            let mut opt = Adam::new(0.05);
            for step in 0..20 {
                if Some(step) == resume_at {
                    // serialize through the snapshot and hand off to a
                    // brand-new optimizer mid-run
                    let st = opt.export_state();
                    opt = Adam::new(0.123);
                    opt.load_state(st).unwrap();
                }
                ps.zero_grads();
                let mut g = Graph::new();
                let wv = g.param(&ps, w);
                let shifted = g.add_scalar(wv, -3.0);
                let sq = g.mul(shifted, shifted);
                let loss = g.sum_all(sq);
                let grads = g.backward(loss);
                g.write_grads(&grads, &mut ps);
                opt.step(&mut ps);
            }
            ps.get(w).value().data().to_vec()
        };
        let straight = run(None);
        let resumed = run(Some(11));
        assert_eq!(straight, resumed, "resume must be bitwise-identical");
    }

    #[test]
    fn adam_load_state_rejects_inconsistent_moments() {
        let mut opt = Adam::new(0.1);
        let bad = AdamState {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 3,
            m: vec![Tensor::zeros(&[2])],
            v: vec![Tensor::zeros(&[3])],
        };
        assert!(opt.load_state(bad).is_err());
    }

    #[test]
    fn late_registered_params_get_state() {
        let mut ps = ParamSet::new();
        let a = ps.register("a", Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = Adam::new(0.1);
        ps.get_mut(a).grad_mut().fill(1.0);
        opt.step(&mut ps);
        let b = ps.register("b", Tensor::from_vec(vec![1.0], &[1]));
        ps.get_mut(b).grad_mut().fill(1.0);
        opt.step(&mut ps); // must not panic, state grows lazily
        assert!(ps.get(b).value().data()[0] < 1.0);
    }
}
