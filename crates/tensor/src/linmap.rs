//! Sparse linear maps over spatial grids — the differentiable engine
//! behind every geometric warp (resize, rotation, perspective).
//!
//! A bilinear image warp is a *linear* function of the source pixels once
//! its parameters are fixed: each destination pixel is a weighted sum of at
//! most four source pixels. [`LinearMap`] stores that sparse matrix, and
//! [`Graph::warp`] applies it per batch item and per channel. Because the
//! map is linear, the backward pass is simply the transpose scatter, which
//! keeps gradients exact — crucial for the EOT attack pipeline where the
//! patch gradient must flow through resize → rotate → perspective chains.

use std::sync::Arc;

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

/// One `dst += weight * src` contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarpEntry {
    /// Flat destination pixel index (row-major over the output grid).
    pub dst: u32,
    /// Flat source pixel index (row-major over the input grid).
    pub src: u32,
    /// Interpolation weight.
    pub weight: f32,
}

/// A sparse linear map from an `in_h x in_w` grid to an `out_h x out_w`
/// grid, applied independently to every channel of every batch item.
///
/// # Examples
///
/// ```
/// use rd_tensor::{Graph, LinearMap, Tensor, WarpEntry};
///
/// // A map that flips a 1x2 image horizontally.
/// let map = LinearMap::new(
///     (1, 2),
///     (1, 2),
///     vec![
///         WarpEntry { dst: 0, src: 1, weight: 1.0 },
///         WarpEntry { dst: 1, src: 0, weight: 1.0 },
///     ],
/// );
/// let mut g = Graph::new();
/// let x = g.input(Tensor::from_vec(vec![3.0, 5.0], &[1, 1, 1, 2]));
/// let y = g.warp(x, &map.into());
/// assert_eq!(g.value(y).data(), &[5.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearMap {
    in_hw: (usize, usize),
    out_hw: (usize, usize),
    entries: Vec<WarpEntry>,
    /// CSR row index over `srcs`/`weights` (length `out_n + 1`), built in
    /// [`LinearMap::new`] when the entries are dst-non-decreasing — true
    /// for every map produced by a destination-major scan (camera warps,
    /// decal homographies, blur maps). Empty when the entries are
    /// unordered, in which case applies fall back to the entry scatter.
    offsets: Vec<u32>,
    srcs: Vec<u32>,
    weights: Vec<f32>,
    /// `(min, max)` destination index over all entries; `None` when empty.
    dst_bounds: Option<(u32, u32)>,
}

impl LinearMap {
    /// Builds a map from raw entries.
    ///
    /// When the entries arrive sorted by destination (the natural order
    /// for maps built by scanning the output grid row-major), a CSR index
    /// is built alongside so [`LinearMap::apply_plane_into`] can run as a
    /// row gather — same multiplies, same add order, bitwise-identical
    /// results, but SIMD-friendly and free of the scatter's
    /// read-modify-write dependence.
    ///
    /// # Panics
    ///
    /// Panics if any entry indexes outside its grid.
    pub fn new(in_hw: (usize, usize), out_hw: (usize, usize), entries: Vec<WarpEntry>) -> Self {
        let in_n = (in_hw.0 * in_hw.1) as u32;
        let out_n = (out_hw.0 * out_hw.1) as u32;
        let mut sorted = true;
        let mut prev = 0u32;
        let mut dst_bounds: Option<(u32, u32)> = None;
        for e in &entries {
            assert!(e.src < in_n, "src {} out of range {in_n}", e.src);
            assert!(e.dst < out_n, "dst {} out of range {out_n}", e.dst);
            sorted &= e.dst >= prev;
            prev = e.dst;
            dst_bounds = Some(match dst_bounds {
                None => (e.dst, e.dst),
                Some((lo, hi)) => (lo.min(e.dst), hi.max(e.dst)),
            });
        }
        let (mut offsets, mut srcs, mut weights) = (Vec::new(), Vec::new(), Vec::new());
        if sorted {
            offsets = Vec::with_capacity(out_n as usize + 1);
            srcs = Vec::with_capacity(entries.len());
            weights = Vec::with_capacity(entries.len());
            let mut i = 0usize;
            for dst in 0..out_n {
                offsets.push(i as u32);
                while i < entries.len() && entries[i].dst == dst {
                    srcs.push(entries[i].src);
                    weights.push(entries[i].weight);
                    i += 1;
                }
            }
            offsets.push(i as u32);
        }
        LinearMap {
            in_hw,
            out_hw,
            entries,
            offsets,
            srcs,
            weights,
            dst_bounds,
        }
    }

    /// Input grid `(height, width)`.
    pub fn in_hw(&self) -> (usize, usize) {
        self.in_hw
    }

    /// Output grid `(height, width)`.
    pub fn out_hw(&self) -> (usize, usize) {
        self.out_hw
    }

    /// The raw entries.
    pub fn entries(&self) -> &[WarpEntry] {
        &self.entries
    }

    /// Composes two maps: `self` then `next` (i.e. `next ∘ self`).
    ///
    /// The result maps directly from `self`'s input grid to `next`'s output
    /// grid. Used by the EOT pipeline to fuse a chain of warps into one map
    /// so the patch is sampled exactly once (avoiding compounding blur).
    ///
    /// # Panics
    ///
    /// Panics if `next`'s input grid differs from `self`'s output grid.
    pub fn then(&self, next: &LinearMap) -> LinearMap {
        assert_eq!(
            self.out_hw, next.in_hw,
            "cannot compose: intermediate grids differ"
        );
        // Bucket self's entries by destination (== next's source).
        let mid_n = self.out_hw.0 * self.out_hw.1;
        let mut buckets: Vec<Vec<(u32, f32)>> = vec![Vec::new(); mid_n];
        for e in &self.entries {
            buckets[e.dst as usize].push((e.src, e.weight));
        }
        let mut entries = Vec::with_capacity(next.entries.len() * 2);
        for e in &next.entries {
            for &(src, w) in &buckets[e.src as usize] {
                entries.push(WarpEntry {
                    dst: e.dst,
                    src,
                    weight: e.weight * w,
                });
            }
        }
        LinearMap::new(self.in_hw, next.out_hw, entries)
    }

    /// Whether a CSR row index was built (entries were dst-sorted).
    pub fn is_indexed(&self) -> bool {
        !self.offsets.is_empty()
    }

    /// The half-open row span `[lo, hi)` of the output grid that this map
    /// can write to; `(0, 0)` for a map with no entries.
    ///
    /// Bounded maps (see `homography_bounded` in `rd-vision`) touch only a
    /// few rows of the destination; callers compositing through such a map
    /// can restrict their pixel loops to this span.
    pub fn dst_row_span(&self) -> (usize, usize) {
        match self.dst_bounds {
            None => (0, 0),
            Some((lo, hi)) => {
                let w = self.out_hw.1.max(1);
                (lo as usize / w, hi as usize / w + 1)
            }
        }
    }

    /// Applies the map to a plain single-channel buffer (used for warping
    /// alpha masks, which are not differentiated through).
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from the input grid size.
    pub fn apply_plane(&self, src: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.out_hw.0 * self.out_hw.1];
        self.apply_plane_into(src, &mut out);
        out
    }

    /// Like [`LinearMap::apply_plane`] but writes into a caller-provided
    /// buffer (typically runtime-arena scratch), overwriting its contents.
    ///
    /// Bitwise-identical to `apply_plane`: the CSR gather accumulates each
    /// row from `0.0` in entry order, which is the same add sequence the
    /// zero-fill + scatter performs.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `out` do not match the grid sizes.
    pub fn apply_plane_into(&self, src: &[f32], out: &mut [f32]) {
        assert_eq!(src.len(), self.in_hw.0 * self.in_hw.1);
        assert_eq!(out.len(), self.out_hw.0 * self.out_hw.1);
        if self.is_indexed() {
            crate::simd::sparse_gather(&self.offsets, &self.srcs, &self.weights, src, out);
        } else {
            out.fill(0.0);
            for e in &self.entries {
                out[e.dst as usize] += e.weight * src[e.src as usize];
            }
        }
    }

    /// Accumulating apply into a pre-zeroed plane (used by [`Graph::warp`],
    /// whose output tensor is already zero-filled).
    fn gather_into_zeroed(&self, src: &[f32], out: &mut [f32]) {
        if self.is_indexed() {
            crate::simd::sparse_gather(&self.offsets, &self.srcs, &self.weights, src, out);
        } else {
            for e in &self.entries {
                out[e.dst as usize] += e.weight * src[e.src as usize];
            }
        }
    }
}

impl Graph {
    /// Applies a [`LinearMap`] to every channel of every batch item of an
    /// NCHW node.
    ///
    /// # Panics
    ///
    /// Panics if the node's spatial dims differ from the map's input grid.
    pub fn warp(&mut self, x: VarId, map: &Arc<LinearMap>) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape().len(), 4, "warp input must be NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        assert_eq!((h, w), map.in_hw, "warp grid mismatch");
        let (ho, wo) = map.out_hw;
        let planes = n * c;
        let in_n = h * w;
        let out_n = ho * wo;
        // Planes are independent; fan them out in fixed groups when the
        // gather is big enough to amortise the pool bookkeeping.
        let big = planes > 1 && planes * map.entries.len() >= 1 << 14;
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        {
            let xd = xv.data();
            let od = out.data_mut();
            let gather = |nc: usize, dst: &mut [f32]| {
                let src = &xd[nc * in_n..(nc + 1) * in_n];
                map.gather_into_zeroed(src, dst);
            };
            if big {
                let per = planes.div_ceil(crate::parallel::groups_for(planes));
                crate::parallel::for_each_chunk_mut(od, per * out_n, |gi, oc| {
                    for (li, op) in oc.chunks_mut(out_n).enumerate() {
                        gather(gi * per + li, op);
                    }
                });
            } else {
                for nc in 0..planes {
                    gather(nc, &mut od[nc * out_n..(nc + 1) * out_n]);
                }
            }
        }
        let map = Arc::clone(map);
        self.record(
            "warp",
            &[x],
            &[("out_h", ho), ("out_w", wo)],
            out,
            Some(Box::new(move |g, _vals, grads| {
                let gd = g.data();
                let entries = &map.entries;
                let scatter = |nc: usize, gxplane: &mut [f32]| {
                    let goff = nc * out_n;
                    for e in entries {
                        gxplane[e.src as usize] += e.weight * gd[goff + e.dst as usize];
                    }
                };
                let gx = grads[x.0].data_mut();
                if big {
                    let per = planes.div_ceil(crate::parallel::groups_for(planes));
                    crate::parallel::for_each_chunk_mut(gx, per * in_n, |gi, gxc| {
                        for (li, gxp) in gxc.chunks_mut(in_n).enumerate() {
                            scatter(gi * per + li, gxp);
                        }
                    });
                } else {
                    for nc in 0..planes {
                        scatter(nc, &mut gx[nc * in_n..(nc + 1) * in_n]);
                    }
                }
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{assert_grads_close, numeric_grad};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_map(rng: &mut StdRng, in_hw: (usize, usize), out_hw: (usize, usize)) -> LinearMap {
        let in_n = (in_hw.0 * in_hw.1) as u32;
        let out_n = out_hw.0 * out_hw.1;
        let mut entries = Vec::new();
        for d in 0..out_n {
            for _ in 0..2 {
                entries.push(WarpEntry {
                    dst: d as u32,
                    src: rng.gen_range(0..in_n),
                    weight: rng.gen_range(-1.0..1.0),
                });
            }
        }
        LinearMap::new(in_hw, out_hw, entries)
    }

    #[test]
    fn identity_map() {
        let entries = (0..6)
            .map(|i| WarpEntry {
                dst: i,
                src: i,
                weight: 1.0,
            })
            .collect();
        let map: Arc<LinearMap> = LinearMap::new((2, 3), (2, 3), entries).into();
        let mut g = Graph::new();
        let x0 = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[1, 1, 2, 3]);
        let x = g.input(x0.clone());
        let y = g.warp(x, &map);
        assert_eq!(g.value(y).data(), x0.data());
    }

    #[test]
    fn warp_grad_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(17);
        let map: Arc<LinearMap> = random_map(&mut rng, (3, 3), (2, 2)).into();
        let x0 = Tensor::randn(&mut rng, &[2, 2, 3, 3], 1.0);
        let run = |x0: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let y = g.warp(x, &map);
            let y2 = g.mul(y, y);
            let loss = g.sum_all(y2);
            (g, x, loss)
        };
        let (g, x, loss) = run(&x0);
        let grads = g.backward(loss);
        let num = numeric_grad(
            |t| {
                let (g, _, loss) = run(t);
                g.value(loss).data()[0]
            },
            &x0,
            1e-3,
        );
        assert_grads_close(grads.get(x), &num, 0.02);
    }

    #[test]
    fn composition_equals_sequential_application() {
        let mut rng = StdRng::seed_from_u64(4);
        let m1 = random_map(&mut rng, (3, 3), (4, 2));
        let m2 = random_map(&mut rng, (4, 2), (2, 2));
        let fused: Arc<LinearMap> = m1.then(&m2).into();
        let (m1, m2): (Arc<_>, Arc<_>) = (m1.into(), m2.into());
        let x0 = Tensor::randn(&mut rng, &[1, 1, 3, 3], 1.0);
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let a = g.warp(x, &m1);
        let b = g.warp(a, &m2);
        let mut g2 = Graph::new();
        let x2 = g2.input(x0);
        let c = g2.warp(x2, &fused);
        for (p, q) in g.value(b).data().iter().zip(g2.value(c).data()) {
            assert!((p - q).abs() < 1e-5, "{p} vs {q}");
        }
    }

    #[test]
    fn apply_plane_matches_warp() {
        let mut rng = StdRng::seed_from_u64(12);
        let map = random_map(&mut rng, (4, 4), (3, 3));
        let src: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let plane = map.apply_plane(&src);
        let map: Arc<LinearMap> = map.into();
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(src, &[1, 1, 4, 4]));
        let y = g.warp(x, &map);
        assert_eq!(g.value(y).data(), &plane[..]);
    }

    #[test]
    fn csr_gather_bitwise_matches_entry_scatter() {
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..20 {
            let map = random_map(&mut rng, (7, 5), (6, 9));
            assert!(map.is_indexed(), "dst-ascending entries must index");
            let src: Vec<f32> = (0..35).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let mut reference = vec![0.0f32; 54];
            for e in map.entries() {
                reference[e.dst as usize] += e.weight * src[e.src as usize];
            }
            let via_apply = map.apply_plane(&src);
            // Dirty output buffer: apply_plane_into must overwrite fully.
            let mut via_into = vec![f32::NAN; 54];
            map.apply_plane_into(&src, &mut via_into);
            for i in 0..54 {
                assert_eq!(reference[i].to_bits(), via_apply[i].to_bits());
                assert_eq!(reference[i].to_bits(), via_into[i].to_bits());
            }
        }
    }

    #[test]
    fn unsorted_entries_fall_back_to_scatter() {
        let entries = vec![
            WarpEntry {
                dst: 3,
                src: 0,
                weight: 0.5,
            },
            WarpEntry {
                dst: 1,
                src: 1,
                weight: -1.5,
            },
        ];
        let map = LinearMap::new((1, 2), (2, 2), entries);
        assert!(!map.is_indexed());
        assert_eq!(map.dst_row_span(), (0, 2));
        let out = map.apply_plane(&[2.0, 4.0]);
        assert_eq!(out, vec![0.0, -6.0, 0.0, 1.0]);
        let mut dirty = vec![9.0f32; 4];
        map.apply_plane_into(&[2.0, 4.0], &mut dirty);
        assert_eq!(dirty, vec![0.0, -6.0, 0.0, 1.0]);
    }

    #[test]
    fn dst_row_span_covers_touched_rows_only() {
        let entries = vec![
            WarpEntry {
                dst: 4, // row 1 of a 3x4 grid
                src: 0,
                weight: 1.0,
            },
            WarpEntry {
                dst: 7, // still row 1
                src: 0,
                weight: 1.0,
            },
        ];
        let map = LinearMap::new((1, 1), (3, 4), entries);
        assert_eq!(map.dst_row_span(), (1, 2));
        let empty = LinearMap::new((1, 1), (3, 4), Vec::new());
        assert_eq!(empty.dst_row_span(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_entries() {
        let _ = LinearMap::new(
            (2, 2),
            (2, 2),
            vec![WarpEntry {
                dst: 0,
                src: 4,
                weight: 1.0,
            }],
        );
    }
}
