//! Sparse linear maps over spatial grids — the differentiable engine
//! behind every geometric warp (resize, rotation, perspective).
//!
//! A bilinear image warp is a *linear* function of the source pixels once
//! its parameters are fixed: each destination pixel is a weighted sum of at
//! most four source pixels. [`LinearMap`] stores that sparse matrix, and
//! [`Graph::warp`] applies it per batch item and per channel. Because the
//! map is linear, the backward pass is simply the transpose scatter, which
//! keeps gradients exact — crucial for the EOT attack pipeline where the
//! patch gradient must flow through resize → rotate → perspective chains.

use std::sync::Arc;

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

/// One `dst += weight * src` contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarpEntry {
    /// Flat destination pixel index (row-major over the output grid).
    pub dst: u32,
    /// Flat source pixel index (row-major over the input grid).
    pub src: u32,
    /// Interpolation weight.
    pub weight: f32,
}

/// A sparse linear map from an `in_h x in_w` grid to an `out_h x out_w`
/// grid, applied independently to every channel of every batch item.
///
/// # Examples
///
/// ```
/// use rd_tensor::{Graph, LinearMap, Tensor, WarpEntry};
///
/// // A map that flips a 1x2 image horizontally.
/// let map = LinearMap::new(
///     (1, 2),
///     (1, 2),
///     vec![
///         WarpEntry { dst: 0, src: 1, weight: 1.0 },
///         WarpEntry { dst: 1, src: 0, weight: 1.0 },
///     ],
/// );
/// let mut g = Graph::new();
/// let x = g.input(Tensor::from_vec(vec![3.0, 5.0], &[1, 1, 1, 2]));
/// let y = g.warp(x, &map.into());
/// assert_eq!(g.value(y).data(), &[5.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearMap {
    in_hw: (usize, usize),
    out_hw: (usize, usize),
    entries: Vec<WarpEntry>,
}

impl LinearMap {
    /// Builds a map from raw entries.
    ///
    /// # Panics
    ///
    /// Panics if any entry indexes outside its grid.
    pub fn new(in_hw: (usize, usize), out_hw: (usize, usize), entries: Vec<WarpEntry>) -> Self {
        let in_n = (in_hw.0 * in_hw.1) as u32;
        let out_n = (out_hw.0 * out_hw.1) as u32;
        for e in &entries {
            assert!(e.src < in_n, "src {} out of range {in_n}", e.src);
            assert!(e.dst < out_n, "dst {} out of range {out_n}", e.dst);
        }
        LinearMap {
            in_hw,
            out_hw,
            entries,
        }
    }

    /// Input grid `(height, width)`.
    pub fn in_hw(&self) -> (usize, usize) {
        self.in_hw
    }

    /// Output grid `(height, width)`.
    pub fn out_hw(&self) -> (usize, usize) {
        self.out_hw
    }

    /// The raw entries.
    pub fn entries(&self) -> &[WarpEntry] {
        &self.entries
    }

    /// Composes two maps: `self` then `next` (i.e. `next ∘ self`).
    ///
    /// The result maps directly from `self`'s input grid to `next`'s output
    /// grid. Used by the EOT pipeline to fuse a chain of warps into one map
    /// so the patch is sampled exactly once (avoiding compounding blur).
    ///
    /// # Panics
    ///
    /// Panics if `next`'s input grid differs from `self`'s output grid.
    pub fn then(&self, next: &LinearMap) -> LinearMap {
        assert_eq!(
            self.out_hw, next.in_hw,
            "cannot compose: intermediate grids differ"
        );
        // Bucket self's entries by destination (== next's source).
        let mid_n = self.out_hw.0 * self.out_hw.1;
        let mut buckets: Vec<Vec<(u32, f32)>> = vec![Vec::new(); mid_n];
        for e in &self.entries {
            buckets[e.dst as usize].push((e.src, e.weight));
        }
        let mut entries = Vec::with_capacity(next.entries.len() * 2);
        for e in &next.entries {
            for &(src, w) in &buckets[e.src as usize] {
                entries.push(WarpEntry {
                    dst: e.dst,
                    src,
                    weight: e.weight * w,
                });
            }
        }
        LinearMap::new(self.in_hw, next.out_hw, entries)
    }

    /// Applies the map to a plain single-channel buffer (used for warping
    /// alpha masks, which are not differentiated through).
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from the input grid size.
    pub fn apply_plane(&self, src: &[f32]) -> Vec<f32> {
        assert_eq!(src.len(), self.in_hw.0 * self.in_hw.1);
        let mut out = vec![0.0f32; self.out_hw.0 * self.out_hw.1];
        for e in &self.entries {
            out[e.dst as usize] += e.weight * src[e.src as usize];
        }
        out
    }
}

impl Graph {
    /// Applies a [`LinearMap`] to every channel of every batch item of an
    /// NCHW node.
    ///
    /// # Panics
    ///
    /// Panics if the node's spatial dims differ from the map's input grid.
    pub fn warp(&mut self, x: VarId, map: &Arc<LinearMap>) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape().len(), 4, "warp input must be NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        assert_eq!((h, w), map.in_hw, "warp grid mismatch");
        let (ho, wo) = map.out_hw;
        let planes = n * c;
        let in_n = h * w;
        let out_n = ho * wo;
        // Planes are independent; fan them out in fixed groups when the
        // gather is big enough to amortise the pool bookkeeping.
        let big = planes > 1 && planes * map.entries.len() >= 1 << 14;
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        {
            let xd = xv.data();
            let od = out.data_mut();
            let entries = &map.entries;
            let gather = |nc: usize, dst: &mut [f32]| {
                let src = &xd[nc * in_n..(nc + 1) * in_n];
                for e in entries {
                    dst[e.dst as usize] += e.weight * src[e.src as usize];
                }
            };
            if big {
                let per = planes.div_ceil(crate::parallel::groups_for(planes));
                crate::parallel::for_each_chunk_mut(od, per * out_n, |gi, oc| {
                    for (li, op) in oc.chunks_mut(out_n).enumerate() {
                        gather(gi * per + li, op);
                    }
                });
            } else {
                for nc in 0..planes {
                    gather(nc, &mut od[nc * out_n..(nc + 1) * out_n]);
                }
            }
        }
        let map = Arc::clone(map);
        self.record(
            "warp",
            &[x],
            &[("out_h", ho), ("out_w", wo)],
            out,
            Some(Box::new(move |g, _vals, grads| {
                let gd = g.data();
                let entries = &map.entries;
                let scatter = |nc: usize, gxplane: &mut [f32]| {
                    let goff = nc * out_n;
                    for e in entries {
                        gxplane[e.src as usize] += e.weight * gd[goff + e.dst as usize];
                    }
                };
                let gx = grads[x.0].data_mut();
                if big {
                    let per = planes.div_ceil(crate::parallel::groups_for(planes));
                    crate::parallel::for_each_chunk_mut(gx, per * in_n, |gi, gxc| {
                        for (li, gxp) in gxc.chunks_mut(in_n).enumerate() {
                            scatter(gi * per + li, gxp);
                        }
                    });
                } else {
                    for nc in 0..planes {
                        scatter(nc, &mut gx[nc * in_n..(nc + 1) * in_n]);
                    }
                }
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{assert_grads_close, numeric_grad};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_map(rng: &mut StdRng, in_hw: (usize, usize), out_hw: (usize, usize)) -> LinearMap {
        let in_n = (in_hw.0 * in_hw.1) as u32;
        let out_n = out_hw.0 * out_hw.1;
        let mut entries = Vec::new();
        for d in 0..out_n {
            for _ in 0..2 {
                entries.push(WarpEntry {
                    dst: d as u32,
                    src: rng.gen_range(0..in_n),
                    weight: rng.gen_range(-1.0..1.0),
                });
            }
        }
        LinearMap::new(in_hw, out_hw, entries)
    }

    #[test]
    fn identity_map() {
        let entries = (0..6)
            .map(|i| WarpEntry {
                dst: i,
                src: i,
                weight: 1.0,
            })
            .collect();
        let map: Arc<LinearMap> = LinearMap::new((2, 3), (2, 3), entries).into();
        let mut g = Graph::new();
        let x0 = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[1, 1, 2, 3]);
        let x = g.input(x0.clone());
        let y = g.warp(x, &map);
        assert_eq!(g.value(y).data(), x0.data());
    }

    #[test]
    fn warp_grad_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(17);
        let map: Arc<LinearMap> = random_map(&mut rng, (3, 3), (2, 2)).into();
        let x0 = Tensor::randn(&mut rng, &[2, 2, 3, 3], 1.0);
        let run = |x0: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let y = g.warp(x, &map);
            let y2 = g.mul(y, y);
            let loss = g.sum_all(y2);
            (g, x, loss)
        };
        let (g, x, loss) = run(&x0);
        let grads = g.backward(loss);
        let num = numeric_grad(
            |t| {
                let (g, _, loss) = run(t);
                g.value(loss).data()[0]
            },
            &x0,
            1e-3,
        );
        assert_grads_close(grads.get(x), &num, 0.02);
    }

    #[test]
    fn composition_equals_sequential_application() {
        let mut rng = StdRng::seed_from_u64(4);
        let m1 = random_map(&mut rng, (3, 3), (4, 2));
        let m2 = random_map(&mut rng, (4, 2), (2, 2));
        let fused: Arc<LinearMap> = m1.then(&m2).into();
        let (m1, m2): (Arc<_>, Arc<_>) = (m1.into(), m2.into());
        let x0 = Tensor::randn(&mut rng, &[1, 1, 3, 3], 1.0);
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let a = g.warp(x, &m1);
        let b = g.warp(a, &m2);
        let mut g2 = Graph::new();
        let x2 = g2.input(x0);
        let c = g2.warp(x2, &fused);
        for (p, q) in g.value(b).data().iter().zip(g2.value(c).data()) {
            assert!((p - q).abs() < 1e-5, "{p} vs {q}");
        }
    }

    #[test]
    fn apply_plane_matches_warp() {
        let mut rng = StdRng::seed_from_u64(12);
        let map = random_map(&mut rng, (4, 4), (3, 3));
        let src: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let plane = map.apply_plane(&src);
        let map: Arc<LinearMap> = map.into();
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(src, &[1, 1, 4, 4]));
        let y = g.warp(x, &map);
        assert_eq!(g.value(y).data(), &plane[..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_entries() {
        let _ = LinearMap::new(
            (2, 2),
            (2, 2),
            vec![WarpEntry {
                dst: 0,
                src: 4,
                weight: 1.0,
            }],
        );
    }
}
