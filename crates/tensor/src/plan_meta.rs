//! Plan introspection: a plain-data description of a compiled plan.
//!
//! [`crate::InferPlan`] and [`crate::TrainPlan`] keep their op lists
//! private — the executors are the only code that should drive them.
//! Static analysis (the `rd-analysis` plan analyzer) still needs to see
//! a plan's structure: which slots each op reads and writes, which
//! [`crate::ParamId`]s it dereferences at execution time, how tape ops
//! were fused into each kernel, and the geometry that decides how the
//! worker-group fan-out tiles each buffer. [`PlanMeta`] is that view:
//! a fully public, plain-data lowering of a compiled plan, produced by
//! `InferPlan::meta()` / `TrainPlan::meta()` without executing
//! anything.
//!
//! Every field is public and owned (no references into the plan), so a
//! consumer can freely reshape or *corrupt* a `PlanMeta` — the analyzer
//! mutation tests rely on exactly that to prove each lint fires.
//! Parameters are referenced by their [`ParamSet`](crate::ParamSet)
//! position (`usize`) rather than by [`crate::ParamId`] so that
//! downstream crates can construct and rewrite references.

/// Which compiled engine a [`PlanMeta`] was lifted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// A grad-free [`crate::InferPlan`]: per-sample slots, each worker
    /// group owns a private buffer set.
    Infer,
    /// A gradient-capable [`crate::TrainPlan`]: full-batch slots, conv
    /// kernels fan out over per-group sample chunks of shared buffers.
    Train,
}

/// Role a parameter reference plays inside a (possibly fused) plan op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamRole {
    /// Convolution weight `[cout, cin, kh, kw]`.
    ConvWeight,
    /// Per-channel conv bias `[cout]`.
    ConvBias,
    /// Batch-norm scale `[c]`.
    BnGamma,
    /// Batch-norm shift `[c]`.
    BnBeta,
    /// Batch-norm running mean `[c]` (read in eval mode, written back
    /// by the caller's momentum fold in train mode).
    BnRunningMean,
    /// Batch-norm running variance `[c]`.
    BnRunningVar,
    /// Linear weight `[out_dim, in_dim]`.
    LinearWeight,
    /// Linear bias `[out_dim]`.
    LinearBias,
}

impl ParamRole {
    /// Short human-readable label (`weight`, `gamma`, ...).
    pub fn label(self) -> &'static str {
        match self {
            ParamRole::ConvWeight => "weight",
            ParamRole::ConvBias => "bias",
            ParamRole::BnGamma => "gamma",
            ParamRole::BnBeta => "beta",
            ParamRole::BnRunningMean => "running-mean",
            ParamRole::BnRunningVar => "running-var",
            ParamRole::LinearWeight => "weight",
            ParamRole::LinearBias => "bias",
        }
    }
}

/// One parameter reference an op dereferences at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamRef {
    /// What the parameter is used as.
    pub role: ParamRole,
    /// Position inside the [`ParamSet`](crate::ParamSet) the plan is
    /// executed against (`ParamId::index()`).
    pub index: usize,
}

/// Geometry of a (possibly fused) convolution op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Spatial stride.
    pub stride: usize,
    /// Zero padding on each spatial border.
    pub pad: usize,
    /// Input channels.
    pub cin: usize,
    /// Input height.
    pub hin: usize,
    /// Input width.
    pub win: usize,
    /// Output channels.
    pub cout: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Output height.
    pub ho: usize,
    /// Output width.
    pub wo: usize,
}

impl ConvGeom {
    /// Per-sample im2col column-matrix element count (`cin*kh*kw * ho*wo`).
    pub fn cols_len(&self) -> usize {
        self.cin * self.kh * self.kw * self.ho * self.wo
    }
}

/// Plain-data description of one (possibly fused) plan op.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOpMeta {
    /// Fused kernel name (`conv_bn_leaky`, `max_pool2d`, ...).
    pub name: String,
    /// Profile path (`infer/<scope>/<fused>` or `train/...`).
    pub path: String,
    /// Slots read by the op's forward pass, in parent order.
    pub reads: Vec<usize>,
    /// Slots written by the op's forward pass.
    pub writes: Vec<usize>,
    /// Parameters dereferenced at execution time.
    pub params: Vec<ParamRef>,
    /// The tape ops this kernel fuses, in execution order
    /// (e.g. `["conv2d", "batch_norm2d_eval", "leaky_relu"]`).
    pub fused: Vec<String>,
    /// Convolution geometry, when the op is a fused conv.
    pub conv: Option<ConvGeom>,
    /// `(in_dim, out_dim)` when the op is a linear layer.
    pub linear: Option<(usize, usize)>,
    /// Leaky-relu negative slope, when a leaky activation is involved
    /// (fused into a conv or standalone).
    pub alpha: Option<f32>,
    /// For batch-norm ops: `true` when batch statistics are used
    /// (training mode), `false` for running statistics (eval mode).
    pub bn_train: Option<bool>,
    /// Batch-norm epsilon, when a batch norm is involved.
    pub bn_eps: Option<f32>,
    /// Train plans only: whether the conv backward `col2im`-scatters
    /// straight into the input-slot gradient (sole consumer) instead of
    /// a temp + add pass. `None` for non-conv ops and infer plans.
    pub gx_direct: Option<bool>,
}

/// Per-sample size and shape of one activation slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMeta {
    /// Flat per-sample length.
    pub len: usize,
    /// Per-sample shape, batch dim stripped. Reshapes alias slots and
    /// relabel this in place, so it reflects the *final* labelling; the
    /// length is the invariant.
    pub shape: Vec<usize>,
}

/// A fully public, plain-data description of a compiled plan: the op
/// list with def/use slot indices, parameter references, fusion
/// composition and geometry, plus the slot table. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanMeta {
    /// Which engine the plan drives.
    pub kind: PlanKind,
    /// Flat, topologically ordered op list.
    pub ops: Vec<PlanOpMeta>,
    /// Activation slot table.
    pub slots: Vec<SlotMeta>,
    /// Slot the batched input is copied into.
    pub input_slot: usize,
    /// Root slots, in root order.
    pub outputs: Vec<usize>,
    /// Train plans: the im2col column-cache budget in bytes.
    pub col_budget: Option<usize>,
}

/// Default-filled [`PlanOpMeta`] for a simple one-input, one-output,
/// parameter-free op; callers override the fields that differ.
pub(crate) fn simple_op(name: &str, path: &str, x: usize, out: usize) -> PlanOpMeta {
    PlanOpMeta {
        name: name.to_string(),
        path: path.to_string(),
        reads: vec![x],
        writes: vec![out],
        params: Vec::new(),
        fused: vec![name.to_string()],
        conv: None,
        linear: None,
        alpha: None,
        bn_train: None,
        bn_eps: None,
        gx_direct: None,
    }
}

impl PlanMeta {
    /// Number of fused conv ops in the plan.
    pub fn num_convs(&self) -> usize {
        self.ops.iter().filter(|o| o.conv.is_some()).count()
    }

    /// Total per-sample activation footprint in `f32` elements.
    pub fn slot_elems(&self) -> usize {
        self.slots.iter().map(|s| s.len).sum()
    }
}
