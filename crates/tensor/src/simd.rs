//! f32x8 fast-tier microkernels for the compiled engines.
//!
//! This is the one module in the workspace allowed to contain `unsafe`
//! (the workspace-wide lint is `unsafe_code = "deny"`): the AVX2+FMA
//! kernels below use `std::arch` intrinsics behind a runtime feature
//! check. Every other crate keeps the deny.
//!
//! # Contract
//!
//! These kernels implement [`Tier::Fast`](crate::tier::Tier): they may
//! contract `mul`+`add` into FMA and (for the dot-product kernel)
//! re-associate the reduction into eight lanes, so their results are
//! **not** bitwise-identical to the scalar reference in
//! [`crate::conv`]. They are instead covered by the static
//! `f32x8-fma` ulp certificate from `rd_analysis::bounds`: per output
//! element the divergence stays within `2·γ(k)·Σ|aᵢ·bᵢ|` of the
//! reference, the forward-error model the certifier propagates to the
//! logits. The equivalence proptests at the bottom of this module
//! check exactly that bound per kernel.
//!
//! # Backends
//!
//! [`backend`] picks once per process:
//!
//! * [`Backend::Avx2Fma`] — `std::arch` 8-lane kernels, selected when
//!   the host reports AVX2 *and* FMA (checked at runtime, not compile
//!   time) and `RD_NO_SIMD` is unset.
//! * [`Backend::Portable`] — safe scalar-unrolled kernels processing
//!   the same 8/64-wide tiles. The forward GEMM keeps the reference's
//!   exact k-ascending `mul`+`add` sequence (bitwise-identical on
//!   finite data); the reductions mimic the 8-lane partial-sum shape
//!   without FMA, so one certificate covers both backends.
//!
//! # Cache blocking
//!
//! The forward GEMM tiles the im2col output grid into 64-column
//! panels (eight f32x8 accumulators) and blocks the reduction into
//! 256-row slabs of the column matrix, so the active B panel stays
//! cache-resident across the weight rows. Spilling accumulators to the
//! output between k-blocks stores/reloads exact `f32` values, so the
//! blocking never changes a rounding — per element the sequence is
//! still one k-ascending FMA chain.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Output-column tile width: eight f32x8 accumulators.
const NR: usize = 64;
/// Reduction block: B-panel rows kept cache-resident per tile.
const KC: usize = 256;

/// Fused epilogue activation applied after `x·scale + shift`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Act {
    /// Affine only.
    None,
    /// `t > 0 ? t : α·t`.
    Leaky(f32),
    /// `max(t, 0)`.
    Relu,
}

/// Which kernel implementation the fast tier runs on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `std::arch` AVX2+FMA 8-lane kernels.
    Avx2Fma,
    /// Safe scalar-unrolled fallback with the same tile structure.
    Portable,
}

impl Backend {
    /// Stable label for reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Avx2Fma => "avx2+fma",
            Backend::Portable => "portable-unrolled",
        }
    }

    /// Runtime dispatch rule, split out so tests can drive both
    /// outcomes: AVX2+FMA only when the host reports both features and
    /// SIMD is not disabled (`simd_disabled` mirrors the `RD_NO_SIMD`
    /// environment switch). On non-x86_64 hosts this is always
    /// [`Backend::Portable`].
    pub fn select(simd_disabled: bool) -> Backend {
        #[cfg(target_arch = "x86_64")]
        {
            if !simd_disabled && is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            {
                return Backend::Avx2Fma;
            }
        }
        let _ = simd_disabled;
        Backend::Portable
    }
}

/// The backend the fast tier uses in this process, detected once.
/// Set `RD_NO_SIMD=1` to force the portable fallback on any host.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| Backend::select(std::env::var_os("RD_NO_SIMD").is_some()))
}

/// GEMM `out = a[m,k] × b[k,n]`, overwrite mode (no zeroing needed).
///
/// Fast-tier counterpart of [`crate::conv`]'s `conv_gemm`.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && out.len() >= m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out[..m * n].fill(0.0);
        return;
    }
    match backend() {
        // SAFETY: `backend()` returned Avx2Fma only after runtime
        // detection of both `avx2` and `fma` on this CPU.
        Backend::Avx2Fma => unsafe { avx2::gemm(a, b, out, m, k, n) },
        Backend::Portable => portable::gemm(a, b, out, m, k, n),
    }
}

/// `out[m,n] += a[m,k] × b[n,k]ᵀ` (row–row dot products).
///
/// Fast-tier counterpart of [`crate::conv`]'s `gemm_nt` (conv
/// backward's grad-weight GEMM). The reduction over `k` runs as eight
/// partial lanes folded in a fixed order, so it re-associates relative
/// to the reference — covered by the `f32x8-fma` model.
pub fn gemm_nt_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= n * k && out.len() >= m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    match backend() {
        // SAFETY: AVX2+FMA presence established by `backend()`.
        Backend::Avx2Fma => unsafe { avx2::gemm_nt_acc(a, b, out, m, k, n) },
        Backend::Portable => portable::gemm_nt_acc(a, b, out, m, k, n),
    }
}

/// `out[m,n] = a[k,m]ᵀ × b[k,n]`, overwrite mode.
///
/// Fast-tier counterpart of [`crate::conv`]'s `gemm_tn_over` (conv
/// backward's grad-input GEMM). Per output element the sum stays
/// p-ascending; only FMA contraction (and the sign of exact zeros)
/// differs from the reference.
pub fn gemm_tn_over(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert!(a.len() >= k * m && b.len() >= k * n && out.len() >= m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out[..m * n].fill(0.0);
        return;
    }
    match backend() {
        // SAFETY: AVX2+FMA presence established by `backend()`.
        Backend::Avx2Fma => unsafe { avx2::gemm_tn_over(a, b, out, k, m, n) },
        Backend::Portable => portable::gemm_tn_over(a, b, out, k, m, n),
    }
}

/// Fused conv epilogue: `v = act(v·scale + shift)` over a channel
/// segment. The reference computes the same chain with separate
/// `mul`+`add`; the AVX2 path contracts it to one FMA per element.
pub fn affine_act(seg: &mut [f32], scale: f32, shift: f32, act: Act) {
    match backend() {
        // SAFETY: AVX2+FMA presence established by `backend()`.
        Backend::Avx2Fma => unsafe { avx2::affine_act(seg, scale, shift, act) },
        Backend::Portable => portable::affine_act(seg, scale, shift, act),
    }
}

/// 2×2 stride-2 max-pool over a CHW tensor with even `h`, `w`.
///
/// `max` performs no rounding, so this is **bitwise identical** to the
/// reference pooling loop on non-NaN data regardless of backend — it
/// is still only dispatched on the fast tier to keep the reference
/// tier's instruction sequence byte-for-byte scalar.
///
/// # Panics
///
/// Debug-asserts the 2×2/stride-2 shape contract.
pub fn max_pool2x2(xs: &[f32], out: &mut [f32], c: usize, h: usize, w: usize) {
    debug_assert!(
        h.is_multiple_of(2) && w.is_multiple_of(2),
        "max_pool2x2 needs even dims"
    );
    debug_assert!(xs.len() >= c * h * w && out.len() >= c * (h / 2) * (w / 2));
    match backend() {
        // SAFETY: AVX2+FMA presence established by `backend()`.
        Backend::Avx2Fma => unsafe { avx2::max_pool2x2(xs, out, c, h, w) },
        Backend::Portable => portable::max_pool2x2(xs, out, c, h, w),
    }
}

/// Standalone activation over a buffer (conv epilogue without a fused
/// batch norm). Value-identical to the reference branches.
pub fn act_inplace(seg: &mut [f32], act: Act) {
    match act {
        Act::None => {}
        _ => match backend() {
            // SAFETY: AVX2+FMA presence established by `backend()`.
            Backend::Avx2Fma => unsafe { avx2::act_inplace(seg, act) },
            Backend::Portable => portable::act_inplace(seg, act),
        },
    }
}

/// Sparse CSR row gather: `out[r] = Σᵢ weights[i]·src[srcs[i]]` over
/// `offsets[r]..offsets[r + 1]`, overwrite mode.
///
/// The apply kernel behind [`crate::LinearMap`]'s bilinear warps. Each
/// row accumulates from `0.0` in entry order with separate `mul`+`add`
/// (never FMA), so the result is **bitwise identical** to the scalar
/// entry scatter on both backends — like [`max_pool2x2`] this needs no
/// ulp certificate, and because the render path is tier-independent it
/// is dispatched on the backend alone. The AVX2 path vectorises the
/// dominant shapes of a bilinear map: runs of eight 4-entry rows
/// (interior pixels) and runs of eight empty rows (outside the warp
/// footprint).
///
/// # Panics
///
/// Asserts the CSR shape contract (`offsets` monotone over
/// `srcs`/`weights`, one row per output element). Source indices are
/// validated by `LinearMap::new`; they are debug-asserted here.
pub fn sparse_gather(offsets: &[u32], srcs: &[u32], weights: &[f32], src: &[f32], out: &mut [f32]) {
    assert_eq!(offsets.len(), out.len() + 1, "CSR needs out_n + 1 offsets");
    assert_eq!(srcs.len(), weights.len());
    assert_eq!(
        *offsets.last().expect("offsets non-empty") as usize,
        srcs.len()
    );
    debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(srcs.iter().all(|&s| (s as usize) < src.len()));
    match backend() {
        // SAFETY: AVX2+FMA presence established by `backend()`; the
        // asserts above pin the CSR shape and `LinearMap::new` bounds
        // every source index.
        Backend::Avx2Fma => unsafe { avx2::sparse_gather(offsets, srcs, weights, src, out) },
        Backend::Portable => portable::sparse_gather(offsets, srcs, weights, src, out),
    }
}

/// Capture-channel noise blend: `seg[i] = (seg[i] + noise[i]·scale)
/// .clamp(0.0, 1.0)`.
///
/// Separate `mul`+`add` (no FMA) and a compare+select clamp that keeps
/// `-0.0` and NaN behaviour identical to `f32::clamp`, so both
/// backends are **bitwise identical** to the scalar loop.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_scaled_clamp(seg: &mut [f32], noise: &[f32], scale: f32) {
    assert_eq!(seg.len(), noise.len());
    match backend() {
        // SAFETY: AVX2+FMA presence established by `backend()`.
        Backend::Avx2Fma => unsafe { avx2::add_scaled_clamp(seg, noise, scale) },
        Backend::Portable => portable::add_scaled_clamp(seg, noise, scale),
    }
}

/// Vertical box blur of one `h × w` plane with a clamped window of
/// `radius` rows each side: `dst[y·w + x] = mean(src[y0..y1, x])`.
///
/// The motion-blur kernel of the capture channel. Per output element
/// the window sum runs y-ascending from `0.0` and one IEEE division —
/// the exact scalar sequence — so both backends are **bitwise
/// identical**; the AVX2 path just walks eight columns per iteration.
///
/// # Panics
///
/// Panics if `src`/`dst` do not hold `h·w` elements.
pub fn box_blur_vertical(src: &[f32], dst: &mut [f32], h: usize, w: usize, radius: usize) {
    assert_eq!(src.len(), h * w);
    assert_eq!(dst.len(), h * w);
    match backend() {
        // SAFETY: AVX2+FMA presence established by `backend()`; the
        // asserts above pin the plane shape.
        Backend::Avx2Fma => unsafe { avx2::box_blur_vertical(src, dst, h, w, radius) },
        Backend::Portable => portable::box_blur_vertical(src, dst, h, w, radius),
    }
}

/// Safe scalar-unrolled fallback kernels (also the only backend on
/// non-x86_64 hosts). Public so the dispatch tests can pin this path
/// regardless of the host CPU.
pub mod portable {
    use super::{Act, NR};

    /// Portable [`super::gemm`]: 64-column tiles, per element the exact
    /// k-ascending `mul`+`add` (zero-skipping) sequence of the scalar
    /// reference — bitwise-identical to it on finite data.
    pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        let mut jb = 0;
        while jb < n {
            let jw = NR.min(n - jb);
            for i in 0..m {
                let mut acc = [0.0f32; NR];
                let acc = &mut acc[..jw];
                for (kk, &av) in a[i * k..(i + 1) * k].iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n + jb..kk * n + jb + jw];
                    for (s, &bv) in acc.iter_mut().zip(brow) {
                        *s += av * bv;
                    }
                }
                out[i * n + jb..i * n + jb + jw].copy_from_slice(acc);
            }
            jb += jw;
        }
    }

    /// Portable [`super::gemm_nt_acc`]: eight k-strided partial sums
    /// folded pairwise — the 8-lane reduction shape without FMA.
    pub fn gemm_nt_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        let kv = k / 8 * 8;
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = [0.0f32; 8];
                let mut kk = 0;
                while kk < kv {
                    for (t, s) in acc.iter_mut().enumerate() {
                        *s += arow[kk + t] * brow[kk + t];
                    }
                    kk += 8;
                }
                let mut tail = 0.0f32;
                for t in kv..k {
                    tail += arow[t] * brow[t];
                }
                let s = ((acc[0] + acc[1]) + (acc[2] + acc[3]))
                    + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
                    + tail;
                out[i * n + j] += s;
            }
        }
    }

    /// Portable [`super::gemm_tn_over`]: 64-column tiles accumulated
    /// p-ascending with the reference's zero-skip; only the sign of
    /// exact zeros can differ from the reference's overwrite mode.
    pub fn gemm_tn_over(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
        let mut jb = 0;
        while jb < n {
            let jw = NR.min(n - jb);
            for i in 0..m {
                let mut acc = [0.0f32; NR];
                let acc = &mut acc[..jw];
                for p in 0..k {
                    let av = a[p * m + i];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n + jb..p * n + jb + jw];
                    for (s, &bv) in acc.iter_mut().zip(brow) {
                        *s += av * bv;
                    }
                }
                out[i * n + jb..i * n + jb + jw].copy_from_slice(acc);
            }
            jb += jw;
        }
    }

    /// Portable [`super::affine_act`]: the reference epilogue verbatim.
    pub fn affine_act(seg: &mut [f32], scale: f32, shift: f32, act: Act) {
        match act {
            Act::None => {
                for v in seg {
                    *v = *v * scale + shift;
                }
            }
            Act::Leaky(alpha) => {
                for v in seg {
                    let t = *v * scale + shift;
                    *v = if t > 0.0 { t } else { alpha * t };
                }
            }
            Act::Relu => {
                for v in seg {
                    *v = (*v * scale + shift).max(0.0);
                }
            }
        }
    }

    /// Portable [`super::max_pool2x2`]: branch-free row-pair maxima.
    pub fn max_pool2x2(xs: &[f32], out: &mut [f32], c: usize, h: usize, w: usize) {
        let (ho, wo) = (h / 2, w / 2);
        let (hw, howo) = (h * w, ho * wo);
        for ch in 0..c {
            let plane = &xs[ch * hw..(ch + 1) * hw];
            let oplane = &mut out[ch * howo..(ch + 1) * howo];
            for oh in 0..ho {
                let r0 = &plane[2 * oh * w..2 * oh * w + w];
                let r1 = &plane[(2 * oh + 1) * w..(2 * oh + 1) * w + w];
                for (ow, o) in oplane[oh * wo..(oh + 1) * wo].iter_mut().enumerate() {
                    let j = 2 * ow;
                    *o = r0[j].max(r0[j + 1]).max(r1[j].max(r1[j + 1]));
                }
            }
        }
    }

    /// Portable [`super::act_inplace`]: the reference branches verbatim.
    pub fn act_inplace(seg: &mut [f32], act: Act) {
        match act {
            Act::None => {}
            Act::Leaky(alpha) => {
                for v in seg {
                    let t = *v;
                    *v = if t > 0.0 { t } else { alpha * t };
                }
            }
            Act::Relu => {
                for v in seg {
                    *v = v.max(0.0);
                }
            }
        }
    }

    /// Portable [`super::sparse_gather`]: the per-row accumulation loop,
    /// entry order, from `0.0` — the scalar scatter's exact add chain.
    pub fn sparse_gather(
        offsets: &[u32],
        srcs: &[u32],
        weights: &[f32],
        src: &[f32],
        out: &mut [f32],
    ) {
        for (r, o) in out.iter_mut().enumerate() {
            let (lo, hi) = (offsets[r] as usize, offsets[r + 1] as usize);
            let mut acc = 0.0f32;
            for i in lo..hi {
                acc += weights[i] * src[srcs[i] as usize];
            }
            *o = acc;
        }
    }

    /// Portable [`super::add_scaled_clamp`]: the scalar loop verbatim.
    pub fn add_scaled_clamp(seg: &mut [f32], noise: &[f32], scale: f32) {
        for (v, &n) in seg.iter_mut().zip(noise) {
            *v = (*v + n * scale).clamp(0.0, 1.0);
        }
    }

    /// Portable [`super::box_blur_vertical`]: per-column clamped window
    /// sums, y-ascending, one division per output.
    pub fn box_blur_vertical(src: &[f32], dst: &mut [f32], h: usize, w: usize, radius: usize) {
        for y in 0..h {
            let y0 = y.saturating_sub(radius);
            let y1 = (y + radius + 1).min(h);
            let inv = (y1 - y0) as f32;
            for x in 0..w {
                let mut acc = 0.0f32;
                for yy in y0..y1 {
                    acc += src[yy * w + x];
                }
                dst[y * w + x] = acc / inv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! `std::arch` AVX2+FMA kernels. Every function here is
    //! `unsafe fn` + `#[target_feature]`: callers must have verified
    //! AVX2 and FMA at runtime (see [`super::backend`]).

    use super::{Act, KC, NR};
    use std::arch::x86_64::*;

    /// Horizontal sum of one f32x8 vector in a fixed lane order.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let q = _mm_add_ps(lo, hi);
        let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let s = _mm_add_ss(d, _mm_shuffle_ps::<1>(d, d));
        _mm_cvtss_f32(s)
    }

    /// One (row, 8·NV-column, k-block) GEMM tile: `NV` accumulators,
    /// k-ascending FMA chain, spilled exactly between k-blocks.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, `orow[jb..jb + 8·NV]` in bounds, and
    /// `b[kk·n + jb + 8·NV − 1]` in bounds for every `kk` in the block.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn gemm_tile<const NV: usize>(
        arow: &[f32],
        b: &[f32],
        orow: &mut [f32],
        jb: usize,
        n: usize,
        kb: usize,
        kw: usize,
        first: bool,
    ) {
        let mut acc = [_mm256_setzero_ps(); NV];
        let op = orow.as_mut_ptr().add(jb);
        if !first {
            for (t, s) in acc.iter_mut().enumerate() {
                *s = _mm256_loadu_ps(op.add(t * 8));
            }
        }
        for kk in kb..kb + kw {
            let av = _mm256_set1_ps(arow[kk]);
            let bp = b.as_ptr().add(kk * n + jb);
            for (t, s) in acc.iter_mut().enumerate() {
                *s = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(t * 8)), *s);
            }
        }
        for (t, s) in acc.iter().enumerate() {
            _mm256_storeu_ps(op.add(t * 8), *s);
        }
    }

    /// One (row, 16-column, k-block) tile: two f32x8 accumulators per
    /// column pair, each split into two k-strided partial chains. A
    /// 16-wide tile has too few independent 8-lane accumulators to
    /// cover the FMA latency, so the k-split buys the missing ILP; the
    /// reassociation is covered by the `f32x8-fma` certificate.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, `orow[jb..jb + 16]` in bounds, and
    /// `b[kk·n + jb + 15]` in bounds for every `kk` in the block.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn gemm_tile16(
        arow: &[f32],
        b: &[f32],
        orow: &mut [f32],
        jb: usize,
        n: usize,
        kb: usize,
        kw: usize,
        first: bool,
    ) {
        let bp = b.as_ptr();
        let (mut a0, mut a1) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        let (mut c0, mut c1) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        let kend = kb + kw;
        let mut kk = kb;
        while kk + 2 <= kend {
            let av0 = _mm256_set1_ps(arow[kk]);
            let av1 = _mm256_set1_ps(arow[kk + 1]);
            let r0 = bp.add(kk * n + jb);
            let r1 = bp.add((kk + 1) * n + jb);
            a0 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(r0), a0);
            c0 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(r0.add(8)), c0);
            a1 = _mm256_fmadd_ps(av1, _mm256_loadu_ps(r1), a1);
            c1 = _mm256_fmadd_ps(av1, _mm256_loadu_ps(r1.add(8)), c1);
            kk += 2;
        }
        if kk < kend {
            let av = _mm256_set1_ps(arow[kk]);
            let r = bp.add(kk * n + jb);
            a0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(r), a0);
            c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(r.add(8)), c0);
        }
        let mut va = _mm256_add_ps(a0, a1);
        let mut vc = _mm256_add_ps(c0, c1);
        let op = orow.as_mut_ptr().add(jb);
        if !first {
            va = _mm256_add_ps(va, _mm256_loadu_ps(op));
            vc = _mm256_add_ps(vc, _mm256_loadu_ps(op.add(8)));
        }
        _mm256_storeu_ps(op, va);
        _mm256_storeu_ps(op.add(8), vc);
    }

    /// One (row, 8-column, k-block) tile: a single f32x8 accumulator
    /// split into four k-strided partial chains for ILP (same
    /// reassociated shape as [`gemm_tile16`]).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, `orow[jb..jb + 8]` in bounds, and
    /// `b[kk·n + jb + 7]` in bounds for every `kk` in the block.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn gemm_tile8(
        arow: &[f32],
        b: &[f32],
        orow: &mut [f32],
        jb: usize,
        n: usize,
        kb: usize,
        kw: usize,
        first: bool,
    ) {
        let bp = b.as_ptr();
        let mut acc = [_mm256_setzero_ps(); 4];
        let kend = kb + kw;
        let mut kk = kb;
        while kk + 4 <= kend {
            for (t, s) in acc.iter_mut().enumerate() {
                *s = _mm256_fmadd_ps(
                    _mm256_set1_ps(arow[kk + t]),
                    _mm256_loadu_ps(bp.add((kk + t) * n + jb)),
                    *s,
                );
            }
            kk += 4;
        }
        while kk < kend {
            acc[0] = _mm256_fmadd_ps(
                _mm256_set1_ps(arow[kk]),
                _mm256_loadu_ps(bp.add(kk * n + jb)),
                acc[0],
            );
            kk += 1;
        }
        let mut v = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
        let op = orow.as_mut_ptr().add(jb);
        if !first {
            v = _mm256_add_ps(v, _mm256_loadu_ps(op));
        }
        _mm256_storeu_ps(op, v);
    }

    /// One (row, 4-column, k-block) tile for narrow j-tails: 128-bit
    /// lanes with four k-strided partial chains folded pairwise. The
    /// extra chains buy ILP on latency-bound tiny grids (a 2×2 head
    /// grid is one of these tiles); the reassociation is covered by
    /// the `f32x8-fma` certificate like the 8-lane reductions.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, `orow[jb..jb + 4]` in bounds, and
    /// `b[kk·n + jb + 3]` in bounds for every `kk` in the block.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn gemm_tile4(
        arow: &[f32],
        b: &[f32],
        orow: &mut [f32],
        jb: usize,
        n: usize,
        kb: usize,
        kw: usize,
        first: bool,
    ) {
        let bp = b.as_ptr();
        let mut acc = [_mm_setzero_ps(); 4];
        let kend = kb + kw;
        let mut kk = kb;
        while kk + 4 <= kend {
            for (t, s) in acc.iter_mut().enumerate() {
                *s = _mm_fmadd_ps(
                    _mm_set1_ps(arow[kk + t]),
                    _mm_loadu_ps(bp.add((kk + t) * n + jb)),
                    *s,
                );
            }
            kk += 4;
        }
        while kk < kend {
            acc[0] = _mm_fmadd_ps(
                _mm_set1_ps(arow[kk]),
                _mm_loadu_ps(bp.add(kk * n + jb)),
                acc[0],
            );
            kk += 1;
        }
        let mut v = _mm_add_ps(_mm_add_ps(acc[0], acc[1]), _mm_add_ps(acc[2], acc[3]));
        let op = orow.as_mut_ptr().add(jb);
        if !first {
            v = _mm_add_ps(v, _mm_loadu_ps(op));
        }
        _mm_storeu_ps(op, v);
    }

    /// One leftover output column (< 4 remaining): scalar FMA over four
    /// k-strided partial chains, folded pairwise.
    ///
    /// # Safety
    ///
    /// Requires FMA (for `mul_add` to lower to `vfmadd`); all indexing
    /// is bounds-checked slice access.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn gemm_col(
        arow: &[f32],
        b: &[f32],
        orow: &mut [f32],
        j: usize,
        n: usize,
        kb: usize,
        kw: usize,
        first: bool,
    ) {
        let mut s = [0.0f32; 4];
        let kend = kb + kw;
        let mut kk = kb;
        while kk + 4 <= kend {
            for (t, st) in s.iter_mut().enumerate() {
                *st = arow[kk + t].mul_add(b[(kk + t) * n + j], *st);
            }
            kk += 4;
        }
        while kk < kend {
            s[0] = arow[kk].mul_add(b[kk * n + j], s[0]);
            kk += 1;
        }
        let mut v = (s[0] + s[1]) + (s[2] + s[3]);
        if !first {
            v += orow[j];
        }
        orow[j] = v;
    }

    /// AVX2 [`super::gemm`]: j-tiled (NR columns), k-blocked (KC rows).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA and the slice extents asserted by the caller.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        let mut jb = 0;
        while jb < n {
            let jw = NR.min(n - jb);
            let nv = jw / 8;
            let jtail = jb + nv * 8;
            let mut kb = 0;
            while kb < k {
                let kw = KC.min(k - kb);
                let first = kb == 0;
                for i in 0..m {
                    let arow = &a[i * k..(i + 1) * k];
                    let orow = &mut out[i * n..(i + 1) * n];
                    match nv {
                        8 => gemm_tile::<8>(arow, b, orow, jb, n, kb, kw, first),
                        7 => gemm_tile::<7>(arow, b, orow, jb, n, kb, kw, first),
                        6 => gemm_tile::<6>(arow, b, orow, jb, n, kb, kw, first),
                        5 => gemm_tile::<5>(arow, b, orow, jb, n, kb, kw, first),
                        4 => gemm_tile::<4>(arow, b, orow, jb, n, kb, kw, first),
                        3 => gemm_tile::<3>(arow, b, orow, jb, n, kb, kw, first),
                        // narrow tiles: k-split chains for ILP
                        2 => gemm_tile16(arow, b, orow, jb, n, kb, kw, first),
                        1 => gemm_tile8(arow, b, orow, jb, n, kb, kw, first),
                        _ => {}
                    }
                    let mut j = jtail;
                    while j + 4 <= jb + jw {
                        gemm_tile4(arow, b, orow, j, n, kb, kw, first);
                        j += 4;
                    }
                    while j < jb + jw {
                        gemm_col(arow, b, orow, j, n, kb, kw, first);
                        j += 1;
                    }
                }
                kb += kw;
            }
            jb += jw;
        }
    }

    /// AVX2 [`super::gemm_nt_acc`]: four f32x8 lanes over `k`, folded
    /// `((l0+l1)+(l2+l3))` then horizontally, scalar-FMA tail.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA and the slice extents asserted by the caller.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_nt_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let ap = arow.as_ptr();
                let bp = brow.as_ptr();
                let mut acc = [_mm256_setzero_ps(); 4];
                let mut kk = 0;
                while kk + 32 <= k {
                    for (t, s) in acc.iter_mut().enumerate() {
                        *s = _mm256_fmadd_ps(
                            _mm256_loadu_ps(ap.add(kk + t * 8)),
                            _mm256_loadu_ps(bp.add(kk + t * 8)),
                            *s,
                        );
                    }
                    kk += 32;
                }
                while kk + 8 <= k {
                    acc[0] = _mm256_fmadd_ps(
                        _mm256_loadu_ps(ap.add(kk)),
                        _mm256_loadu_ps(bp.add(kk)),
                        acc[0],
                    );
                    kk += 8;
                }
                let v = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
                let mut s = hsum(v);
                while kk < k {
                    s = arow[kk].mul_add(brow[kk], s);
                    kk += 1;
                }
                out[i * n + j] += s;
            }
        }
    }

    /// One (row, 8·NV-column) grad-input tile: accumulators over the
    /// full p range, p-ascending FMA chain.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, `orow[jb..jb + 8·NV]` in bounds, and
    /// `b[p·n + jb + 8·NV − 1]` in bounds for every `p < k`.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn tn_tile<const NV: usize>(
        a: &[f32],
        b: &[f32],
        orow: &mut [f32],
        i: usize,
        jb: usize,
        k: usize,
        m: usize,
        n: usize,
    ) {
        let bp0 = b.as_ptr().add(jb);
        let av0 = _mm256_set1_ps(a[i]);
        let mut acc = [_mm256_setzero_ps(); NV];
        for (t, s) in acc.iter_mut().enumerate() {
            *s = _mm256_mul_ps(av0, _mm256_loadu_ps(bp0.add(t * 8)));
        }
        for p in 1..k {
            let av = _mm256_set1_ps(a[p * m + i]);
            let bp = b.as_ptr().add(p * n + jb);
            for (t, s) in acc.iter_mut().enumerate() {
                *s = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(t * 8)), *s);
            }
        }
        let op = orow.as_mut_ptr().add(jb);
        for (t, s) in acc.iter().enumerate() {
            _mm256_storeu_ps(op.add(t * 8), *s);
        }
    }

    /// Narrow grad-input tile: four output columns, 128-bit lanes with
    /// four p-strided partial chains folded pairwise (same reassociated
    /// shape as [`gemm_tile4`], same certificate).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, `orow[jb..jb + 4]` in bounds, and
    /// `b[p·n + jb + 3]` in bounds for every `p < k`.
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn tn_tile4(
        a: &[f32],
        b: &[f32],
        orow: &mut [f32],
        i: usize,
        jb: usize,
        k: usize,
        m: usize,
        n: usize,
    ) {
        let bp = b.as_ptr();
        let mut acc = [_mm_setzero_ps(); 4];
        let mut p = 0;
        while p + 4 <= k {
            for (t, s) in acc.iter_mut().enumerate() {
                *s = _mm_fmadd_ps(
                    _mm_set1_ps(a[(p + t) * m + i]),
                    _mm_loadu_ps(bp.add((p + t) * n + jb)),
                    *s,
                );
            }
            p += 4;
        }
        while p < k {
            acc[0] = _mm_fmadd_ps(
                _mm_set1_ps(a[p * m + i]),
                _mm_loadu_ps(bp.add(p * n + jb)),
                acc[0],
            );
            p += 1;
        }
        let v = _mm_add_ps(_mm_add_ps(acc[0], acc[1]), _mm_add_ps(acc[2], acc[3]));
        _mm_storeu_ps(orow.as_mut_ptr().add(jb), v);
    }

    /// AVX2 [`super::gemm_tn_over`]: j-tiled, p-ascending FMA chains.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA and the slice extents asserted by the caller.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_tn_over(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        m: usize,
        n: usize,
    ) {
        let mut jb = 0;
        while jb < n {
            let jw = NR.min(n - jb);
            let nv = jw / 8;
            let jtail = jb + nv * 8;
            for i in 0..m {
                let orow = &mut out[i * n..(i + 1) * n];
                match nv {
                    8 => tn_tile::<8>(a, b, orow, i, jb, k, m, n),
                    7 => tn_tile::<7>(a, b, orow, i, jb, k, m, n),
                    6 => tn_tile::<6>(a, b, orow, i, jb, k, m, n),
                    5 => tn_tile::<5>(a, b, orow, i, jb, k, m, n),
                    4 => tn_tile::<4>(a, b, orow, i, jb, k, m, n),
                    3 => tn_tile::<3>(a, b, orow, i, jb, k, m, n),
                    2 => tn_tile::<2>(a, b, orow, i, jb, k, m, n),
                    1 => tn_tile::<1>(a, b, orow, i, jb, k, m, n),
                    _ => {}
                }
                let mut j = jtail;
                while j + 4 <= jb + jw {
                    tn_tile4(a, b, orow, i, j, k, m, n);
                    j += 4;
                }
                while j < jb + jw {
                    // scalar leftover: four p-strided FMA chains folded
                    let mut s = [0.0f32; 4];
                    let mut p = 0;
                    while p + 4 <= k {
                        for (t, st) in s.iter_mut().enumerate() {
                            *st = a[(p + t) * m + i].mul_add(b[(p + t) * n + j], *st);
                        }
                        p += 4;
                    }
                    while p < k {
                        s[0] = a[p * m + i].mul_add(b[p * n + j], s[0]);
                        p += 1;
                    }
                    orow[j] = (s[0] + s[1]) + (s[2] + s[3]);
                    j += 1;
                }
            }
            jb += jw;
        }
    }

    /// AVX2 [`super::affine_act`]: one FMA per element plus a
    /// branchless activation select.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn affine_act(seg: &mut [f32], scale: f32, shift: f32, act: Act) {
        let vs = _mm256_set1_ps(scale);
        let vh = _mm256_set1_ps(shift);
        let zero = _mm256_setzero_ps();
        let len = seg.len();
        let lv = len / 8 * 8;
        let p = seg.as_mut_ptr();
        match act {
            Act::None => {
                let mut idx = 0;
                while idx < lv {
                    let t = _mm256_fmadd_ps(_mm256_loadu_ps(p.add(idx)), vs, vh);
                    _mm256_storeu_ps(p.add(idx), t);
                    idx += 8;
                }
                for v in &mut seg[lv..] {
                    *v = v.mul_add(scale, shift);
                }
            }
            Act::Leaky(alpha) => {
                let va = _mm256_set1_ps(alpha);
                let mut idx = 0;
                while idx < lv {
                    let t = _mm256_fmadd_ps(_mm256_loadu_ps(p.add(idx)), vs, vh);
                    let pos = _mm256_cmp_ps::<_CMP_GT_OQ>(t, zero);
                    let r = _mm256_blendv_ps(_mm256_mul_ps(t, va), t, pos);
                    _mm256_storeu_ps(p.add(idx), r);
                    idx += 8;
                }
                for v in &mut seg[lv..] {
                    let t = v.mul_add(scale, shift);
                    *v = if t > 0.0 { t } else { alpha * t };
                }
            }
            Act::Relu => {
                let mut idx = 0;
                while idx < lv {
                    let t = _mm256_fmadd_ps(_mm256_loadu_ps(p.add(idx)), vs, vh);
                    _mm256_storeu_ps(p.add(idx), _mm256_max_ps(t, zero));
                    idx += 8;
                }
                for v in &mut seg[lv..] {
                    *v = v.mul_add(scale, shift).max(0.0);
                }
            }
        }
    }

    /// AVX2 [`super::max_pool2x2`]: vertical 8-lane maxima of the two
    /// input rows, then an in-register pairwise horizontal max — eight
    /// outputs per iteration. `max` is exact, so the result is bitwise
    /// identical to the scalar loop on non-NaN data.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA and the shape contract of the safe wrapper
    /// (`xs` holds `c·h·w` elements, `out` holds `c·(h/2)·(w/2)`, even
    /// `h` and `w`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn max_pool2x2(xs: &[f32], out: &mut [f32], c: usize, h: usize, w: usize) {
        let (ho, wo) = (h / 2, w / 2);
        let (hw, howo) = (h * w, ho * wo);
        // lane order after the shuffle pair: [p0 p1 q0 q1 | p2 p3 q2 q3]
        let fix = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
        for ch in 0..c {
            let plane = &xs[ch * hw..(ch + 1) * hw];
            let oplane = &mut out[ch * howo..(ch + 1) * howo];
            for oh in 0..ho {
                let r0 = plane.as_ptr().add(2 * oh * w);
                let r1 = plane.as_ptr().add((2 * oh + 1) * w);
                let orow = oplane.as_mut_ptr().add(oh * wo);
                let mut ow = 0;
                while ow + 8 <= wo {
                    let j = 2 * ow;
                    let v0 = _mm256_max_ps(_mm256_loadu_ps(r0.add(j)), _mm256_loadu_ps(r1.add(j)));
                    let v1 = _mm256_max_ps(
                        _mm256_loadu_ps(r0.add(j + 8)),
                        _mm256_loadu_ps(r1.add(j + 8)),
                    );
                    let even = _mm256_shuffle_ps::<0b10_00_10_00>(v0, v1);
                    let odd = _mm256_shuffle_ps::<0b11_01_11_01>(v0, v1);
                    let m = _mm256_max_ps(even, odd);
                    _mm256_storeu_ps(orow.add(ow), _mm256_permutevar8x32_ps(m, fix));
                    ow += 8;
                }
                while ow < wo {
                    let j = 2 * ow;
                    let a = (*r0.add(j)).max(*r0.add(j + 1));
                    let b = (*r1.add(j)).max(*r1.add(j + 1));
                    *orow.add(ow) = a.max(b);
                    ow += 1;
                }
            }
        }
    }

    /// AVX2 [`super::act_inplace`].
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn act_inplace(seg: &mut [f32], act: Act) {
        let zero = _mm256_setzero_ps();
        let len = seg.len();
        let lv = len / 8 * 8;
        let p = seg.as_mut_ptr();
        match act {
            Act::None => {}
            Act::Leaky(alpha) => {
                let va = _mm256_set1_ps(alpha);
                let mut idx = 0;
                while idx < lv {
                    let t = _mm256_loadu_ps(p.add(idx));
                    let pos = _mm256_cmp_ps::<_CMP_GT_OQ>(t, zero);
                    let r = _mm256_blendv_ps(_mm256_mul_ps(t, va), t, pos);
                    _mm256_storeu_ps(p.add(idx), r);
                    idx += 8;
                }
                for v in &mut seg[lv..] {
                    let t = *v;
                    *v = if t > 0.0 { t } else { alpha * t };
                }
            }
            Act::Relu => {
                let mut idx = 0;
                while idx < lv {
                    let t = _mm256_loadu_ps(p.add(idx));
                    _mm256_storeu_ps(p.add(idx), _mm256_max_ps(t, zero));
                    idx += 8;
                }
                for v in &mut seg[lv..] {
                    *v = v.max(0.0);
                }
            }
        }
    }

    /// AVX2 [`super::sparse_gather`]: eight rows per iteration when the
    /// run is uniform — eight 4-entry rows (the bilinear interior, one
    /// strided gather per entry slot, `add(mul)` never FMA) or eight
    /// empty rows (one zero store). Anything irregular falls to the
    /// scalar row loop, so every row's add chain matches the portable
    /// kernel exactly.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA and the CSR contract of the safe wrapper:
    /// `offsets` monotone with `out.len() + 1` elements ending at
    /// `srcs.len() == weights.len()`, and every `srcs[i]` in bounds of
    /// `src`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sparse_gather(
        offsets: &[u32],
        srcs: &[u32],
        weights: &[f32],
        src: &[f32],
        out: &mut [f32],
    ) {
        let n = out.len();
        let op = out.as_mut_ptr();
        let sp = src.as_ptr();
        let wp = weights.as_ptr();
        let ip = srcs.as_ptr() as *const i32;
        // Entry i of row r + k sits at offsets[r] + 4k + j for slot j
        // when the run is uniform; one element-stride gather per slot.
        let stride4 = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
        let mut r = 0usize;
        while r < n {
            let base = *offsets.get_unchecked(r) as usize;
            if r + 8 <= n {
                let end = *offsets.get_unchecked(r + 8) as usize;
                if end == base {
                    // Eight rows outside the warp footprint: exact +0.0,
                    // same as the scalar empty accumulation.
                    _mm256_storeu_ps(op.add(r), _mm256_setzero_ps());
                    r += 8;
                    continue;
                }
                let uniform4 = end - base == 32
                    && (1..8).all(|t| *offsets.get_unchecked(r + t) as usize == base + 4 * t);
                if uniform4 {
                    let mut acc = _mm256_setzero_ps();
                    for j in 0..4 {
                        let w = _mm256_i32gather_ps::<4>(wp.add(base + j), stride4);
                        let idx = _mm256_i32gather_epi32::<4>(ip.add(base + j), stride4);
                        let s = _mm256_i32gather_ps::<4>(sp, idx);
                        // First slot lands as 0.0 + w·s, mirroring the
                        // scalar chain's first add (−0.0 weights stay
                        // bit-exact).
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(w, s));
                    }
                    _mm256_storeu_ps(op.add(r), acc);
                    r += 8;
                    continue;
                }
            }
            let hi = *offsets.get_unchecked(r + 1) as usize;
            let mut acc = 0.0f32;
            for i in base..hi {
                acc += *wp.add(i) * *sp.add(*ip.add(i) as u32 as usize);
            }
            *op.add(r) = acc;
            r += 1;
        }
    }

    /// AVX2 [`super::add_scaled_clamp`]: `add(mul)` (no FMA) and a
    /// compare+select clamp — `x < 0 → 0`, `x > 1 → 1`, else `x` — the
    /// branch structure of `f32::clamp`, keeping `-0.0` and NaN results
    /// bit-exact with the scalar loop.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA and `seg.len() == noise.len()` (asserted by the
    /// safe wrapper).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_scaled_clamp(seg: &mut [f32], noise: &[f32], scale: f32) {
        let len = seg.len();
        let lv = len / 8 * 8;
        let p = seg.as_mut_ptr();
        let q = noise.as_ptr();
        let vs = _mm256_set1_ps(scale);
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let mut idx = 0;
        while idx < lv {
            let x = _mm256_add_ps(
                _mm256_loadu_ps(p.add(idx)),
                _mm256_mul_ps(_mm256_loadu_ps(q.add(idx)), vs),
            );
            let lt = _mm256_cmp_ps::<_CMP_LT_OQ>(x, zero);
            let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(x, one);
            let r = _mm256_blendv_ps(_mm256_blendv_ps(x, zero, lt), one, gt);
            _mm256_storeu_ps(p.add(idx), r);
            idx += 8;
        }
        for i in lv..len {
            let v = p.add(i);
            *v = (*v + *q.add(i) * scale).clamp(0.0, 1.0);
        }
    }

    /// AVX2 [`super::box_blur_vertical`]: eight columns per iteration;
    /// per lane the window adds stay y-ascending from `0.0` and the
    /// division is IEEE-exact, so each output matches the scalar column
    /// walk bit for bit.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA and `src.len() == dst.len() == h·w` (asserted
    /// by the safe wrapper).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn box_blur_vertical(
        src: &[f32],
        dst: &mut [f32],
        h: usize,
        w: usize,
        radius: usize,
    ) {
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let wv = w / 8 * 8;
        for y in 0..h {
            let y0 = y.saturating_sub(radius);
            let y1 = (y + radius + 1).min(h);
            let inv = (y1 - y0) as f32;
            let vinv = _mm256_set1_ps(inv);
            let mut x = 0;
            while x < wv {
                let mut acc = _mm256_setzero_ps();
                for yy in y0..y1 {
                    acc = _mm256_add_ps(acc, _mm256_loadu_ps(sp.add(yy * w + x)));
                }
                _mm256_storeu_ps(dp.add(y * w + x), _mm256_div_ps(acc, vinv));
                x += 8;
            }
            while x < w {
                let mut acc = 0.0f32;
                for yy in y0..y1 {
                    acc += *sp.add(yy * w + x);
                }
                *dp.add(y * w + x) = acc / inv;
                x += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// `γ(k) = k·u/(1−k·u)` with `u = 2⁻²⁴` — the reduction model the
    /// certifier uses; the per-element divergence bound for one GEMM
    /// under the `f32x8-fma` model is `2·γ(k)·Σ|aᵢ·bᵢ|`.
    fn gamma(k: usize) -> f64 {
        let ku = k as f64 * 5.960_464_477_539_063e-8;
        ku / (1.0 - ku)
    }

    fn randv(rng: &mut StdRng, n: usize, zeros: bool) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if zeros && i % 7 == 0 {
                    0.0
                } else {
                    rng.gen_range(-2.0f32..2.0)
                }
            })
            .collect()
    }

    /// Asserts `got` within the certified per-element bound of `want`
    /// for a k-term reduction over rows of `a` and columns of `b`.
    fn assert_within_cert(
        got: &[f32],
        want: &[f32],
        bound_l1: impl Fn(usize) -> f64,
        k: usize,
        tag: &str,
    ) {
        let g = gamma(k + 2);
        for (e, (&x, &y)) in got.iter().zip(want).enumerate() {
            let bound = 2.0 * g * bound_l1(e) + 1e-30;
            let diff = (x as f64 - y as f64).abs();
            assert!(
                diff <= bound,
                "{tag}: element {e} diverged {diff:.3e} > certified {bound:.3e}"
            );
        }
    }

    /// Throughput probe at the smoke-detector conv shapes; ignored in
    /// normal runs. `cargo test --release -p rd-tensor simd::tests::micro
    /// -- --ignored --nocapture`
    #[test]
    #[ignore]
    fn micro() {
        use std::time::Instant;
        let shapes = [
            (8usize, 27usize, 4096usize),
            (16, 72, 1024),
            (32, 144, 256),
            (64, 288, 64),
            (96, 576, 16),
            (128, 864, 16),
            (64, 1152, 16),
            (30, 64, 16),
            (30, 64, 4),
        ];
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in shapes {
            let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut o1 = vec![0.0f32; m * n];
            let mut o2 = vec![0.0f32; m * n];
            let reps = (200_000_000 / (m * k * n)).max(8);
            conv::conv_gemm(&a, &b, &mut o1, m, k, n);
            gemm(&a, &b, &mut o2, m, k, n);
            let t0 = Instant::now();
            for _ in 0..reps {
                conv::conv_gemm(&a, &b, &mut o1, m, k, n);
            }
            let ts = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            for _ in 0..reps {
                gemm(&a, &b, &mut o2, m, k, n);
            }
            let tf = t0.elapsed().as_secs_f64();
            let gf = |t: f64| 2.0 * (m * k * n * reps) as f64 / t / 1e9;
            println!(
                "m={m:4} k={k:5} n={n:5}: ref {:7.2} GF/s  simd {:7.2} GF/s  ({:.2}x)",
                gf(ts),
                gf(tf),
                ts / tf
            );
            std::hint::black_box((&o1, &o2));
        }
    }

    #[test]
    fn dispatch_prefers_avx2_only_when_host_has_it() {
        // Simulated "feature absent" (RD_NO_SIMD) must always fall back.
        assert_eq!(Backend::select(true), Backend::Portable);
        // With SIMD allowed, the choice must agree with the host CPU.
        #[cfg(target_arch = "x86_64")]
        {
            let host = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
            let want = if host {
                Backend::Avx2Fma
            } else {
                Backend::Portable
            };
            assert_eq!(Backend::select(false), want);
        }
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(Backend::select(false), Backend::Portable);
    }

    #[test]
    fn portable_gemm_is_bitwise_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(31);
        for &(m, k, n) in &[
            (3, 9, 4),
            (5, 27, 64),
            (4, 18, 70),
            (2, 64, 130),
            (7, 5, 36),
        ] {
            let a = randv(&mut rng, m * k, true);
            let b = randv(&mut rng, k * n, false);
            let mut want = vec![f32::NAN; m * n];
            conv::conv_gemm(&a, &b, &mut want, m, k, n);
            let mut got = vec![f32::NAN; m * n];
            portable::gemm(&a, &b, &mut got, m, k, n);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn portable_epilogues_are_bitwise_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(32);
        let x = randv(&mut rng, 37, false);
        for act in [Act::None, Act::Leaky(0.1), Act::Relu] {
            let mut want = x.clone();
            for v in &mut want {
                let t = *v * 1.3 + -0.2;
                *v = match act {
                    Act::None => t,
                    Act::Leaky(a) => {
                        if t > 0.0 {
                            t
                        } else {
                            a * t
                        }
                    }
                    Act::Relu => t.max(0.0),
                };
            }
            let mut got = x.clone();
            portable::affine_act(&mut got, 1.3, -0.2, act);
            assert_eq!(got, want, "{act:?}");
        }
    }

    /// Random CSR shaped like real bilinear maps: runs of 4-entry rows,
    /// runs of empty rows, and irregular rows that force the scalar
    /// fallback inside the AVX2 kernel.
    fn random_csr(rng: &mut StdRng, out_n: usize, in_n: usize) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
        let mut offsets = Vec::with_capacity(out_n + 1);
        let (mut srcs, mut weights) = (Vec::new(), Vec::new());
        let mut r = 0usize;
        while r < out_n {
            let run = rng.gen_range(1usize..=12).min(out_n - r);
            let per_row = match rng.gen_range(0..10) {
                0..=3 => 4usize,
                4..=6 => 0,
                other => other - 5, // 2, 3 or 4 entries
            };
            for _ in 0..run {
                offsets.push(srcs.len() as u32);
                for _ in 0..per_row {
                    srcs.push(rng.gen_range(0..in_n as u32));
                    // Mix in exact and negative zeros so the first-add
                    // sign behaviour is exercised.
                    weights.push(match rng.gen_range(0..12) {
                        0 => 0.0,
                        1 => -0.0,
                        _ => rng.gen_range(-1.5f32..1.5),
                    });
                }
            }
            r += run;
        }
        offsets.push(srcs.len() as u32);
        (offsets, srcs, weights)
    }

    #[test]
    fn sparse_gather_bitwise_matches_scatter_on_both_backends() {
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..40 {
            let out_n = rng.gen_range(1..200);
            let in_n = rng.gen_range(1..150);
            let (offsets, srcs, weights) = random_csr(&mut rng, out_n, in_n);
            let src = randv(&mut rng, in_n, false);
            let mut want = vec![0.0f32; out_n];
            for r in 0..out_n {
                for i in offsets[r] as usize..offsets[r + 1] as usize {
                    want[r] += weights[i] * src[srcs[i] as usize];
                }
            }
            for dispatched in [false, true] {
                let mut got = vec![f32::NAN; out_n];
                if dispatched {
                    sparse_gather(&offsets, &srcs, &weights, &src, &mut got);
                } else {
                    portable::sparse_gather(&offsets, &srcs, &weights, &src, &mut got);
                }
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "out_n={out_n} dispatched={dispatched} ({})",
                    backend().label()
                );
            }
        }
    }

    #[test]
    fn add_scaled_clamp_bitwise_matches_scalar_on_both_backends() {
        let mut rng = StdRng::seed_from_u64(92);
        for len in [0usize, 1, 7, 8, 9, 33, 1000] {
            let x: Vec<f32> = (0..len).map(|_| rng.gen_range(-0.5f32..1.5)).collect();
            let noise: Vec<f32> = (0..len)
                .map(|_| match rng.gen_range(0..10) {
                    0 => -0.0,
                    1 => 0.0,
                    _ => rng.gen_range(-2.0f32..2.0),
                })
                .collect();
            for scale in [0.07f32, -0.3, 0.0] {
                let mut want = x.clone();
                for (v, &nz) in want.iter_mut().zip(&noise) {
                    *v = (*v + nz * scale).clamp(0.0, 1.0);
                }
                for dispatched in [false, true] {
                    let mut got = x.clone();
                    if dispatched {
                        add_scaled_clamp(&mut got, &noise, scale);
                    } else {
                        portable::add_scaled_clamp(&mut got, &noise, scale);
                    }
                    assert_eq!(
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "len={len} scale={scale} dispatched={dispatched}"
                    );
                }
            }
        }
    }

    #[test]
    fn box_blur_vertical_bitwise_matches_scalar_on_both_backends() {
        let mut rng = StdRng::seed_from_u64(93);
        for (h, w) in [(1usize, 1usize), (5, 3), (8, 8), (13, 17), (64, 64)] {
            let src = randv(&mut rng, h * w, false);
            for radius in [0usize, 1, 2, 7] {
                let mut want = vec![f32::NAN; h * w];
                for x in 0..w {
                    for y in 0..h {
                        let y0 = y.saturating_sub(radius);
                        let y1 = (y + radius + 1).min(h);
                        let mut acc = 0.0f32;
                        for yy in y0..y1 {
                            acc += src[yy * w + x];
                        }
                        want[y * w + x] = acc / (y1 - y0) as f32;
                    }
                }
                for dispatched in [false, true] {
                    let mut got = vec![f32::NAN; h * w];
                    if dispatched {
                        box_blur_vertical(&src, &mut got, h, w, radius);
                    } else {
                        portable::box_blur_vertical(&src, &mut got, h, w, radius);
                    }
                    assert_eq!(
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "h={h} w={w} radius={radius} dispatched={dispatched}"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Dispatched `gemm` (whatever backend this host selects) stays
        /// within the certified per-element bound of the scalar
        /// reference across random shapes.
        #[test]
        fn gemm_within_certified_bound(
            m in 1usize..9,
            k in 1usize..130,
            n in 1usize..150,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = randv(&mut rng, m * k, true);
            let b = randv(&mut rng, k * n, false);
            let mut want = vec![f32::NAN; m * n];
            conv::conv_gemm(&a, &b, &mut want, m, k, n);
            let mut got = vec![f32::NAN; m * n];
            gemm(&a, &b, &mut got, m, k, n);
            assert_within_cert(&got, &want, |e| {
                let (i, j) = (e / n, e % n);
                (0..k).map(|t| (a[i * k + t] as f64 * b[t * n + j] as f64).abs()).sum()
            }, k, "gemm");
        }

        /// Dispatched `gemm_nt_acc` within the certified bound of the
        /// reference `gemm_nt` (both accumulate onto the same base).
        #[test]
        fn gemm_nt_within_certified_bound(
            m in 1usize..7,
            k in 1usize..200,
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = randv(&mut rng, m * k, false);
            let b = randv(&mut rng, n * k, false);
            let base = randv(&mut rng, m * n, false);
            let mut want = base.clone();
            conv::gemm_nt(&a, &b, &mut want, m, k, n);
            let mut got = base;
            gemm_nt_acc(&a, &b, &mut got, m, k, n);
            assert_within_cert(&got, &want, |e| {
                let (i, j) = (e / n, e % n);
                1.0 + (0..k).map(|t| (a[i * k + t] as f64 * b[j * k + t] as f64).abs()).sum::<f64>()
            }, k, "gemm_nt_acc");
        }

        /// Dispatched `gemm_tn_over` within the certified bound of the
        /// reference overwrite-mode kernel.
        #[test]
        fn gemm_tn_within_certified_bound(
            k in 1usize..60,
            m in 1usize..9,
            n in 1usize..150,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = randv(&mut rng, k * m, true);
            let b = randv(&mut rng, k * n, false);
            let mut want = vec![f32::NAN; m * n];
            conv::gemm_tn_over(&a, &b, &mut want, k, m, n);
            let mut got = vec![f32::NAN; m * n];
            gemm_tn_over(&a, &b, &mut got, k, m, n);
            assert_within_cert(&got, &want, |e| {
                let (i, j) = (e / n, e % n);
                (0..k).map(|p| (a[p * m + i] as f64 * b[p * n + j] as f64).abs()).sum()
            }, k, "gemm_tn_over");
        }

        /// Fused epilogue within a few ulps of the reference chain
        /// (the certifier widens bn stages by 8u for this fold).
        #[test]
        fn affine_act_within_epilogue_slack(
            len in 1usize..80,
            scale in -3.0f32..3.0,
            shift in -3.0f32..3.0,
            which in 0u8..3,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let x = randv(&mut rng, len, false);
            let act = match which { 0 => Act::None, 1 => Act::Leaky(0.1), _ => Act::Relu };
            let mut want = x.clone();
            portable::affine_act(&mut want, scale, shift, act);
            let mut got = x.clone();
            affine_act(&mut got, scale, shift, act);
            for (e, (&g, &w)) in got.iter().zip(&want).enumerate() {
                // FMA-vs-separate divergence scales with the operand
                // magnitude |x·scale| + |shift| (the pre-activation
                // interval), exactly how the certifier widens fused
                // bn stages — not with the possibly-cancelled result.
                let mag = (x[e] as f64 * scale as f64).abs() + shift.abs() as f64;
                let slack = 8.0 * 5.960_464_477_539_063e-8 * mag + 1e-40;
                prop_assert!(
                    ((g as f64) - (w as f64)).abs() <= slack,
                    "element {e}: {g} vs {w}"
                );
            }
        }
    }
}
