//! Numerical gradient checking utilities used throughout the workspace's
//! test suites to validate analytic backward passes.

use crate::tensor::Tensor;

/// Central-difference numerical gradient of a scalar function of a tensor.
///
/// `f` must be deterministic. Cost is `2 * t.len()` evaluations of `f`, so
/// keep the tensors small in tests.
///
/// # Examples
///
/// ```
/// use rd_tensor::{check::numeric_grad, Tensor};
///
/// let x = Tensor::from_vec(vec![3.0], &[1]);
/// let g = numeric_grad(|t| t.data()[0] * t.data()[0], &x, 1e-3);
/// assert!((g.data()[0] - 6.0).abs() < 1e-2);
/// ```
pub fn numeric_grad(f: impl Fn(&Tensor) -> f32, t: &Tensor, eps: f32) -> Tensor {
    let mut grad = Tensor::zeros(t.shape());
    for i in 0..t.len() {
        let mut plus = t.clone();
        plus.data_mut()[i] += eps;
        let mut minus = t.clone();
        minus.data_mut()[i] -= eps;
        grad.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
    }
    grad
}

/// Asserts that two gradients agree within a mixed absolute/relative bound.
///
/// # Panics
///
/// Panics with a descriptive message on the first element that disagrees.
pub fn assert_grads_close(analytic: &Tensor, numeric: &Tensor, tol: f32) {
    assert_eq!(analytic.shape(), numeric.shape(), "gradient shapes differ");
    for (i, (&a, &n)) in analytic.data().iter().zip(numeric.data()).enumerate() {
        let denom = 1.0f32.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() / denom < tol,
            "gradient mismatch at {i}: analytic {a} vs numeric {n}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_grad_of_quadratic() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]);
        let g = numeric_grad(|t| t.data().iter().map(|v| v * v).sum(), &x, 1e-3);
        assert_grads_close(&g, &Tensor::from_vec(vec![2.0, -4.0, 1.0], &[3]), 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn assert_grads_close_detects_mismatch() {
        let a = Tensor::from_vec(vec![1.0], &[1]);
        let b = Tensor::from_vec(vec![2.0], &[1]);
        assert_grads_close(&a, &b, 1e-3);
    }
}
