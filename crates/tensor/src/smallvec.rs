//! A minimal inline small-vector for tape parent lists.
//!
//! Almost every op on the autograd tape has at most four parents
//! (`conv2d` has three, `lerp_mask` two), so [`SmallVec`] stores up to
//! four [`VarId`]s inline and only heap-allocates for wide fan-in ops
//! like `concat_batch`. This keeps per-node metadata allocation-free on
//! the hot construction path without pulling in an external crate.

use crate::graph::VarId;

const INLINE: usize = 4;

/// Inline-first vector of parent [`VarId`]s.
#[derive(Clone)]
pub struct SmallVec {
    inline: [VarId; INLINE],
    len: usize,
    spill: Vec<VarId>,
}

impl SmallVec {
    /// Creates an empty parent list.
    pub fn new() -> Self {
        SmallVec {
            inline: [VarId(0); INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Builds a parent list from a slice.
    pub fn from_slice(ids: &[VarId]) -> Self {
        let mut v = SmallVec::new();
        for &id in ids {
            v.push(id);
        }
        v
    }

    /// Appends a parent id.
    pub fn push(&mut self, id: VarId) {
        if self.spill.is_empty() && self.len < INLINE {
            self.inline[self.len] = id;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill.extend_from_slice(&self.inline[..self.len]);
            }
            self.spill.push(id);
        }
    }

    /// Number of parents.
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.len
        } else {
            self.spill.len()
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The parents as a slice.
    pub fn as_slice(&self) -> &[VarId] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Iterates over the parent ids.
    pub fn iter(&self) -> std::slice::Iter<'_, VarId> {
        self.as_slice().iter()
    }
}

impl Default for SmallVec {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl std::ops::Deref for SmallVec {
    type Target = [VarId];
    fn deref(&self) -> &[VarId] {
        self.as_slice()
    }
}

impl std::fmt::Debug for SmallVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<'a> IntoIterator for &'a SmallVec {
    type Item = &'a VarId;
    type IntoIter = std::slice::Iter<'a, VarId>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<VarId> for SmallVec {
    fn from_iter<I: IntoIterator<Item = VarId>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        for id in iter {
            v.push(id);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_then_spills() {
        let mut v = SmallVec::new();
        for i in 0..INLINE {
            v.push(VarId(i));
        }
        assert_eq!(v.len(), INLINE);
        v.push(VarId(99));
        assert_eq!(v.len(), INLINE + 1);
        let collected: Vec<usize> = v.iter().map(|id| id.index()).collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 99]);
    }

    #[test]
    fn from_slice_round_trips() {
        let ids = [VarId(3), VarId(1), VarId(4), VarId(1), VarId(5), VarId(9)];
        let v = SmallVec::from_slice(&ids);
        assert_eq!(v.as_slice(), &ids);
        assert!(!v.is_empty());
    }
}
