//! Batch normalization over NCHW activations.

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

/// Per-channel batch statistics returned by the training-mode forward pass
/// so the owning module can update its running averages.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Per-channel mean over `N x H x W`.
    pub mean: Tensor,
    /// Per-channel (biased) variance over `N x H x W`.
    pub var: Tensor,
}

impl Graph {
    /// Training-mode batch norm: normalizes with the batch statistics and
    /// returns them alongside the output node.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn batch_norm2d_train(
        &mut self,
        x: VarId,
        gamma: VarId,
        beta: VarId,
        eps: f32,
    ) -> (VarId, BatchStats) {
        let xv = self.value(x);
        assert_eq!(xv.shape().len(), 4, "batch norm input must be NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        assert_eq!(self.value(gamma).len(), c);
        assert_eq!(self.value(beta).len(), c);
        let m = (n * h * w) as f32;
        let hw = h * w;

        let mut mean = Tensor::zeros(&[c]);
        let mut var = Tensor::zeros(&[c]);
        for ch in 0..c {
            let mut s = 0.0f32;
            for ni in 0..n {
                let off = (ni * c + ch) * hw;
                s += xv.data()[off..off + hw].iter().sum::<f32>();
            }
            let mu = s / m;
            let mut v = 0.0f32;
            for ni in 0..n {
                let off = (ni * c + ch) * hw;
                for &xval in &xv.data()[off..off + hw] {
                    let d = xval - mu;
                    v += d * d;
                }
            }
            mean.data_mut()[ch] = mu;
            var.data_mut()[ch] = v / m;
        }

        let mut xhat = Tensor::zeros(&[n, c, h, w]);
        let mut ivstd = Tensor::zeros(&[c]);
        for ch in 0..c {
            ivstd.data_mut()[ch] = 1.0 / (var.data()[ch] + eps).sqrt();
        }
        let gv = self.value(gamma).clone();
        let bv = self.value(beta).clone();
        let mut out = Tensor::zeros(&[n, c, h, w]);
        for ni in 0..n {
            for ch in 0..c {
                let off = (ni * c + ch) * hw;
                let mu = mean.data()[ch];
                let iv = ivstd.data()[ch];
                let ga = gv.data()[ch];
                let be = bv.data()[ch];
                for i in 0..hw {
                    let xh = (self.value(x).data()[off + i] - mu) * iv;
                    xhat.data_mut()[off + i] = xh;
                    out.data_mut()[off + i] = ga * xh + be;
                }
            }
        }
        let stats = BatchStats {
            mean,
            var: var.clone(),
        };
        let out_id = self.record(
            "batch_norm2d_train",
            &[x, gamma, beta],
            &[],
            out,
            Some(Box::new(move |g, vals, grads| {
                let gamma_v = &vals[gamma.0];
                // Per-channel reductions of the incoming gradient.
                let mut sum_g = vec![0.0f32; c];
                let mut sum_gx = vec![0.0f32; c]; // sum of g * xhat
                for ni in 0..n {
                    for ch in 0..c {
                        let off = (ni * c + ch) * hw;
                        for i in 0..hw {
                            let gv = g.data()[off + i];
                            sum_g[ch] += gv;
                            sum_gx[ch] += gv * xhat.data()[off + i];
                        }
                    }
                }
                // gamma / beta gradients
                for ch in 0..c {
                    grads[gamma.0].data_mut()[ch] += sum_gx[ch];
                    grads[beta.0].data_mut()[ch] += sum_g[ch];
                }
                // input gradient:
                // gx = gamma*ivstd/m * (m*g - sum_g - xhat*sum_gx)
                let gx = &mut grads[x.0];
                for ni in 0..n {
                    for ch in 0..c {
                        let off = (ni * c + ch) * hw;
                        let k = gamma_v.data()[ch] * ivstd.data()[ch] / m;
                        for i in 0..hw {
                            let gv = g.data()[off + i];
                            gx.data_mut()[off + i] +=
                                k * (m * gv - sum_g[ch] - xhat.data()[off + i] * sum_gx[ch]);
                        }
                    }
                }
            })),
        );
        (out_id, stats)
    }

    /// Inference-mode batch norm using fixed running statistics. The output
    /// is an affine function of `x`, so gradients flow through to `x`,
    /// `gamma` and `beta` (useful when attacking a frozen detector).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn batch_norm2d_eval(
        &mut self,
        x: VarId,
        gamma: VarId,
        beta: VarId,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape().len(), 4, "batch norm input must be NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        assert_eq!(running_mean.len(), c);
        assert_eq!(running_var.len(), c);
        let hw = h * w;
        let mut ivstd = Tensor::zeros(&[c]);
        for ch in 0..c {
            ivstd.data_mut()[ch] = 1.0 / (running_var.data()[ch] + eps).sqrt();
        }
        let mean = running_mean.clone();
        let gv = self.value(gamma).clone();
        let bv = self.value(beta).clone();
        let mut out = Tensor::zeros(&[n, c, h, w]);
        for ni in 0..n {
            for ch in 0..c {
                let off = (ni * c + ch) * hw;
                let scale = gv.data()[ch] * ivstd.data()[ch];
                let shift = bv.data()[ch] - mean.data()[ch] * scale;
                for i in 0..hw {
                    out.data_mut()[off + i] = self.value(x).data()[off + i] * scale + shift;
                }
            }
        }
        self.record(
            "batch_norm2d_eval",
            &[x, gamma, beta],
            &[],
            out,
            Some(Box::new(move |g, vals, grads| {
                let gamma_v = &vals[gamma.0];
                for ni in 0..n {
                    for ch in 0..c {
                        let off = (ni * c + ch) * hw;
                        let scale = gamma_v.data()[ch] * ivstd.data()[ch];
                        let mut sum_g = 0.0f32;
                        let mut sum_gxh = 0.0f32;
                        for i in 0..hw {
                            let gval = g.data()[off + i];
                            grads[x.0].data_mut()[off + i] += gval * scale;
                            sum_g += gval;
                            let xh =
                                (vals[x.0].data()[off + i] - mean.data()[ch]) * ivstd.data()[ch];
                            sum_gxh += gval * xh;
                        }
                        grads[beta.0].data_mut()[ch] += sum_g;
                        grads[gamma.0].data_mut()[ch] += sum_gxh;
                    }
                }
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{assert_grads_close, numeric_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_mode_normalizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let x0 = Tensor::randn(&mut rng, &[8, 3, 6, 6], 2.0).map(|v| v + 3.0);
        let mut g = Graph::new();
        let x = g.input(x0);
        let gamma = g.input(Tensor::ones(&[3]));
        let beta = g.input(Tensor::zeros(&[3]));
        let (y, stats) = g.batch_norm2d_train(x, gamma, beta, 1e-5);
        // output should be ~zero-mean unit-var per channel
        let yv = g.value(y);
        let (n, c, h, w) = (8, 3, 6, 6);
        for ch in 0..c {
            let mut s = 0.0;
            let mut s2 = 0.0;
            for ni in 0..n {
                for i in 0..h * w {
                    let v = yv.data()[(ni * c + ch) * h * w + i];
                    s += v;
                    s2 += v * v;
                }
            }
            let m = (n * h * w) as f32;
            assert!((s / m).abs() < 1e-4);
            assert!((s2 / m - 1.0).abs() < 1e-3);
        }
        assert!((stats.mean.data()[0] - 3.0).abs() < 0.4);
        assert!((stats.var.data()[0] - 4.0).abs() < 1.2);
    }

    #[test]
    fn train_grads_match_numeric() {
        let mut rng = StdRng::seed_from_u64(2);
        let x0 = Tensor::randn(&mut rng, &[2, 2, 3, 3], 1.0);
        let g0 = Tensor::from_vec(vec![1.3, 0.7], &[2]);
        let b0 = Tensor::from_vec(vec![0.1, -0.2], &[2]);
        let run = |x0: &Tensor, g0: &Tensor, b0: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let ga = g.input(g0.clone());
            let be = g.input(b0.clone());
            let (y, _) = g.batch_norm2d_train(x, ga, be, 1e-5);
            let y2 = g.mul(y, y);
            let s = g.sum_all(y2);
            // add an asymmetric term so mean/var gradients are exercised
            let sy = g.sum_all(y);
            let loss = g.add(s, sy);
            (g, x, ga, be, loss)
        };
        let (g, x, ga, be, loss) = run(&x0, &g0, &b0);
        let grads = g.backward(loss);
        let f = |xt: &Tensor, gt: &Tensor, bt: &Tensor| {
            let (g, _, _, _, l) = run(xt, gt, bt);
            g.value(l).data()[0]
        };
        assert_grads_close(
            grads.get(x),
            &numeric_grad(|t| f(t, &g0, &b0), &x0, 1e-2),
            0.05,
        );
        assert_grads_close(
            grads.get(ga),
            &numeric_grad(|t| f(&x0, t, &b0), &g0, 1e-3),
            0.05,
        );
        assert_grads_close(
            grads.get(be),
            &numeric_grad(|t| f(&x0, &g0, t), &b0, 1e-3),
            0.05,
        );
    }

    #[test]
    fn eval_mode_is_affine() {
        let x0 = Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 1, 2]);
        let mean = Tensor::from_vec(vec![1.0], &[1]);
        let var = Tensor::from_vec(vec![3.0], &[1]);
        let mut g = Graph::new();
        let x = g.input(x0);
        let gamma = g.input(Tensor::from_vec(vec![2.0], &[1]));
        let beta = g.input(Tensor::from_vec(vec![0.5], &[1]));
        let y = g.batch_norm2d_eval(x, gamma, beta, &mean, &var, 0.0);
        let iv = 1.0 / 3.0f32.sqrt();
        let want0 = 0.5;
        let want1 = 2.0 * iv + 0.5;
        assert!((g.value(y).data()[0] - want0).abs() < 1e-5);
        assert!((g.value(y).data()[1] - want1).abs() < 1e-5);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!((grads.get(x).data()[0] - 2.0 * iv).abs() < 1e-5);
    }

    #[test]
    fn eval_grads_match_numeric() {
        let mut rng = StdRng::seed_from_u64(6);
        let x0 = Tensor::randn(&mut rng, &[2, 2, 2, 2], 1.0);
        let g0 = Tensor::from_vec(vec![1.1, 0.9], &[2]);
        let b0 = Tensor::from_vec(vec![0.3, -0.1], &[2]);
        let mean = Tensor::from_vec(vec![0.2, -0.4], &[2]);
        let var = Tensor::from_vec(vec![1.5, 0.8], &[2]);
        let run = |x0: &Tensor, g0: &Tensor, b0: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let ga = g.input(g0.clone());
            let be = g.input(b0.clone());
            let y = g.batch_norm2d_eval(x, ga, be, &mean, &var, 1e-5);
            let y2 = g.mul(y, y);
            let loss = g.sum_all(y2);
            (g, x, ga, be, loss)
        };
        let (g, x, ga, be, loss) = run(&x0, &g0, &b0);
        let grads = g.backward(loss);
        let f = |xt: &Tensor, gt: &Tensor, bt: &Tensor| {
            let (g, _, _, _, l) = run(xt, gt, bt);
            g.value(l).data()[0]
        };
        assert_grads_close(
            grads.get(x),
            &numeric_grad(|t| f(t, &g0, &b0), &x0, 1e-3),
            0.05,
        );
        assert_grads_close(
            grads.get(ga),
            &numeric_grad(|t| f(&x0, t, &b0), &g0, 1e-3),
            0.05,
        );
        assert_grads_close(
            grads.get(be),
            &numeric_grad(|t| f(&x0, &g0, t), &b0, 1e-3),
            0.05,
        );
    }
}
