//! Batch normalization over NCHW activations.
//!
//! The forward/backward arithmetic lives in free `bn_*` kernel
//! functions shared between the tape closures here and the compiled
//! training plan (`crate::train_plan`), so the two paths are bitwise
//! identical by construction.

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

/// Per-channel batch statistics returned by the training-mode forward pass
/// so the owning module can update its running averages.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Per-channel mean over `N x H x W`.
    pub mean: Tensor,
    /// Per-channel (biased) variance over `N x H x W`.
    pub var: Tensor,
}

/// Per-channel batch mean/variance over `[n, c, hw]` data; the exact
/// two-pass sum order of the original tape loop.
pub(crate) fn bn_batch_stats(
    xd: &[f32],
    n: usize,
    c: usize,
    hw: usize,
    mean: &mut [f32],
    var: &mut [f32],
) {
    let m = (n * hw) as f32;
    for ch in 0..c {
        let mut s = 0.0f32;
        for ni in 0..n {
            let off = (ni * c + ch) * hw;
            s += xd[off..off + hw].iter().sum::<f32>();
        }
        let mu = s / m;
        let mut v = 0.0f32;
        for ni in 0..n {
            let off = (ni * c + ch) * hw;
            for &xval in &xd[off..off + hw] {
                let d = xval - mu;
                v += d * d;
            }
        }
        mean[ch] = mu;
        var[ch] = v / m;
    }
}

/// `ivstd[ch] = 1 / sqrt(var[ch] + eps)`.
pub(crate) fn bn_ivstd(var: &[f32], eps: f32, ivstd: &mut [f32]) {
    for (iv, &v) in ivstd.iter_mut().zip(var) {
        *iv = 1.0 / (v + eps).sqrt();
    }
}

/// Training-mode forward: writes both the normalized activations
/// (`xhat`, needed by the backward pass) and the affine output.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bn_train_forward(
    xd: &[f32],
    n: usize,
    c: usize,
    hw: usize,
    mean: &[f32],
    ivstd: &[f32],
    gv: &[f32],
    bv: &[f32],
    xhat: &mut [f32],
    out: &mut [f32],
) {
    for ni in 0..n {
        for ch in 0..c {
            let off = (ni * c + ch) * hw;
            let mu = mean[ch];
            let iv = ivstd[ch];
            let ga = gv[ch];
            let be = bv[ch];
            for i in 0..hw {
                let xh = (xd[off + i] - mu) * iv;
                xhat[off + i] = xh;
                out[off + i] = ga * xh + be;
            }
        }
    }
}

/// Training-mode backward reductions: `sum_g[ch] = Σ g` and
/// `sum_gx[ch] = Σ g·xhat`, accumulated sample-major exactly like the
/// tape closure. These are also the gamma/beta gradients.
pub(crate) fn bn_train_backward_sums(
    gd: &[f32],
    xhat: &[f32],
    n: usize,
    c: usize,
    hw: usize,
    sum_g: &mut [f32],
    sum_gx: &mut [f32],
) {
    for ni in 0..n {
        for ch in 0..c {
            let off = (ni * c + ch) * hw;
            for i in 0..hw {
                let gv = gd[off + i];
                sum_g[ch] += gv;
                sum_gx[ch] += gv * xhat[off + i];
            }
        }
    }
}

/// Training-mode input gradient,
/// `gx += gamma*ivstd/m * (m*g - sum_g - xhat*sum_gx)`, accumulated
/// into `gx` in the tape's element order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bn_train_backward_gx(
    gd: &[f32],
    xhat: &[f32],
    n: usize,
    c: usize,
    hw: usize,
    gamma_v: &[f32],
    ivstd: &[f32],
    sum_g: &[f32],
    sum_gx: &[f32],
    gx: &mut [f32],
) {
    let m = (n * hw) as f32;
    for ni in 0..n {
        for ch in 0..c {
            let off = (ni * c + ch) * hw;
            let k = gamma_v[ch] * ivstd[ch] / m;
            for i in 0..hw {
                let gv = gd[off + i];
                gx[off + i] += k * (m * gv - sum_g[ch] - xhat[off + i] * sum_gx[ch]);
            }
        }
    }
}

/// Eval-mode forward: per-channel affine `x*scale + shift` with
/// `scale = gamma*ivstd`, `shift = beta - mean*scale`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bn_eval_forward(
    xd: &[f32],
    n: usize,
    c: usize,
    hw: usize,
    mean: &[f32],
    ivstd: &[f32],
    gv: &[f32],
    bv: &[f32],
    out: &mut [f32],
) {
    for ni in 0..n {
        for ch in 0..c {
            let off = (ni * c + ch) * hw;
            let scale = gv[ch] * ivstd[ch];
            let shift = bv[ch] - mean[ch] * scale;
            for i in 0..hw {
                out[off + i] = xd[off + i] * scale + shift;
            }
        }
    }
}

/// Eval-mode backward: accumulates all three gradients in the tape's
/// interleaved `(sample, channel)` order — the per-channel beta/gamma
/// entries receive one partial sum per sample.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bn_eval_backward(
    gd: &[f32],
    xd: &[f32],
    n: usize,
    c: usize,
    hw: usize,
    mean: &[f32],
    ivstd: &[f32],
    gamma_v: &[f32],
    gx: &mut [f32],
    ggamma: &mut [f32],
    gbeta: &mut [f32],
) {
    for ni in 0..n {
        for ch in 0..c {
            let off = (ni * c + ch) * hw;
            let scale = gamma_v[ch] * ivstd[ch];
            let mut sum_g = 0.0f32;
            let mut sum_gxh = 0.0f32;
            for i in 0..hw {
                let gval = gd[off + i];
                gx[off + i] += gval * scale;
                sum_g += gval;
                let xh = (xd[off + i] - mean[ch]) * ivstd[ch];
                sum_gxh += gval * xh;
            }
            gbeta[ch] += sum_g;
            ggamma[ch] += sum_gxh;
        }
    }
}

/// Eval-mode input gradient only: `gx += g * gamma*ivstd`. Used by the
/// compiled plan when parameter gradients are not requested (frozen
/// detector in the attack loop) — the expression for `gx` is identical
/// to [`bn_eval_backward`]'s, so skipping the reductions changes no
/// bit of the input gradient.
pub(crate) fn bn_eval_backward_gx_only(
    gd: &[f32],
    n: usize,
    c: usize,
    hw: usize,
    ivstd: &[f32],
    gamma_v: &[f32],
    gx: &mut [f32],
) {
    for ni in 0..n {
        for ch in 0..c {
            let off = (ni * c + ch) * hw;
            let scale = gamma_v[ch] * ivstd[ch];
            for i in 0..hw {
                gx[off + i] += gd[off + i] * scale;
            }
        }
    }
}

impl Graph {
    /// Training-mode batch norm: normalizes with the batch statistics and
    /// returns them alongside the output node.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn batch_norm2d_train(
        &mut self,
        x: VarId,
        gamma: VarId,
        beta: VarId,
        eps: f32,
    ) -> (VarId, BatchStats) {
        let xv = self.value(x);
        assert_eq!(xv.shape().len(), 4, "batch norm input must be NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        assert_eq!(self.value(gamma).len(), c);
        assert_eq!(self.value(beta).len(), c);
        let hw = h * w;

        let mut mean = Tensor::zeros(&[c]);
        let mut var = Tensor::zeros(&[c]);
        bn_batch_stats(xv.data(), n, c, hw, mean.data_mut(), var.data_mut());

        let mut xhat = Tensor::zeros(&[n, c, h, w]);
        let mut ivstd = Tensor::zeros(&[c]);
        bn_ivstd(var.data(), eps, ivstd.data_mut());
        let gv = self.value(gamma).clone();
        let bv = self.value(beta).clone();
        let mut out = Tensor::zeros(&[n, c, h, w]);
        bn_train_forward(
            self.value(x).data(),
            n,
            c,
            hw,
            mean.data(),
            ivstd.data(),
            gv.data(),
            bv.data(),
            xhat.data_mut(),
            out.data_mut(),
        );
        let stats = BatchStats {
            mean,
            var: var.clone(),
        };
        let out_id = self.record(
            "batch_norm2d_train",
            &[x, gamma, beta],
            &[],
            out,
            Some(Box::new(move |g, vals, grads| {
                let gamma_v = &vals[gamma.0];
                // Per-channel reductions of the incoming gradient.
                let mut sum_g = vec![0.0f32; c];
                let mut sum_gx = vec![0.0f32; c]; // sum of g * xhat
                bn_train_backward_sums(g.data(), xhat.data(), n, c, hw, &mut sum_g, &mut sum_gx);
                // gamma / beta gradients
                for ch in 0..c {
                    grads[gamma.0].data_mut()[ch] += sum_gx[ch];
                    grads[beta.0].data_mut()[ch] += sum_g[ch];
                }
                // input gradient:
                // gx = gamma*ivstd/m * (m*g - sum_g - xhat*sum_gx)
                bn_train_backward_gx(
                    g.data(),
                    xhat.data(),
                    n,
                    c,
                    hw,
                    gamma_v.data(),
                    ivstd.data(),
                    &sum_g,
                    &sum_gx,
                    grads[x.0].data_mut(),
                );
            })),
        );
        (out_id, stats)
    }

    /// Inference-mode batch norm using fixed running statistics. The output
    /// is an affine function of `x`, so gradients flow through to `x`,
    /// `gamma` and `beta` (useful when attacking a frozen detector).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn batch_norm2d_eval(
        &mut self,
        x: VarId,
        gamma: VarId,
        beta: VarId,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape().len(), 4, "batch norm input must be NCHW");
        let (n, c, h, w) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        assert_eq!(running_mean.len(), c);
        assert_eq!(running_var.len(), c);
        let hw = h * w;
        let mut ivstd = Tensor::zeros(&[c]);
        bn_ivstd(running_var.data(), eps, ivstd.data_mut());
        let mean = running_mean.clone();
        let gv = self.value(gamma).clone();
        let bv = self.value(beta).clone();
        let mut out = Tensor::zeros(&[n, c, h, w]);
        bn_eval_forward(
            self.value(x).data(),
            n,
            c,
            hw,
            mean.data(),
            ivstd.data(),
            gv.data(),
            bv.data(),
            out.data_mut(),
        );
        self.record(
            "batch_norm2d_eval",
            &[x, gamma, beta],
            &[],
            out,
            Some(Box::new(move |g, vals, grads| {
                let gamma_v = vals[gamma.0].clone();
                // The kernel needs three disjoint gradient slices at once;
                // lift the per-channel entries out of the tape for the call.
                let mut ggamma = std::mem::replace(&mut grads[gamma.0], Tensor::scalar(0.0));
                let mut gbeta = std::mem::replace(&mut grads[beta.0], Tensor::scalar(0.0));
                bn_eval_backward(
                    g.data(),
                    vals[x.0].data(),
                    n,
                    c,
                    hw,
                    mean.data(),
                    ivstd.data(),
                    gamma_v.data(),
                    grads[x.0].data_mut(),
                    ggamma.data_mut(),
                    gbeta.data_mut(),
                );
                grads[gamma.0] = ggamma;
                grads[beta.0] = gbeta;
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{assert_grads_close, numeric_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_mode_normalizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let x0 = Tensor::randn(&mut rng, &[8, 3, 6, 6], 2.0).map(|v| v + 3.0);
        let mut g = Graph::new();
        let x = g.input(x0);
        let gamma = g.input(Tensor::ones(&[3]));
        let beta = g.input(Tensor::zeros(&[3]));
        let (y, stats) = g.batch_norm2d_train(x, gamma, beta, 1e-5);
        // output should be ~zero-mean unit-var per channel
        let yv = g.value(y);
        let (n, c, h, w) = (8, 3, 6, 6);
        for ch in 0..c {
            let mut s = 0.0;
            let mut s2 = 0.0;
            for ni in 0..n {
                for i in 0..h * w {
                    let v = yv.data()[(ni * c + ch) * h * w + i];
                    s += v;
                    s2 += v * v;
                }
            }
            let m = (n * h * w) as f32;
            assert!((s / m).abs() < 1e-4);
            assert!((s2 / m - 1.0).abs() < 1e-3);
        }
        assert!((stats.mean.data()[0] - 3.0).abs() < 0.4);
        assert!((stats.var.data()[0] - 4.0).abs() < 1.2);
    }

    #[test]
    fn train_grads_match_numeric() {
        let mut rng = StdRng::seed_from_u64(2);
        let x0 = Tensor::randn(&mut rng, &[2, 2, 3, 3], 1.0);
        let g0 = Tensor::from_vec(vec![1.3, 0.7], &[2]);
        let b0 = Tensor::from_vec(vec![0.1, -0.2], &[2]);
        let run = |x0: &Tensor, g0: &Tensor, b0: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let ga = g.input(g0.clone());
            let be = g.input(b0.clone());
            let (y, _) = g.batch_norm2d_train(x, ga, be, 1e-5);
            let y2 = g.mul(y, y);
            let s = g.sum_all(y2);
            // add an asymmetric term so mean/var gradients are exercised
            let sy = g.sum_all(y);
            let loss = g.add(s, sy);
            (g, x, ga, be, loss)
        };
        let (g, x, ga, be, loss) = run(&x0, &g0, &b0);
        let grads = g.backward(loss);
        let f = |xt: &Tensor, gt: &Tensor, bt: &Tensor| {
            let (g, _, _, _, l) = run(xt, gt, bt);
            g.value(l).data()[0]
        };
        assert_grads_close(
            grads.get(x),
            &numeric_grad(|t| f(t, &g0, &b0), &x0, 1e-2),
            0.05,
        );
        assert_grads_close(
            grads.get(ga),
            &numeric_grad(|t| f(&x0, t, &b0), &g0, 1e-3),
            0.05,
        );
        assert_grads_close(
            grads.get(be),
            &numeric_grad(|t| f(&x0, &g0, t), &b0, 1e-3),
            0.05,
        );
    }

    #[test]
    fn eval_mode_is_affine() {
        let x0 = Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 1, 2]);
        let mean = Tensor::from_vec(vec![1.0], &[1]);
        let var = Tensor::from_vec(vec![3.0], &[1]);
        let mut g = Graph::new();
        let x = g.input(x0);
        let gamma = g.input(Tensor::from_vec(vec![2.0], &[1]));
        let beta = g.input(Tensor::from_vec(vec![0.5], &[1]));
        let y = g.batch_norm2d_eval(x, gamma, beta, &mean, &var, 0.0);
        let iv = 1.0 / 3.0f32.sqrt();
        let want0 = 0.5;
        let want1 = 2.0 * iv + 0.5;
        assert!((g.value(y).data()[0] - want0).abs() < 1e-5);
        assert!((g.value(y).data()[1] - want1).abs() < 1e-5);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!((grads.get(x).data()[0] - 2.0 * iv).abs() < 1e-5);
    }

    #[test]
    fn eval_grads_match_numeric() {
        let mut rng = StdRng::seed_from_u64(6);
        let x0 = Tensor::randn(&mut rng, &[2, 2, 2, 2], 1.0);
        let g0 = Tensor::from_vec(vec![1.1, 0.9], &[2]);
        let b0 = Tensor::from_vec(vec![0.3, -0.1], &[2]);
        let mean = Tensor::from_vec(vec![0.2, -0.4], &[2]);
        let var = Tensor::from_vec(vec![1.5, 0.8], &[2]);
        let run = |x0: &Tensor, g0: &Tensor, b0: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let ga = g.input(g0.clone());
            let be = g.input(b0.clone());
            let y = g.batch_norm2d_eval(x, ga, be, &mean, &var, 1e-5);
            let y2 = g.mul(y, y);
            let loss = g.sum_all(y2);
            (g, x, ga, be, loss)
        };
        let (g, x, ga, be, loss) = run(&x0, &g0, &b0);
        let grads = g.backward(loss);
        let f = |xt: &Tensor, gt: &Tensor, bt: &Tensor| {
            let (g, _, _, _, l) = run(xt, gt, bt);
            g.value(l).data()[0]
        };
        assert_grads_close(
            grads.get(x),
            &numeric_grad(|t| f(t, &g0, &b0), &x0, 1e-3),
            0.05,
        );
        assert_grads_close(
            grads.get(ga),
            &numeric_grad(|t| f(&x0, t, &b0), &g0, 1e-3),
            0.05,
        );
        assert_grads_close(
            grads.get(be),
            &numeric_grad(|t| f(&x0, &g0, t), &b0, 1e-3),
            0.05,
        );
    }

    #[test]
    fn gx_only_kernel_matches_full_eval_backward() {
        // The frozen-path kernel must reproduce the input gradient of the
        // full eval backward bit-for-bit.
        let mut rng = StdRng::seed_from_u64(9);
        let (n, c, hw) = (3, 4, 6);
        let gd = Tensor::randn(&mut rng, &[n * c * hw], 1.0);
        let xd = Tensor::randn(&mut rng, &[n * c * hw], 1.0);
        let mean = Tensor::randn(&mut rng, &[c], 0.5);
        let var = Tensor::randn(&mut rng, &[c], 0.2).map(|v| v.abs() + 0.5);
        let gamma = Tensor::randn(&mut rng, &[c], 1.0);
        let mut ivstd = vec![0.0f32; c];
        bn_ivstd(var.data(), 1e-5, &mut ivstd);
        let mut gx_full = vec![0.0f32; n * c * hw];
        let mut gg = vec![0.0f32; c];
        let mut gb = vec![0.0f32; c];
        bn_eval_backward(
            gd.data(),
            xd.data(),
            n,
            c,
            hw,
            mean.data(),
            &ivstd,
            gamma.data(),
            &mut gx_full,
            &mut gg,
            &mut gb,
        );
        let mut gx_only = vec![0.0f32; n * c * hw];
        bn_eval_backward_gx_only(gd.data(), n, c, hw, &ivstd, gamma.data(), &mut gx_only);
        assert_eq!(gx_only, gx_full);
    }
}
