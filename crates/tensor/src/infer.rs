//! Grad-free compiled inference: a plan/executor split over the
//! shape-only `declare` lowering.
//!
//! Evaluation paths (tables, figures, defense sweeps, mAP, the
//! confirm-window video loop) run the detector thousands of times with
//! no gradient anywhere in sight, yet the tape forward still allocates
//! per-node values, backward closures and metadata for every frame.
//! This module removes that overhead without touching the kernels'
//! arithmetic:
//!
//! - [`InferPlan::compile`] walks a metadata-only tape built with
//!   [`Graph::declare`] and lowers it into a flat, topologically
//!   ordered list of ops, fusing `conv2d → batch_norm2d_eval →
//!   leaky_relu | relu` (and `conv2d → add_bias_channel (→
//!   leaky_relu)`) chains into single kernels. Parameters are referenced by
//!   [`ParamId`] (carried on the declare nodes as `pid` attrs), so a
//!   compiled plan survives weight updates — values are read fresh from
//!   the [`ParamSet`] at execution time.
//! - [`InferExec`] owns arena-backed activation buffers (one set per
//!   worker group) and runs the plan over batched NCHW input, fanning
//!   samples out across [`crate::parallel`]'s worker pool.
//!
//! ## Bitwise equivalence with the tape
//!
//! The executor processes each batch sample independently, with the
//! same inner-loop order as the tape kernels. That is exactly how the
//! tape's own batch kernels work — `conv2d` runs per-sample
//! im2col + GEMM, eval batch-norm applies per-channel affine constants
//! computed once from the running stats, pooling/upsampling fill
//! per-plane, concat and bias are per-sample/per-channel copies — so a
//! per-sample compiled execution is bitwise identical to a batched tape
//! forward. The fused conv+bn(+leaky) kernel preserves the f32 sequence
//! of the unfused ops (GEMM accumulate into a zeroed buffer, then
//! `x*scale + shift`, then the branchy leaky), never algebraically
//! folding the batch-norm into the convolution weights. Group
//! partitioning only decides *which thread* computes a sample, not the
//! sample's arithmetic, so results are identical at any thread count —
//! and `batched(N)` trivially equals `N` batch-1 calls.
//!
//! ## Execution tiers
//!
//! The bitwise contract above describes [`Tier::Reference`], the
//! default. When [`crate::tier::set_tier`] selects [`Tier::Fast`], the
//! executor routes conv GEMMs and fused epilogues through the
//! [`crate::simd`] f32x8 kernels instead; outputs may then diverge
//! from the tape, but only within the static per-head ulp certificate
//! computed by `rd_analysis::bounds` for the `f32x8-fma` kernel model.
//! The tier is latched once per [`InferExec::run`] call, so a single
//! batch never mixes kernels.

use std::sync::Mutex;

use crate::arena;
use crate::conv::{conv_gemm, im2col};
use crate::graph::{Graph, VarId};
use crate::parallel;
use crate::params::{ParamId, ParamSet};
use crate::plan_meta::{
    simple_op, ConvGeom, ParamRef, ParamRole, PlanKind, PlanMeta, PlanOpMeta, SlotMeta,
};
use crate::profile;
use crate::runtime::{self, Runtime};
use crate::simd;
use crate::tensor::{matmul_into, Tensor};
use crate::tier::{self, Tier};

/// Batch-norm parameters folded per-channel at execution time:
/// `scale = gamma / sqrt(rvar + eps)`, `shift = beta - rmean * scale`.
#[derive(Debug, Clone)]
struct BnFold {
    gamma: ParamId,
    beta: ParamId,
    rmean: ParamId,
    rvar: ParamId,
    eps: f32,
}

/// The fused activation a conv op carries, as a fast-tier epilogue tag.
fn conv_act(c: &ConvOp) -> simd::Act {
    if let Some(alpha) = c.leaky {
        simd::Act::Leaky(alpha)
    } else if c.relu {
        simd::Act::Relu
    } else {
        simd::Act::None
    }
}

/// One (possibly fused) convolution: conv + optional bias + optional
/// eval batch-norm + optional leaky activation.
#[derive(Debug, Clone)]
struct ConvOp {
    x: usize,
    out: usize,
    w: ParamId,
    bias: Option<ParamId>,
    bn: Option<BnFold>,
    leaky: Option<f32>,
    relu: bool,
    stride: usize,
    pad: usize,
    cin: usize,
    hin: usize,
    win: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    ho: usize,
    wo: usize,
    scope: String,
}

impl ConvOp {
    fn fused_name(&self) -> String {
        let mut name = String::from("conv");
        if self.bias.is_some() {
            name.push_str("_bias");
        }
        if self.bn.is_some() {
            name.push_str("_bn");
        }
        if self.leaky.is_some() {
            name.push_str("_leaky");
        }
        if self.relu {
            name.push_str("_relu");
        }
        name
    }
}

/// Executable op kinds. Slot indices refer to per-sample activation
/// buffers in a [`GroupBufs`].
#[derive(Debug, Clone)]
enum OpKind {
    Conv(ConvOp),
    MaxPool {
        x: usize,
        out: usize,
        k: usize,
        stride: usize,
        c: usize,
        h: usize,
        w: usize,
        ho: usize,
        wo: usize,
    },
    Upsample2x {
        x: usize,
        out: usize,
        c: usize,
        h: usize,
        w: usize,
    },
    Concat {
        a: usize,
        b: usize,
        out: usize,
        ca: usize,
        cb: usize,
        hw: usize,
    },
    Leaky {
        x: usize,
        out: usize,
        alpha: f32,
        len: usize,
    },
    Relu {
        x: usize,
        out: usize,
        len: usize,
    },
    Sigmoid {
        x: usize,
        out: usize,
        len: usize,
    },
    Linear {
        x: usize,
        out: usize,
        w: ParamId,
        b: ParamId,
        in_dim: usize,
        out_dim: usize,
    },
}

#[derive(Debug, Clone)]
struct PlanOp {
    kind: OpKind,
    /// Profile key (`infer/<scope>/<fused-op>`).
    path: String,
}

/// How a tape node maps into the plan while compiling.
#[derive(Debug, Clone, Copy)]
enum NodeRef {
    /// A `param` declare; carries the id resolved from its `pid` attr.
    Param(ParamId),
    /// A value-producing node; carries its activation slot.
    Slot(usize),
}

/// A compiled, grad-free execution plan: a flat topologically ordered
/// op list plus per-slot activation shapes, derived from a shape-only
/// [`Graph::declare`] lowering at batch 1.
#[derive(Debug)]
pub struct InferPlan {
    ops: Vec<PlanOp>,
    /// Per-sample flat length of each activation slot.
    slot_lens: Vec<usize>,
    /// Per-sample shape of each activation slot (batch dim stripped).
    slot_shapes: Vec<Vec<usize>>,
    input_slot: usize,
    /// Per-sample input shape (batch dim stripped).
    input_shape: Vec<usize>,
    outputs: Vec<usize>,
    /// Largest im2col column buffer any conv in the plan needs.
    max_cols: usize,
}

impl InferPlan {
    /// Compiles a declare-lowered tape (built at batch 1) into a plan
    /// producing the values of `roots`, in order.
    ///
    /// Fusion is peephole over the tape order: a `batch_norm2d_eval`,
    /// `add_bias_channel` or `leaky_relu` node folds into the
    /// immediately preceding conv when that conv is its input — which
    /// in a declare lowering implies the intermediate value has no
    /// other consumer.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending node when the tape
    /// contains an op the executor does not support, is missing the
    /// `pid`/`eps_bits`/`alpha_bits` attrs the lowering must carry, or
    /// was not declared at batch 1.
    pub fn compile(g: &Graph, roots: &[VarId]) -> Result<InferPlan, String> {
        let metas = g.metas();
        let mut refs: Vec<Option<NodeRef>> = vec![None; metas.len()];
        let mut ops: Vec<PlanOp> = Vec::new();
        let mut slot_lens: Vec<usize> = Vec::new();
        let mut slot_shapes: Vec<Vec<usize>> = Vec::new();
        let mut input: Option<usize> = None;
        let mut max_cols = 0usize;

        fn new_slot(
            lens: &mut Vec<usize>,
            shapes: &mut Vec<Vec<usize>>,
            shape: &[usize],
            path: &str,
        ) -> Result<usize, String> {
            if shape.first() != Some(&1) {
                return Err(format!(
                    "infer compile at {path}: plans must be declared at batch 1, got {shape:?}"
                ));
            }
            let per: Vec<usize> = shape[1..].to_vec();
            lens.push(per.iter().product());
            shapes.push(per);
            Ok(shapes.len() - 1)
        }

        for (idx, meta) in metas.iter().enumerate() {
            let fail = |msg: String| Err(format!("infer compile at {}: {msg}", meta.path()));
            let slot_of = |refs: &[Option<NodeRef>], pi: usize| -> Result<usize, String> {
                match refs[meta.parents[pi].index()] {
                    Some(NodeRef::Slot(s)) => Ok(s),
                    _ => Err(format!(
                        "infer compile at {}: parent {pi} is not a value node",
                        meta.path()
                    )),
                }
            };
            let param_of = |refs: &[Option<NodeRef>], pi: usize| -> Result<ParamId, String> {
                match refs[meta.parents[pi].index()] {
                    Some(NodeRef::Param(p)) => Ok(p),
                    _ => Err(format!(
                        "infer compile at {}: parent {pi} is not a param node",
                        meta.path()
                    )),
                }
            };
            let attr = |name: &str| -> Result<usize, String> {
                meta.attr(name).ok_or(format!(
                    "infer compile at {}: missing '{name}' attr",
                    meta.path()
                ))
            };

            match meta.op {
                "input" => {
                    if input.is_some() {
                        return fail("plan supports a single input".into());
                    }
                    let s = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    input = Some(s);
                    refs[idx] = Some(NodeRef::Slot(s));
                }
                "param" => {
                    refs[idx] = Some(NodeRef::Param(ParamId(attr("pid")?)));
                }
                "conv2d" => {
                    let x = slot_of(&refs, 0)?;
                    let w = param_of(&refs, 1)?;
                    let ws = &metas[meta.parents[1].index()].expected_shape;
                    let (cin, hin, win) = {
                        let xs = &slot_shapes[x];
                        (xs[0], xs[1], xs[2])
                    };
                    let (cout, kh, kw) = (ws[0], ws[2], ws[3]);
                    let out = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    let (ho, wo) = (slot_shapes[out][1], slot_shapes[out][2]);
                    max_cols = max_cols.max(cin * kh * kw * ho * wo);
                    ops.push(PlanOp {
                        kind: OpKind::Conv(ConvOp {
                            x,
                            out,
                            w,
                            bias: None,
                            bn: None,
                            leaky: None,
                            relu: false,
                            stride: attr("stride")?,
                            pad: attr("pad")?,
                            cin,
                            hin,
                            win,
                            cout,
                            kh,
                            kw,
                            ho,
                            wo,
                            scope: meta.scope.clone(),
                        }),
                        path: String::new(),
                    });
                    refs[idx] = Some(NodeRef::Slot(out));
                }
                "add_bias_channel" => {
                    let y = slot_of(&refs, 0)?;
                    let b = param_of(&refs, 1)?;
                    match ops.last_mut().map(|o| &mut o.kind) {
                        Some(OpKind::Conv(c))
                            if c.out == y
                                && c.bias.is_none()
                                && c.bn.is_none()
                                && c.leaky.is_none()
                                && !c.relu =>
                        {
                            c.bias = Some(b);
                            refs[idx] = Some(NodeRef::Slot(y));
                        }
                        _ => return fail("add_bias_channel must directly follow its conv".into()),
                    }
                }
                "batch_norm2d_eval" => {
                    let y = slot_of(&refs, 0)?;
                    let gamma = param_of(&refs, 1)?;
                    let beta = param_of(&refs, 2)?;
                    let fold = BnFold {
                        gamma,
                        beta,
                        rmean: ParamId(attr("rmean_pid")?),
                        rvar: ParamId(attr("rvar_pid")?),
                        eps: f32::from_bits(attr("eps_bits")? as u32),
                    };
                    match ops.last_mut().map(|o| &mut o.kind) {
                        Some(OpKind::Conv(c))
                            if c.out == y
                                && c.bias.is_none()
                                && c.bn.is_none()
                                && c.leaky.is_none()
                                && !c.relu =>
                        {
                            c.bn = Some(fold);
                            refs[idx] = Some(NodeRef::Slot(y));
                        }
                        _ => return fail("batch_norm2d_eval must directly follow its conv".into()),
                    }
                }
                "leaky_relu" => {
                    let x = slot_of(&refs, 0)?;
                    let alpha = f32::from_bits(attr("alpha_bits")? as u32);
                    match ops.last_mut().map(|o| &mut o.kind) {
                        Some(OpKind::Conv(c)) if c.out == x && c.leaky.is_none() && !c.relu => {
                            c.leaky = Some(alpha);
                            refs[idx] = Some(NodeRef::Slot(x));
                        }
                        _ => {
                            let out = new_slot(
                                &mut slot_lens,
                                &mut slot_shapes,
                                &meta.expected_shape,
                                &meta.path(),
                            )?;
                            let len = slot_lens[out];
                            ops.push(PlanOp {
                                kind: OpKind::Leaky { x, out, alpha, len },
                                path: format!("infer/{}", meta.path()),
                            });
                            refs[idx] = Some(NodeRef::Slot(out));
                        }
                    }
                }
                "relu" => {
                    let x = slot_of(&refs, 0)?;
                    match ops.last_mut().map(|o| &mut o.kind) {
                        Some(OpKind::Conv(c)) if c.out == x && c.leaky.is_none() && !c.relu => {
                            c.relu = true;
                            refs[idx] = Some(NodeRef::Slot(x));
                        }
                        _ => {
                            let out = new_slot(
                                &mut slot_lens,
                                &mut slot_shapes,
                                &meta.expected_shape,
                                &meta.path(),
                            )?;
                            let len = slot_lens[out];
                            ops.push(PlanOp {
                                kind: OpKind::Relu { x, out, len },
                                path: format!("infer/{}", meta.path()),
                            });
                            refs[idx] = Some(NodeRef::Slot(out));
                        }
                    }
                }
                "sigmoid" => {
                    let x = slot_of(&refs, 0)?;
                    let out = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    let len = slot_lens[out];
                    ops.push(PlanOp {
                        kind: OpKind::Sigmoid { x, out, len },
                        path: format!("infer/{}", meta.path()),
                    });
                    refs[idx] = Some(NodeRef::Slot(out));
                }
                "max_pool2d" => {
                    let x = slot_of(&refs, 0)?;
                    let xs = slot_shapes[x].clone();
                    let out = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    ops.push(PlanOp {
                        kind: OpKind::MaxPool {
                            x,
                            out,
                            k: attr("k")?,
                            stride: attr("stride")?,
                            c: xs[0],
                            h: xs[1],
                            w: xs[2],
                            ho: slot_shapes[out][1],
                            wo: slot_shapes[out][2],
                        },
                        path: format!("infer/{}", meta.path()),
                    });
                    refs[idx] = Some(NodeRef::Slot(out));
                }
                "upsample_nearest2x" => {
                    let x = slot_of(&refs, 0)?;
                    let xs = slot_shapes[x].clone();
                    let out = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    ops.push(PlanOp {
                        kind: OpKind::Upsample2x {
                            x,
                            out,
                            c: xs[0],
                            h: xs[1],
                            w: xs[2],
                        },
                        path: format!("infer/{}", meta.path()),
                    });
                    refs[idx] = Some(NodeRef::Slot(out));
                }
                "concat_channels" => {
                    let a = slot_of(&refs, 0)?;
                    let b = slot_of(&refs, 1)?;
                    let (asl, bsl) = (slot_shapes[a].clone(), slot_shapes[b].clone());
                    if asl[1..] != bsl[1..] {
                        return fail(format!("concat spatial mismatch {asl:?} vs {bsl:?}"));
                    }
                    let out = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    ops.push(PlanOp {
                        kind: OpKind::Concat {
                            a,
                            b,
                            out,
                            ca: asl[0],
                            cb: bsl[0],
                            hw: asl[1] * asl[2],
                        },
                        path: format!("infer/{}", meta.path()),
                    });
                    refs[idx] = Some(NodeRef::Slot(out));
                }
                "reshape" => {
                    // flat per-sample data is unchanged; alias the slot,
                    // re-labelling it with the post-reshape dims so
                    // shape-sensitive consumers (conv, upsample, pool)
                    // see the reshaped geometry
                    let x = slot_of(&refs, 0)?;
                    if meta.expected_shape.first() != Some(&1) {
                        return fail(format!(
                            "plans must be declared at batch 1, got {:?}",
                            meta.expected_shape
                        ));
                    }
                    let len: usize = meta.expected_shape[1..].iter().product();
                    if len != slot_lens[x] {
                        return fail(format!(
                            "reshape changes per-sample length {} -> {len}",
                            slot_lens[x]
                        ));
                    }
                    slot_shapes[x] = meta.expected_shape[1..].to_vec();
                    refs[idx] = Some(NodeRef::Slot(x));
                }
                "linear" => {
                    let x = slot_of(&refs, 0)?;
                    let w = param_of(&refs, 1)?;
                    let b = param_of(&refs, 2)?;
                    let ws = &metas[meta.parents[1].index()].expected_shape;
                    let (out_dim, in_dim) = (ws[0], ws[1]);
                    if slot_lens[x] != in_dim {
                        return fail(format!(
                            "linear input length {} != weight columns {in_dim}",
                            slot_lens[x]
                        ));
                    }
                    let out = new_slot(
                        &mut slot_lens,
                        &mut slot_shapes,
                        &meta.expected_shape,
                        &meta.path(),
                    )?;
                    ops.push(PlanOp {
                        kind: OpKind::Linear {
                            x,
                            out,
                            w,
                            b,
                            in_dim,
                            out_dim,
                        },
                        path: format!("infer/{}", meta.path()),
                    });
                    refs[idx] = Some(NodeRef::Slot(out));
                }
                other => return fail(format!("unsupported op '{other}'")),
            }
        }

        // finalize fused conv profile paths now fusion state is known
        for op in &mut ops {
            if let OpKind::Conv(c) = &op.kind {
                op.path = if c.scope.is_empty() {
                    format!("infer/{}", c.fused_name())
                } else {
                    format!("infer/{}/{}", c.scope, c.fused_name())
                };
            }
        }

        let input_slot = input.ok_or("infer compile: tape has no input node".to_string())?;
        let mut outputs = Vec::with_capacity(roots.len());
        for &r in roots {
            match refs[r.index()] {
                Some(NodeRef::Slot(s)) => outputs.push(s),
                _ => return Err(format!("infer compile: root {} is not a value", r.index())),
            }
        }
        Ok(InferPlan {
            ops,
            input_shape: slot_shapes[input_slot].clone(),
            slot_lens,
            slot_shapes,
            input_slot,
            outputs,
            max_cols,
        })
    }

    /// Number of (fused) ops in the plan.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Per-sample input shape (batch dimension stripped).
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Lifts the plan into a plain-data [`PlanMeta`] description (op
    /// list with slot defs/uses, parameter references, fusion
    /// composition, conv geometry) for static analysis. Nothing is
    /// executed; the returned value owns all its data.
    pub fn meta(&self) -> PlanMeta {
        let ops = self
            .ops
            .iter()
            .map(|op| match &op.kind {
                OpKind::Conv(c) => {
                    let mut params = vec![ParamRef {
                        role: ParamRole::ConvWeight,
                        index: c.w.index(),
                    }];
                    let mut fused = vec!["conv2d".to_string()];
                    if let Some(b) = c.bias {
                        params.push(ParamRef {
                            role: ParamRole::ConvBias,
                            index: b.index(),
                        });
                        fused.push("add_bias_channel".to_string());
                    }
                    let mut bn_eps = None;
                    if let Some(bn) = &c.bn {
                        for (role, pid) in [
                            (ParamRole::BnGamma, bn.gamma),
                            (ParamRole::BnBeta, bn.beta),
                            (ParamRole::BnRunningMean, bn.rmean),
                            (ParamRole::BnRunningVar, bn.rvar),
                        ] {
                            params.push(ParamRef {
                                role,
                                index: pid.index(),
                            });
                        }
                        fused.push("batch_norm2d_eval".to_string());
                        bn_eps = Some(bn.eps);
                    }
                    if c.leaky.is_some() {
                        fused.push("leaky_relu".to_string());
                    }
                    if c.relu {
                        fused.push("relu".to_string());
                    }
                    PlanOpMeta {
                        name: c.fused_name(),
                        path: op.path.clone(),
                        reads: vec![c.x],
                        writes: vec![c.out],
                        params,
                        fused,
                        conv: Some(ConvGeom {
                            stride: c.stride,
                            pad: c.pad,
                            cin: c.cin,
                            hin: c.hin,
                            win: c.win,
                            cout: c.cout,
                            kh: c.kh,
                            kw: c.kw,
                            ho: c.ho,
                            wo: c.wo,
                        }),
                        linear: None,
                        alpha: c.leaky,
                        bn_train: c.bn.as_ref().map(|_| false),
                        bn_eps,
                        gx_direct: None,
                    }
                }
                OpKind::MaxPool { x, out, .. } => simple_op("max_pool2d", &op.path, *x, *out),
                OpKind::Upsample2x { x, out, .. } => {
                    simple_op("upsample_nearest2x", &op.path, *x, *out)
                }
                OpKind::Concat { a, b, out, .. } => PlanOpMeta {
                    reads: vec![*a, *b],
                    ..simple_op("concat_channels", &op.path, *a, *out)
                },
                OpKind::Leaky { x, out, alpha, .. } => PlanOpMeta {
                    alpha: Some(*alpha),
                    ..simple_op("leaky_relu", &op.path, *x, *out)
                },
                OpKind::Relu { x, out, .. } => simple_op("relu", &op.path, *x, *out),
                OpKind::Sigmoid { x, out, .. } => simple_op("sigmoid", &op.path, *x, *out),
                OpKind::Linear {
                    x,
                    out,
                    w,
                    b,
                    in_dim,
                    out_dim,
                } => PlanOpMeta {
                    params: vec![
                        ParamRef {
                            role: ParamRole::LinearWeight,
                            index: w.index(),
                        },
                        ParamRef {
                            role: ParamRole::LinearBias,
                            index: b.index(),
                        },
                    ],
                    linear: Some((*in_dim, *out_dim)),
                    ..simple_op("linear", &op.path, *x, *out)
                },
            })
            .collect();
        PlanMeta {
            kind: PlanKind::Infer,
            ops,
            slots: self
                .slot_lens
                .iter()
                .zip(&self.slot_shapes)
                .map(|(&len, shape)| SlotMeta {
                    len,
                    shape: shape.clone(),
                })
                .collect(),
            input_slot: self.input_slot,
            outputs: self.outputs.clone(),
            col_budget: None,
        }
    }

    /// One-shot convenience: build an executor, run it, drop it.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not `[N, ...input_shape]` with `N >= 1`.
    pub fn execute(&self, ps: &ParamSet, input: &Tensor) -> Vec<Tensor> {
        InferExec::new(self).run(ps, input)
    }

    /// Runs one sample already copied into `bufs`' input slot. `fast`
    /// routes conv GEMMs and epilogues through the [`crate::simd`]
    /// kernels (the caller latches the tier once per run).
    fn exec_sample(
        &self,
        ps: &ParamSet,
        derived: &[Option<Vec<f32>>],
        bufs: &mut GroupBufs,
        fast: bool,
    ) {
        for (oi, op) in self.ops.iter().enumerate() {
            let t0 = profile::enabled().then(std::time::Instant::now);
            match &op.kind {
                OpKind::Conv(c) => {
                    let mut out = std::mem::take(&mut bufs.slots[c.out]);
                    let mut cols = std::mem::take(&mut bufs.cols);
                    let ckk = c.cin * c.kh * c.kw;
                    let howo = c.ho * c.wo;
                    im2col(
                        &bufs.slots[c.x],
                        c.cin,
                        c.hin,
                        c.win,
                        c.kh,
                        c.kw,
                        c.stride,
                        c.pad,
                        c.ho,
                        c.wo,
                        &mut cols[..ckk * howo],
                    );
                    if fast {
                        simd::gemm(
                            ps.get(c.w).value().data(),
                            &cols[..ckk * howo],
                            &mut out,
                            c.cout,
                            ckk,
                            howo,
                        );
                    } else {
                        conv_gemm(
                            ps.get(c.w).value().data(),
                            &cols[..ckk * howo],
                            &mut out,
                            c.cout,
                            ckk,
                            howo,
                        );
                    }
                    if let Some(b) = c.bias {
                        let bv = ps.get(b).value().data();
                        for ch in 0..c.cout {
                            let add = bv[ch];
                            for v in &mut out[ch * howo..(ch + 1) * howo] {
                                *v += add;
                            }
                        }
                    }
                    if let Some(bn) = &c.bn {
                        let gv = ps.get(bn.gamma).value().data();
                        let bev = ps.get(bn.beta).value().data();
                        let rm = ps.get(bn.rmean).value().data();
                        let rv = ps.get(bn.rvar).value().data();
                        for ch in 0..c.cout {
                            // same f32 sequence as the tape's eval bnorm
                            let ivstd = 1.0 / (rv[ch] + bn.eps).sqrt();
                            let scale = gv[ch] * ivstd;
                            let shift = bev[ch] - rm[ch] * scale;
                            let seg = &mut out[ch * howo..(ch + 1) * howo];
                            if fast {
                                simd::affine_act(seg, scale, shift, conv_act(c));
                            } else if let Some(alpha) = c.leaky {
                                for v in seg {
                                    let t = *v * scale + shift;
                                    *v = if t > 0.0 { t } else { alpha * t };
                                }
                            } else if c.relu {
                                // same f32 sequence as the tape's relu map
                                for v in seg {
                                    *v = (*v * scale + shift).max(0.0);
                                }
                            } else {
                                for v in seg {
                                    *v = *v * scale + shift;
                                }
                            }
                        }
                    } else if fast {
                        simd::act_inplace(&mut out, conv_act(c));
                    } else if let Some(alpha) = c.leaky {
                        for v in out.iter_mut() {
                            let t = *v;
                            *v = if t > 0.0 { t } else { alpha * t };
                        }
                    } else if c.relu {
                        for v in out.iter_mut() {
                            *v = v.max(0.0);
                        }
                    }
                    bufs.cols = cols;
                    bufs.slots[c.out] = out;
                }
                OpKind::MaxPool {
                    x,
                    out,
                    k,
                    stride,
                    c,
                    h,
                    w,
                    ho,
                    wo,
                } => {
                    let mut o = std::mem::take(&mut bufs.slots[*out]);
                    let xs = &bufs.slots[*x];
                    let (hw, howo) = (h * w, ho * wo);
                    if fast && *k == 2 && *stride == 2 && h.is_multiple_of(2) && w.is_multiple_of(2)
                    {
                        // max performs no rounding: bitwise-identical
                        // to the loop below on non-NaN data
                        simd::max_pool2x2(xs, &mut o, *c, *h, *w);
                    } else {
                        for ch in 0..*c {
                            let xoff = ch * hw;
                            let oplane = &mut o[ch * howo..(ch + 1) * howo];
                            for oh in 0..*ho {
                                for ow in 0..*wo {
                                    let mut best = f32::NEG_INFINITY;
                                    for ki in 0..*k {
                                        let ih = oh * stride + ki;
                                        if ih >= *h {
                                            continue;
                                        }
                                        for kj in 0..*k {
                                            let iw = ow * stride + kj;
                                            if iw >= *w {
                                                continue;
                                            }
                                            let v = xs[xoff + ih * w + iw];
                                            if v > best {
                                                best = v;
                                            }
                                        }
                                    }
                                    oplane[oh * wo + ow] = best;
                                }
                            }
                        }
                    }
                    bufs.slots[*out] = o;
                }
                OpKind::Upsample2x { x, out, c, h, w } => {
                    let mut o = std::mem::take(&mut bufs.slots[*out]);
                    let xs = &bufs.slots[*x];
                    let (ho, wo) = (h * 2, w * 2);
                    let (hw, howo) = (h * w, ho * wo);
                    for ch in 0..*c {
                        let oplane = &mut o[ch * howo..(ch + 1) * howo];
                        for oh in 0..ho {
                            for ow in 0..wo {
                                oplane[oh * wo + ow] = xs[ch * hw + (oh / 2) * w + ow / 2];
                            }
                        }
                    }
                    bufs.slots[*out] = o;
                }
                OpKind::Concat {
                    a,
                    b,
                    out,
                    ca,
                    cb,
                    hw,
                } => {
                    let mut o = std::mem::take(&mut bufs.slots[*out]);
                    o[..ca * hw].copy_from_slice(&bufs.slots[*a][..ca * hw]);
                    o[ca * hw..(ca + cb) * hw].copy_from_slice(&bufs.slots[*b][..cb * hw]);
                    bufs.slots[*out] = o;
                }
                OpKind::Leaky { x, out, alpha, len } => {
                    let mut o = std::mem::take(&mut bufs.slots[*out]);
                    for (ov, &xv) in o.iter_mut().zip(&bufs.slots[*x][..*len]) {
                        *ov = if xv > 0.0 { xv } else { alpha * xv };
                    }
                    bufs.slots[*out] = o;
                }
                OpKind::Relu { x, out, len } => {
                    let mut o = std::mem::take(&mut bufs.slots[*out]);
                    for (ov, &xv) in o.iter_mut().zip(&bufs.slots[*x][..*len]) {
                        *ov = xv.max(0.0);
                    }
                    bufs.slots[*out] = o;
                }
                OpKind::Sigmoid { x, out, len } => {
                    let mut o = std::mem::take(&mut bufs.slots[*out]);
                    for (ov, &xv) in o.iter_mut().zip(&bufs.slots[*x][..*len]) {
                        *ov = 1.0 / (1.0 + (-xv).exp());
                    }
                    bufs.slots[*out] = o;
                }
                OpKind::Linear {
                    x,
                    out,
                    w: _,
                    b,
                    in_dim,
                    out_dim,
                } => {
                    let mut o = std::mem::take(&mut bufs.slots[*out]);
                    let wt = derived[oi]
                        .as_ref()
                        .expect("linear op missing derived transposed weight");
                    o.fill(0.0);
                    matmul_into(&bufs.slots[*x][..*in_dim], wt, &mut o, 1, *in_dim, *out_dim);
                    let bv = ps.get(*b).value().data();
                    for (ov, &bvv) in o.iter_mut().zip(bv) {
                        *ov += bvv;
                    }
                    bufs.slots[*out] = o;
                }
            }
            if let Some(t0) = t0 {
                profile::add_sample(&op.path, t0.elapsed().as_nanos() as u64);
            }
        }
    }
}

/// Per-worker-group activation buffers, all arena-backed.
struct GroupBufs {
    /// One buffer per plan slot, sized to the slot's per-sample length.
    slots: Vec<Vec<f32>>,
    /// Shared im2col column buffer (sized to the plan's largest conv).
    cols: Vec<f32>,
}

impl GroupBufs {
    fn new(plan: &InferPlan) -> Self {
        GroupBufs {
            slots: plan.slot_lens.iter().map(|&l| arena::take(l)).collect(),
            cols: arena::take(plan.max_cols),
        }
    }
}

/// Executor for an [`InferPlan`]: owns preallocated arena-backed
/// activation buffers (one [`GroupBufs`] per worker group, grown
/// lazily, recycled on drop) and runs batched input through the plan.
///
/// The executor is bound to the [`Runtime`] current at construction
/// (or the one passed to [`InferExec::with_runtime`]): every run and
/// the final drop re-enter that runtime, so its buffers are taken from
/// and recycled into the same arena, its thread budget and tier come
/// from the same runtime, regardless of which runtime happens to be
/// current at the call site later.
pub struct InferExec<'p> {
    plan: &'p InferPlan,
    groups: Vec<GroupBufs>,
    rt: Runtime,
}

impl<'p> InferExec<'p> {
    /// Creates an executor for `plan`, bound to the current runtime.
    /// Buffers are taken from that runtime's arena on first use and
    /// recycled into it when the executor drops.
    pub fn new(plan: &'p InferPlan) -> Self {
        Self::with_runtime(plan, runtime::current())
    }

    /// Creates an executor for `plan` bound to an explicit runtime.
    pub fn with_runtime(plan: &'p InferPlan, rt: Runtime) -> Self {
        InferExec {
            plan,
            groups: Vec::new(),
            rt,
        }
    }

    /// The runtime this executor allocates from and runs under.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    fn ensure(&mut self, groups: usize) {
        while self.groups.len() < groups {
            self.groups.push(GroupBufs::new(self.plan));
        }
    }

    /// Runs the plan over a batched input `[N, ...input_shape]` and
    /// returns one batched output tensor per plan root, in root order.
    ///
    /// Samples are partitioned into the same fixed, size-only groups
    /// the training substrate uses ([`parallel::groups_for`]); each
    /// group's samples run serially in its own buffer set, so the
    /// result is bitwise independent of the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the plan's input shape or the
    /// batch is empty.
    pub fn run(&mut self, ps: &ParamSet, input: &Tensor) -> Vec<Tensor> {
        let rt = self.rt.clone();
        rt.enter(|| self.run_inner(ps, input))
    }

    fn run_inner(&mut self, ps: &ParamSet, input: &Tensor) -> Vec<Tensor> {
        let plan = self.plan;
        assert!(
            !input.shape().is_empty() && input.shape()[1..] == plan.input_shape[..],
            "infer input {:?} does not match plan input [N, {:?}]",
            input.shape(),
            plan.input_shape
        );
        let n = input.shape()[0];
        assert!(n > 0, "infer batch must be non-empty");
        // latched once: a batch never mixes kernel tiers
        let fast = tier::current() == Tier::Fast;
        let groups = parallel::groups_for(n);
        self.ensure(groups);
        let per = n.div_ceil(groups);
        let in_len = plan.slot_lens[plan.input_slot];

        // transposed linear weights are shared, read-only per run
        let derived: Vec<Option<Vec<f32>>> = plan
            .ops
            .iter()
            .map(|op| match &op.kind {
                OpKind::Linear { w, .. } => Some(ps.get(*w).value().transpose2d().data().to_vec()),
                _ => None,
            })
            .collect();

        let mut outs: Vec<Tensor> = plan
            .outputs
            .iter()
            .map(|&s| {
                let mut shape = vec![n];
                shape.extend_from_slice(&plan.slot_shapes[s]);
                Tensor::zeros(&shape)
            })
            .collect();
        let counts: Vec<usize> = (0..groups)
            .map(|gi| per.min(n.saturating_sub(gi * per)))
            .collect();

        // hand each worker group exclusive slices of the output tensors
        // and its own buffer set through take-once mutex cells
        let mut out_cells: Vec<Vec<Mutex<Option<&mut [f32]>>>> = Vec::with_capacity(outs.len());
        for (oi, t) in outs.iter_mut().enumerate() {
            let olen = plan.slot_lens[plan.outputs[oi]];
            let mut rest: &mut [f32] = t.data_mut();
            let mut cells = Vec::with_capacity(groups);
            for &count in &counts {
                let (head, tail) = rest.split_at_mut(count * olen);
                cells.push(Mutex::new(Some(head)));
                rest = tail;
            }
            out_cells.push(cells);
        }
        let buf_cells: Vec<Mutex<Option<&mut GroupBufs>>> = self.groups[..groups]
            .iter_mut()
            .map(|gb| Mutex::new(Some(gb)))
            .collect();
        let xin = input.data();

        parallel::run_indexed(groups, |gi| {
            let mut guard = buf_cells[gi].lock().expect("infer buffer cell poisoned");
            let bufs: &mut GroupBufs = guard.take().expect("group buffers taken twice");
            let mut ochunks: Vec<&mut [f32]> = out_cells
                .iter()
                .map(|cells| {
                    cells[gi]
                        .lock()
                        .expect("infer output cell poisoned")
                        .take()
                        .expect("output chunk taken twice")
                })
                .collect();
            let start = gi * per;
            for li in 0..counts[gi] {
                let ni = start + li;
                bufs.slots[plan.input_slot].copy_from_slice(&xin[ni * in_len..(ni + 1) * in_len]);
                plan.exec_sample(ps, &derived, bufs, fast);
                for (oi, &slot) in plan.outputs.iter().enumerate() {
                    let olen = plan.slot_lens[slot];
                    ochunks[oi][li * olen..(li + 1) * olen]
                        .copy_from_slice(&bufs.slots[slot][..olen]);
                }
            }
        });
        outs
    }
}

impl Drop for InferExec<'_> {
    fn drop(&mut self) {
        // Recycle into the bound runtime's arena even if a different
        // runtime is current when the executor is dropped (e.g. a
        // supervisor tearing down a finished job from its own context).
        let rt = self.rt.clone();
        rt.enter(|| {
            for gb in self.groups.drain(..) {
                for b in gb.slots {
                    arena::recycle(b);
                }
                arena::recycle(gb.cols);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;

    /// Declares a conv(3x3, s1, p1) + bn + leaky + maxpool + conv+bias
    /// net and checks the compiled path matches the tape bitwise.
    fn tiny_net(
        ps: &mut ParamSet,
    ) -> (
        ParamId,
        ParamId,
        ParamId,
        ParamId,
        ParamId,
        ParamId,
        ParamId,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let w1 = ps.register("w1", crate::init::kaiming_conv(&mut rng, 4, 3, 3, 3));
        let gamma = ps.register("gamma", Tensor::ones(&[4]));
        let beta = ps.register("beta", Tensor::randn(&mut rng, &[4], 0.1));
        let rmean = ps.register("rmean", Tensor::randn(&mut rng, &[4], 0.2));
        let rvar = ps.register("rvar", Tensor::full(&[4], 0.9));
        let w2 = ps.register("w2", crate::init::kaiming_conv(&mut rng, 2, 4, 1, 1));
        let b2 = ps.register("b2", Tensor::randn(&mut rng, &[2], 0.5));
        (w1, gamma, beta, rmean, rvar, w2, b2)
    }

    fn declare_tiny(
        g: &mut Graph,
        ids: &(
            ParamId,
            ParamId,
            ParamId,
            ParamId,
            ParamId,
            ParamId,
            ParamId,
        ),
    ) -> VarId {
        let (w1, gamma, beta, rmean, rvar, w2, b2) = *ids;
        let x = g.declare("input", &[], &[], &[1, 3, 8, 8]);
        let w = g.declare("param", &[], &[("pid", w1.index())], &[4, 3, 3, 3]);
        let y = g.declare(
            "conv2d",
            &[x, w],
            &[("stride", 1), ("pad", 1)],
            &[1, 4, 8, 8],
        );
        let ga = g.declare("param", &[], &[("pid", gamma.index())], &[4]);
        let be = g.declare("param", &[], &[("pid", beta.index())], &[4]);
        let y = g.declare(
            "batch_norm2d_eval",
            &[y, ga, be],
            &[
                ("rmean_pid", rmean.index()),
                ("rvar_pid", rvar.index()),
                ("eps_bits", 1e-5f32.to_bits() as usize),
            ],
            &[1, 4, 8, 8],
        );
        let y = g.declare(
            "leaky_relu",
            &[y],
            &[("alpha_bits", 0.1f32.to_bits() as usize)],
            &[1, 4, 8, 8],
        );
        let y = g.declare(
            "max_pool2d",
            &[y],
            &[("k", 2), ("stride", 2), ("pad", 0)],
            &[1, 4, 4, 4],
        );
        let w = g.declare("param", &[], &[("pid", w2.index())], &[2, 4, 1, 1]);
        let y = g.declare(
            "conv2d",
            &[y, w],
            &[("stride", 1), ("pad", 0)],
            &[1, 2, 4, 4],
        );
        let b = g.declare("param", &[], &[("pid", b2.index())], &[2]);
        g.declare("add_bias_channel", &[y, b], &[], &[1, 2, 4, 4])
    }

    fn tape_tiny(
        ps: &ParamSet,
        ids: &(
            ParamId,
            ParamId,
            ParamId,
            ParamId,
            ParamId,
            ParamId,
            ParamId,
        ),
        x0: &Tensor,
    ) -> Tensor {
        let (w1, gamma, beta, rmean, rvar, w2, b2) = *ids;
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let w = g.param(ps, w1);
        let y = g.conv2d(x, w, None, 1, 1);
        let ga = g.param(ps, gamma);
        let be = g.param(ps, beta);
        let rm = ps.get(rmean).value().clone();
        let rv = ps.get(rvar).value().clone();
        let y = g.batch_norm2d_eval(y, ga, be, &rm, &rv, 1e-5);
        let y = g.leaky_relu(y, 0.1);
        let y = g.max_pool2d(y, 2, 2, 0);
        let w = g.param(ps, w2);
        let b = g.param(ps, b2);
        let y = g.conv2d(y, w, Some(b), 1, 0);
        g.value(y).clone()
    }

    #[test]
    fn compiled_tiny_net_matches_tape_bitwise() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut ps = ParamSet::new();
        let ids = tiny_net(&mut ps);
        let mut g = Graph::new();
        let root = declare_tiny(&mut g, &ids);
        let plan = InferPlan::compile(&g, &[root]).expect("tiny net compiles");
        assert_eq!(plan.num_ops(), 3, "conv_bn_leaky + pool + conv_bias");

        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(&mut rng, &[3, 3, 8, 8], 1.0);
        let got = plan.execute(&ps, &x);
        let want = tape_tiny(&ps, &ids, &x);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].shape(), want.shape());
        assert_eq!(got[0].data(), want.data(), "compiled != tape");
    }

    #[test]
    fn batched_equals_per_sample() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut ps = ParamSet::new();
        let ids = tiny_net(&mut ps);
        let mut g = Graph::new();
        let root = declare_tiny(&mut g, &ids);
        let plan = InferPlan::compile(&g, &[root]).expect("tiny net compiles");
        let mut rng = StdRng::seed_from_u64(13);
        let x = Tensor::randn(&mut rng, &[5, 3, 8, 8], 1.0);
        let batched = plan.execute(&ps, &x);
        let in_len = 3 * 8 * 8;
        let out_len: usize = batched[0].shape()[1..].iter().product();
        for ni in 0..5 {
            let xi = Tensor::from_vec(
                x.data()[ni * in_len..(ni + 1) * in_len].to_vec(),
                &[1, 3, 8, 8],
            );
            let oi = plan.execute(&ps, &xi);
            assert_eq!(
                &batched[0].data()[ni * out_len..(ni + 1) * out_len],
                oi[0].data(),
                "sample {ni} differs between batched and batch-1"
            );
        }
    }

    #[test]
    fn compile_rejects_unsupported_ops() {
        let mut g = Graph::new();
        let x = g.declare("input", &[], &[], &[1, 4]);
        let _ = g.declare("softmax", &[x], &[], &[1, 4]);
        let err = InferPlan::compile(&g, &[VarId::from_index(1)]).unwrap_err();
        assert!(err.contains("unsupported op 'softmax'"), "got: {err}");
    }

    #[test]
    fn compile_rejects_batched_declares() {
        let mut g = Graph::new();
        let _ = g.declare("input", &[], &[], &[2, 3, 8, 8]);
        let err = InferPlan::compile(&g, &[VarId::from_index(0)]).unwrap_err();
        assert!(err.contains("batch 1"), "got: {err}");
    }
}
