//! # rd-tensor
//!
//! A small, CPU-only tensor library with reverse-mode automatic
//! differentiation, written from scratch for the `road-decals`
//! reproduction of *Road Decals as Trojans* (DSN 2024).
//!
//! The paper's attack is a white-box gradient attack against a YOLOv3-tiny
//! object detector; everything it needs — convolutions, batch norm,
//! pooling, GAN layers, EOT image warps — must be differentiable. This
//! crate provides:
//!
//! * [`Tensor`] — dense row-major `f32` arrays with a blocked GEMM.
//! * [`Graph`] — a single-use autodiff tape ([`Graph::backward`] produces
//!   [`Gradients`]); ops cover conv2d, max-pool, upsample, batch norm,
//!   activations, losses and sparse [`LinearMap`] warps.
//! * [`ParamSet`] / [`optim`] — named parameters plus SGD/Adam.
//! * [`io`] — binary weight blobs plus versioned, CRC-guarded training
//!   checkpoints with atomic writes for crash-safe resume.
//! * [`infer`] — tape-free compiled inference ([`InferPlan`] /
//!   [`InferExec`]) for grad-free evaluation paths, bitwise-identical
//!   to the tape forward.
//! * [`train_plan`] — the compiled training step ([`TrainPlan`] /
//!   [`TrainStep`]): fused forward+backward op lists with activation
//!   column caching, bitwise-identical to a tape forward+backward.
//! * [`check`] — numerical gradient checking used across the workspace.
//! * [`runtime`] — instance-scoped execution contexts ([`Runtime`]):
//!   each bundles a worker-thread budget, scratch arena, profiler
//!   registry, execution tier and cancellation state. The free
//!   functions in [`parallel`] / [`arena`] / [`profile`] / [`tier`]
//!   operate on the runtime current at the call site (a lazily created
//!   process default outside any [`Runtime::enter`] scope), so existing
//!   single-job code is unchanged while supervisors can run isolated
//!   concurrent jobs.
//!
//! # Examples
//!
//! Train a one-parameter model with Adam:
//!
//! ```
//! use rd_tensor::{optim::Adam, Graph, ParamSet, Tensor};
//!
//! let mut ps = ParamSet::new();
//! let w = ps.register("w", Tensor::from_vec(vec![0.0], &[1]));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..200 {
//!     ps.zero_grads();
//!     let mut g = Graph::new();
//!     let wv = g.param(&ps, w);
//!     let err = g.add_scalar(wv, -5.0);
//!     let sq = g.mul(err, err);
//!     let loss = g.sum_all(sq);
//!     let grads = g.backward(loss);
//!     g.write_grads(&grads, &mut ps);
//!     opt.step(&mut ps);
//! }
//! assert!((ps.get(w).value().data()[0] - 5.0).abs() < 0.05);
//! ```

#![warn(missing_docs)]

pub mod arena;
mod bnorm;
pub mod check;
mod conv;
mod graph;
pub mod infer;
pub mod init;
pub mod io;
mod linmap;
pub mod loss;
pub mod optim;
pub mod parallel;
mod params;
pub mod plan_meta;
mod pool;
pub mod profile;
pub mod runtime;
pub mod shape;
pub mod simd;
mod smallvec;
mod tensor;
pub mod tier;
pub mod train_plan;

pub use bnorm::BatchStats;
pub use graph::{BackFn, Gradients, Graph, OpMeta, VarId};
pub use infer::{InferExec, InferPlan};
pub use linmap::{LinearMap, WarpEntry};
pub use params::{Param, ParamId, ParamSet};
pub use plan_meta::{ConvGeom, ParamRef, ParamRole, PlanKind, PlanMeta, PlanOpMeta, SlotMeta};
pub use runtime::{Cancelled, Runtime, RuntimeConfig};
pub use smallvec::SmallVec;
pub use tensor::Tensor;
pub use tier::Tier;
pub use train_plan::{TrainPlan, TrainStep};
