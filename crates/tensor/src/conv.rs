//! 2-D convolution via im2col + GEMM, with batch-parallel forward and
//! backward passes.
//!
//! Both passes partition the batch into [`crate::parallel::groups_for`]
//! fixed groups — a function of the batch size only, never the
//! machine's core count — and reduce per-group partials in group order,
//! so results are bitwise identical whatever the thread budget.

use crate::graph::{Graph, VarId};
use crate::tensor::{matmul_into, Tensor};

/// Output-row widths up to this use the register-accumulating GEMM.
pub(crate) const GEMM_ACC_WIDTH: usize = 64;

/// GEMM `out = a × b` specialized for small `n` (deep conv layers have
/// tiny output grids — 2×2 to 8×8 — where [`matmul_into`]'s
/// dynamic-length inner loop is pure overhead). Each output row is
/// accumulated on the stack and stored once.
///
/// Bitwise equivalence: per output element this performs the exact f32
/// sequence of `matmul_into` over a zeroed output — ascending `k`,
/// skipping `a == 0.0` terms, one `mul` + one `add` per term (Rust
/// never contracts these to an FMA) — so only store traffic changes,
/// never a rounding.
pub(crate) fn gemm_small_n(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(n <= GEMM_ACC_WIDTH);
    let mut acc = [0.0f32; GEMM_ACC_WIDTH];
    for i in 0..m {
        let acc = &mut acc[..n];
        acc.fill(0.0);
        for (kk, &av) in a[i * k..(i + 1) * k].iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            for (s, &bv) in acc.iter_mut().zip(&b[kk * n..kk * n + n]) {
                *s += av * bv;
            }
        }
        out[i * n..(i + 1) * n].copy_from_slice(acc);
    }
}

/// [`gemm_small_n`] monomorphized on the row width so the compiler can
/// unroll and vectorize the `N`-wide accumulator update. Same f32
/// sequence as the generic version.
pub(crate) fn gemm_fixed<const N: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
) {
    for i in 0..m {
        let mut acc = [0.0f32; N];
        for (kk, &av) in a[i * k..(i + 1) * k].iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow: &[f32; N] = b[kk * N..kk * N + N].try_into().unwrap();
            for j in 0..N {
                acc[j] += av * brow[j];
            }
        }
        out[i * N..(i + 1) * N].copy_from_slice(&acc);
    }
}

/// Dispatches between the register-accumulating kernels and
/// [`matmul_into`]; `out` need not be zeroed (every path fully
/// overwrites it). The fixed widths are the square head/backbone grids
/// the detector configs produce (2..8 per side).
pub(crate) fn conv_gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    match n {
        4 => gemm_fixed::<4>(a, b, out, m, k),
        9 => gemm_fixed::<9>(a, b, out, m, k),
        16 => gemm_fixed::<16>(a, b, out, m, k),
        25 => gemm_fixed::<25>(a, b, out, m, k),
        36 => gemm_fixed::<36>(a, b, out, m, k),
        49 => gemm_fixed::<49>(a, b, out, m, k),
        64 => gemm_fixed::<64>(a, b, out, m, k),
        _ if n <= GEMM_ACC_WIDTH => gemm_small_n(a, b, out, m, k, n),
        _ => {
            out.fill(0.0);
            matmul_into(a, b, out, m, k, n);
        }
    }
}

/// `out[m,n] += a[m,k] * b[n,k]^T` (dot products of rows).
///
/// Conv backward's grad-weight GEMM: `k` is the output grid `Ho·Wo`,
/// so the dot length hits the same square sizes the forward's
/// [`conv_gemm`] dispatches on. Monomorphizing on it lets the compiler
/// unroll the inner product; every path keeps the identical
/// k-ascending `mul`+`add` sequence (no zero-skip, matching the
/// original), so dispatch never changes a rounding.
pub(crate) fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(
        a.len(),
        m * k,
        "gemm_nt: lhs A has {} elements, M×K = {m}×{k} needs {}",
        a.len(),
        m * k
    );
    debug_assert_eq!(
        b.len(),
        n * k,
        "gemm_nt: rhs B has {} elements, N×K = {n}×{k} needs {}",
        b.len(),
        n * k
    );
    debug_assert_eq!(
        out.len(),
        m * n,
        "gemm_nt: out has {} elements, M×N = {m}×{n} needs {}",
        out.len(),
        m * n
    );
    match k {
        4 => gemm_nt_fixed::<4>(a, b, out, m, n),
        9 => gemm_nt_fixed::<9>(a, b, out, m, n),
        16 => gemm_nt_fixed::<16>(a, b, out, m, n),
        25 => gemm_nt_fixed::<25>(a, b, out, m, n),
        36 => gemm_nt_fixed::<36>(a, b, out, m, n),
        49 => gemm_nt_fixed::<49>(a, b, out, m, n),
        64 => gemm_nt_fixed::<64>(a, b, out, m, n),
        _ => gemm_nt_any(a, b, out, m, k, n),
    }
}

fn gemm_nt_any(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            out[i * n + j] += acc;
        }
    }
}

/// [`gemm_nt_any`] monomorphized on the dot length `K`.
fn gemm_nt_fixed<const K: usize>(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize) {
    for i in 0..m {
        let arow: &[f32; K] = a[i * K..(i + 1) * K].try_into().unwrap();
        for j in 0..n {
            let brow: &[f32; K] = b[j * K..(j + 1) * K].try_into().unwrap();
            let mut acc = 0.0f32;
            for t in 0..K {
                acc += arow[t] * brow[t];
            }
            out[i * n + j] += acc;
        }
    }
}

/// `out[m,n] += a[k,m]^T * b[k,n]` (outer-product accumulation).
///
/// Conv backward's grad-input GEMM: `n` is the output grid `Ho·Wo`, so
/// the row width gets the same monomorphized treatment as
/// [`conv_gemm`]. The `a == 0.0` outer-product skip of the original is
/// preserved on every path.
///
/// Production callers all use [`gemm_tn_over`] (which skips the
/// caller-side zeroing pass); this accumulate-mode entry stays as the
/// reference the overwrite mode is tested against.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn gemm_tn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    gemm_tn_asserts(a, b, out, k, m, n);
    gemm_tn_dispatch::<false>(a, b, out, k, m, n);
}

/// Overwrite-mode [`gemm_tn`]: `out[m,n] = a[k,m]^T * b[k,n]`, fully
/// writing the output so callers can drop their zeroing pass. The
/// `p == 0` slice of the outer-product sum writes (or zero-fills on a
/// skipped `a == 0.0` term) instead of accumulating; later slices
/// accumulate exactly as [`gemm_tn`]. Relative to zero-then-accumulate
/// only the initial `0.0 + x` fold disappears, which can flip the sign
/// of a zero but never a value — and conv backward's `col2im`
/// scatter-add re-folds any `-0.0` away before gradients escape.
pub(crate) fn gemm_tn_over(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    gemm_tn_asserts(a, b, out, k, m, n);
    if k == 0 {
        out.fill(0.0);
        return;
    }
    gemm_tn_dispatch::<true>(a, b, out, k, m, n);
}

fn gemm_tn_asserts(a: &[f32], b: &[f32], out: &[f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(
        a.len(),
        k * m,
        "gemm_tn: lhs A has {} elements, K×M = {k}×{m} needs {}",
        a.len(),
        k * m
    );
    debug_assert_eq!(
        b.len(),
        k * n,
        "gemm_tn: rhs B has {} elements, K×N = {k}×{n} needs {}",
        b.len(),
        k * n
    );
    debug_assert_eq!(
        out.len(),
        m * n,
        "gemm_tn: out has {} elements, M×N = {m}×{n} needs {}",
        out.len(),
        m * n
    );
}

fn gemm_tn_dispatch<const OVERWRITE: bool>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    match n {
        4 => gemm_tn_fixed::<4, OVERWRITE>(a, b, out, k, m),
        9 => gemm_tn_fixed::<9, OVERWRITE>(a, b, out, k, m),
        16 => gemm_tn_fixed::<16, OVERWRITE>(a, b, out, k, m),
        25 => gemm_tn_fixed::<25, OVERWRITE>(a, b, out, k, m),
        36 => gemm_tn_fixed::<36, OVERWRITE>(a, b, out, k, m),
        49 => gemm_tn_fixed::<49, OVERWRITE>(a, b, out, k, m),
        64 => gemm_tn_fixed::<64, OVERWRITE>(a, b, out, k, m),
        _ => gemm_tn_any::<OVERWRITE>(a, b, out, k, m, n),
    }
}

fn gemm_tn_any<const OVERWRITE: bool>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if OVERWRITE && p == 0 {
                let orow = &mut out[i * n..(i + 1) * n];
                if av == 0.0 {
                    orow.fill(0.0);
                } else {
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o = av * bv;
                    }
                }
                continue;
            }
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// [`gemm_tn_any`] monomorphized on the row width `N`.
fn gemm_tn_fixed<const N: usize, const OVERWRITE: bool>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
) {
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow: &[f32; N] = b[p * N..(p + 1) * N].try_into().unwrap();
        for (i, &av) in arow.iter().enumerate() {
            if OVERWRITE && p == 0 {
                let orow: &mut [f32; N] = (&mut out[i * N..(i + 1) * N]).try_into().unwrap();
                if av == 0.0 {
                    orow.fill(0.0);
                } else {
                    for j in 0..N {
                        orow[j] = av * brow[j];
                    }
                }
                continue;
            }
            if av == 0.0 {
                continue;
            }
            let orow: &mut [f32; N] = (&mut out[i * N..(i + 1) * N]).try_into().unwrap();
            for j in 0..N {
                orow[j] += av * brow[j];
            }
        }
    }
}

/// Unfolds one CHW image into a `[C*kh*kw, Ho*Wo]` column matrix.
#[allow(clippy::too_many_arguments)]
pub(crate) fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ho: usize,
    wo: usize,
    cols: &mut [f32],
) {
    debug_assert_eq!(
        cols.len(),
        c * kh * kw * ho * wo,
        "im2col: column buffer has {} elements, C·kh·kw×Ho·Wo = {}·{kh}·{kw}×{ho}·{wo} needs {}",
        cols.len(),
        c,
        c * kh * kw * ho * wo
    );
    let howo = ho * wo;
    for ch in 0..c {
        let xch = &x[ch * h * w..(ch + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let dst = &mut cols[row * howo..(row + 1) * howo];
                // stride-1: the in-bounds span of each output row is one
                // contiguous input run — pure data movement, identical
                // values to the per-element loop below
                let copy_rows = stride == 1;
                for oh in 0..ho {
                    let ih = (oh * stride + ki) as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        for d in &mut dst[oh * wo..(oh + 1) * wo] {
                            *d = 0.0;
                        }
                        continue;
                    }
                    let ih = ih as usize;
                    if copy_rows {
                        // iw = ow + kj - pad must land in [0, w)
                        let lo = pad.saturating_sub(kj).min(wo);
                        let hi = (w + pad).saturating_sub(kj).min(wo).max(lo);
                        let drow = &mut dst[oh * wo..(oh + 1) * wo];
                        drow[..lo].fill(0.0);
                        drow[hi..].fill(0.0);
                        let src = ih * w + lo + kj - pad;
                        drow[lo..hi].copy_from_slice(&xch[src..src + (hi - lo)]);
                        continue;
                    }
                    for ow in 0..wo {
                        let iw = (ow * stride + kj) as isize - pad as isize;
                        dst[oh * wo + ow] = if iw < 0 || iw >= w as isize {
                            0.0
                        } else {
                            xch[ih * w + iw as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatter-adds a column matrix back into a CHW image (transpose of
/// [`im2col`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn col2im(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ho: usize,
    wo: usize,
    x: &mut [f32],
) {
    let howo = ho * wo;
    for ch in 0..c {
        let xch = &mut x[ch * h * w..(ch + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let src = &cols[row * howo..(row + 1) * howo];
                for oh in 0..ho {
                    let ih = (oh * stride + ki) as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    let ih = ih as usize;
                    for ow in 0..wo {
                        let iw = (ow * stride + kj) as isize - pad as isize;
                        if iw < 0 || iw >= w as isize {
                            continue;
                        }
                        xch[ih * w + iw as usize] += src[oh * wo + ow];
                    }
                }
            }
        }
    }
}

impl Graph {
    /// 2-D convolution `x:[N,C,H,W] * w:[O,C,kh,kw] -> [N,O,Ho,Wo]` with an
    /// optional per-channel bias.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatches, or when the kernel does not
    /// fit the padded input.
    pub fn conv2d(
        &mut self,
        x: VarId,
        w: VarId,
        bias: Option<VarId>,
        stride: usize,
        pad: usize,
    ) -> VarId {
        let xv = self.value(x);
        let wv = self.value(w);
        assert_eq!(xv.shape().len(), 4, "conv2d input must be NCHW");
        assert_eq!(wv.shape().len(), 4, "conv2d weight must be OCKK");
        let (n, c, h, wd) = (xv.shape()[0], xv.shape()[1], xv.shape()[2], xv.shape()[3]);
        let (o, c2, kh, kw) = (wv.shape()[0], wv.shape()[1], wv.shape()[2], wv.shape()[3]);
        assert_eq!(
            c2, c,
            "conv2d weight OC×C×K×K has C={c2}, input NCHW has C={c}"
        );
        assert!(
            h + 2 * pad >= kh && wd + 2 * pad >= kw,
            "kernel larger than input"
        );
        let ho = (h + 2 * pad - kh) / stride + 1;
        let wo = (wd + 2 * pad - kw) / stride + 1;
        let ckk = c * kh * kw;
        let howo = ho * wo;

        // Fixed batch partition: groups depend only on `n`, and the
        // worker pool never spawns more threads than groups (so small
        // batches pay no spawn overhead for idle workers).
        let per = n.div_ceil(crate::parallel::groups_for(n));
        let mut out = Tensor::zeros(&[n, o, ho, wo]);
        {
            let xd = xv.data();
            let wd_flat = wv.data();
            crate::parallel::for_each_chunk_mut(out.data_mut(), per * o * howo, |gi, chunk| {
                let start = gi * per;
                let mut cols = crate::arena::ScratchBuf::zeroed(ckk * howo);
                for (li, oslice) in chunk.chunks_mut(o * howo).enumerate() {
                    let ni = start + li;
                    im2col(
                        &xd[ni * c * h * wd..(ni + 1) * c * h * wd],
                        c,
                        h,
                        wd,
                        kh,
                        kw,
                        stride,
                        pad,
                        ho,
                        wo,
                        &mut cols,
                    );
                    conv_gemm(wd_flat, &cols, oslice, o, ckk, howo);
                }
            });
        }
        let out = self.record(
            "conv2d",
            &[x, w],
            &[("stride", stride), ("pad", pad)],
            out,
            Some(Box::new(move |g, vals, grads| {
                let xd = vals[x.0].data();
                let wd_flat = vals[w.0].data();
                let gd = g.data();
                // Same fixed partition as the forward pass. Each group
                // writes a disjoint slice of the input gradient and
                // returns a partial weight gradient; the partials are
                // reduced in group order on the calling thread, which
                // makes the accumulation bitwise thread-count-invariant.
                let per = n.div_ceil(crate::parallel::groups_for(n));
                // When this conv is (so far) the sole contributor to its
                // input's gradient — the entry is still all-zero — the
                // groups scatter straight into `grads[x.0]`, skipping the
                // gx temporary and the add pass. Starting from the same
                // zeros, col2im performs the identical accumulation
                // sequence either way, so both routes are bitwise equal.
                let sole = grads[x.0].data().iter().all(|&v| v == 0.0);
                let mut gx_tmp = if sole {
                    None
                } else {
                    Some(Tensor::zeros(&[n, c, h, wd]))
                };
                let gw_partials: Vec<Vec<f32>> = {
                    let gx_data: &mut [f32] = match gx_tmp.as_mut() {
                        Some(t) => t.data_mut(),
                        None => grads[x.0].data_mut(),
                    };
                    let gx_slots: Vec<std::sync::Mutex<Option<&mut [f32]>>> = gx_data
                        .chunks_mut(per * c * h * wd)
                        .map(|chunk| std::sync::Mutex::new(Some(chunk)))
                        .collect();
                    crate::parallel::run_indexed(gx_slots.len(), |gi| {
                        let gx_chunk = gx_slots[gi]
                            .lock()
                            .expect("conv2d gx slot poisoned")
                            .take()
                            .expect("conv2d gx chunk taken twice");
                        let mut gw = crate::arena::take(o * ckk);
                        let mut cols = crate::arena::ScratchBuf::zeroed(ckk * howo);
                        let mut gcols = crate::arena::ScratchBuf::zeroed(ckk * howo);
                        for (li, gx_slice) in gx_chunk.chunks_mut(c * h * wd).enumerate() {
                            let ni = gi * per + li;
                            let gslice = &gd[ni * o * howo..(ni + 1) * o * howo];
                            im2col(
                                &xd[ni * c * h * wd..(ni + 1) * c * h * wd],
                                c,
                                h,
                                wd,
                                kh,
                                kw,
                                stride,
                                pad,
                                ho,
                                wo,
                                &mut cols,
                            );
                            // gw += g_n [o,howo] * cols^T [howo,ckk]
                            gemm_nt(gslice, &cols, &mut gw, o, howo, ckk);
                            // gcols = w^T [ckk,o] * g_n [o,howo]; overwrite
                            // mode fully writes the buffer, so no zeroing
                            // pass between samples.
                            gemm_tn_over(wd_flat, gslice, &mut gcols, o, ckk, howo);
                            col2im(&gcols, c, h, wd, kh, kw, stride, pad, ho, wo, gx_slice);
                        }
                        gw
                    })
                };
                if let Some(gx) = gx_tmp {
                    grads[x.0].add_scaled_assign(&gx, 1.0);
                    crate::arena::recycle(gx.into_vec());
                }
                let gwt = grads[w.0].data_mut();
                for part in gw_partials {
                    for (dst, &src) in gwt.iter_mut().zip(part.iter()) {
                        *dst += src;
                    }
                    crate::arena::recycle(part);
                }
            })),
        );
        match bias {
            Some(b) => self.add_bias_channel(out, b),
            None => out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{assert_grads_close, numeric_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input.
        let mut g = Graph::new();
        let x0 = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let x = g.input(x0.clone());
        let w = g.input(Tensor::ones(&[1, 1, 1, 1]));
        let y = g.conv2d(x, w, None, 1, 0);
        assert_eq!(g.value(y).data(), x0.data());
    }

    #[test]
    fn conv2d_known_values() {
        // 2x2 all-ones kernel on a 3x3 ramp, no padding: sliding sums.
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(
            vec![1., 2., 3., 4., 5., 6., 7., 8., 9.],
            &[1, 1, 3, 3],
        ));
        let w = g.input(Tensor::ones(&[1, 1, 2, 2]));
        let y = g.conv2d(x, w, None, 1, 0);
        assert_eq!(g.value(y).shape(), &[1, 1, 2, 2]);
        assert_eq!(g.value(y).data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv2d_padding_and_stride() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[1, 1, 4, 4]));
        let w = g.input(Tensor::ones(&[1, 1, 3, 3]));
        let y = g.conv2d(x, w, None, 2, 1);
        // output 2x2; corners see 2x2=4 ones, etc.
        assert_eq!(g.value(y).shape(), &[1, 1, 2, 2]);
        assert_eq!(g.value(y).data(), &[4.0, 6.0, 6.0, 9.0]);
    }

    #[test]
    fn conv2d_bias() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 1, 2, 2]));
        let w = g.input(Tensor::ones(&[2, 1, 1, 1]));
        let b = g.input(Tensor::from_vec(vec![1.5, -2.0], &[2]));
        let y = g.conv2d(x, w, Some(b), 1, 0);
        assert_eq!(g.value(y).at4(0, 0, 1, 1), 1.5);
        assert_eq!(g.value(y).at4(0, 1, 0, 0), -2.0);
    }

    #[test]
    fn conv2d_grads_match_numeric() {
        let mut rng = StdRng::seed_from_u64(99);
        let x0 = Tensor::randn(&mut rng, &[2, 3, 5, 5], 1.0);
        let w0 = Tensor::randn(&mut rng, &[4, 3, 3, 3], 0.5);
        let b0 = Tensor::randn(&mut rng, &[4], 0.5);
        let run = |x0: &Tensor, w0: &Tensor, b0: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let w = g.input(w0.clone());
            let b = g.input(b0.clone());
            let y = g.conv2d(x, w, Some(b), 2, 1);
            let y2 = g.mul(y, y);
            let loss = g.sum_all(y2);
            (g, x, w, b, loss)
        };
        let (g, x, w, b, loss) = run(&x0, &w0, &b0);
        let grads = g.backward(loss);
        let f = |xt: &Tensor, wt: &Tensor, bt: &Tensor| {
            let (g, _, _, _, l) = run(xt, wt, bt);
            g.value(l).data()[0]
        };
        assert_grads_close(
            grads.get(x),
            &numeric_grad(|t| f(t, &w0, &b0), &x0, 1e-2),
            0.05,
        );
        assert_grads_close(
            grads.get(w),
            &numeric_grad(|t| f(&x0, t, &b0), &w0, 1e-2),
            0.05,
        );
        assert_grads_close(
            grads.get(b),
            &numeric_grad(|t| f(&x0, &w0, t), &b0, 1e-2),
            0.05,
        );
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the pair must be exact adjoints
        // for conv gradients to be correct.
        let mut rng = StdRng::seed_from_u64(3);
        let (c, h, w, kh, kw, s, p) = (2, 5, 4, 3, 3, 2, 1);
        let ho = (h + 2 * p - kh) / s + 1;
        let wo = (w + 2 * p - kw) / s + 1;
        let x = Tensor::randn(&mut rng, &[c * h * w], 1.0);
        let y = Tensor::randn(&mut rng, &[c * kh * kw * ho * wo], 1.0);
        let mut cols = vec![0.0; c * kh * kw * ho * wo];
        im2col(x.data(), c, h, w, kh, kw, s, p, ho, wo, &mut cols);
        let lhs: f32 = cols.iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let mut xb = vec![0.0; c * h * w];
        col2im(y.data(), c, h, w, kh, kw, s, p, ho, wo, &mut xb);
        let rhs: f32 = xb.iter().zip(x.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn gemm_variants_agree_with_matmul() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Tensor::randn(&mut rng, &[3, 4], 1.0);
        let b = Tensor::randn(&mut rng, &[5, 4], 1.0);
        let mut out = vec![0.0; 15];
        gemm_nt(a.data(), b.data(), &mut out, 3, 4, 5);
        let want = a.matmul(&b.transpose2d());
        for (x, y) in out.iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        let c = Tensor::randn(&mut rng, &[4, 3], 1.0);
        let d = Tensor::randn(&mut rng, &[4, 5], 1.0);
        let mut out2 = vec![0.0; 15];
        gemm_tn(c.data(), d.data(), &mut out2, 4, 3, 5);
        let want2 = c.transpose2d().matmul(&d);
        for (x, y) in out2.iter().zip(want2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn gemm_tn_over_matches_zero_then_accumulate() {
        // Overwrite mode on a poisoned buffer must equal zero-then-gemm_tn,
        // across both the fixed-width widths and the generic fallback, and
        // with zeros sprinkled into A to exercise the skip path.
        let mut rng = StdRng::seed_from_u64(21);
        for &(k, m, n) in &[(4, 6, 4), (3, 5, 16), (8, 7, 64), (2, 3, 70), (5, 4, 9)] {
            let mut a = Tensor::randn(&mut rng, &[k, m], 1.0);
            for v in a.data_mut().iter_mut().step_by(3) {
                *v = 0.0;
            }
            let b = Tensor::randn(&mut rng, &[k, n], 1.0);
            let mut want = vec![0.0f32; m * n];
            gemm_tn(a.data(), b.data(), &mut want, k, m, n);
            let mut got = vec![f32::NAN; m * n];
            gemm_tn_over(a.data(), b.data(), &mut got, k, m, n);
            assert_eq!(got, want, "k={k} m={m} n={n}");
        }
    }

    #[test]
    fn gemm_dispatch_widths_agree_with_generic() {
        // The monomorphized gemm_nt/gemm_tn widths must be bitwise equal to
        // the dynamic-loop kernels they replace.
        let mut rng = StdRng::seed_from_u64(22);
        for &s in &[4usize, 9, 16, 25, 36, 49, 64, 50] {
            let (m, n) = (5, 7);
            let a = Tensor::randn(&mut rng, &[m, s], 1.0);
            let b = Tensor::randn(&mut rng, &[n, s], 1.0);
            let mut want = vec![0.1f32; m * n];
            gemm_nt_any(a.data(), b.data(), &mut want, m, s, n);
            let mut got = vec![0.1f32; m * n];
            gemm_nt(a.data(), b.data(), &mut got, m, s, n);
            assert_eq!(got, want, "gemm_nt k={s}");

            let (k, m2) = (6, 3);
            let c = Tensor::randn(&mut rng, &[k, m2], 1.0);
            let d = Tensor::randn(&mut rng, &[k, s], 1.0);
            let mut want2 = vec![0.2f32; m2 * s];
            gemm_tn_any::<false>(c.data(), d.data(), &mut want2, k, m2, s);
            let mut got2 = vec![0.2f32; m2 * s];
            gemm_tn(c.data(), d.data(), &mut got2, k, m2, s);
            assert_eq!(got2, want2, "gemm_tn n={s}");
        }
    }

    #[test]
    fn conv_backward_direct_and_temp_paths_agree() {
        // The sole-contributor fast path (scatter straight into grads[x])
        // must compute the same per-sample gradient as the temp+add path,
        // which is forced by giving x a second consumer whose backward runs
        // first. The shared-x gradient must then equal the two
        // sole-contributor gradients accumulated in backward order.
        let mut rng = StdRng::seed_from_u64(23);
        let x0 = Tensor::randn(&mut rng, &[2, 2, 5, 5], 1.0);
        let w0 = Tensor::randn(&mut rng, &[3, 2, 3, 3], 0.5);
        let gx_conv = {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let w = g.input(w0.clone());
            let y = g.conv2d(x, w, None, 1, 1);
            let l = g.sum_all(y);
            let grads = g.backward(l);
            grads.get(x).clone()
        };
        let gx_leaky = {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let z = g.leaky_relu(x, 0.3);
            let l = g.sum_all(z);
            let grads = g.backward(l);
            grads.get(x).clone()
        };
        let gx_both = {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let w = g.input(w0.clone());
            let y = g.conv2d(x, w, None, 1, 1);
            let z = g.leaky_relu(x, 0.3);
            let l1 = g.sum_all(y);
            let l2 = g.sum_all(z);
            let l = g.add(l1, l2);
            let grads = g.backward(l);
            grads.get(x).clone()
        };
        let mut want = gx_leaky;
        want.add_scaled_assign(&gx_conv, 1.0);
        assert_eq!(gx_both.data(), want.data());
    }
}
