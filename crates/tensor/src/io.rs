//! Binary serialization of parameter sets and full training checkpoints.
//!
//! Two on-disk formats live here:
//!
//! **v1 weight blobs** (`RDW1`) — params only, kept for the detector
//! weight caches and for backwards compatibility:
//!
//! ```text
//! magic  b"RDW1"
//! u32    parameter count
//! per parameter:
//!   u32        name length, then that many UTF-8 bytes
//!   u32        rank, then rank u32 dims
//!   f32 * n    the flat value buffer
//! ```
//!
//! **v2 checkpoints** (`RDC2`) — named sections carrying everything a
//! training run needs to resume bitwise-identically: parameter sets,
//! optimizer moments, RNG stream positions and loss histories. The
//! payload is guarded by a CRC32 so truncation, bit rot and torn writes
//! are detected instead of silently corrupting a resumed run:
//!
//! ```text
//! magic  b"RDC2"
//! u32    version (currently 2)
//! u64    payload length in bytes
//! u32    CRC32 (IEEE) over the payload
//! payload:
//!   u32  section count
//!   per section:
//!     u32  name length, then that many UTF-8 bytes
//!     u8   kind (0 = params, 1 = tensor list, 2 = u64 list, 3 = f32 list)
//!     u64  body length in bytes, then the body
//! ```
//!
//! [`save_checkpoint_file`] writes atomically (temp file + fsync +
//! rename), so a crash mid-write leaves the previous checkpoint intact.
//! [`load_checkpoint_file`] also accepts legacy v1 blobs, exposing them
//! as a checkpoint with a single `"params"` section.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use rand::rngs::StdRng;

use crate::optim::{Adam, AdamState};
use crate::params::ParamSet;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"RDW1";
const CK_MAGIC: &[u8; 4] = b"RDC2";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, dependency-free
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice — the checksum guarding v2 checkpoints.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// One parameter whose name or shape disagrees between a weight file and
/// the model it is being loaded into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamMismatch {
    /// Position in the registration order.
    pub index: usize,
    /// Name registered in the destination model.
    pub model_name: String,
    /// Shape registered in the destination model.
    pub model_shape: Vec<usize>,
    /// Name stored in the file.
    pub file_name: String,
    /// Shape stored in the file.
    pub file_shape: Vec<usize>,
}

impl fmt::Display for ParamMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "param #{}: model has {}{:?}, file has {}{:?}",
            self.index, self.model_name, self.model_shape, self.file_name, self.file_shape
        )
    }
}

/// Error produced when decoding a weight blob fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeWeightsError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The buffer ended before a field could be read.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Structurally invalid metadata (bad UTF-8, implausible rank, ...).
    Malformed(String),
    /// The file holds a different number of parameters than the model.
    CountMismatch {
        /// Parameters stored in the file.
        file: usize,
        /// Parameters registered in the model.
        model: usize,
    },
    /// One or more parameters disagree on name or shape; every mismatch
    /// is listed, not just the first.
    ParamMismatch(Vec<ParamMismatch>),
}

impl fmt::Display for DecodeWeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid weight data: ")?;
        match self {
            DecodeWeightsError::BadMagic => write!(f, "bad magic"),
            DecodeWeightsError::Truncated {
                offset,
                needed,
                available,
            } => write!(
                f,
                "unexpected end of buffer (needed {needed} byte(s) at offset {offset}, {available} available)"
            ),
            DecodeWeightsError::Malformed(m) => write!(f, "{m}"),
            DecodeWeightsError::CountMismatch { file, model } => write!(
                f,
                "parameter count mismatch: file has {file}, model has {model}"
            ),
            DecodeWeightsError::ParamMismatch(list) => {
                write!(f, "{} parameter(s) mismatched:", list.len())?;
                for m in list {
                    write!(f, "\n  {m}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for DecodeWeightsError {}

/// Error produced when a v2 checkpoint cannot be read, written or
/// applied. Every failure mode a resume can hit is a variant here —
/// nothing in this module panics on bad data.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Neither the v2 nor the legacy v1 magic was found.
    BadMagic,
    /// The header declares a version this build cannot read.
    UnsupportedVersion(u32),
    /// The file is shorter than its header claims (torn write).
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The payload checksum does not match (bit rot / partial write).
    CrcMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A section body failed to decode.
    Decode(DecodeWeightsError),
    /// Structurally invalid section metadata.
    Malformed(String),
    /// A required section is absent.
    MissingSection(String),
    /// A section exists but holds a different kind of data.
    WrongKind {
        /// Section name.
        section: String,
        /// Kind the caller asked for.
        expected: &'static str,
    },
    /// The checkpoint was produced by an incompatible run (different
    /// config, model layout or dataset).
    StateMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint: bad magic"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads v{CHECKPOINT_VERSION})")
            }
            CheckpointError::Truncated { expected, actual } => write!(
                f,
                "checkpoint truncated: header promises {expected} payload byte(s), found {actual}"
            ),
            CheckpointError::CrcMismatch { stored, computed } => write!(
                f,
                "checkpoint corrupt: CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            CheckpointError::Decode(e) => write!(f, "checkpoint section undecodable: {e}"),
            CheckpointError::Malformed(m) => write!(f, "checkpoint malformed: {m}"),
            CheckpointError::MissingSection(s) => write!(f, "checkpoint is missing section '{s}'"),
            CheckpointError::WrongKind { section, expected } => {
                write!(f, "checkpoint section '{section}' is not a {expected} section")
            }
            CheckpointError::StateMismatch(m) => write!(f, "checkpoint does not match this run: {m}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<DecodeWeightsError> for CheckpointError {
    fn from(e: DecodeWeightsError) -> Self {
        CheckpointError::Decode(e)
    }
}

// ---------------------------------------------------------------------------
// Byte reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeWeightsError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeWeightsError::Truncated {
                offset: self.pos,
                needed: n,
                available: self.buf.len().saturating_sub(self.pos),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeWeightsError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeWeightsError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeWeightsError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, DecodeWeightsError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn str(&mut self) -> Result<String, DecodeWeightsError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(DecodeWeightsError::Malformed(format!(
                "implausible string length {len}"
            )));
        }
        Ok(std::str::from_utf8(self.take(len)?)
            .map_err(|_| DecodeWeightsError::Malformed("string is not UTF-8".into()))?
            .to_owned())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_tensor(out: &mut Vec<u8>, t: &Tensor) {
    let shape = t.shape();
    out.extend_from_slice(&(shape.len() as u32).to_le_bytes());
    for &d in shape {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_tensor(r: &mut Reader<'_>, allow_empty: bool) -> Result<Tensor, DecodeWeightsError> {
    let rank = r.u32()? as usize;
    if rank > 8 {
        return Err(DecodeWeightsError::Malformed(format!(
            "implausible rank {rank}"
        )));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.u32()? as usize);
    }
    let n: usize = shape.iter().product();
    if n == 0 && !allow_empty {
        return Err(DecodeWeightsError::Malformed("zero-element tensor".into()));
    }
    if n > (1 << 31) / 4 {
        return Err(DecodeWeightsError::Malformed(format!(
            "implausible tensor size {n}"
        )));
    }
    let bytes = r.take(n * 4)?;
    let mut data = Vec::with_capacity(n);
    for chunk in bytes.chunks_exact(4) {
        data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    Ok(Tensor::from_vec(data, &shape))
}

// ---------------------------------------------------------------------------
// v1 params blobs
// ---------------------------------------------------------------------------

fn encode_params_body(ps: &ParamSet, out: &mut Vec<u8>) {
    out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
    for (_, p) in ps.iter() {
        push_str(out, p.name());
        push_tensor(out, p.value());
    }
}

fn decode_params_body(r: &mut Reader<'_>) -> Result<ParamSet, DecodeWeightsError> {
    let count = r.u32()? as usize;
    let mut ps = ParamSet::new();
    for _ in 0..count {
        let name = r.str()?;
        let value = read_tensor(r, false)?;
        ps.register(name, value);
    }
    Ok(ps)
}

/// Serializes every parameter value (gradients are not persisted).
pub fn encode_params(ps: &ParamSet) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    encode_params_body(ps, &mut out);
    out
}

/// Decodes a weight blob into a fresh [`ParamSet`].
///
/// # Errors
///
/// Returns [`DecodeWeightsError`] on a bad magic number, truncation, or
/// malformed metadata.
pub fn decode_params(buf: &[u8]) -> Result<ParamSet, DecodeWeightsError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeWeightsError::BadMagic);
    }
    decode_params_body(&mut r)
}

/// Copies `src`'s values into `dst`, requiring identical names, order and
/// shapes. Reports **every** mismatched parameter, not just the first.
fn copy_params_into(dst: &mut ParamSet, src: &ParamSet) -> Result<(), DecodeWeightsError> {
    if src.len() != dst.len() {
        return Err(DecodeWeightsError::CountMismatch {
            file: src.len(),
            model: dst.len(),
        });
    }
    let mut mismatches = Vec::new();
    for (i, ((_, d), (_, s))) in dst.iter().zip(src.iter()).enumerate() {
        if d.name() != s.name() || d.value().shape() != s.value().shape() {
            mismatches.push(ParamMismatch {
                index: i,
                model_name: d.name().to_owned(),
                model_shape: d.value().shape().to_vec(),
                file_name: s.name().to_owned(),
                file_shape: s.value().shape().to_vec(),
            });
        }
    }
    if !mismatches.is_empty() {
        return Err(DecodeWeightsError::ParamMismatch(mismatches));
    }
    for ((_, d), (_, s)) in dst.iter_mut().zip(src.iter()) {
        *d.value_mut() = s.value().clone();
    }
    Ok(())
}

/// Copies decoded values into an existing set with the same layout.
///
/// # Errors
///
/// Returns an error if names, order or shapes do not match; the error
/// lists every mismatched parameter with its index, name and shape on
/// both sides.
pub fn load_params_into(ps: &mut ParamSet, buf: &[u8]) -> Result<(), DecodeWeightsError> {
    let decoded = decode_params(buf)?;
    copy_params_into(ps, &decoded)
}

/// Writes a parameter set to a file atomically (temp file + fsync +
/// rename), so a crash mid-write cannot tear an existing file.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params_file(ps: &ParamSet, path: impl AsRef<Path>) -> std::io::Result<()> {
    atomic_write(path.as_ref(), &encode_params(ps))
}

/// Loads parameter values from a file into an existing set.
///
/// # Errors
///
/// Returns an I/O error or a boxed [`DecodeWeightsError`].
pub fn load_params_file(
    ps: &mut ParamSet,
    path: impl AsRef<Path>,
) -> Result<(), Box<dyn Error + Send + Sync>> {
    let buf = fs::read(path)?;
    load_params_into(ps, &buf)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// v2 checkpoints
// ---------------------------------------------------------------------------

/// One named piece of training state inside a [`Checkpoint`].
#[derive(Debug, Clone)]
pub enum Section {
    /// A full parameter set (names, shapes, values).
    Params(ParamSet),
    /// An ordered list of tensors (e.g. Adam first/second moments).
    Tensors(Vec<Tensor>),
    /// Integer state (RNG stream positions, step counters, permutations).
    U64s(Vec<u64>),
    /// Scalar state (hyper-parameters, loss histories).
    F32s(Vec<f32>),
}

impl Section {
    fn kind(&self) -> u8 {
        match self {
            Section::Params(_) => 0,
            Section::Tensors(_) => 1,
            Section::U64s(_) => 2,
            Section::F32s(_) => 3,
        }
    }
}

/// Full training state as named, typed sections — everything needed to
/// resume a run bitwise-identically.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    sections: Vec<(String, Section)>,
}

impl Checkpoint {
    /// An empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Section names in insertion order (diagnostics).
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    fn put(&mut self, name: impl Into<String>, s: Section) {
        let name = name.into();
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = s;
        } else {
            self.sections.push((name, s));
        }
    }

    fn find(&self, name: &str) -> Result<&Section, CheckpointError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| CheckpointError::MissingSection(name.to_owned()))
    }

    /// Stores a copy of a parameter set.
    pub fn put_params(&mut self, name: impl Into<String>, ps: &ParamSet) {
        self.put(name, Section::Params(ps.clone()));
    }

    /// Stores a list of tensors.
    pub fn put_tensors(&mut self, name: impl Into<String>, ts: Vec<Tensor>) {
        self.put(name, Section::Tensors(ts));
    }

    /// Stores integer state.
    pub fn put_u64s(&mut self, name: impl Into<String>, vs: Vec<u64>) {
        self.put(name, Section::U64s(vs));
    }

    /// Stores scalar state.
    pub fn put_f32s(&mut self, name: impl Into<String>, vs: Vec<f32>) {
        self.put(name, Section::F32s(vs));
    }

    /// Stores a single integer.
    pub fn put_u64(&mut self, name: impl Into<String>, v: u64) {
        self.put_u64s(name, vec![v]);
    }

    /// Borrows a params section.
    pub fn params(&self, name: &str) -> Result<&ParamSet, CheckpointError> {
        match self.find(name)? {
            Section::Params(ps) => Ok(ps),
            _ => Err(CheckpointError::WrongKind {
                section: name.to_owned(),
                expected: "params",
            }),
        }
    }

    /// Borrows a tensor-list section.
    pub fn tensors(&self, name: &str) -> Result<&[Tensor], CheckpointError> {
        match self.find(name)? {
            Section::Tensors(ts) => Ok(ts),
            _ => Err(CheckpointError::WrongKind {
                section: name.to_owned(),
                expected: "tensor-list",
            }),
        }
    }

    /// Borrows a u64-list section.
    pub fn u64s(&self, name: &str) -> Result<&[u64], CheckpointError> {
        match self.find(name)? {
            Section::U64s(vs) => Ok(vs),
            _ => Err(CheckpointError::WrongKind {
                section: name.to_owned(),
                expected: "u64-list",
            }),
        }
    }

    /// Borrows an f32-list section.
    pub fn f32s(&self, name: &str) -> Result<&[f32], CheckpointError> {
        match self.find(name)? {
            Section::F32s(vs) => Ok(vs),
            _ => Err(CheckpointError::WrongKind {
                section: name.to_owned(),
                expected: "f32-list",
            }),
        }
    }

    /// Reads a single-integer section.
    pub fn u64(&self, name: &str) -> Result<u64, CheckpointError> {
        match self.u64s(name)? {
            [v] => Ok(*v),
            other => Err(CheckpointError::Malformed(format!(
                "section '{name}' holds {} integer(s), expected exactly 1",
                other.len()
            ))),
        }
    }

    /// Copies a params section's values into an existing set, validating
    /// names, order and shapes.
    pub fn load_params_into(&self, name: &str, ps: &mut ParamSet) -> Result<(), CheckpointError> {
        copy_params_into(ps, self.params(name)?).map_err(CheckpointError::Decode)
    }

    /// Stores an Adam optimizer's full state under `prefix`.
    pub fn put_adam(&mut self, prefix: &str, opt: &Adam) {
        let st = opt.export_state();
        self.put_f32s(
            format!("{prefix}.hyper"),
            vec![st.lr, st.beta1, st.beta2, st.eps],
        );
        self.put_u64(format!("{prefix}.t"), st.t);
        self.put_tensors(format!("{prefix}.m"), st.m);
        self.put_tensors(format!("{prefix}.v"), st.v);
    }

    /// Reads an Adam state stored by [`put_adam`](Self::put_adam).
    pub fn get_adam(&self, prefix: &str) -> Result<AdamState, CheckpointError> {
        let hyper = self.f32s(&format!("{prefix}.hyper"))?;
        let [lr, beta1, beta2, eps] = *hyper else {
            return Err(CheckpointError::Malformed(format!(
                "section '{prefix}.hyper' holds {} value(s), expected 4",
                hyper.len()
            )));
        };
        Ok(AdamState {
            lr,
            beta1,
            beta2,
            eps,
            t: self.u64(&format!("{prefix}.t"))?,
            m: self.tensors(&format!("{prefix}.m"))?.to_vec(),
            v: self.tensors(&format!("{prefix}.v"))?.to_vec(),
        })
    }

    /// Stores an RNG's exact stream position.
    pub fn put_rng(&mut self, name: impl Into<String>, rng: &StdRng) {
        self.put_u64s(name, rng.state().to_vec());
    }

    /// Rebuilds an RNG from a stored stream position.
    pub fn get_rng(&self, name: &str) -> Result<StdRng, CheckpointError> {
        let vs = self.u64s(name)?;
        let s: [u64; 4] = vs.try_into().map_err(|_| {
            CheckpointError::Malformed(format!(
                "section '{name}' holds {} word(s), expected 4 RNG state words",
                vs.len()
            ))
        })?;
        Ok(StdRng::from_state(s))
    }
}

/// Serializes a checkpoint to bytes (header + CRC-guarded payload).
pub fn encode_checkpoint(ck: &Checkpoint) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(ck.sections.len() as u32).to_le_bytes());
    for (name, section) in &ck.sections {
        push_str(&mut payload, name);
        payload.push(section.kind());
        let mut body = Vec::new();
        match section {
            Section::Params(ps) => encode_params_body(ps, &mut body),
            Section::Tensors(ts) => {
                body.extend_from_slice(&(ts.len() as u32).to_le_bytes());
                for t in ts {
                    push_tensor(&mut body, t);
                }
            }
            Section::U64s(vs) => {
                body.extend_from_slice(&(vs.len() as u32).to_le_bytes());
                for v in vs {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
            Section::F32s(vs) => {
                body.extend_from_slice(&(vs.len() as u32).to_le_bytes());
                for v in vs {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        payload.extend_from_slice(&(body.len() as u64).to_le_bytes());
        payload.extend_from_slice(&body);
    }
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(CK_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_section_body(kind: u8, body: &[u8]) -> Result<Section, CheckpointError> {
    let mut r = Reader { buf: body, pos: 0 };
    let section = match kind {
        0 => Section::Params(decode_params_body(&mut r)?),
        1 => {
            let count = r.u32()? as usize;
            let mut ts = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                ts.push(read_tensor(&mut r, true)?);
            }
            Section::Tensors(ts)
        }
        2 => {
            let count = r.u32()? as usize;
            let mut vs = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                vs.push(r.u64()?);
            }
            Section::U64s(vs)
        }
        3 => {
            let count = r.u32()? as usize;
            let mut vs = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                vs.push(r.f32()?);
            }
            Section::F32s(vs)
        }
        other => {
            return Err(CheckpointError::Malformed(format!(
                "unknown section kind {other}"
            )))
        }
    };
    if !r.done() {
        return Err(CheckpointError::Malformed(format!(
            "section body has {} trailing byte(s)",
            body.len() - r.pos
        )));
    }
    Ok(section)
}

/// Decodes checkpoint bytes, verifying the version and CRC. Legacy v1
/// params-only blobs are accepted and surfaced as a checkpoint with a
/// single `"params"` section.
pub fn decode_checkpoint(buf: &[u8]) -> Result<Checkpoint, CheckpointError> {
    if buf.len() >= 4 && &buf[..4] == MAGIC {
        let ps = decode_params(buf)?;
        let mut ck = Checkpoint::new();
        ck.put_params("params", &ps);
        return Ok(ck);
    }
    if buf.len() < 20 {
        return Err(CheckpointError::Truncated {
            expected: 20,
            actual: buf.len(),
        });
    }
    if &buf[..4] != CK_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let payload_len = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")) as usize;
    let stored_crc = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes"));
    let payload = &buf[20..];
    if payload.len() != payload_len {
        return Err(CheckpointError::Truncated {
            expected: payload_len,
            actual: payload.len(),
        });
    }
    let computed = crc32(payload);
    if computed != stored_crc {
        return Err(CheckpointError::CrcMismatch {
            stored: stored_crc,
            computed,
        });
    }
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let n_sections = r.u32()? as usize;
    if n_sections > 1 << 16 {
        return Err(CheckpointError::Malformed(format!(
            "implausible section count {n_sections}"
        )));
    }
    let mut ck = Checkpoint::new();
    for _ in 0..n_sections {
        let name = r.str()?;
        let kind = r.u8()?;
        let body_len = r.u64()? as usize;
        let body = r.take(body_len)?;
        ck.put(name, decode_section_body(kind, body)?);
    }
    if !r.done() {
        return Err(CheckpointError::Malformed(format!(
            "payload has {} trailing byte(s)",
            payload.len() - r.pos
        )));
    }
    Ok(ck)
}

/// Writes `bytes` to `path` atomically: a sibling temp file is written
/// and fsynced, then renamed over the target, so readers only ever see
/// either the old complete file or the new complete file.
fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Best-effort directory fsync so the rename itself is durable; not
    // all filesystems support opening directories, hence the soft error.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Saves a checkpoint to a file atomically (temp + fsync + rename).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on any filesystem failure.
pub fn save_checkpoint_file(
    ck: &Checkpoint,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    atomic_write(path.as_ref(), &encode_checkpoint(ck)).map_err(CheckpointError::Io)
}

/// Saves pre-encoded checkpoint bytes with the same atomic protocol as
/// [`save_checkpoint_file`]. The fault-injection harness uses this to
/// plant deliberately corrupted files; production code should prefer
/// [`save_checkpoint_file`].
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on any filesystem failure.
pub fn save_checkpoint_bytes(bytes: &[u8], path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    atomic_write(path.as_ref(), bytes).map_err(CheckpointError::Io)
}

/// Loads and verifies a checkpoint file (v2, or a legacy v1 blob).
///
/// # Errors
///
/// Returns a [`CheckpointError`] describing exactly what is wrong —
/// missing file, truncation, CRC mismatch, bad version or undecodable
/// section.
pub fn load_checkpoint_file(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let buf = fs::read(path).map_err(CheckpointError::Io)?;
    decode_checkpoint(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn sample_set() -> ParamSet {
        let mut rng = StdRng::seed_from_u64(77);
        let mut ps = ParamSet::new();
        ps.register("conv1.w", Tensor::randn(&mut rng, &[4, 3, 3, 3], 1.0));
        ps.register("conv1.b", Tensor::randn(&mut rng, &[4], 1.0));
        ps.register("fc.w", Tensor::randn(&mut rng, &[2, 10], 1.0));
        ps
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ps = sample_set();
        let blob = encode_params(&ps);
        let back = decode_params(&blob).unwrap();
        assert_eq!(back.len(), ps.len());
        for ((_, a), (_, b)) in ps.iter().zip(back.iter()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn load_into_rejects_shape_mismatch() {
        let ps = sample_set();
        let blob = encode_params(&ps);
        let mut other = ParamSet::new();
        other.register("conv1.w", Tensor::zeros(&[4, 3, 3, 3]));
        assert!(matches!(
            load_params_into(&mut other, &blob),
            Err(DecodeWeightsError::CountMismatch { file: 3, model: 1 })
        ));
    }

    #[test]
    fn load_into_reports_every_mismatch() {
        let ps = sample_set();
        let blob = encode_params(&ps);
        let mut other = ParamSet::new();
        other.register("conv1.w", Tensor::zeros(&[4, 3, 3, 3])); // fine
        other.register("conv1.bias", Tensor::zeros(&[4])); // name differs
        other.register("fc.w", Tensor::zeros(&[10, 2])); // shape differs
        match load_params_into(&mut other, &blob) {
            Err(DecodeWeightsError::ParamMismatch(list)) => {
                assert_eq!(list.len(), 2);
                assert_eq!(list[0].index, 1);
                assert_eq!(list[0].model_name, "conv1.bias");
                assert_eq!(list[0].file_name, "conv1.b");
                assert_eq!(list[1].index, 2);
                assert_eq!(list[1].model_shape, vec![10, 2]);
                assert_eq!(list[1].file_shape, vec![2, 10]);
                let msg = DecodeWeightsError::ParamMismatch(list).to_string();
                assert!(msg.contains("conv1.bias"), "{msg}");
                assert!(msg.contains("[10, 2]"), "{msg}");
            }
            other => panic!("expected ParamMismatch, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_params(b"nope").is_err());
        assert!(decode_params(b"RDW1").is_err());
        let ps = sample_set();
        let mut blob = encode_params(&ps);
        blob.truncate(blob.len() - 3);
        assert!(matches!(
            decode_params(&blob),
            Err(DecodeWeightsError::Truncated { .. })
        ));
    }

    #[test]
    fn load_into_replaces_values() {
        let ps = sample_set();
        let blob = encode_params(&ps);
        let mut rng = StdRng::seed_from_u64(1);
        let mut other = ParamSet::new();
        other.register("conv1.w", Tensor::randn(&mut rng, &[4, 3, 3, 3], 1.0));
        other.register("conv1.b", Tensor::randn(&mut rng, &[4], 1.0));
        other.register("fc.w", Tensor::randn(&mut rng, &[2, 10], 1.0));
        load_params_into(&mut other, &blob).unwrap();
        for ((_, a), (_, b)) in ps.iter().zip(other.iter()) {
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // the classic IEEE test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checkpoint_roundtrip_all_section_kinds() {
        let ps = sample_set();
        let mut rng = StdRng::seed_from_u64(9);
        rng.next_u64();
        let mut ck = Checkpoint::new();
        ck.put_params("gen", &ps);
        ck.put_tensors("moments", vec![Tensor::ones(&[2, 3]), Tensor::zeros(&[4])]);
        ck.put_u64s("order", vec![3, 1, 2, 0]);
        ck.put_f32s("hist", vec![1.5, -0.25, f32::MIN_POSITIVE]);
        ck.put_u64("step", 41);
        ck.put_rng("rng", &rng);
        let back = decode_checkpoint(&encode_checkpoint(&ck)).unwrap();
        let gen = back.params("gen").unwrap();
        assert_eq!(gen.len(), ps.len());
        for ((_, a), (_, b)) in ps.iter().zip(gen.iter()) {
            assert_eq!(a.value(), b.value());
        }
        assert_eq!(back.tensors("moments").unwrap().len(), 2);
        assert_eq!(back.u64s("order").unwrap(), &[3, 1, 2, 0]);
        assert_eq!(back.f32s("hist").unwrap(), &[1.5, -0.25, f32::MIN_POSITIVE]);
        assert_eq!(back.u64("step").unwrap(), 41);
        let mut restored = back.get_rng("rng").unwrap();
        let mut orig = rng.clone();
        assert_eq!(restored.next_u64(), orig.next_u64());
    }

    #[test]
    fn checkpoint_detects_truncation_and_bitflips() {
        let mut ck = Checkpoint::new();
        ck.put_u64s("order", vec![7; 32]);
        ck.put_f32s("hist", vec![0.5; 64]);
        let bytes = encode_checkpoint(&ck);
        // truncation
        assert!(matches!(
            decode_checkpoint(&bytes[..bytes.len() - 5]),
            Err(CheckpointError::Truncated { .. })
        ));
        // payload bit flip -> CRC mismatch
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        assert!(matches!(
            decode_checkpoint(&flipped),
            Err(CheckpointError::CrcMismatch { .. })
        ));
        // version bump -> unsupported
        let mut versioned = bytes.clone();
        versioned[4] = 9;
        assert!(matches!(
            decode_checkpoint(&versioned),
            Err(CheckpointError::UnsupportedVersion(9))
        ));
        // magic damage
        let mut bad = bytes;
        bad[0] = b'X';
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn legacy_v1_blob_loads_as_checkpoint() {
        let ps = sample_set();
        let blob = encode_params(&ps);
        let ck = decode_checkpoint(&blob).unwrap();
        let back = ck.params("params").unwrap();
        assert_eq!(back.len(), ps.len());
        let mut dst = sample_set();
        ck.load_params_into("params", &mut dst).unwrap();
    }

    #[test]
    fn atomic_save_then_load_file() {
        let dir = std::env::temp_dir().join("rd_io_test_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.rdc2");
        let mut ck = Checkpoint::new();
        ck.put_u64("step", 5);
        save_checkpoint_file(&ck, &path).unwrap();
        // no stray temp file left behind
        assert!(!path.with_extension("rdc2.tmp").exists());
        let back = load_checkpoint_file(&path).unwrap();
        assert_eq!(back.u64("step").unwrap(), 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_and_wrong_kind_sections_error_cleanly() {
        let mut ck = Checkpoint::new();
        ck.put_u64s("ints", vec![1]);
        assert!(matches!(
            ck.params("nope"),
            Err(CheckpointError::MissingSection(_))
        ));
        assert!(matches!(
            ck.f32s("ints"),
            Err(CheckpointError::WrongKind { .. })
        ));
    }
}
