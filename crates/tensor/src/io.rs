//! Binary serialization of parameter sets (a tiny, dependency-free weight
//! format so trained detectors/GANs can be checkpointed between runs).
//!
//! Format (all little-endian):
//!
//! ```text
//! magic  b"RDW1"
//! u32    parameter count
//! per parameter:
//!   u32        name length, then that many UTF-8 bytes
//!   u32        rank, then rank u32 dims
//!   f32 * n    the flat value buffer
//! ```

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::params::ParamSet;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"RDW1";

/// Error produced when decoding a weight blob fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeWeightsError {
    message: String,
}

impl DecodeWeightsError {
    fn new(message: impl Into<String>) -> Self {
        DecodeWeightsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeWeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid weight data: {}", self.message)
    }
}

impl Error for DecodeWeightsError {}

/// Serializes every parameter value (gradients are not persisted).
pub fn encode_params(ps: &ParamSet) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
    for (_, p) in ps.iter() {
        let name = p.name().as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        let shape = p.value().shape();
        out.extend_from_slice(&(shape.len() as u32).to_le_bytes());
        for &d in shape {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for &v in p.value().data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeWeightsError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeWeightsError::new("unexpected end of buffer"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeWeightsError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Decodes a weight blob into a fresh [`ParamSet`].
///
/// # Errors
///
/// Returns [`DecodeWeightsError`] on a bad magic number, truncation, or
/// malformed metadata.
pub fn decode_params(buf: &[u8]) -> Result<ParamSet, DecodeWeightsError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeWeightsError::new("bad magic"));
    }
    let count = r.u32()? as usize;
    let mut ps = ParamSet::new();
    for _ in 0..count {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| DecodeWeightsError::new("parameter name is not UTF-8"))?
            .to_owned();
        let rank = r.u32()? as usize;
        if rank > 8 {
            return Err(DecodeWeightsError::new("implausible rank"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(r.u32()? as usize);
        }
        let n: usize = shape.iter().product();
        if n == 0 {
            return Err(DecodeWeightsError::new("zero-element parameter"));
        }
        let bytes = r.take(n * 4)?;
        let mut data = Vec::with_capacity(n);
        for chunk in bytes.chunks_exact(4) {
            data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        ps.register(name, Tensor::from_vec(data, &shape));
    }
    Ok(ps)
}

/// Copies decoded values into an existing set with the same layout.
///
/// # Errors
///
/// Returns an error if names, order or shapes do not match.
pub fn load_params_into(ps: &mut ParamSet, buf: &[u8]) -> Result<(), DecodeWeightsError> {
    let decoded = decode_params(buf)?;
    if decoded.len() != ps.len() {
        return Err(DecodeWeightsError::new(format!(
            "parameter count mismatch: file has {}, model has {}",
            decoded.len(),
            ps.len()
        )));
    }
    for ((_, dst), (_, src)) in ps.iter_mut().zip(decoded.iter()) {
        if dst.name() != src.name() || dst.value().shape() != src.value().shape() {
            return Err(DecodeWeightsError::new(format!(
                "parameter mismatch: model {}{:?} vs file {}{:?}",
                dst.name(),
                dst.value().shape(),
                src.name(),
                src.value().shape()
            )));
        }
        *dst.value_mut() = src.value().clone();
    }
    Ok(())
}

/// Writes a parameter set to a file.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params_file(ps: &ParamSet, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(&encode_params(ps))
}

/// Loads parameter values from a file into an existing set.
///
/// # Errors
///
/// Returns an I/O error or a boxed [`DecodeWeightsError`].
pub fn load_params_file(
    ps: &mut ParamSet,
    path: impl AsRef<Path>,
) -> Result<(), Box<dyn Error + Send + Sync>> {
    let buf = fs::read(path)?;
    load_params_into(ps, &buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_set() -> ParamSet {
        let mut rng = StdRng::seed_from_u64(77);
        let mut ps = ParamSet::new();
        ps.register("conv1.w", Tensor::randn(&mut rng, &[4, 3, 3, 3], 1.0));
        ps.register("conv1.b", Tensor::randn(&mut rng, &[4], 1.0));
        ps.register("fc.w", Tensor::randn(&mut rng, &[2, 10], 1.0));
        ps
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ps = sample_set();
        let blob = encode_params(&ps);
        let back = decode_params(&blob).unwrap();
        assert_eq!(back.len(), ps.len());
        for ((_, a), (_, b)) in ps.iter().zip(back.iter()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn load_into_rejects_shape_mismatch() {
        let ps = sample_set();
        let blob = encode_params(&ps);
        let mut other = ParamSet::new();
        other.register("conv1.w", Tensor::zeros(&[4, 3, 3, 3]));
        assert!(load_params_into(&mut other, &blob).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_params(b"nope").is_err());
        assert!(decode_params(b"RDW1").is_err());
        let ps = sample_set();
        let mut blob = encode_params(&ps);
        blob.truncate(blob.len() - 3);
        assert!(decode_params(&blob).is_err());
    }

    #[test]
    fn load_into_replaces_values() {
        let ps = sample_set();
        let blob = encode_params(&ps);
        let mut rng = StdRng::seed_from_u64(1);
        let mut other = ParamSet::new();
        other.register("conv1.w", Tensor::randn(&mut rng, &[4, 3, 3, 3], 1.0));
        other.register("conv1.b", Tensor::randn(&mut rng, &[4], 1.0));
        other.register("fc.w", Tensor::randn(&mut rng, &[2, 10], 1.0));
        load_params_into(&mut other, &blob).unwrap();
        for ((_, a), (_, b)) in ps.iter().zip(other.iter()) {
            assert_eq!(a.value(), b.value());
        }
    }
}
