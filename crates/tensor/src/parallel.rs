//! Deterministic scoped worker pool for data-parallel tensor work.
//!
//! Every parallel loop in the crate partitions its work into a *fixed*
//! number of groups that depends only on the problem size (never on the
//! machine's core count), then lets up to [`max_threads`] workers drain
//! those groups from a shared queue. Because each group's result is
//! written to its own pre-assigned slot and any cross-group reduction
//! happens on the calling thread in group order, results are bitwise
//! identical whatever the thread count — including fully serial runs.
//!
//! The thread budget lives on the [`crate::runtime::Runtime`] current
//! at the call site ([`set_max_threads`] is the default-runtime shim),
//! so two runtimes can run different budgets concurrently in one
//! process. Worker threads spawned here **inherit the spawner's
//! runtime**: everything a worker allocates, profiles or dispatches
//! stays charged to the runtime that launched the loop.
//!
//! Nested parallelism is suppressed: a `run_*` call made from inside a
//! worker runs inline on that worker. The partitioning is unchanged, so
//! numerics are unchanged; only the thread fan-out is.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::runtime;

/// Upper bound on the number of work groups any loop is split into.
///
/// The group count is part of the numeric contract (reductions happen
/// per group), so it must not track `available_parallelism`; eight
/// groups saturate the thread budgets we target while keeping the
/// per-group reduction cheap.
pub const MAX_GROUPS: usize = 8;

/// The host's logical CPU count (floor of 1).
pub fn host_logical_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Sets the worker-thread budget of the **current runtime** (the
/// process-wide default runtime outside any
/// [`crate::runtime::Runtime::enter`] scope, which preserves the old
/// global behavior for single-job binaries).
///
/// `0` restores the default (the host's available parallelism). `1`
/// forces fully serial execution. The setting applies to conv/pool/warp
/// kernels as well as the attack-loop frame fan-out run under that
/// runtime.
///
/// Requests above [`host_logical_cpus`] are stored as-is (see
/// [`requested_max_threads`]) but [`max_threads`] clamps the effective
/// budget to the host: oversubscribing a smaller machine only adds
/// scheduler thrash — the partitioning (and therefore the numerics) is
/// group-based and unaffected either way.
pub fn set_max_threads(n: usize) {
    runtime::current().set_threads(n);
}

/// Returns the current runtime's raw budget (0 = auto), before the host
/// clamp. Benches report this next to the effective [`max_threads`] so
/// oversubscribed configs are visible.
pub fn requested_max_threads() -> usize {
    runtime::current().threads_requested()
}

/// Returns the current *effective* worker-thread budget: the current
/// runtime's requested budget clamped to [`host_logical_cpus`], with
/// "auto" (0) resolving to the host's available parallelism and a floor
/// of 1.
pub fn max_threads() -> usize {
    let host = host_logical_cpus();
    let n = runtime::current().threads_requested();
    if n == 0 {
        host
    } else {
        n.min(host).max(1)
    }
}

/// Number of work groups for a loop over `items` independent items:
/// `items` clamped to `1..=MAX_GROUPS`. Depends only on the problem
/// size, so the induced reduction order is machine-independent.
pub fn groups_for(items: usize) -> usize {
    items.clamp(1, MAX_GROUPS)
}

/// Number of worker threads to actually spawn for `groups` groups:
/// never more threads than groups (spawning more would only waste
/// scope/spawn overhead on small batches).
pub fn workers_for(groups: usize) -> usize {
    max_threads().clamp(1, groups.max(1))
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside one of this module's worker threads.
/// Nested parallel loops consult this and run inline instead of
/// spawning a second tier of threads.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Runs `f(0..n)` across the worker pool and returns the results in
/// index order.
///
/// Work items are drained from an atomic queue, but each result lands
/// in its own slot, so the returned `Vec` is identical to the serial
/// `(0..n).map(f).collect()` whatever the thread count. Runs inline
/// when the budget is 1, `n <= 1`, or we are already inside a worker.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = if in_worker() { 1 } else { workers_for(n) };
    if workers <= 1 || n == 1 {
        return (0..n).map(f).collect();
    }
    // Workers run under the spawner's runtime: arena takes/recycles,
    // profiler samples and nested budget reads all resolve to it.
    let rt = runtime::current();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                rt.enter(|| {
                    IN_WORKER.with(|fl| fl.set(true));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let v = f(i);
                        *slots[i].lock().expect("parallel slot poisoned") = Some(v);
                    }
                    IN_WORKER.with(|fl| fl.set(false));
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("parallel slot poisoned")
                .expect("parallel slot left unfilled")
        })
        .collect()
}

/// Splits `data` into chunks of `chunk` elements and runs
/// `f(group_index, chunk)` on each across the worker pool.
///
/// The chunks are disjoint, so each group owns its output slice
/// exclusively; no reduction is needed and determinism is structural.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let slots: Vec<Mutex<Option<&mut [T]>>> = data
        .chunks_mut(chunk)
        .map(|c| Mutex::new(Some(c)))
        .collect();
    let n = slots.len();
    run_indexed(n, |i| {
        let c = slots[i]
            .lock()
            .expect("chunk slot poisoned")
            .take()
            .expect("chunk taken twice");
        f(i, c);
    });
}

/// Like [`for_each_chunk_mut`] but over two parallel arrays chunked in
/// lockstep (`a` by `chunk_a`, `b` by `chunk_b`); both must split into
/// the same number of chunks. Used where a kernel writes an output
/// plane and a side-band (e.g. max-pool values + argmax indices).
pub fn for_each_chunk2_mut<A, B, F>(a: &mut [A], b: &mut [B], chunk_a: usize, chunk_b: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(chunk_a > 0 && chunk_b > 0, "chunk sizes must be positive");
    let sa: Vec<Mutex<Option<&mut [A]>>> =
        a.chunks_mut(chunk_a).map(|c| Mutex::new(Some(c))).collect();
    let sb: Vec<Mutex<Option<&mut [B]>>> =
        b.chunks_mut(chunk_b).map(|c| Mutex::new(Some(c))).collect();
    assert_eq!(
        sa.len(),
        sb.len(),
        "parallel arrays must split into the same number of chunks"
    );
    run_indexed(sa.len(), |i| {
        let ca = sa[i]
            .lock()
            .expect("chunk slot poisoned")
            .take()
            .expect("chunk taken twice");
        let cb = sb[i]
            .lock()
            .expect("chunk slot poisoned")
            .take()
            .expect("chunk taken twice");
        f(i, ca, cb);
    });
}

#[cfg(test)]
mod tests {
    // Every test that tunes the thread budget enters its own Runtime,
    // so concurrent `cargo test` threads can no longer race on a shared
    // MAX_THREADS global (the pre-Runtime failure mode).
    use super::*;
    use crate::runtime::{Runtime, RuntimeConfig};

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        Runtime::new(RuntimeConfig {
            threads: n,
            ..RuntimeConfig::default()
        })
        .enter(f)
    }

    #[test]
    fn groups_are_machine_independent() {
        assert_eq!(groups_for(0), 1);
        assert_eq!(groups_for(1), 1);
        assert_eq!(groups_for(5), 5);
        assert_eq!(groups_for(100), MAX_GROUPS);
    }

    #[test]
    fn workers_never_exceed_groups_or_host() {
        let host = host_logical_cpus();
        with_threads(16, || {
            assert_eq!(requested_max_threads(), 16);
            assert_eq!(max_threads(), 16.min(host));
            assert_eq!(workers_for(3), 16.min(host).min(3));
            assert_eq!(workers_for(0), 1);
        });
        with_threads(2, || assert_eq!(workers_for(8), 2.min(host)));
        with_threads(0, || {
            assert_eq!(requested_max_threads(), 0);
            assert_eq!(max_threads(), host);
        });
    }

    #[test]
    fn run_indexed_matches_serial_order() {
        let par = with_threads(4, || run_indexed(37, |i| i * i));
        let ser = with_threads(1, || run_indexed(37, |i| i * i));
        assert_eq!(par, ser);
    }

    #[test]
    fn chunked_writes_cover_all_elements() {
        with_threads(4, || {
            let mut v = vec![0usize; 103];
            for_each_chunk_mut(&mut v, 10, |g, c| {
                for (j, x) in c.iter_mut().enumerate() {
                    *x = g * 10 + j;
                }
            });
            assert!(v.iter().enumerate().all(|(i, &x)| x == i));
        });
    }

    #[test]
    fn nested_calls_run_inline() {
        with_threads(4, || {
            // With the host clamp, a 1-CPU machine legitimately runs the
            // outer loop inline on the calling thread.
            let spawns = workers_for(4) > 1;
            let out = run_indexed(4, |i| {
                assert_eq!(in_worker(), spawns);
                let inner = run_indexed(3, move |j| i * 10 + j);
                inner.iter().sum::<usize>()
            });
            assert_eq!(out, vec![3, 33, 63, 93]);
        });
    }

    #[test]
    fn workers_inherit_the_spawning_runtime() {
        let rt = Runtime::new(RuntimeConfig {
            threads: 4,
            ..RuntimeConfig::default()
        });
        let ids = rt
            .clone()
            .enter(|| run_indexed(8, |_| runtime::current().id()));
        assert!(ids.iter().all(|&id| id == rt.id()));
    }

    /// The satellite regression for the old `set_max_threads` test
    /// race: two runtimes with different thread budgets coexist on
    /// concurrent threads, neither sees the other's budget, and the
    /// parallel results are bitwise-deterministic either way.
    #[test]
    fn two_runtimes_with_different_budgets_coexist() {
        let work = |seed: usize| run_indexed(23, move |i| ((seed * 31 + i) as f32).sin().to_bits());
        let expected = with_threads(1, || (work(1), work(2)));
        let a = Runtime::new(RuntimeConfig {
            threads: 1,
            ..RuntimeConfig::default()
        });
        let b = Runtime::new(RuntimeConfig {
            threads: 4,
            ..RuntimeConfig::default()
        });
        std::thread::scope(|s| {
            let ja = s.spawn(|| {
                a.enter(|| {
                    assert_eq!(requested_max_threads(), 1);
                    work(1)
                })
            });
            let jb = s.spawn(|| {
                b.enter(|| {
                    assert_eq!(requested_max_threads(), 4);
                    work(2)
                })
            });
            let ra = ja.join().expect("runtime A thread");
            let rb = jb.join().expect("runtime B thread");
            assert_eq!(ra, expected.0, "serial runtime diverged");
            assert_eq!(rb, expected.1, "parallel runtime diverged");
        });
    }
}
