//! Loss functions: softmax cross-entropy, binary cross-entropy with
//! logits, and mean squared error.

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

/// Numerically stable row-wise softmax of a `[N, C]` tensor.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2, "softmax_rows needs rank 2");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[n, c]);
    for r in 0..n {
        let row = &logits.data()[r * c..(r + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (o, &x) in out.data_mut()[r * c..(r + 1) * c].iter_mut().zip(row) {
            let e = (x - m).exp();
            *o = e;
            denom += e;
        }
        for o in &mut out.data_mut()[r * c..(r + 1) * c] {
            *o /= denom;
        }
    }
    out
}

impl Graph {
    /// Mean softmax cross-entropy of `[N, C]` logits against integer
    /// targets.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != N` or any target is out of range.
    pub fn softmax_cross_entropy_rows(&mut self, logits: VarId, targets: &[usize]) -> VarId {
        let lv = self.value(logits);
        assert_eq!(lv.shape().len(), 2, "logits must be [N, C]");
        let (n, c) = (lv.shape()[0], lv.shape()[1]);
        assert_eq!(targets.len(), n, "one target per row required");
        assert!(targets.iter().all(|&t| t < c), "target class out of range");
        let probs = softmax_rows(lv);
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            loss -= probs.at2(r, t).max(1e-12).ln();
        }
        loss /= n as f32;
        let targets = targets.to_vec();
        self.record(
            "softmax_cross_entropy_rows",
            &[logits],
            &[("classes", c)],
            Tensor::scalar(loss),
            Some(Box::new(move |g, _vals, grads| {
                let gv = g.data()[0] / n as f32;
                let gl = &mut grads[logits.0];
                for r in 0..n {
                    for cc in 0..c {
                        let indicator = if cc == targets[r] { 1.0 } else { 0.0 };
                        gl.data_mut()[r * c + cc] += gv * (probs.at2(r, cc) - indicator);
                    }
                }
            })),
        )
    }

    /// Mean binary cross-entropy with logits against a constant target
    /// tensor of the same shape (elements in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn bce_with_logits(&mut self, x: VarId, target: &Tensor) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape(), target.shape(), "bce target shape mismatch");
        let n = xv.len() as f32;
        let mut loss = 0.0f32;
        for (&z, &t) in xv.data().iter().zip(target.data()) {
            // stable: max(z,0) - z*t + ln(1 + e^{-|z|})
            loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        }
        loss /= n;
        let target = target.clone();
        self.record(
            "bce_with_logits",
            &[x],
            &[],
            Tensor::scalar(loss),
            Some(Box::new(move |g, vals, grads| {
                let gv = g.data()[0] / n;
                let gx = &mut grads[x.0];
                for ((o, &z), &t) in gx
                    .data_mut()
                    .iter_mut()
                    .zip(vals[x.0].data())
                    .zip(target.data())
                {
                    let s = 1.0 / (1.0 + (-z).exp());
                    *o += gv * (s - t);
                }
            })),
        )
    }

    /// Mean squared error against a constant target tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse(&mut self, x: VarId, target: &Tensor) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape(), target.shape(), "mse target shape mismatch");
        let n = xv.len() as f32;
        let mut loss = 0.0f32;
        for (&a, &t) in xv.data().iter().zip(target.data()) {
            let d = a - t;
            loss += d * d;
        }
        loss /= n;
        let target = target.clone();
        self.record(
            "mse",
            &[x],
            &[],
            Tensor::scalar(loss),
            Some(Box::new(move |g, vals, grads| {
                let gv = g.data()[0] * 2.0 / n;
                let gx = &mut grads[x.0];
                for ((o, &a), &t) in gx
                    .data_mut()
                    .iter_mut()
                    .zip(vals[x.0].data())
                    .zip(target.data())
                {
                    *o += gv * (a - t);
                }
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{assert_grads_close, numeric_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_rows_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(21);
        let l = Tensor::randn(&mut rng, &[5, 7], 3.0);
        let p = softmax_rows(&l);
        for r in 0..5 {
            let s: f32 = (0..7).map(|c| p.at2(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!((0..7).all(|c| p.at2(r, c) >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let l = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let l2 = l.map(|x| x + 1000.0);
        let p1 = softmax_rows(&l);
        let p2 = softmax_rows(&l2);
        for (a, b) in p1.data().iter().zip(p2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn ce_perfect_prediction_is_near_zero() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::from_vec(vec![100.0, 0.0, 0.0], &[1, 3]));
        let loss = g.softmax_cross_entropy_rows(logits, &[0]);
        assert!(g.value(loss).data()[0] < 1e-4);
    }

    #[test]
    fn ce_uniform_prediction_is_log_c() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::zeros(&[2, 4]));
        let loss = g.softmax_cross_entropy_rows(logits, &[1, 3]);
        assert!((g.value(loss).data()[0] - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_grads_match_numeric() {
        let mut rng = StdRng::seed_from_u64(13);
        let l0 = Tensor::randn(&mut rng, &[3, 5], 1.0);
        let targets = [4usize, 0, 2];
        let run = |l: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(l.clone());
            let loss = g.softmax_cross_entropy_rows(x, &targets);
            (g, x, loss)
        };
        let (g, x, loss) = run(&l0);
        let grads = g.backward(loss);
        let num = numeric_grad(
            |t| {
                let (g, _, l) = run(t);
                g.value(l).data()[0]
            },
            &l0,
            1e-3,
        );
        assert_grads_close(grads.get(x), &num, 0.02);
    }

    #[test]
    fn bce_grads_match_numeric() {
        let mut rng = StdRng::seed_from_u64(14);
        let x0 = Tensor::randn(&mut rng, &[6], 2.0);
        let t = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0, 0.5, 1.0], &[6]);
        let run = |x: &Tensor| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let loss = g.bce_with_logits(xv, &t);
            (g, xv, loss)
        };
        let (g, x, loss) = run(&x0);
        let grads = g.backward(loss);
        let num = numeric_grad(
            |t2| {
                let (g, _, l) = run(t2);
                g.value(l).data()[0]
            },
            &x0,
            1e-3,
        );
        assert_grads_close(grads.get(x), &num, 0.02);
    }

    #[test]
    fn bce_extreme_logits_stay_finite() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![500.0, -500.0], &[2]));
        let t = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let loss = g.bce_with_logits(x, &t);
        assert!(g.value(loss).data()[0].is_finite());
        assert!(g.value(loss).data()[0] < 1e-4);
    }

    #[test]
    fn mse_value_and_grad() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 3.0], &[2]));
        let t = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        let loss = g.mse(x, &t);
        assert!((g.value(loss).data()[0] - 2.5).abs() < 1e-6);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).data(), &[1.0, 2.0]);
    }
}
