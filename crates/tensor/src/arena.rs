//! Scratch arena: a global pool of reusable `Vec<f32>` buffers.
//!
//! The attack loop builds and drops one tape per step; without reuse,
//! every im2col column block, activation tensor, and gradient buffer is
//! reallocated ~each step. The arena keeps dropped buffers around and
//! hands their capacity back out.
//!
//! Ownership rules (see DESIGN.md "Threading & memory model"):
//! - [`take`]/[`take_filled`] transfer full ownership of a buffer to the
//!   caller; the arena retains no alias.
//! - Every buffer handed out is **freshly overwritten to the requested
//!   fill value over its whole length** before it is returned, so stale
//!   values from a previous tape can never leak into a new forward.
//! - [`recycle`] takes ownership back. Callers must not recycle a
//!   buffer that is still referenced anywhere (the type system enforces
//!   this — `recycle` consumes the `Vec`).
//! - [`ScratchBuf`] is the RAII convenience: it recycles on drop.
//!
//! The pool is a `Mutex`-guarded free list, safe to use from the worker
//! pool in [`crate::parallel`]. Tiny buffers are not pooled (the
//! allocator is already fast for those), and the pool is capped both in
//! buffer count and total capacity so it cannot grow without bound.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Buffers smaller than this are allocated/dropped normally.
const MIN_LEN: usize = 1024;
/// Maximum number of pooled buffers.
const MAX_POOLED: usize = 96;
/// Maximum total pooled capacity, in `f32` elements (~256 MiB).
const MAX_POOLED_ELEMS: usize = 64 << 20;

static POOL: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());
static POOLED_ELEMS: AtomicUsize = AtomicUsize::new(0);
static HITS: AtomicUsize = AtomicUsize::new(0);
static MISSES: AtomicUsize = AtomicUsize::new(0);

/// Takes a buffer of exactly `len` zeros from the arena (reusing pooled
/// capacity when possible, allocating otherwise).
pub fn take(len: usize) -> Vec<f32> {
    take_filled(len, 0.0)
}

/// Takes a buffer of exactly `len` elements, every one set to `value`.
///
/// The whole buffer is overwritten regardless of where its capacity
/// came from, which is what guarantees no stale data survives reuse.
pub fn take_filled(len: usize, value: f32) -> Vec<f32> {
    if len >= MIN_LEN {
        let reused = {
            let mut pool = POOL.lock().expect("arena pool poisoned");
            // Best effort: first buffer with enough capacity. The pool
            // is small (<= MAX_POOLED) so a linear scan is fine.
            pool.iter()
                .position(|b| b.capacity() >= len)
                .map(|i| pool.swap_remove(i))
        };
        if let Some(mut buf) = reused {
            POOLED_ELEMS.fetch_sub(buf.capacity(), Ordering::Relaxed);
            HITS.fetch_add(1, Ordering::Relaxed);
            buf.clear();
            buf.resize(len, value);
            return buf;
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
    }
    vec![value; len]
}

/// Returns a buffer's capacity to the arena for reuse.
///
/// Small buffers and overflow beyond the pool caps are simply dropped.
pub fn recycle(buf: Vec<f32>) {
    if buf.capacity() < MIN_LEN {
        return;
    }
    let mut pool = POOL.lock().expect("arena pool poisoned");
    if pool.len() >= MAX_POOLED
        || POOLED_ELEMS.load(Ordering::Relaxed) + buf.capacity() > MAX_POOLED_ELEMS
    {
        return;
    }
    POOLED_ELEMS.fetch_add(buf.capacity(), Ordering::Relaxed);
    pool.push(buf);
}

/// (reuse hits, allocation misses, buffers currently pooled).
pub fn stats() -> (usize, usize, usize) {
    let pooled = POOL.lock().expect("arena pool poisoned").len();
    (
        HITS.load(Ordering::Relaxed),
        MISSES.load(Ordering::Relaxed),
        pooled,
    )
}

/// Drops all pooled buffers and zeroes the hit/miss counters. Intended
/// for tests and benchmark setup.
pub fn reset() {
    let mut pool = POOL.lock().expect("arena pool poisoned");
    pool.clear();
    POOLED_ELEMS.store(0, Ordering::Relaxed);
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// RAII scratch buffer: behaves as a `[f32]` slice and recycles its
/// storage back into the arena on drop.
pub struct ScratchBuf {
    buf: Option<Vec<f32>>,
}

impl ScratchBuf {
    /// Takes a zeroed scratch buffer of `len` elements from the arena.
    pub fn zeroed(len: usize) -> Self {
        Self {
            buf: Some(take(len)),
        }
    }

    /// Consumes the scratch buffer, handing out the underlying `Vec`
    /// (it will no longer be auto-recycled).
    pub fn into_vec(mut self) -> Vec<f32> {
        self.buf.take().expect("scratch buffer already taken")
    }
}

impl Deref for ScratchBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.buf.as_deref().expect("scratch buffer already taken")
    }
}

impl DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.buf
            .as_deref_mut()
            .expect("scratch buffer already taken")
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            recycle(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    // NOTE: the pool is a process-wide global and `cargo test` runs
    // threads concurrently, so these tests only assert properties that
    // hold regardless of interleaving (no exact hit/pool counts — the
    // determinism proptest at the workspace root covers staleness).
    use super::*;

    #[test]
    fn reused_buffers_come_back_zeroed() {
        let mut a = take(4096);
        for v in a.iter_mut() {
            *v = f32::NAN;
        }
        recycle(a);
        for _ in 0..4 {
            let b = take(2048);
            assert_eq!(b.len(), 2048);
            assert!(b.iter().all(|&v| v == 0.0));
            recycle(b);
        }
    }

    #[test]
    fn take_filled_overwrites_whole_length() {
        recycle(vec![9.0; 4096]);
        let v = take_filled(4096, 0.5);
        assert!(v.iter().all(|&x| x == 0.5));
        recycle(v);
    }

    #[test]
    fn small_buffer_recycle_is_a_no_op() {
        // Must not panic or pool; nothing observable to assert beyond
        // the call being accepted.
        recycle(vec![1.0; 8]);
        let small = take(8);
        assert_eq!(small.len(), 8);
        assert!(small.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scratch_buf_derefs_and_releases() {
        let mut s = ScratchBuf::zeroed(4096);
        assert!(s.iter().all(|&v| v == 0.0));
        s[7] = 3.0;
        let v = s.into_vec();
        assert_eq!(v[7], 3.0);
        recycle(v);
    }
}
