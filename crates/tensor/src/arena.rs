//! Scratch arena: a per-runtime pool of reusable `Vec<f32>` buffers.
//!
//! The attack loop builds and drops one tape per step; without reuse,
//! every im2col column block, activation tensor, and gradient buffer is
//! reallocated ~each step. The arena keeps dropped buffers around and
//! hands their capacity back out.
//!
//! Ownership rules (see DESIGN.md "Threading & memory model"):
//! - [`take`]/[`take_filled`] transfer full ownership of a buffer to the
//!   caller; the arena retains no alias.
//! - Every buffer handed out is **freshly overwritten to the requested
//!   fill value over its whole length** before it is returned, so stale
//!   values from a previous tape can never leak into a new forward.
//! - [`recycle`] takes ownership back. Callers must not recycle a
//!   buffer that is still referenced anywhere (the type system enforces
//!   this — `recycle` consumes the `Vec`).
//! - [`ScratchBuf`] is the RAII convenience: it recycles on drop.
//!
//! The pool lives on the [`crate::runtime::Runtime`] that is current at
//! the call site (see the runtime module for the ownership model); the
//! free functions here are the default-runtime shim. Each pool is a
//! `Mutex`-guarded free list, safe to use from the worker pool in
//! [`crate::parallel`]. Tiny buffers are not pooled (the allocator is
//! already fast for those), and each pool is capped both in buffer
//! count and total capacity so it cannot grow without bound.
//!
//! Poison containment: a thread that panics while touching one
//! runtime's pool poisons only that runtime's `Mutex`. The next
//! accessor clears the poison and discards the pooled buffers (counted
//! by [`crate::runtime::Runtime::arena_poison_discards`]) — correctness
//! is unaffected because every `take` overwrites its whole buffer, and
//! other runtimes' pools are untouched. A quarantined runtime's pool
//! stops pooling entirely: `take` allocates fresh, `recycle` drops.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::runtime;

/// Buffers smaller than this are allocated/dropped normally.
const MIN_LEN: usize = 1024;
/// Maximum number of pooled buffers.
const MAX_POOLED: usize = 96;
/// Maximum total pooled capacity, in `f32` elements (~256 MiB).
const MAX_POOLED_ELEMS: usize = 64 << 20;

/// One runtime's pool state: free list + counters.
pub(crate) struct ArenaState {
    pool: Mutex<Vec<Vec<f32>>>,
    pooled_elems: AtomicUsize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    poison_discards: AtomicUsize,
    quarantined: AtomicBool,
    /// `f32` elements currently loaned out (taken, not yet recycled).
    /// Only arena-sized buffers (`len >= MIN_LEN`) are counted.
    loaned_elems: AtomicUsize,
    /// Highest `loaned_elems` ever observed — the arena's live-memory
    /// high-water mark, used by the bounded-memory streaming gate.
    high_water_elems: AtomicUsize,
}

impl ArenaState {
    pub(crate) fn new() -> Self {
        ArenaState {
            pool: Mutex::new(Vec::new()),
            pooled_elems: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            poison_discards: AtomicUsize::new(0),
            quarantined: AtomicBool::new(false),
            loaned_elems: AtomicUsize::new(0),
            high_water_elems: AtomicUsize::new(0),
        }
    }

    pub(crate) fn set_quarantined(&self) {
        self.quarantined.store(true, Ordering::SeqCst);
    }

    pub(crate) fn poison_discards(&self) -> usize {
        self.poison_discards.load(Ordering::Relaxed)
    }

    /// Locks the free list, recovering from poison by discarding the
    /// pooled buffers of **this runtime only** (a panicking holder may
    /// have left the list half-updated; dropping it is always sound
    /// because buffers are fully overwritten on take anyway, and the
    /// counters are resynced here).
    fn pool_guard(&self) -> MutexGuard<'_, Vec<Vec<f32>>> {
        match self.pool.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.pool.clear_poison();
                let mut g = poisoned.into_inner();
                g.clear();
                self.pooled_elems.store(0, Ordering::Relaxed);
                self.poison_discards.fetch_add(1, Ordering::Relaxed);
                g
            }
        }
    }

    /// Records `cap` more loaned-out elements and pushes the high-water
    /// mark. Called on every take of an arena-sized buffer.
    fn note_loan(&self, cap: usize) {
        let now = self.loaned_elems.fetch_add(cap, Ordering::Relaxed) + cap;
        self.high_water_elems.fetch_max(now, Ordering::Relaxed);
    }

    /// Records `cap` elements returned. Saturating: a caller may
    /// recycle a buffer the arena never handed out (fresh `Vec`s are
    /// accepted too), so the loan counter must not underflow.
    fn note_return(&self, cap: usize) {
        let _ = self
            .loaned_elems
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(cap))
            });
    }

    fn take_filled(&self, len: usize, value: f32) -> Vec<f32> {
        if len >= MIN_LEN && !self.quarantined.load(Ordering::SeqCst) {
            let reused = {
                let mut pool = self.pool_guard();
                // Best fit: the smallest buffer with enough capacity.
                // First-fit would let a small request walk off with a
                // huge buffer, inflating live capacity (and the
                // high-water mark) far beyond the working set. The pool
                // is small (<= MAX_POOLED) so a linear scan is fine.
                pool.iter()
                    .enumerate()
                    .filter(|(_, b)| b.capacity() >= len)
                    .min_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i)
                    .map(|i| pool.swap_remove(i))
            };
            if let Some(mut buf) = reused {
                self.pooled_elems
                    .fetch_sub(buf.capacity(), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, value);
                self.note_loan(buf.capacity());
                return buf;
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let buf = vec![value; len];
        if len >= MIN_LEN {
            self.note_loan(buf.capacity());
        }
        buf
    }

    fn recycle(&self, buf: Vec<f32>) {
        if buf.capacity() >= MIN_LEN {
            self.note_return(buf.capacity());
        }
        if buf.capacity() < MIN_LEN || self.quarantined.load(Ordering::SeqCst) {
            return;
        }
        let mut pool = self.pool_guard();
        if pool.len() >= MAX_POOLED
            || self.pooled_elems.load(Ordering::Relaxed) + buf.capacity() > MAX_POOLED_ELEMS
        {
            return;
        }
        self.pooled_elems
            .fetch_add(buf.capacity(), Ordering::Relaxed);
        pool.push(buf);
    }

    fn stats(&self) -> (usize, usize, usize) {
        let pooled = self.pool_guard().len();
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            pooled,
        )
    }

    fn reset(&self) {
        let mut pool = self.pool_guard();
        pool.clear();
        self.pooled_elems.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.high_water_elems
            .store(self.loaned_elems.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub(crate) fn high_water(&self) -> usize {
        self.high_water_elems.load(Ordering::Relaxed)
    }

    /// Restarts the high-water mark from the current loan level (the
    /// mark can never sit below what is still checked out).
    pub(crate) fn reset_high_water(&self) {
        self.high_water_elems
            .store(self.loaned_elems.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Test hook: panic while holding the pool lock, poisoning it the
    /// way a worker dying mid-`recycle` would.
    #[cfg(test)]
    fn poison_for_test(&self) {
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.pool.lock().expect("not yet poisoned");
            panic!("scripted poison");
        }));
        assert!(res.is_err());
    }
}

/// Takes a buffer of exactly `len` zeros from the current runtime's
/// arena (reusing pooled capacity when possible, allocating otherwise).
pub fn take(len: usize) -> Vec<f32> {
    take_filled(len, 0.0)
}

/// Takes a buffer of exactly `len` elements, every one set to `value`.
///
/// The whole buffer is overwritten regardless of where its capacity
/// came from, which is what guarantees no stale data survives reuse.
pub fn take_filled(len: usize, value: f32) -> Vec<f32> {
    runtime::current().inner_arena(|a| a.take_filled(len, value))
}

/// Returns a buffer's capacity to the current runtime's arena for
/// reuse. Small buffers and overflow beyond the pool caps are dropped.
pub fn recycle(buf: Vec<f32>) {
    runtime::current().inner_arena(|a| a.recycle(buf));
}

/// (reuse hits, allocation misses, buffers currently pooled) for the
/// current runtime's arena.
pub fn stats() -> (usize, usize, usize) {
    runtime::current().inner_arena(|a| a.stats())
}

/// Drops the current runtime's pooled buffers and zeroes its hit/miss
/// counters. Intended for tests and benchmark setup.
pub fn reset() {
    runtime::current().inner_arena(|a| a.reset());
}

/// The current runtime's arena high-water mark: the maximum number of
/// `f32` elements simultaneously checked out of the arena since the
/// runtime was created (or [`reset_high_water`]). Only arena-sized
/// buffers (`len >= MIN_LEN`) count; this is the live-scratch-memory
/// figure the streaming evaluation's bounded-memory gate asserts on.
pub fn high_water() -> usize {
    runtime::current().inner_arena(|a| a.high_water())
}

/// Restarts the current runtime's arena high-water mark from its
/// current loan level, so a measurement window can begin mid-process.
pub fn reset_high_water() {
    runtime::current().inner_arena(|a| a.reset_high_water());
}

/// RAII scratch buffer: behaves as a `[f32]` slice and recycles its
/// storage back into the arena on drop.
pub struct ScratchBuf {
    buf: Option<Vec<f32>>,
}

impl ScratchBuf {
    /// Takes a zeroed scratch buffer of `len` elements from the arena.
    pub fn zeroed(len: usize) -> Self {
        Self {
            buf: Some(take(len)),
        }
    }

    /// Consumes the scratch buffer, handing out the underlying `Vec`
    /// (it will no longer be auto-recycled).
    pub fn into_vec(mut self) -> Vec<f32> {
        self.buf.take().expect("scratch buffer already taken")
    }
}

impl Deref for ScratchBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.buf.as_deref().expect("scratch buffer already taken")
    }
}

impl DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.buf
            .as_deref_mut()
            .expect("scratch buffer already taken")
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            recycle(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    // Each test enters its own Runtime, so the pool under test is
    // private to the test — exact hit/pool counts are assertable and
    // concurrent `cargo test` threads cannot interfere.
    use super::*;
    use crate::runtime::{Runtime, RuntimeConfig};

    fn in_fresh_runtime(f: impl FnOnce(&Runtime)) {
        let rt = Runtime::new(RuntimeConfig::default());
        rt.clone().enter(|| f(&rt));
    }

    #[test]
    fn reused_buffers_come_back_zeroed() {
        in_fresh_runtime(|_| {
            let mut a = take(4096);
            for v in a.iter_mut() {
                *v = f32::NAN;
            }
            recycle(a);
            for _ in 0..4 {
                let b = take(2048);
                assert_eq!(b.len(), 2048);
                assert!(b.iter().all(|&v| v == 0.0));
                recycle(b);
            }
        });
    }

    #[test]
    fn take_filled_overwrites_whole_length() {
        in_fresh_runtime(|_| {
            recycle(vec![9.0; 4096]);
            let v = take_filled(4096, 0.5);
            assert!(v.iter().all(|&x| x == 0.5));
            recycle(v);
        });
    }

    #[test]
    fn small_buffer_recycle_is_a_no_op() {
        in_fresh_runtime(|_| {
            recycle(vec![1.0; 8]);
            let small = take(8);
            assert_eq!(small.len(), 8);
            assert!(small.iter().all(|&v| v == 0.0));
            let (hits, _, pooled) = stats();
            assert_eq!((hits, pooled), (0, 0), "small buffers are never pooled");
        });
    }

    #[test]
    fn scratch_buf_derefs_and_releases() {
        in_fresh_runtime(|_| {
            let mut s = ScratchBuf::zeroed(4096);
            assert!(s.iter().all(|&v| v == 0.0));
            s[7] = 3.0;
            let v = s.into_vec();
            assert_eq!(v[7], 3.0);
            recycle(v);
        });
    }

    #[test]
    fn pools_are_isolated_per_runtime() {
        let a = Runtime::new(RuntimeConfig::default());
        let b = Runtime::new(RuntimeConfig::default());
        a.enter(|| {
            recycle(vec![1.0; 4096]);
            assert_eq!(stats().2, 1);
        });
        b.enter(|| {
            assert_eq!(stats().2, 0, "runtime B must not see A's buffers");
            let v = take(4096);
            recycle(v);
            // B allocated fresh: a miss, no hit
            let (hits, misses, pooled) = stats();
            assert_eq!((hits, misses, pooled), (0, 1, 1));
        });
        a.enter(|| {
            assert_eq!(stats().2, 1, "A's pool is intact");
        });
    }

    /// Regression test for the old process-wide failure mode: a worker
    /// panicking while holding the pool lock used to poison the free
    /// list for every job in the process. Now the poison is recovered
    /// per-runtime (pool discarded, counters resynced) and a sibling
    /// runtime's pool is untouched.
    #[test]
    fn poisoned_pool_recovers_by_discarding_and_stays_contained() {
        let victim = Runtime::new(RuntimeConfig::default());
        let sibling = Runtime::new(RuntimeConfig::default());
        sibling.enter(|| recycle(vec![2.0; 4096]));

        victim.enter(|| {
            recycle(vec![1.0; 4096]);
            assert_eq!(stats().2, 1);
        });
        victim.clone().enter(|| {
            runtime::current().inner_arena(|a| a.poison_for_test());
            // next access recovers: pool discarded, allocation works
            let v = take(4096);
            assert_eq!(v.len(), 4096);
            assert!(v.iter().all(|&x| x == 0.0));
            recycle(v);
        });
        assert_eq!(victim.arena_poison_discards(), 1);

        sibling.clone().enter(|| {
            assert_eq!(stats().2, 1, "sibling runtime's pool is untouched");
        });
        assert_eq!(sibling.arena_poison_discards(), 0);
    }

    #[test]
    fn high_water_tracks_peak_loans_not_traffic() {
        in_fresh_runtime(|rt| {
            assert_eq!(high_water(), 0);
            let a = take(4096);
            let b = take(2048);
            assert_eq!(high_water(), 4096 + 2048);
            recycle(a);
            recycle(b);
            // sequential reuse of the same capacity must not raise the
            // mark: the pipeline's whole point is bounded *simultaneous*
            // footprint, however many buffers stream through
            for _ in 0..16 {
                let c = take(4096);
                recycle(c);
            }
            assert_eq!(high_water(), 4096 + 2048);
            assert_eq!(rt.arena_high_water(), 4096 + 2048);
            // small buffers are invisible, same as the pool itself
            let tiny = take(8);
            assert_eq!(high_water(), 4096 + 2048);
            recycle(tiny);
            reset_high_water();
            assert_eq!(high_water(), 0);
        });
    }

    #[test]
    fn high_water_never_underflows_on_foreign_buffers() {
        in_fresh_runtime(|_| {
            // recycling a Vec the arena never handed out must not wrap
            // the loan counter below zero
            recycle(vec![1.0; 4096]);
            recycle(vec![1.0; 4096]);
            let v = take(2048);
            assert_eq!(high_water(), v.capacity());
            recycle(v);
        });
    }

    #[test]
    fn quarantined_arena_never_pools() {
        let rt = Runtime::new(RuntimeConfig::default());
        rt.clone().enter(|| {
            recycle(vec![1.0; 4096]);
            assert_eq!(stats().2, 1);
        });
        rt.quarantine();
        rt.enter(|| {
            // takes bypass the pool entirely...
            let v = take(4096);
            recycle(v);
            let (hits, _, pooled) = stats();
            assert_eq!(hits, 0, "quarantined pool must not hand out buffers");
            // ...and recycles are dropped (the pre-quarantine buffer may
            // remain in the list but is unreachable through take)
            assert!(pooled <= 1);
        });
    }
}
