//! Instance-scoped execution runtime: worker-pool budget, scratch
//! arena, profiler registry, execution tier and cancellation state
//! bundled into one caller-owned handle.
//!
//! Before this module existed, [`crate::parallel`], [`crate::arena`],
//! [`crate::profile`] and [`crate::tier`] were process-global
//! singletons: one process could run exactly one training/eval job, and
//! any job's panic poisoned the arena free list (and its `set_tier` /
//! `set_max_threads` calls leaked into every other caller) for the
//! whole process. A [`Runtime`] owns all four pieces of state, so
//! independent jobs in one process are fully isolated: each gets its
//! own thread budget, its own buffer pool, its own profiler and its own
//! tier, and a panicked job's runtime can be quarantined and discarded
//! without touching anyone else's.
//!
//! # Ownership model
//!
//! * A [`Runtime`] is a cheap cloneable handle (`Arc` inside). The
//!   *caller* owns it and threads it into executors and trainers
//!   ([`crate::InferExec::with_runtime`], trainer `with_runtime`
//!   builders, the supervisor in `road_decals`).
//! * [`Runtime::enter`] installs the handle as the calling thread's
//!   *current* runtime for the duration of a closure (re-entrant, and
//!   restored on unwind). Kernels and the arena always consult the
//!   current runtime, so everything executed inside `enter` — including
//!   worker threads spawned by [`crate::parallel`], which inherit the
//!   spawner's runtime — charges its buffers, samples and thread budget
//!   to that runtime.
//! * Buffers taken from a runtime's arena are recycled back to the
//!   runtime that is current at drop time. Executors that cache buffers
//!   across calls ([`crate::InferExec`], [`crate::TrainStep`]) bind
//!   their runtime at construction and re-enter it on drop, so capacity
//!   never migrates to (or leaks poison into) an unrelated runtime.
//!
//! # The default-runtime shim
//!
//! The pre-existing free-function API (`parallel::set_max_threads`,
//! `arena::take`, `profile::set_enabled`, `tier::set_tier`, …) still
//! works: each function delegates to the current runtime, and when no
//! runtime has been entered, to a lazily-created process-wide *default
//! runtime*. Single-job binaries and tests therefore behave exactly as
//! before. This module is the **only** place in `rd-tensor` allowed to
//! hold `static` mutable state (the default-runtime cell and the
//! thread-local current pointer) — ci.sh greps for strays.
//!
//! # Quarantine rules
//!
//! A supervisor that catches a job's panic calls [`Runtime::quarantine`]
//! on the job's runtime before discarding it. A quarantined runtime's
//! arena stops pooling entirely: `take` always allocates fresh and
//! `recycle` drops, so a buffer that was in flight when the job died can
//! never be handed out again. Lock poisoning is also contained
//! per-runtime: if a panicking thread poisons one runtime's arena or
//! profiler `Mutex`, the next accessor clears the poison and discards
//! that runtime's pooled state ([`Runtime::arena_poison_discards`]
//! counts these) — other runtimes, holding their own locks, are
//! untouched.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::arena::ArenaState;
use crate::profile::ProfilerState;
use crate::tier::Tier;

/// Construction-time knobs for a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker-thread budget: 0 = auto (host parallelism), 1 = serial.
    pub threads: usize,
    /// Execution tier for compiled plans run under this runtime.
    pub tier: Tier,
    /// Whether the per-op profiler starts enabled.
    pub profiling: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            threads: 0,
            tier: Tier::Reference,
            profiling: false,
        }
    }
}

/// Why a cooperative cancellation check tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cancelled {
    /// [`Runtime::cancel`] was called.
    Requested,
    /// The runtime's deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cancelled::Requested => write!(f, "cancelled"),
            Cancelled::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl std::error::Error for Cancelled {}

/// Unwind payload used by [`check_cancelled_or_unwind`]. Supervisors
/// downcast panics to this type to tell a cooperative cancellation
/// unwind apart from a genuine crash.
#[derive(Debug, Clone, Copy)]
pub struct CancelUnwind(pub Cancelled);

pub(crate) struct RuntimeInner {
    id: u64,
    /// Requested worker budget (0 = auto); effective budget is clamped
    /// to the host in [`crate::parallel::max_threads`].
    threads: AtomicUsize,
    /// 0 = Reference, 1 = Fast.
    tier: AtomicU8,
    quarantined: AtomicBool,
    cancelled: AtomicBool,
    /// Cooperative deadline; `None` means no deadline.
    deadline: Mutex<Option<Instant>>,
    pub(crate) arena: ArenaState,
    pub(crate) profiler: ProfilerState,
}

/// A caller-owned execution context: worker-pool budget, scratch arena,
/// profiler, tier and cancellation state. Cloning is cheap and shares
/// the same underlying state.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

// ---------------------------------------------------------------------
// The default-runtime shim: the only process-global mutable state in
// rd-tensor. `DEFAULT` backs the pre-Runtime free-function API;
// `CURRENT` is the per-thread stack of entered runtimes.
static DEFAULT: OnceLock<Runtime> = OnceLock::new();
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Vec<Runtime>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's current runtime: the innermost [`Runtime::enter`]
/// scope, or the process-wide default runtime outside any scope.
pub fn current() -> Runtime {
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .unwrap_or_else(default_runtime)
}

/// The process-wide default runtime backing the free-function API for
/// callers that never construct their own [`Runtime`].
pub fn default_runtime() -> Runtime {
    DEFAULT
        .get_or_init(|| Runtime::new(RuntimeConfig::default()))
        .clone()
}

/// Checks the current runtime's cancellation state.
///
/// # Errors
///
/// Returns the [`Cancelled`] reason when the current runtime has been
/// cancelled or its deadline has passed.
pub fn check_cancelled() -> Result<(), Cancelled> {
    match current().cancel_state() {
        Some(c) => Err(c),
        None => Ok(()),
    }
}

/// Cooperative cancellation point for deep call stacks whose signatures
/// cannot return a `Result` (per-frame eval loops). Panics with a
/// [`CancelUnwind`] payload when the current runtime is cancelled; a
/// supervising `catch_unwind` downcasts it and reports a deadline, not
/// a crash. Outside a supervisor this aborts the run loudly, which is
/// the right behavior for an expired unsupervised deadline.
pub fn check_cancelled_or_unwind() {
    if let Some(c) = current().cancel_state() {
        std::panic::panic_any(CancelUnwind(c));
    }
}

/// RAII guard that pops the entered runtime on drop (including unwind).
struct EnterGuard;

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

impl Runtime {
    /// Creates a fresh, fully isolated runtime.
    pub fn new(cfg: RuntimeConfig) -> Self {
        Runtime {
            inner: Arc::new(RuntimeInner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                threads: AtomicUsize::new(cfg.threads),
                tier: AtomicU8::new(matches!(cfg.tier, Tier::Fast) as u8),
                quarantined: AtomicBool::new(false),
                cancelled: AtomicBool::new(false),
                deadline: Mutex::new(None),
                arena: ArenaState::new(),
                profiler: ProfilerState::new(cfg.profiling),
            }),
        }
    }

    /// A unique id for logs and reports.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Crate-internal access to this runtime's arena state.
    pub(crate) fn inner_arena<R>(&self, f: impl FnOnce(&ArenaState) -> R) -> R {
        f(&self.inner.arena)
    }

    /// Crate-internal access to this runtime's profiler state.
    pub(crate) fn inner_profiler<R>(&self, f: impl FnOnce(&ProfilerState) -> R) -> R {
        f(&self.inner.profiler)
    }

    /// True when `other` is a handle to the same underlying runtime.
    pub fn same_as(&self, other: &Runtime) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Runs `f` with this runtime installed as the calling thread's
    /// current runtime. Re-entrant; restored on unwind.
    pub fn enter<R>(&self, f: impl FnOnce() -> R) -> R {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        let _guard = EnterGuard;
        f()
    }

    // ------------------------------------------------------- thread pool

    /// Sets the requested worker-thread budget (0 = auto, 1 = serial).
    pub fn set_threads(&self, n: usize) {
        self.inner.threads.store(n, Ordering::SeqCst);
    }

    /// The requested worker-thread budget, before the host clamp.
    pub fn threads_requested(&self) -> usize {
        self.inner.threads.load(Ordering::SeqCst)
    }

    // -------------------------------------------------------------- tier

    /// Selects the execution tier for compiled runs under this runtime.
    pub fn set_tier(&self, t: Tier) {
        self.inner
            .tier
            .store(matches!(t, Tier::Fast) as u8, Ordering::SeqCst);
    }

    /// The runtime's execution tier.
    pub fn tier(&self) -> Tier {
        if self.inner.tier.load(Ordering::SeqCst) == 0 {
            Tier::Reference
        } else {
            Tier::Fast
        }
    }

    // -------------------------------------------------------- quarantine

    /// Marks the runtime as quarantined: its arena stops handing out or
    /// accepting pooled buffers, so state touched by a panicked job can
    /// never be reused. Quarantine is one-way.
    pub fn quarantine(&self) {
        self.inner.quarantined.store(true, Ordering::SeqCst);
        self.inner.arena.set_quarantined();
    }

    /// Whether [`Runtime::quarantine`] has been called.
    pub fn is_quarantined(&self) -> bool {
        self.inner.quarantined.load(Ordering::SeqCst)
    }

    /// How many times this runtime's arena recovered from a poisoned
    /// lock by discarding its pooled buffers (see module docs).
    pub fn arena_poison_discards(&self) -> usize {
        self.inner.arena.poison_discards()
    }

    /// This runtime's arena high-water mark: the most `f32` elements
    /// ever simultaneously checked out of its arena (see
    /// [`crate::arena::high_water`]).
    pub fn arena_high_water(&self) -> usize {
        self.inner.arena.high_water()
    }

    // ------------------------------------------------------ cancellation

    /// Requests cooperative cancellation: every subsequent
    /// [`check_cancelled`] under this runtime fails.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Arms (or clears) a cooperative deadline `d` from now.
    pub fn set_deadline(&self, d: Option<Duration>) {
        let mut g = self
            .inner
            .deadline
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *g = d.map(|d| Instant::now() + d);
    }

    /// Why this runtime's cancellation checks trip, if they do.
    pub fn cancel_state(&self) -> Option<Cancelled> {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return Some(Cancelled::Requested);
        }
        let g = self
            .inner
            .deadline
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match *g {
            Some(at) if Instant::now() >= at => Some(Cancelled::DeadlineExceeded),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("id", &self.id())
            .field("threads_requested", &self.threads_requested())
            .field("tier", &self.tier().label())
            .field("quarantined", &self.is_quarantined())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_scopes_nest_and_restore() {
        let a = Runtime::new(RuntimeConfig::default());
        let b = Runtime::new(RuntimeConfig {
            tier: Tier::Fast,
            ..RuntimeConfig::default()
        });
        a.enter(|| {
            assert!(current().same_as(&a));
            b.enter(|| {
                assert!(current().same_as(&b));
                assert_eq!(current().tier(), Tier::Fast);
            });
            assert!(current().same_as(&a));
        });
        assert!(current().same_as(&default_runtime()));
    }

    #[test]
    fn enter_restores_current_on_unwind() {
        let a = Runtime::new(RuntimeConfig::default());
        let res = std::panic::catch_unwind(|| {
            a.enter(|| panic!("boom"));
        });
        assert!(res.is_err());
        assert!(current().same_as(&default_runtime()));
    }

    #[test]
    fn cancellation_and_deadline_trip_checks() {
        let rt = Runtime::new(RuntimeConfig::default());
        rt.enter(|| {
            assert!(check_cancelled().is_ok());
        });
        rt.set_deadline(Some(Duration::from_secs(0)));
        rt.enter(|| {
            assert_eq!(check_cancelled(), Err(Cancelled::DeadlineExceeded));
        });
        rt.set_deadline(None);
        rt.cancel();
        rt.enter(|| {
            assert_eq!(check_cancelled(), Err(Cancelled::Requested));
        });
        // the default runtime is unaffected
        assert!(check_cancelled().is_ok());
    }

    #[test]
    fn cancel_unwind_carries_the_reason() {
        let rt = Runtime::new(RuntimeConfig::default());
        rt.cancel();
        let err = std::panic::catch_unwind(|| rt.enter(check_cancelled_or_unwind))
            .expect_err("must unwind");
        let cu = err
            .downcast_ref::<CancelUnwind>()
            .expect("payload is CancelUnwind");
        assert_eq!(cu.0, Cancelled::Requested);
    }

    #[test]
    fn runtimes_have_distinct_ids_and_identity() {
        let a = Runtime::new(RuntimeConfig::default());
        let b = Runtime::new(RuntimeConfig::default());
        assert_ne!(a.id(), b.id());
        assert!(!a.same_as(&b));
        assert!(a.same_as(&a.clone()));
    }
}
