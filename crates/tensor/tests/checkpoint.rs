//! Property-based tests on the v2 checkpoint codec: arbitrary
//! `ParamSet`s + Adam state round-trip exactly, and any corruption of
//! the bytes — truncation, bit-flips, a forged version — is rejected
//! with a structured error, never a panic and never a silent success.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rd_tensor::io::{
    decode_checkpoint, encode_checkpoint, Checkpoint, CheckpointError, CHECKPOINT_VERSION,
};
use rd_tensor::optim::{Adam, AdamState};
use rd_tensor::{ParamSet, Tensor};

/// Header layout: magic (4) + version u32 (4) + payload_len u64 (8) +
/// crc32 u32 (4).
const HEADER_LEN: usize = 20;
const VERSION_OFFSET: usize = 4;

/// Derives an arbitrary list of (shape, values) pairs from a seed — the
/// vendored proptest has no flat-map, so shape-dependent generation is
/// delegated to a seeded RNG.
fn arb_params(seed: u64, n_params: usize) -> Vec<(Vec<usize>, Vec<f32>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_params)
        .map(|_| {
            let rank = 1 + (rng.next_u64() % 3) as usize;
            let shape: Vec<usize> = (0..rank)
                .map(|_| 1 + (rng.next_u64() % 3) as usize)
                .collect();
            let n: usize = shape.iter().product();
            let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
            (shape, values)
        })
        .collect()
}

fn build_ps(params: &[(Vec<usize>, Vec<f32>)]) -> ParamSet {
    let mut ps = ParamSet::new();
    for (i, (shape, values)) in params.iter().enumerate() {
        ps.register(format!("p{i}"), Tensor::from_vec(values.clone(), shape));
    }
    ps
}

/// An Adam state whose moments match the ParamSet's shapes, with the
/// step counter and hyperparameters drawn arbitrarily.
fn build_adam_state(params: &[(Vec<usize>, Vec<f32>)], t: u64, lr: f32) -> AdamState {
    let moment = |scale: f32| {
        params
            .iter()
            .map(|(shape, values)| {
                Tensor::from_vec(values.iter().map(|v| v * scale).collect(), shape)
            })
            .collect::<Vec<_>>()
    };
    AdamState {
        lr,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
        t,
        m: moment(0.25),
        v: moment(0.0625),
    }
}

fn build_checkpoint(
    params: &[(Vec<usize>, Vec<f32>)],
    t: u64,
    lr: f32,
    rng_seed: u64,
) -> Checkpoint {
    let ps = build_ps(params);
    let mut opt = Adam::new(lr);
    opt.load_state(build_adam_state(params, t, lr))
        .expect("state matches");
    let rng = StdRng::seed_from_u64(rng_seed);
    let mut ck = Checkpoint::new();
    ck.put_params("params", &ps);
    ck.put_adam("adam", &opt);
    ck.put_rng("rng", &rng);
    ck.put_u64s("counters", vec![t, rng_seed]);
    ck
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_exact(
        params_seed in any::<u64>(),
        n_params in 1usize..6,
        t in 0u64..10_000,
        lr in 1e-6f32..1.0,
        rng_seed in any::<u64>(),
    ) {
        let params = arb_params(params_seed, n_params);
        let ck = build_checkpoint(&params, t, lr, rng_seed);
        let bytes = encode_checkpoint(&ck);
        let back = decode_checkpoint(&bytes).expect("clean bytes decode");

        // byte-level: decode → re-encode is the identity
        prop_assert_eq!(&encode_checkpoint(&back), &bytes);

        // value-level: params, Adam state and RNG stream all survive
        let mut ps2 = build_ps(&params);
        for (_, p) in ps2.iter_mut() {
            p.value_mut().data_mut().fill(0.0);
        }
        back.load_params_into("params", &mut ps2).expect("params load");
        let ps = build_ps(&params);
        for ((_, a), (_, b)) in ps.iter().zip(ps2.iter()) {
            prop_assert_eq!(a.value().data(), b.value().data());
        }

        let st = back.get_adam("adam").expect("adam state");
        prop_assert_eq!(st.t, t);
        prop_assert_eq!(st.lr, lr);
        let want = build_adam_state(&params, t, lr);
        for (a, b) in st.m.iter().zip(&want.m) {
            prop_assert_eq!(a.data(), b.data());
        }
        for (a, b) in st.v.iter().zip(&want.v) {
            prop_assert_eq!(a.data(), b.data());
        }

        let mut restored = back.get_rng("rng").expect("rng state");
        let mut original = StdRng::seed_from_u64(rng_seed);
        for _ in 0..4 {
            prop_assert_eq!(restored.next_u64(), original.next_u64());
        }
    }

    #[test]
    fn any_truncation_is_rejected(
        params_seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let params = arb_params(params_seed, 3);
        let ck = build_checkpoint(&params, 7, 1e-3, 3);
        let bytes = encode_checkpoint(&ck);
        // any strict prefix, from empty to one-byte-short
        let keep = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        let err = decode_checkpoint(&bytes[..keep])
            .expect_err("truncated checkpoint must not decode");
        prop_assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. }
                    | CheckpointError::BadMagic
                    | CheckpointError::CrcMismatch { .. }
            ),
            "unexpected error class: {}", err
        );
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        params_seed in any::<u64>(),
        at_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let params = arb_params(params_seed, 3);
        let ck = build_checkpoint(&params, 7, 1e-3, 3);
        let mut bytes = encode_checkpoint(&ck);
        let at = (at_seed % bytes.len() as u64) as usize;
        bytes[at] ^= 1u8 << bit;
        prop_assert!(
            decode_checkpoint(&bytes).is_err(),
            "flipped bit {} of byte {} went undetected", bit, at
        );
    }
}

#[test]
fn wrong_version_is_rejected_by_number() {
    let params = arb_params(0, 2);
    let mut bytes = encode_checkpoint(&build_checkpoint(&params, 1, 1e-3, 0));
    let forged = CHECKPOINT_VERSION + 1;
    bytes[VERSION_OFFSET..VERSION_OFFSET + 4].copy_from_slice(&forged.to_le_bytes());
    match decode_checkpoint(&bytes) {
        Err(CheckpointError::UnsupportedVersion(v)) => assert_eq!(v, forged),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn payload_crc_mismatch_reports_both_values() {
    let params = arb_params(1, 2);
    let mut bytes = encode_checkpoint(&build_checkpoint(&params, 9, 1e-2, 1));
    bytes[HEADER_LEN] ^= 0xFF; // corrupt the first payload byte
    match decode_checkpoint(&bytes) {
        Err(CheckpointError::CrcMismatch { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected CrcMismatch, got {other:?}"),
    }
}
