//! Equivalence of the compiled grad-free inference path with the tape.
//!
//! The contract enforced here is the PR's load-bearing invariant: for any
//! weights, any input batch and any worker-pool thread count,
//! [`TinyYolo::infer`] is **bitwise-identical** to the reverse-mode tape
//! `forward_frozen`, and a batched call equals the concatenation of the
//! per-sample calls.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rd_detector::{TinyYolo, YoloConfig};
use rd_tensor::{parallel, Graph, ParamSet, Tensor};

/// A smoke-scale detector with every parameter (weights, biases,
/// gammas/betas and the batch-norm running statistics) randomized, so
/// the fused conv+bn+leaky kernel is exercised on non-default stats.
fn random_model(seed: u64) -> (TinyYolo, ParamSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
    for (_, p) in ps.iter_mut() {
        let rvar = p.name().ends_with(".rvar");
        for v in p.value_mut().data_mut() {
            let r: f32 = rng.gen_range(-0.5..0.5);
            // running variances must stay positive
            *v = if rvar { 0.1 + (r + 0.5) } else { *v + r };
        }
    }
    (model, ps)
}

fn tape_forward(model: &TinyYolo, ps: &ParamSet, x0: &Tensor) -> (Tensor, Tensor) {
    let mut g = Graph::new();
    let x = g.input(x0.clone());
    let out = model.forward_frozen(&mut g, ps, x);
    (g.value(out.coarse).clone(), g.value(out.fine).clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn compiled_matches_tape_bitwise_at_1_and_4_threads(
        seed in 0u64..1_000_000,
        n in 1usize..5,
    ) {
        let (model, ps) = random_model(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
        let x = Tensor::randn(&mut rng, &[n, 3, 64, 64], 1.0);
        let (tc, tf) = tape_forward(&model, &ps, &x);
        for threads in [1usize, 4] {
            parallel::set_max_threads(threads);
            let (cc, cf) = model.infer(&ps, &x);
            parallel::set_max_threads(0);
            prop_assert_eq!(tc.shape(), cc.shape());
            prop_assert_eq!(tf.shape(), cf.shape());
            prop_assert_eq!(
                tc.data(), cc.data(),
                "coarse head diverged at {} thread(s)", threads
            );
            prop_assert_eq!(
                tf.data(), cf.data(),
                "fine head diverged at {} thread(s)", threads
            );
        }
    }

    #[test]
    fn batched_equals_per_sample(seed in 0u64..1_000_000, n in 2usize..5) {
        let (model, ps) = random_model(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let x = Tensor::randn(&mut rng, &[n, 3, 64, 64], 1.0);
        let (bc, bf) = model.infer(&ps, &x);
        let sample_len = 3 * 64 * 64;
        for i in 0..n {
            let xi = Tensor::from_vec(
                x.data()[i * sample_len..(i + 1) * sample_len].to_vec(),
                &[1, 3, 64, 64],
            );
            let (sc, sf) = model.infer(&ps, &xi);
            let clen = sc.data().len();
            let flen = sf.data().len();
            prop_assert_eq!(
                &bc.data()[i * clen..(i + 1) * clen], sc.data(),
                "coarse sample {} diverged from batched run", i
            );
            prop_assert_eq!(
                &bf.data()[i * flen..(i + 1) * flen], sf.data(),
                "fine sample {} diverged from batched run", i
            );
        }
    }
}
