//! Fast-tier equivalence on the full detector: the f32x8 tier's head
//! outputs must stay within the static `f32x8-fma` ulp certificate of
//! the reference tier, and the reference tier must stay bitwise equal
//! to the tape.
//!
//! The execution tier is a process-global switch, so this file holds a
//! single `#[test]` — it owns its test process and can toggle the tier
//! without racing other tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rd_analysis::{certify_logit_bounds, KernelModel};
use rd_detector::{postprocess, TinyYolo, YoloConfig};
use rd_tensor::{tier, Graph, ParamSet, Tensor, Tier};

/// Smoke-scale detector with every parameter randomized (running
/// variances kept positive), as in the infer equivalence suite.
fn random_model(seed: u64) -> (TinyYolo, ParamSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
    for (_, p) in ps.iter_mut() {
        let rvar = p.name().ends_with(".rvar");
        for v in p.value_mut().data_mut() {
            let r: f32 = rng.gen_range(-0.5..0.5);
            *v = if rvar { 0.1 + (r + 0.5) } else { *v + r };
        }
    }
    (model, ps)
}

#[test]
fn fast_tier_stays_within_the_static_certificate() {
    let (model, ps) = random_model(2024);
    let mut rng = StdRng::seed_from_u64(99);
    let n = 3;
    // Rendered frames are normalized RGB in [0, 1] — the same input box
    // the certificate is computed over.
    let data: Vec<f32> = (0..n * 3 * 64 * 64)
        .map(|_| rng.gen_range(0.0..1.0))
        .collect();
    let x = Tensor::from_vec(data, &[n, 3, 64, 64]);

    let meta = model.infer_plan(&ps).meta();
    let bounds = certify_logit_bounds(&meta, &ps, 0.0, 1.0, &KernelModel::f32x8_fma())
        .expect("detector inference plan must certify a f32x8-fma bound");
    assert_eq!(bounds.len(), 2, "one bound per head");
    for b in &bounds {
        assert!(b.max_abs_err.is_finite() && b.max_abs_err > 0.0);
    }

    // Reference tier (the default): bitwise equal to the tape.
    assert_eq!(tier::current(), Tier::Reference);
    let (rc, rf) = model.infer(&ps, &x);
    let mut g = Graph::new();
    let xv = g.input(x.clone());
    let out = model.forward_frozen(&mut g, &ps, xv);
    assert_eq!(g.value(out.coarse).data(), rc.data());
    assert_eq!(g.value(out.fine).data(), rf.data());

    // Fast tier: each head within its certified max-abs divergence.
    tier::set_tier(Tier::Fast);
    let (fc, ff) = model.infer(&ps, &x);
    tier::set_tier(Tier::Reference);

    for (root, (refh, fasth)) in [(&rc, &fc), (&rf, &ff)].into_iter().enumerate() {
        let cert = bounds[root].max_abs_err;
        let mut worst = 0.0f64;
        for (&a, &b) in refh.data().iter().zip(fasth.data()) {
            worst = worst.max((a as f64 - b as f64).abs());
        }
        assert!(
            worst <= cert,
            "head {root}: observed divergence {worst:.3e} exceeds certificate {cert:.3e}"
        );
    }

    // Decoded detections must not drift: same count, class, head and
    // near-identical boxes per image.
    let nc = model.config().num_classes;
    let dref = postprocess(&rc, &rf, nc, 0.25, 0.45);
    let dfast = postprocess(&fc, &ff, nc, 0.25, 0.45);
    assert_eq!(dref.len(), dfast.len());
    for (img_r, img_f) in dref.iter().zip(&dfast) {
        assert_eq!(img_r.len(), img_f.len(), "detection count drifted");
        for (a, b) in img_r.iter().zip(img_f) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.head, b.head);
            for (pa, pb) in [(a.cx, b.cx), (a.cy, b.cy), (a.w, b.w), (a.h, b.h)] {
                assert!((pa - pb).abs() <= 1e-4, "box drifted: {pa} vs {pb}");
            }
        }
    }
}
