//! Bitwise equivalence of the compiled training step with the tape.
//!
//! The contract enforced here is this PR's load-bearing invariant: a
//! full training run routed through the compiled
//! [`rd_tensor::TrainPlan`] produces **bitwise-identical** per-step
//! losses, parameter gradients and updated parameters (including the
//! batch-norm running statistics) to the reference tape path, at 1 and
//! at 4 worker-pool threads.

use std::cell::RefCell;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rd_detector::{DetectorTrainer, TinyYolo, TrainConfig, YoloConfig};
use rd_scene::dataset::{generate, DatasetConfig, Sample};
use rd_scene::CameraRig;
use rd_tensor::optim::StepOutcome;
use rd_tensor::{parallel, ParamSet};

fn smoke_data(n: usize) -> Vec<Sample> {
    generate(&DatasetConfig {
        rig: CameraRig::smoke(),
        n_images: n,
        seed: 77,
        augment: false,
    })
}

/// One complete training run; returns (per-step losses, first-step
/// parameter gradients as captured by the grad hook, final parameter
/// values).
type RunTrace = (Vec<f32>, Vec<Vec<f32>>, Vec<Vec<f32>>);

fn run(data: &[Sample], compiled: bool) -> RunTrace {
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 4,
        lr: 5e-4,
        compiled,
        ..TrainConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(5);
    let mut ps = ParamSet::new();
    let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
    let grads: RefCell<Vec<Vec<f32>>> = RefCell::new(Vec::new());
    let hook = |step: u64, ps: &mut ParamSet| {
        if step == 0 {
            *grads.borrow_mut() = ps.iter().map(|(_, p)| p.grad().data().to_vec()).collect();
        }
    };
    let mut losses = Vec::new();
    let mut trainer = DetectorTrainer::new(&model, &mut ps, data, cfg);
    while !trainer.is_done() {
        match trainer.step(Some(&hook)) {
            StepOutcome::Ran { loss } => losses.push(loss),
            StepOutcome::NonFinite { detail } => panic!("unexpected non-finite step: {detail}"),
        }
    }
    drop(trainer);
    let params = ps.iter().map(|(_, p)| p.value().data().to_vec()).collect();
    (losses, grads.into_inner(), params)
}

#[test]
fn compiled_step_matches_tape_bitwise_at_1_and_4_threads() {
    let data = smoke_data(12);
    // reference trace at the default thread count
    let reference = run(&data, false);
    assert!(!reference.0.is_empty() && !reference.1.is_empty());
    for threads in [1usize, 4] {
        parallel::set_max_threads(threads);
        let tape = run(&data, false);
        let compiled = run(&data, true);
        parallel::set_max_threads(0);
        assert_eq!(
            compiled.0, tape.0,
            "per-step losses diverged at {threads} thread(s)"
        );
        assert_eq!(
            compiled.1, tape.1,
            "first-step gradients diverged at {threads} thread(s)"
        );
        assert_eq!(
            compiled.2, tape.2,
            "updated parameters diverged at {threads} thread(s)"
        );
        assert_eq!(
            tape.2, reference.2,
            "tape run is thread-count dependent at {threads} thread(s)"
        );
        assert_eq!(
            compiled.2, reference.2,
            "compiled run is thread-count dependent at {threads} thread(s)"
        );
    }
}
