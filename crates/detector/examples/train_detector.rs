//! Trains the scaled YOLOv3-tiny on the procedural road dataset and
//! reports detection metrics — the reproduction's analogue of the paper's
//! fine-tuning step ("we fine-tune the pre-trained object detector on our
//! dataset with five labels").
//!
//! ```text
//! cargo run --release -p rd-detector --example train_detector -- \
//!     [--images 600] [--epochs 6] [--out out/detector.rdw] [--audit] \
//!     [--threads N] [--profile] [--no-compiled] \
//!     [--checkpoint-every N] [--checkpoint out/detector.rdc] [--resume] \
//!     [--deadline-secs N] [--max-retries N]
//! ```
//!
//! `--audit` statically validates the model's wiring before training and
//! scans a post-training forward tape for non-finite values. `--threads`
//! caps the tensor worker pool (0 = one worker per host core) and
//! `--profile` prints the per-op wall-clock report after training.
//! `--no-compiled` runs the reference autograd-tape training step
//! instead of the compiled `TrainPlan` (bitwise-identical, slower).
//!
//! `--deadline-secs N` bounds the whole run's wall clock (checked at
//! step boundaries) and `--max-retries N` re-runs it after a crash on a
//! fresh quarantine-isolated runtime; combine with `--checkpoint-every`
//! and `--resume` so retries pick up at the last checkpoint.
//!
//! `--checkpoint-every N` atomically writes the full training state
//! (weights, Adam moments, RNG position, epoch/batch cursors) every N
//! steps; `--resume` picks a killed run back up from that file and — the
//! training loop being deterministic — finishes bitwise-identically to an
//! uninterrupted run.

use std::error::Error;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rd_detector::{evaluate, DetectorTrainer, TinyYolo, TrainConfig, YoloConfig};
use rd_scene::dataset::{generate, DatasetConfig};
use rd_scene::CameraRig;
use rd_tensor::optim::StepOutcome;
use rd_tensor::{io, ParamSet};

fn arg<T>(name: &str, default: T) -> Result<T, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let args: Vec<String> = std::env::args().collect();
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(default);
    };
    let Some(v) = args.get(i + 1) else {
        return Err(format!("{name} expects a value"));
    };
    v.parse()
        .map_err(|e| format!("bad value '{v}' for {name}: {e}"))
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("train_detector: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn Error>> {
    road_decals::supervise_main(
        "train_detector",
        arg("--deadline-secs", 0)?,
        arg("--max-retries", 0)?,
        arg("--threads", 0)?,
        || run_body().map_err(|e| e.to_string()),
    )?;
    Ok(())
}

fn run_body() -> Result<(), Box<dyn Error>> {
    let n_images: usize = arg("--images", 600)?;
    let epochs: usize = arg("--epochs", 6)?;
    let out: String = arg("--out", "out/detector.rdw".to_owned())?;
    let ck_every: u64 = arg("--checkpoint-every", 0)?;
    let ck_path: String = arg("--checkpoint", "out/detector.rdc".to_owned())?;
    let resume = flag("--resume");
    let audit = flag("--audit");
    rd_tensor::parallel::set_max_threads(arg("--threads", 0)?);
    let profile = flag("--profile");
    if profile {
        rd_tensor::profile::set_enabled(true);
    }

    let rig = CameraRig::standard();
    println!("generating {n_images} training images...");
    let t0 = Instant::now();
    let train_set = generate(&DatasetConfig {
        rig,
        n_images,
        seed: 1234,
        augment: true,
    });
    let test_set = generate(&DatasetConfig::paper_test(1234));
    println!("  done in {:.1}s", t0.elapsed().as_secs_f32());

    let mut rng = StdRng::seed_from_u64(7);
    let mut ps = ParamSet::new();
    let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::standard());
    println!("model: {} parameters", ps.num_scalars());
    if audit {
        if let Err(issues) = model.validate(&ps, 16) {
            return Err(format!(
                "model wiring is inconsistent:\n{}",
                issues
                    .iter()
                    .map(|i| format!("  {i}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            )
            .into());
        }
        println!("audit: model wiring validated before training");
    }

    let cfg = TrainConfig {
        epochs,
        batch_size: 16,
        lr: 1e-3,
        seed: 7,
        clip: 10.0,
        log_every: 0,
        compiled: !flag("--no-compiled"),
    };
    let t0 = Instant::now();
    let mut trainer = DetectorTrainer::new(&model, &mut ps, &train_set, cfg);
    if resume && Path::new(&ck_path).exists() {
        let ck = io::load_checkpoint_file(&ck_path)
            .map_err(|e| format!("cannot resume from {ck_path}: {e}"))?;
        trainer
            .restore(&ck)
            .map_err(|e| format!("cannot resume from {ck_path}: {e}"))?;
        println!(
            "resumed from {ck_path} at step {} of {}",
            trainer.steps_done(),
            trainer.total_steps()
        );
    }
    if ck_every > 0 {
        if let Some(dir) = Path::new(&ck_path).parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create checkpoint dir: {e}"))?;
        }
    }
    while !trainer.is_done() {
        // cooperative deadline/cancel check at the step boundary
        rd_tensor::runtime::check_cancelled()
            .map_err(|c| format!("stopped at step {}: {c}", trainer.steps_done()))?;
        if let StepOutcome::NonFinite { detail } = trainer.step(None) {
            eprintln!(
                "skipping diverged batch at step {}: {detail}",
                trainer.steps_done()
            );
            trainer.skip_step();
        }
        if ck_every > 0 && trainer.steps_done().is_multiple_of(ck_every) {
            io::save_checkpoint_file(&trainer.checkpoint(), &ck_path)
                .map_err(|e| format!("cannot write checkpoint {ck_path}: {e}"))?;
        }
    }
    let report = trainer.finish();
    println!(
        "trained {epochs} epochs in {:.1}s; losses: {:?}",
        t0.elapsed().as_secs_f32(),
        report
            .epoch_losses
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    if audit {
        // run one eval forward pass and check every tape value is finite
        let mut g = rd_tensor::Graph::new();
        let x = g.input(test_set[0].image.to_tensor());
        let _ = model.forward(&mut g, &mut ps, x, false);
        match rd_analysis::audit_non_finite(&g) {
            Some(report) => eprintln!("audit: post-training tape is unhealthy\n{report}"),
            None => println!("audit: post-training forward tape is fully finite"),
        }
    }

    let m = evaluate(&model, &ps, &test_set, 0.3);
    println!(
        "test: recall {:.2}  class-accuracy {:.2}  mean-IoU {:.2}  dets/img {:.1}",
        m.recall, m.class_accuracy, m.mean_iou, m.dets_per_image
    );

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create output dir: {e}"))?;
    }
    io::save_params_file(&ps, &out).map_err(|e| format!("cannot save weights to {out}: {e}"))?;
    println!("weights saved to {out}");
    if profile {
        println!("\n{}", rd_tensor::profile::report_text());
    }
    Ok(())
}
