//! Trains the scaled YOLOv3-tiny on the procedural road dataset and
//! reports detection metrics — the reproduction's analogue of the paper's
//! fine-tuning step ("we fine-tune the pre-trained object detector on our
//! dataset with five labels").
//!
//! ```text
//! cargo run --release -p rd-detector --example train_detector -- \
//!     [--images 600] [--epochs 6] [--out out/detector.rdw] [--audit] \
//!     [--threads N] [--profile]
//! ```
//!
//! `--audit` statically validates the model's wiring before training and
//! scans a post-training forward tape for non-finite values. `--threads`
//! caps the tensor worker pool (0 = one worker per host core) and
//! `--profile` prints the per-op wall-clock report after training.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rd_detector::{evaluate, train, TinyYolo, TrainConfig, YoloConfig};
use rd_scene::dataset::{generate, DatasetConfig};
use rd_scene::CameraRig;
use rd_tensor::{io, ParamSet};

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let n_images: usize = arg("--images", 600);
    let epochs: usize = arg("--epochs", 6);
    let out: String = arg("--out", "out/detector.rdw".to_owned());
    let audit = flag("--audit");
    rd_tensor::parallel::set_max_threads(arg("--threads", 0));
    let profile = flag("--profile");
    if profile {
        rd_tensor::profile::set_enabled(true);
    }

    let rig = CameraRig::standard();
    println!("generating {n_images} training images...");
    let t0 = Instant::now();
    let train_set = generate(&DatasetConfig {
        rig,
        n_images,
        seed: 1234,
        augment: true,
    });
    let test_set = generate(&DatasetConfig::paper_test(1234));
    println!("  done in {:.1}s", t0.elapsed().as_secs_f32());

    let mut rng = StdRng::seed_from_u64(7);
    let mut ps = ParamSet::new();
    let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::standard());
    println!("model: {} parameters", ps.num_scalars());
    if audit {
        if let Err(issues) = model.validate(&ps, 16) {
            eprintln!("model wiring is inconsistent:");
            for i in &issues {
                eprintln!("  {i}");
            }
            std::process::exit(1);
        }
        println!("audit: model wiring validated before training");
    }

    let t0 = Instant::now();
    let report = train(
        &model,
        &mut ps,
        &train_set,
        &TrainConfig {
            epochs,
            batch_size: 16,
            lr: 1e-3,
            seed: 7,
            clip: 10.0,
            log_every: 0,
        },
    );
    println!(
        "trained {epochs} epochs in {:.1}s; losses: {:?}",
        t0.elapsed().as_secs_f32(),
        report
            .epoch_losses
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    if audit {
        // run one eval forward pass and check every tape value is finite
        let mut g = rd_tensor::Graph::new();
        let x = g.input(test_set[0].image.to_tensor());
        let _ = model.forward(&mut g, &mut ps, x, false);
        match rd_analysis::audit_non_finite(&g) {
            Some(report) => eprintln!("audit: post-training tape is unhealthy\n{report}"),
            None => println!("audit: post-training forward tape is fully finite"),
        }
    }

    let m = evaluate(&model, &mut ps, &test_set, 0.3);
    println!(
        "test: recall {:.2}  class-accuracy {:.2}  mean-IoU {:.2}  dets/img {:.1}",
        m.recall, m.class_accuracy, m.mean_iou, m.dets_per_image
    );

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    io::save_params_file(&ps, &out).expect("save weights");
    println!("weights saved to {out}");
    if profile {
        println!("\n{}", rd_tensor::profile::report_text());
    }
}
