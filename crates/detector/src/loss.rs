//! Fused YOLO training loss and the targeted attack loss, implemented as
//! custom graph ops with analytic gradients.

use rd_scene::GtBox;
use rd_tensor::{Graph, Tensor, VarId};

use crate::anchors::{best_anchor, head_specs, ANCHORS_PER_HEAD};

/// One positive assignment: a ground-truth box matched to a head cell and
/// anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assign {
    /// Batch index.
    pub n: usize,
    /// Anchor index within the head.
    pub anchor: usize,
    /// Grid row.
    pub cy: usize,
    /// Grid column.
    pub cx: usize,
    /// Target fractional x offset in the cell, in `(0,1)`.
    pub tx: f32,
    /// Target fractional y offset in the cell, in `(0,1)`.
    pub ty: f32,
    /// Target log-scale width relative to the anchor.
    pub tw: f32,
    /// Target log-scale height relative to the anchor.
    pub th: f32,
    /// Target class index.
    pub class: usize,
}

/// Assignments for one head.
#[derive(Debug, Clone, Default)]
pub struct HeadTargets {
    /// Positive assignments.
    pub assigned: Vec<Assign>,
    /// Cells `(n, cy, cx)` that contain a GT centre (excluded from the
    /// no-object penalty for every anchor).
    pub ignore_cells: Vec<(usize, usize, usize)>,
}

/// Builds per-head targets for a batch of ground-truth boxes.
///
/// Each box is assigned to the `(head, anchor)` whose shape matches best
/// (standard YOLOv3 assignment), at the cell containing its centre.
pub fn build_targets(boxes_per_image: &[Vec<GtBox>], input: usize) -> [HeadTargets; 2] {
    let specs = head_specs();
    let grids = [input / specs[0].stride, input / specs[1].stride];
    let mut out = [HeadTargets::default(), HeadTargets::default()];
    for (n, boxes) in boxes_per_image.iter().enumerate() {
        for b in boxes {
            let (head, anchor) = best_anchor(b.w, b.h);
            let s = grids[head];
            let gx = (b.cx * s as f32).clamp(0.0, s as f32 - 1e-3);
            let gy = (b.cy * s as f32).clamp(0.0, s as f32 - 1e-3);
            let cx = gx as usize;
            let cy = gy as usize;
            let (aw, ah) = specs[head].anchors[anchor];
            out[head].assigned.push(Assign {
                n,
                anchor,
                cy,
                cx,
                tx: (gx - cx as f32).clamp(1e-3, 1.0 - 1e-3),
                ty: (gy - cy as f32).clamp(1e-3, 1.0 - 1e-3),
                tw: (b.w / aw).max(1e-4).ln().clamp(-4.0, 4.0),
                th: (b.h / ah).max(1e-4).ln().clamp(-4.0, 4.0),
                class: b.class.index(),
            });
            // every head ignores cells that contain a GT centre
            for (h, hg) in out.iter_mut().enumerate() {
                let sg = grids[h];
                let icx = ((b.cx * sg as f32) as usize).min(sg - 1);
                let icy = ((b.cy * sg as f32) as usize).min(sg - 1);
                hg.ignore_cells.push((n, icy, icx));
            }
        }
    }
    out
}

/// Loss term weights (darknet-flavoured defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YoloLossWeights {
    /// Coordinate regression weight.
    pub coord: f32,
    /// Positive-objectness weight.
    pub obj: f32,
    /// Negative-objectness weight.
    pub noobj: f32,
    /// Classification weight.
    pub class: f32,
}

impl Default for YoloLossWeights {
    fn default() -> Self {
        YoloLossWeights {
            coord: 5.0,
            obj: 1.0,
            noobj: 3.0,
            class: 2.0,
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn bce_logit(z: f32, t: f32) -> f32 {
    z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln()
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - m).exp()).collect();
    let s: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / s).collect()
}

/// YOLO loss for one head: coordinate BCE/MSE + objectness BCE + class
/// cross-entropy, as a fused custom op with analytic gradients.
///
/// # Panics
///
/// Panics if `preds` is not `[N, A*(5+C), S, S]`.
pub fn yolo_head_loss(
    g: &mut Graph,
    preds: VarId,
    targets: &HeadTargets,
    num_classes: usize,
    weights: YoloLossWeights,
) -> VarId {
    let pv = g.value(preds);
    assert_eq!(pv.shape().len(), 4);
    let (n, ch, s, _) = (pv.shape()[0], pv.shape()[1], pv.shape()[2], pv.shape()[3]);
    let cpa = 5 + num_classes;
    assert_eq!(ch, ANCHORS_PER_HEAD * cpa, "bad head channel count");

    let idx = move |ni: usize, c: usize, cy: usize, cx: usize| ((ni * ch + c) * s + cy) * s + cx;

    // positive masks
    let mut positive = vec![false; n * ANCHORS_PER_HEAD * s * s];
    let pos_idx = move |ni: usize, a: usize, cy: usize, cx: usize| {
        ((ni * ANCHORS_PER_HEAD + a) * s + cy) * s + cx
    };
    for asg in &targets.assigned {
        positive[pos_idx(asg.n, asg.anchor, asg.cy, asg.cx)] = true;
    }
    let mut ignored = vec![false; n * s * s];
    for &(ni, cy, cx) in &targets.ignore_cells {
        if ni < n && cy < s && cx < s {
            ignored[(ni * s + cy) * s + cx] = true;
        }
    }

    let n_pos = targets.assigned.len().max(1) as f32;
    let mut n_neg = 0usize;
    let data = pv.data();

    // ---- forward ----
    let mut loss = 0.0f32;
    for asg in &targets.assigned {
        let base = asg.anchor * cpa;
        let ztx = data[idx(asg.n, base, asg.cy, asg.cx)];
        let zty = data[idx(asg.n, base + 1, asg.cy, asg.cx)];
        let ztw = data[idx(asg.n, base + 2, asg.cy, asg.cx)];
        let zth = data[idx(asg.n, base + 3, asg.cy, asg.cx)];
        let zo = data[idx(asg.n, base + 4, asg.cy, asg.cx)];
        loss += weights.coord
            * ((sigmoid(ztx) - asg.tx).powi(2)
                + (sigmoid(zty) - asg.ty).powi(2)
                + (ztw - asg.tw).powi(2)
                + (zth - asg.th).powi(2))
            / n_pos;
        loss += weights.obj * bce_logit(zo, 1.0) / n_pos;
        let logits: Vec<f32> = (0..num_classes)
            .map(|c| data[idx(asg.n, base + 5 + c, asg.cy, asg.cx)])
            .collect();
        let probs = softmax(&logits);
        loss += weights.class * (-probs[asg.class].max(1e-12).ln()) / n_pos;
    }
    // negatives
    let mut neg_loss = 0.0f32;
    for ni in 0..n {
        for a in 0..ANCHORS_PER_HEAD {
            for cy in 0..s {
                for cx in 0..s {
                    if positive[pos_idx(ni, a, cy, cx)] || ignored[(ni * s + cy) * s + cx] {
                        continue;
                    }
                    n_neg += 1;
                    let zo = data[idx(ni, a * cpa + 4, cy, cx)];
                    neg_loss += bce_logit(zo, 0.0);
                }
            }
        }
    }
    let n_neg_f = (n_neg.max(1)) as f32;
    loss += weights.noobj * neg_loss / n_neg_f;

    // ---- backward ----
    let targets = targets.clone();
    let pi = preds.index();
    g.custom_named(
        "yolo_head_loss",
        &[preds],
        &[("classes", num_classes), ("grid", s)],
        Tensor::scalar(loss),
        Some(Box::new(move |gout, vals, grads| {
            let gv = gout.data()[0];
            let data = vals[pi].data();
            let gp = &mut grads[pi];
            for asg in &targets.assigned {
                let base = asg.anchor * cpa;
                let i_tx = idx(asg.n, base, asg.cy, asg.cx);
                let i_ty = idx(asg.n, base + 1, asg.cy, asg.cx);
                let i_tw = idx(asg.n, base + 2, asg.cy, asg.cx);
                let i_th = idx(asg.n, base + 3, asg.cy, asg.cx);
                let i_o = idx(asg.n, base + 4, asg.cy, asg.cx);
                let stx = sigmoid(data[i_tx]);
                let sty = sigmoid(data[i_ty]);
                gp.data_mut()[i_tx] +=
                    gv * weights.coord * 2.0 * (stx - asg.tx) * stx * (1.0 - stx) / n_pos;
                gp.data_mut()[i_ty] +=
                    gv * weights.coord * 2.0 * (sty - asg.ty) * sty * (1.0 - sty) / n_pos;
                gp.data_mut()[i_tw] += gv * weights.coord * 2.0 * (data[i_tw] - asg.tw) / n_pos;
                gp.data_mut()[i_th] += gv * weights.coord * 2.0 * (data[i_th] - asg.th) / n_pos;
                gp.data_mut()[i_o] += gv * weights.obj * (sigmoid(data[i_o]) - 1.0) / n_pos;
                let logits: Vec<f32> = (0..num_classes)
                    .map(|c| data[idx(asg.n, base + 5 + c, asg.cy, asg.cx)])
                    .collect();
                let probs = softmax(&logits);
                for c in 0..num_classes {
                    let ind = if c == asg.class { 1.0 } else { 0.0 };
                    gp.data_mut()[idx(asg.n, base + 5 + c, asg.cy, asg.cx)] +=
                        gv * weights.class * (probs[c] - ind) / n_pos;
                }
            }
            for ni in 0..n {
                for a in 0..ANCHORS_PER_HEAD {
                    for cy in 0..s {
                        for cx in 0..s {
                            if positive[pos_idx(ni, a, cy, cx)] || ignored[(ni * s + cy) * s + cx] {
                                continue;
                            }
                            let i_o = idx(ni, a * cpa + 4, cy, cx);
                            gp.data_mut()[i_o] += gv * weights.noobj * sigmoid(data[i_o]) / n_neg_f;
                        }
                    }
                }
            }
        })),
    )
}

/// A head cell position under attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackCell {
    /// Batch index.
    pub n: usize,
    /// Anchor index.
    pub anchor: usize,
    /// Grid row.
    pub cy: usize,
    /// Grid column.
    pub cx: usize,
}

/// The paper's targeted attack loss (Eq. 2): mean softmax cross-entropy of
/// the class logits at the attacked cells toward `target_class`, plus a
/// conditional objectness term: at cells whose current class argmax *is*
/// the target, objectness is pushed toward 1 (the detector should assert
/// the wrong class); everywhere else it is pushed toward 0 (competing
/// correct-class detections are suppressed). The frame then counts toward
/// PWC exactly when this loss is low. Set `obj_weight = 0` for the pure
/// Eq. 2 form.
///
/// # Panics
///
/// Panics if `cells` is empty or indexes outside the tensor.
pub fn targeted_class_loss(
    g: &mut Graph,
    preds: VarId,
    cells: &[AttackCell],
    num_classes: usize,
    target_class: usize,
    obj_weight: f32,
) -> VarId {
    assert!(!cells.is_empty(), "need at least one attacked cell");
    assert!(target_class < num_classes);
    let pv = g.value(preds);
    let (n, ch, s, _) = (pv.shape()[0], pv.shape()[1], pv.shape()[2], pv.shape()[3]);
    let cpa = 5 + num_classes;
    assert_eq!(ch, ANCHORS_PER_HEAD * cpa);
    let idx = move |ni: usize, c: usize, cy: usize, cx: usize| ((ni * ch + c) * s + cy) * s + cx;
    for c in cells {
        assert!(c.n < n && c.anchor < ANCHORS_PER_HEAD && c.cy < s && c.cx < s);
    }
    let data = pv.data();
    let m = cells.len() as f32;
    let mut loss = 0.0f32;
    for c in cells {
        let base = c.anchor * cpa;
        let logits: Vec<f32> = (0..num_classes)
            .map(|k| data[idx(c.n, base + 5 + k, c.cy, c.cx)])
            .collect();
        let probs = softmax(&logits);
        loss -= probs[target_class].max(1e-12).ln();
        if obj_weight > 0.0 {
            let zo = data[idx(c.n, base + 4, c.cy, c.cx)];
            let argmax = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let obj_target = if argmax == target_class { 1.0 } else { 0.0 };
            loss += obj_weight * bce_logit(zo, obj_target);
        }
    }
    loss /= m;
    let cells = cells.to_vec();
    let pi = preds.index();
    g.custom_named(
        "targeted_class_loss",
        &[preds],
        &[("classes", num_classes), ("target", target_class)],
        Tensor::scalar(loss),
        Some(Box::new(move |gout, vals, grads| {
            let gv = gout.data()[0] / m;
            let data = vals[pi].data();
            let gp = &mut grads[pi];
            for c in &cells {
                let base = c.anchor * cpa;
                let logits: Vec<f32> = (0..num_classes)
                    .map(|k| data[idx(c.n, base + 5 + k, c.cy, c.cx)])
                    .collect();
                let probs = softmax(&logits);
                for k in 0..num_classes {
                    let ind = if k == target_class { 1.0 } else { 0.0 };
                    gp.data_mut()[idx(c.n, base + 5 + k, c.cy, c.cx)] += gv * (probs[k] - ind);
                }
                if obj_weight > 0.0 {
                    let io = idx(c.n, base + 4, c.cy, c.cx);
                    let argmax = probs
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    let obj_target = if argmax == target_class { 1.0 } else { 0.0 };
                    gp.data_mut()[io] += gv * obj_weight * (sigmoid(data[io]) - obj_target);
                }
            }
        })),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rd_scene::ObjectClass;
    use rd_tensor::check::{assert_grads_close, numeric_grad};

    fn sample_boxes() -> Vec<Vec<GtBox>> {
        vec![
            vec![GtBox {
                class: ObjectClass::Word,
                cx: 0.52,
                cy: 0.61,
                w: 0.4,
                h: 0.3,
            }],
            vec![GtBox {
                class: ObjectClass::Car,
                cx: 0.2,
                cy: 0.8,
                w: 0.12,
                h: 0.1,
            }],
        ]
    }

    #[test]
    fn build_targets_assigns_each_box_once() {
        let t = build_targets(&sample_boxes(), 96);
        let total: usize = t.iter().map(|h| h.assigned.len()).sum();
        assert_eq!(total, 2);
        // the large box must land on the coarse head, the small on the fine
        assert_eq!(t[0].assigned.len(), 1);
        assert_eq!(t[1].assigned.len(), 1);
        let a = &t[0].assigned[0];
        assert_eq!(a.n, 0);
        assert!(a.tx > 0.0 && a.tx < 1.0);
        assert_eq!(a.class, ObjectClass::Word.index());
    }

    #[test]
    fn loss_decreases_toward_targets() {
        // a prediction exactly matching the target has lower loss than a
        // random one
        let targets = build_targets(&sample_boxes(), 96);
        let ht = &targets[0];
        let asg = ht.assigned[0];
        let mut rng = StdRng::seed_from_u64(11);
        let random = Tensor::randn(&mut rng, &[2, 30, 3, 3], 1.0);
        let mut ideal = Tensor::zeros(&[2, 30, 3, 3]);
        // silence: strongly negative objectness everywhere
        for ni in 0..2 {
            for a in 0..3 {
                for cy in 0..3 {
                    for cx in 0..3 {
                        ideal.set4(ni, a * 10 + 4, cy, cx, -8.0);
                    }
                }
            }
        }
        let base = asg.anchor * 10;
        // logit(tx)
        let logit = |p: f32| (p / (1.0 - p)).ln();
        ideal.set4(asg.n, base, asg.cy, asg.cx, logit(asg.tx));
        ideal.set4(asg.n, base + 1, asg.cy, asg.cx, logit(asg.ty));
        ideal.set4(asg.n, base + 2, asg.cy, asg.cx, asg.tw);
        ideal.set4(asg.n, base + 3, asg.cy, asg.cx, asg.th);
        ideal.set4(asg.n, base + 4, asg.cy, asg.cx, 8.0);
        ideal.set4(asg.n, base + 5 + asg.class, asg.cy, asg.cx, 10.0);
        let eval = |t: &Tensor| {
            let mut g = Graph::new();
            let p = g.input(t.clone());
            let l = yolo_head_loss(&mut g, p, ht, 5, YoloLossWeights::default());
            g.value(l).data()[0]
        };
        assert!(
            eval(&ideal) < eval(&random) * 0.2,
            "{} vs {}",
            eval(&ideal),
            eval(&random)
        );
        assert!(eval(&ideal) < 0.08);
    }

    #[test]
    fn yolo_loss_grads_match_numeric() {
        let targets = build_targets(&sample_boxes(), 96);
        let ht = &targets[1]; // fine head: [2,30,6,6]
        let mut rng = StdRng::seed_from_u64(7);
        let p0 = Tensor::randn(&mut rng, &[2, 30, 6, 6], 0.5);
        let run = |t: &Tensor| {
            let mut g = Graph::new();
            let p = g.input(t.clone());
            let l = yolo_head_loss(&mut g, p, ht, 5, YoloLossWeights::default());
            (g, p, l)
        };
        let (g, p, l) = run(&p0);
        let grads = g.backward(l);
        // full numeric check is expensive; sample 60 random coordinates
        let analytic = grads.get(p);
        let mut sample_rng = StdRng::seed_from_u64(1);
        for _ in 0..60 {
            let i = sample_rng.gen_range(0..p0.len());
            let mut plus = p0.clone();
            plus.data_mut()[i] += 1e-2;
            let mut minus = p0.clone();
            minus.data_mut()[i] -= 1e-2;
            let num = (run(&plus).0.value(run(&plus).2).data()[0]
                - run(&minus).0.value(run(&minus).2).data()[0])
                / 2e-2;
            let a = analytic.data()[i];
            assert!(
                (a - num).abs() < 0.02 + 0.05 * num.abs().max(a.abs()),
                "grad mismatch at {i}: {a} vs {num}"
            );
        }
    }

    #[test]
    fn attack_loss_grads_match_numeric() {
        let mut rng = StdRng::seed_from_u64(3);
        let p0 = Tensor::randn(&mut rng, &[1, 30, 3, 3], 1.0);
        let cells = [
            AttackCell {
                n: 0,
                anchor: 1,
                cy: 2,
                cx: 1,
            },
            AttackCell {
                n: 0,
                anchor: 0,
                cy: 0,
                cx: 0,
            },
        ];
        let run = |t: &Tensor| {
            let mut g = Graph::new();
            let p = g.input(t.clone());
            let l = targeted_class_loss(&mut g, p, &cells, 5, 3, 0.7);
            (g, p, l)
        };
        let (g, p, l) = run(&p0);
        let grads = g.backward(l);
        let num = numeric_grad(
            |t| {
                let (g, _, l) = run(t);
                g.value(l).data()[0]
            },
            &p0,
            1e-3,
        );
        assert_grads_close(grads.get(p), &num, 0.03);
    }

    #[test]
    fn attack_loss_is_zero_when_target_dominates() {
        let mut p = Tensor::zeros(&[1, 30, 3, 3]);
        p.set4(0, 5 + 3, 1, 1, 50.0); // class 3 logit huge at anchor 0
        let cells = [AttackCell {
            n: 0,
            anchor: 0,
            cy: 1,
            cx: 1,
        }];
        let mut g = Graph::new();
        let pv = g.input(p);
        let l = targeted_class_loss(&mut g, pv, &cells, 5, 3, 0.0);
        assert!(g.value(l).data()[0] < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one attacked cell")]
    fn attack_loss_rejects_empty_cells() {
        let mut g = Graph::new();
        let p = g.input(Tensor::zeros(&[1, 30, 3, 3]));
        let _ = targeted_class_loss(&mut g, p, &[], 5, 0, 0.0);
    }
}
