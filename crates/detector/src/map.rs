//! Mean Average Precision (mAP) — the standard detection metric, used to
//! report victim-detector quality the way the detection literature does.

use rd_scene::{GtBox, ObjectClass};

use crate::decode::Detection;

/// Average precision for one class over a whole dataset, using
/// all-point interpolation.
///
/// `frames` pairs each frame's detections with its ground-truth boxes.
pub fn average_precision(
    frames: &[(Vec<Detection>, Vec<GtBox>)],
    class: ObjectClass,
    iou_threshold: f32,
) -> Option<f32> {
    // gather detections of the class across frames, remembering frame ids
    let mut dets: Vec<(usize, &Detection)> = Vec::new();
    let mut total_gt = 0usize;
    for (fi, (frame_dets, gts)) in frames.iter().enumerate() {
        total_gt += gts.iter().filter(|b| b.class == class).count();
        for d in frame_dets.iter().filter(|d| d.class == class) {
            dets.push((fi, d));
        }
    }
    if total_gt == 0 {
        return None;
    }
    dets.sort_by(|a, b| b.1.confidence().total_cmp(&a.1.confidence()));

    let mut matched: Vec<Vec<bool>> = frames
        .iter()
        .map(|(_, gts)| vec![false; gts.len()])
        .collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut curve: Vec<(f32, f32)> = Vec::with_capacity(dets.len()); // (recall, precision)
    for (fi, det) in dets {
        let gts = &frames[fi].1;
        let mut best: Option<(usize, f32)> = None;
        for (gi, gt) in gts.iter().enumerate() {
            if gt.class != class || matched[fi][gi] {
                continue;
            }
            let iou = det.iou(gt);
            if iou >= iou_threshold && best.map(|(_, b)| iou > b).unwrap_or(true) {
                best = Some((gi, iou));
            }
        }
        match best {
            Some((gi, _)) => {
                matched[fi][gi] = true;
                tp += 1;
            }
            None => fp += 1,
        }
        curve.push((tp as f32 / total_gt as f32, tp as f32 / (tp + fp) as f32));
    }
    // all-point interpolation: integrate precision envelope over recall
    let mut ap = 0.0f32;
    let mut prev_recall = 0.0f32;
    for i in 0..curve.len() {
        let max_prec = curve[i..]
            .iter()
            .map(|(_, p)| *p)
            .fold(f32::NEG_INFINITY, f32::max);
        let (r, _) = curve[i];
        if r > prev_recall {
            ap += (r - prev_recall) * max_prec;
            prev_recall = r;
        }
    }
    Some(ap)
}

/// Mean AP over all classes that appear in the ground truth.
pub fn mean_average_precision(frames: &[(Vec<Detection>, Vec<GtBox>)], iou_threshold: f32) -> f32 {
    let mut sum = 0.0;
    let mut n = 0;
    for class in ObjectClass::ALL {
        if let Some(ap) = average_precision(frames, class, iou_threshold) {
            sum += ap;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: ObjectClass, cx: f32, cy: f32, conf: f32) -> Detection {
        let mut probs = vec![0.0; 5];
        probs[class.index()] = 1.0;
        Detection {
            class,
            class_probs: probs,
            objectness: conf,
            cx,
            cy,
            w: 0.2,
            h: 0.2,
            head: 0,
            anchor: 0,
            cell: (0, 0),
        }
    }

    fn gt(class: ObjectClass, cx: f32, cy: f32) -> GtBox {
        GtBox {
            class,
            cx,
            cy,
            w: 0.2,
            h: 0.2,
        }
    }

    #[test]
    fn perfect_detections_score_one() {
        let frames = vec![(
            vec![det(ObjectClass::Car, 0.3, 0.3, 0.9)],
            vec![gt(ObjectClass::Car, 0.3, 0.3)],
        )];
        let ap = average_precision(&frames, ObjectClass::Car, 0.5).unwrap();
        assert!((ap - 1.0).abs() < 1e-6);
    }

    #[test]
    fn missed_gt_lowers_ap() {
        let frames = vec![(
            vec![det(ObjectClass::Car, 0.3, 0.3, 0.9)],
            vec![
                gt(ObjectClass::Car, 0.3, 0.3),
                gt(ObjectClass::Car, 0.8, 0.8),
            ],
        )];
        let ap = average_precision(&frames, ObjectClass::Car, 0.5).unwrap();
        assert!((ap - 0.5).abs() < 1e-6);
    }

    #[test]
    fn false_positive_before_true_positive_lowers_ap() {
        // high-confidence FP then lower-confidence TP
        let frames = vec![(
            vec![
                det(ObjectClass::Car, 0.9, 0.1, 0.95), // FP
                det(ObjectClass::Car, 0.3, 0.3, 0.5),  // TP
            ],
            vec![gt(ObjectClass::Car, 0.3, 0.3)],
        )];
        let ap = average_precision(&frames, ObjectClass::Car, 0.5).unwrap();
        assert!((ap - 0.5).abs() < 1e-6);
    }

    #[test]
    fn double_detection_counts_one_tp_one_fp() {
        let frames = vec![(
            vec![
                det(ObjectClass::Car, 0.3, 0.3, 0.95),
                det(ObjectClass::Car, 0.31, 0.3, 0.9),
            ],
            vec![gt(ObjectClass::Car, 0.3, 0.3)],
        )];
        let ap = average_precision(&frames, ObjectClass::Car, 0.5).unwrap();
        assert!((ap - 1.0).abs() < 1e-6, "TP first => full AP, got {ap}");
    }

    #[test]
    fn absent_class_returns_none() {
        let frames = vec![(vec![], vec![gt(ObjectClass::Car, 0.3, 0.3)])];
        assert!(average_precision(&frames, ObjectClass::Person, 0.5).is_none());
        assert_eq!(average_precision(&frames, ObjectClass::Car, 0.5), Some(0.0));
    }

    #[test]
    fn map_averages_over_present_classes() {
        let frames = vec![(
            vec![
                det(ObjectClass::Car, 0.3, 0.3, 0.9),
                det(ObjectClass::Person, 0.7, 0.7, 0.9),
            ],
            vec![
                gt(ObjectClass::Car, 0.3, 0.3),
                gt(ObjectClass::Person, 0.1, 0.1),
            ],
        )];
        // Car AP = 1, Person AP = 0 (detection far from gt) -> mAP 0.5
        let map = mean_average_precision(&frames, 0.5);
        assert!((map - 0.5).abs() < 1e-6);
    }
}
