//! The scaled YOLOv3-tiny model.
//!
//! Structure follows darknet's `yolov3-tiny.cfg` — conv/BN/leaky blocks
//! separated by max-pools, a coarse stride-32 head, and a routed,
//! upsampled, concatenated fine stride-16 head — with channel widths
//! reduced so the network trains in seconds on CPU (see DESIGN.md's
//! scaling table). The paper fine-tunes from `darknet53.conv.74`; we train
//! from Kaiming initialization on the procedural dataset instead.

use std::sync::OnceLock;

use rand::Rng;

use rd_tensor::{
    init, shape::conv_out_dim, BatchStats, Graph, InferPlan, ParamId, ParamSet, Tensor, TrainPlan,
    VarId,
};

use crate::anchors::ANCHORS_PER_HEAD;

const BN_EPS: f32 = 1e-5;
const BN_MOMENTUM: f32 = 0.9;
const LEAKY_SLOPE: f32 = 0.1;

/// Batch statistics collected during a training forward, folded into
/// the running-stat parameters after the graph is built.
type PendingStats = Vec<(ParamId, ParamId, BatchStats)>;

/// Batch-norm mode for the single shared block-forward: training mode
/// uses batch statistics (collecting them for a deferred running-stat
/// update), eval mode reads the frozen running statistics.
enum BnMode<'s> {
    Train(&'s mut PendingStats),
    Eval,
}

/// Conv + batch-norm + leaky-ReLU block (darknet's `[convolutional]` with
/// `batch_normalize=1`).
#[derive(Debug)]
struct ConvBlock {
    w: ParamId,
    gamma: ParamId,
    beta: ParamId,
    running_mean: ParamId,
    running_var: ParamId,
    stride: usize,
    pad: usize,
}

impl ConvBlock {
    #[allow(clippy::too_many_arguments)]
    fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        ConvBlock {
            w: ps.register(
                format!("{name}.w"),
                init::kaiming_conv(rng, cout, cin, k, k),
            ),
            gamma: ps.register(format!("{name}.gamma"), Tensor::ones(&[cout])),
            beta: ps.register(format!("{name}.beta"), Tensor::zeros(&[cout])),
            running_mean: ps.register(format!("{name}.rmean"), Tensor::zeros(&[cout])),
            running_var: ps.register(format!("{name}.rvar"), Tensor::ones(&[cout])),
            stride,
            pad,
        }
    }

    /// The single conv/bn/leaky graph builder both modes share. In
    /// training mode the momentum update of the running statistics is
    /// *not* applied here — the batch stats are pushed onto `mode`'s
    /// pending list and folded in by [`TinyYolo::forward`] once the
    /// whole graph is built (running stats are never read in training
    /// mode, so the deferral is bitwise-neutral).
    fn fwd(&self, g: &mut Graph, ps: &ParamSet, x: VarId, mode: &mut BnMode<'_>) -> VarId {
        let w = g.param(ps, self.w);
        let y = g.conv2d(x, w, None, self.stride, self.pad);
        let gamma = g.param(ps, self.gamma);
        let beta = g.param(ps, self.beta);
        let y = match mode {
            BnMode::Train(pending) => {
                let (y, stats) = g.batch_norm2d_train(y, gamma, beta, BN_EPS);
                pending.push((self.running_mean, self.running_var, stats));
                y
            }
            BnMode::Eval => {
                let rm = ps.get(self.running_mean).value().clone();
                let rv = ps.get(self.running_var).value().clone();
                g.batch_norm2d_eval(y, gamma, beta, &rm, &rv, BN_EPS)
            }
        };
        g.leaky_relu(y, LEAKY_SLOPE)
    }

    /// Shape-only lowering of the block (see [`TinyYolo::declare_forward`]).
    /// `train_bn` selects the `batch_norm2d_train` declare form used by
    /// the compiled training plan; both forms carry the same attrs.
    fn declare(&self, g: &mut Graph, ps: &ParamSet, x: VarId, train_bn: bool) -> VarId {
        let xs = g.meta(x).expected_shape.clone();
        let ws = ps.get(self.w).value().shape().to_vec();
        let w = g.declare("param", &[], &[("pid", self.w.index())], &ws);
        let ho = conv_out_dim("h", xs[2], ws[2], self.pad, self.stride);
        let wo = conv_out_dim("w", xs[3], ws[3], self.pad, self.stride);
        let y = g.declare(
            "conv2d",
            &[x, w],
            &[("stride", self.stride), ("pad", self.pad)],
            &[xs[0], ws[0], ho, wo],
        );
        let out_shape = g.meta(y).expected_shape.clone();
        let gamma = g.declare(
            "param",
            &[],
            &[("pid", self.gamma.index())],
            ps.get(self.gamma).value().shape(),
        );
        let beta = g.declare(
            "param",
            &[],
            &[("pid", self.beta.index())],
            ps.get(self.beta).value().shape(),
        );
        let bn_op = if train_bn {
            "batch_norm2d_train"
        } else {
            "batch_norm2d_eval"
        };
        let y = g.declare(
            bn_op,
            &[y, gamma, beta],
            &[
                ("rmean_pid", self.running_mean.index()),
                ("rvar_pid", self.running_var.index()),
                ("eps_bits", BN_EPS.to_bits() as usize),
            ],
            &out_shape,
        );
        g.declare(
            "leaky_relu",
            &[y],
            &[("alpha_bits", LEAKY_SLOPE.to_bits() as usize)],
            &out_shape,
        )
    }
}

/// Plain conv with bias and no activation (darknet's detection conv).
#[derive(Debug)]
struct HeadConv {
    w: ParamId,
    b: ParamId,
}

impl HeadConv {
    fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        cin: usize,
        cout: usize,
        obj_bias: f32,
        channels_per_anchor: usize,
    ) -> Self {
        let mut bias = Tensor::zeros(&[cout]);
        // start objectness strongly negative so the untrained detector is
        // quiet (standard focal-style initialization)
        for a in 0..cout / channels_per_anchor {
            bias.data_mut()[a * channels_per_anchor + 4] = obj_bias;
        }
        HeadConv {
            w: ps.register(
                format!("{name}.w"),
                init::kaiming_conv(rng, cout, cin, 1, 1),
            ),
            b: ps.register(format!("{name}.b"), bias),
        }
    }

    fn forward(&self, g: &mut Graph, ps: &ParamSet, x: VarId) -> VarId {
        let w = g.param(ps, self.w);
        let b = g.param(ps, self.b);
        g.conv2d(x, w, Some(b), 1, 0)
    }

    /// Shape-only lowering (see [`TinyYolo::declare_forward`]).
    fn declare(&self, g: &mut Graph, ps: &ParamSet, x: VarId) -> VarId {
        let xs = g.meta(x).expected_shape.clone();
        let ws = ps.get(self.w).value().shape().to_vec();
        let w = g.declare("param", &[], &[("pid", self.w.index())], &ws);
        let ho = conv_out_dim("h", xs[2], ws[2], 0, 1);
        let wo = conv_out_dim("w", xs[3], ws[3], 0, 1);
        let y = g.declare(
            "conv2d",
            &[x, w],
            &[("stride", 1), ("pad", 0)],
            &[xs[0], ws[0], ho, wo],
        );
        let out_shape = g.meta(y).expected_shape.clone();
        let b = g.declare(
            "param",
            &[],
            &[("pid", self.b.index())],
            ps.get(self.b).value().shape(),
        );
        g.declare("add_bias_channel", &[y, b], &[], &out_shape)
    }
}

/// Configuration of the scaled detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YoloConfig {
    /// Square input size in pixels (must be divisible by 32).
    pub input: usize,
    /// Number of object classes.
    pub num_classes: usize,
}

impl YoloConfig {
    /// Standard 96x96 configuration for the 5-class road dataset.
    pub fn standard() -> Self {
        YoloConfig {
            input: 96,
            num_classes: 5,
        }
    }

    /// Smoke-scale 64x64 configuration.
    pub fn smoke() -> Self {
        YoloConfig {
            input: 64,
            num_classes: 5,
        }
    }

    /// Channels per head: `anchors * (5 + classes)`.
    pub fn head_channels(&self) -> usize {
        ANCHORS_PER_HEAD * (5 + self.num_classes)
    }

    /// Grid side of the coarse (stride-32) head.
    pub fn coarse_grid(&self) -> usize {
        self.input / 32
    }

    /// Grid side of the fine (stride-16) head.
    pub fn fine_grid(&self) -> usize {
        self.input / 16
    }
}

/// Raw head outputs of one forward pass.
#[derive(Debug, Clone, Copy)]
pub struct YoloOutputs {
    /// Coarse head `[N, A*(5+C), S32, S32]`.
    pub coarse: VarId,
    /// Fine head `[N, A*(5+C), S16, S16]`.
    pub fine: VarId,
}

/// The scaled YOLOv3-tiny detector.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rd_detector::{TinyYolo, YoloConfig};
/// use rd_tensor::{Graph, ParamSet, Tensor};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut ps = ParamSet::new();
/// let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
/// let mut g = Graph::new();
/// let x = g.input(Tensor::zeros(&[1, 3, 64, 64]));
/// let out = model.forward(&mut g, &mut ps, x, false);
/// assert_eq!(g.value(out.coarse).shape(), &[1, 30, 2, 2]);
/// assert_eq!(g.value(out.fine).shape(), &[1, 30, 4, 4]);
/// ```
#[derive(Debug)]
pub struct TinyYolo {
    cfg: YoloConfig,
    c1: ConvBlock,
    c2: ConvBlock,
    c3: ConvBlock,
    c4: ConvBlock,
    c5: ConvBlock,
    c6: ConvBlock,
    c7: ConvBlock,
    head1_pre: ConvBlock,
    head1: HeadConv,
    route: ConvBlock,
    head2_pre: ConvBlock,
    head2: HeadConv,
    /// Lazily compiled grad-free inference plan (architecture-only —
    /// weights are read fresh from the `ParamSet` on every execution, so
    /// the cached plan survives weight updates).
    plan: OnceLock<InferPlan>,
    /// Lazily compiled training-mode gradient plan (batch-statistics
    /// batch norm) for the compiled detector training step.
    train_plan: OnceLock<TrainPlan>,
    /// Lazily compiled eval-mode gradient plan (frozen running stats)
    /// for input-gradient work against the frozen detector (the attack
    /// loop).
    grad_plan: OnceLock<TrainPlan>,
}

/// Backbone channel widths (the full YOLOv3-tiny uses
/// 16-32-64-128-256-512; we divide by 4 and trim the tail).
const WIDTHS: [usize; 7] = [8, 16, 32, 64, 96, 128, 64];

impl TinyYolo {
    /// Builds a freshly initialized detector, registering all parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.input` is not divisible by 32.
    pub fn new<R: Rng>(ps: &mut ParamSet, rng: &mut R, cfg: YoloConfig) -> Self {
        assert_eq!(cfg.input % 32, 0, "input size must be divisible by 32");
        let hc = cfg.head_channels();
        let cpa = 5 + cfg.num_classes;
        TinyYolo {
            cfg,
            c1: ConvBlock::new(ps, rng, "c1", 3, WIDTHS[0], 3, 1, 1),
            c2: ConvBlock::new(ps, rng, "c2", WIDTHS[0], WIDTHS[1], 3, 1, 1),
            c3: ConvBlock::new(ps, rng, "c3", WIDTHS[1], WIDTHS[2], 3, 1, 1),
            c4: ConvBlock::new(ps, rng, "c4", WIDTHS[2], WIDTHS[3], 3, 1, 1),
            c5: ConvBlock::new(ps, rng, "c5", WIDTHS[3], WIDTHS[4], 3, 1, 1),
            c6: ConvBlock::new(ps, rng, "c6", WIDTHS[4], WIDTHS[5], 3, 1, 1),
            c7: ConvBlock::new(ps, rng, "c7", WIDTHS[5], WIDTHS[6], 1, 1, 0),
            head1_pre: ConvBlock::new(ps, rng, "h1pre", WIDTHS[6], WIDTHS[5], 3, 1, 1),
            head1: HeadConv::new(ps, rng, "h1", WIDTHS[5], hc, -2.0, cpa),
            route: ConvBlock::new(ps, rng, "route", WIDTHS[6], 32, 1, 1, 0),
            head2_pre: ConvBlock::new(ps, rng, "h2pre", WIDTHS[4] + 32, WIDTHS[5], 3, 1, 1),
            head2: HeadConv::new(ps, rng, "h2", WIDTHS[5], hc, -2.0, cpa),
            plan: OnceLock::new(),
            train_plan: OnceLock::new(),
            grad_plan: OnceLock::new(),
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> YoloConfig {
        self.cfg
    }

    /// The single source of truth for the network graph: both batch-norm
    /// modes build exactly this structure, so training and eval can never
    /// drift apart layer-wise.
    fn forward_mode(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x: VarId,
        mode: &mut BnMode<'_>,
    ) -> YoloOutputs {
        let shape = g.value(x).shape().to_vec();
        assert_eq!(shape.len(), 4, "input must be NCHW");
        assert_eq!(shape[1], 3, "input must be RGB");
        assert_eq!(shape[2], self.cfg.input, "input height mismatch");
        assert_eq!(shape[3], self.cfg.input, "input width mismatch");

        let y = g.scoped("c1", |g| self.c1.fwd(g, ps, x, mode));
        let y = g.max_pool2d(y, 2, 2, 0);
        let y = g.scoped("c2", |g| self.c2.fwd(g, ps, y, mode));
        let y = g.max_pool2d(y, 2, 2, 0);
        let y = g.scoped("c3", |g| self.c3.fwd(g, ps, y, mode));
        let y = g.max_pool2d(y, 2, 2, 0);
        let y = g.scoped("c4", |g| self.c4.fwd(g, ps, y, mode));
        let y = g.max_pool2d(y, 2, 2, 0);
        let feat16 = g.scoped("c5", |g| self.c5.fwd(g, ps, y, mode)); // stride 16
        let y = g.max_pool2d(feat16, 2, 2, 0);
        let y = g.scoped("c6", |g| self.c6.fwd(g, ps, y, mode));
        let bottleneck = g.scoped("c7", |g| self.c7.fwd(g, ps, y, mode)); // stride 32

        // coarse head
        let h1 = g.scoped("h1pre", |g| self.head1_pre.fwd(g, ps, bottleneck, mode));
        let coarse = g.scoped("h1", |g| self.head1.forward(g, ps, h1));

        // fine head: bottleneck -> 1x1 -> upsample -> concat(feat16)
        let r = g.scoped("route", |g| self.route.fwd(g, ps, bottleneck, mode));
        let r = g.upsample_nearest2x(r);
        let cat = g.concat_channels(feat16, r);
        let h2 = g.scoped("h2pre", |g| self.head2_pre.fwd(g, ps, cat, mode));
        let fine = g.scoped("h2", |g| self.head2.forward(g, ps, h2));

        YoloOutputs { coarse, fine }
    }

    /// Runs the network. `training` selects batch-norm mode (and updates
    /// running statistics inside `ps` when true).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, 3, input, input]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        ps: &mut ParamSet,
        x: VarId,
        training: bool,
    ) -> YoloOutputs {
        if !training {
            return self.forward_frozen(g, ps, x);
        }
        let mut pending = PendingStats::new();
        let out = self.forward_mode(g, ps, x, &mut BnMode::Train(&mut pending));
        // fold batch statistics into the running stats (their gradients
        // are never written, so the optimizer leaves them untouched)
        Self::fold_running_stats(ps, &pending);
        out
    }

    /// Momentum-folds collected batch statistics into the running-stat
    /// parameters: `r = momentum*r + (1-momentum)*batch`. Shared by the
    /// tape training forward and the compiled training step (which gets
    /// its pending list from [`rd_tensor::TrainStep::bn_stats`]), so the
    /// two paths move the running stats bitwise-identically.
    pub fn fold_running_stats(ps: &mut ParamSet, pending: &[(ParamId, ParamId, BatchStats)]) {
        for (rmean, rvar, stats) in pending {
            let rm = ps.get_mut(*rmean).value_mut();
            for (r, &b) in rm.data_mut().iter_mut().zip(stats.mean.data()) {
                *r = BN_MOMENTUM * *r + (1.0 - BN_MOMENTUM) * b;
            }
            let rv = ps.get_mut(*rvar).value_mut();
            for (r, &b) in rv.data_mut().iter_mut().zip(stats.var.data()) {
                *r = BN_MOMENTUM * *r + (1.0 - BN_MOMENTUM) * b;
            }
        }
    }

    /// Eval-mode forward through a *shared* parameter set.
    ///
    /// Identical graph to `forward(..., training=false)`, but takes
    /// `&ParamSet`: batch norm reads running statistics and nothing in
    /// `ps` is mutated, so the attack loop's frame workers can build
    /// independent tapes concurrently against one frozen detector.
    pub fn forward_frozen(&self, g: &mut Graph, ps: &ParamSet, x: VarId) -> YoloOutputs {
        self.forward_mode(g, ps, x, &mut BnMode::Eval)
    }

    /// The compiled grad-free inference plan for this architecture,
    /// built on first use from the shape-only declare lowering.
    ///
    /// The plan stores only structure (op list, buffer sizes, parameter
    /// ids); [`TinyYolo::infer`] reads weights out of the `ParamSet` at
    /// execution time, so the cached plan stays valid across training
    /// steps and checkpoint restores.
    pub fn infer_plan(&self, ps: &ParamSet) -> &InferPlan {
        self.plan.get_or_init(|| {
            let mut g = Graph::new();
            let out = self.declare_forward(&mut g, ps, 1);
            let plan = InferPlan::compile(&g, &[out.coarse, out.fine])
                .expect("TinyYolo lowering must compile to an inference plan");
            rd_analysis::audit_plan_or_panic("detector/infer", &plan.meta(), ps);
            plan
        })
    }

    /// The compiled training-step plan (batch-statistics batch norm),
    /// built on first use from the training-mode declare lowering.
    ///
    /// Like [`TinyYolo::infer_plan`] the plan stores only structure;
    /// weights and running stats are read from the `ParamSet` per step,
    /// so the cached plan stays valid across updates and restores.
    pub fn train_plan(&self, ps: &ParamSet) -> &TrainPlan {
        self.train_plan.get_or_init(|| {
            let mut g = Graph::new();
            let out = self.declare_train(&mut g, ps, 1);
            let plan = TrainPlan::compile(&g, &[out.coarse, out.fine])
                .expect("TinyYolo train lowering must compile to a training plan");
            rd_analysis::audit_plan_or_panic("detector/train", &plan.meta(), ps);
            plan
        })
    }

    /// The compiled eval-mode gradient plan (frozen running statistics):
    /// a [`TrainPlan`] over the same lowering as the inference plan, for
    /// paths that need gradients *through* the frozen detector — the
    /// attack loop's input-gradient computation.
    pub fn grad_plan(&self, ps: &ParamSet) -> &TrainPlan {
        self.grad_plan.get_or_init(|| {
            let mut g = Graph::new();
            let out = self.declare_forward(&mut g, ps, 1);
            let plan = TrainPlan::compile(&g, &[out.coarse, out.fine])
                .expect("TinyYolo eval lowering must compile to a gradient plan");
            rd_analysis::audit_plan_or_panic("detector/grad", &plan.meta(), ps);
            plan
        })
    }

    /// Tape-free batched forward: runs the compiled plan on `x`
    /// (`[N, 3, input, input]`) and returns `(coarse, fine)` head
    /// tensors, bitwise-identical to [`TinyYolo::forward_frozen`] on the
    /// same weights at any worker-pool thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, 3, input, input]` with `N >= 1`.
    pub fn infer(&self, ps: &ParamSet, x: &Tensor) -> (Tensor, Tensor) {
        let mut out = self.infer_plan(ps).execute(ps, x);
        let fine = out.pop().expect("plan has two roots");
        let coarse = out.pop().expect("plan has two roots");
        (coarse, fine)
    }

    /// Lowers the architecture onto `g` as *shape-only* declared nodes —
    /// no kernel runs, no forward value is computed. The resulting
    /// metadata tape mirrors [`TinyYolo::forward`] (eval mode) node for
    /// node and is what [`TinyYolo::validate`] feeds to
    /// `rd_analysis::validate`.
    pub fn declare_forward(&self, g: &mut Graph, ps: &ParamSet, batch: usize) -> YoloOutputs {
        self.declare_mode(g, ps, batch, false)
    }

    /// Training-mode lowering: identical wiring to
    /// [`TinyYolo::declare_forward`] with `batch_norm2d_train` declares,
    /// feeding [`TinyYolo::train_plan`].
    pub fn declare_train(&self, g: &mut Graph, ps: &ParamSet, batch: usize) -> YoloOutputs {
        self.declare_mode(g, ps, batch, true)
    }

    fn declare_mode(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        batch: usize,
        train_bn: bool,
    ) -> YoloOutputs {
        let s = self.cfg.input;
        let x = g.declare("input", &[], &[], &[batch, 3, s, s]);
        let pool = |g: &mut Graph, x: VarId| {
            let xs = g.meta(x).expected_shape.clone();
            // darknet pool arithmetic: ho = (h + pad - k) / stride + 1
            g.declare(
                "max_pool2d",
                &[x],
                &[("k", 2), ("stride", 2), ("pad", 0)],
                &[
                    xs[0],
                    xs[1],
                    conv_out_dim("h", xs[2], 2, 0, 2),
                    conv_out_dim("w", xs[3], 2, 0, 2),
                ],
            )
        };

        let y = g.scoped("c1", |g| self.c1.declare(g, ps, x, train_bn));
        let y = pool(g, y);
        let y = g.scoped("c2", |g| self.c2.declare(g, ps, y, train_bn));
        let y = pool(g, y);
        let y = g.scoped("c3", |g| self.c3.declare(g, ps, y, train_bn));
        let y = pool(g, y);
        let y = g.scoped("c4", |g| self.c4.declare(g, ps, y, train_bn));
        let y = pool(g, y);
        let feat16 = g.scoped("c5", |g| self.c5.declare(g, ps, y, train_bn));
        let y = pool(g, feat16);
        let y = g.scoped("c6", |g| self.c6.declare(g, ps, y, train_bn));
        let bottleneck = g.scoped("c7", |g| self.c7.declare(g, ps, y, train_bn));

        let h1 = g.scoped("h1pre", |g| {
            self.head1_pre.declare(g, ps, bottleneck, train_bn)
        });
        let coarse = g.scoped("h1", |g| self.head1.declare(g, ps, h1));

        let r = g.scoped("route", |g| self.route.declare(g, ps, bottleneck, train_bn));
        let rs = g.meta(r).expected_shape.clone();
        let r = g.declare(
            "upsample_nearest2x",
            &[r],
            &[],
            &[rs[0], rs[1], rs[2] * 2, rs[3] * 2],
        );
        let fs = g.meta(feat16).expected_shape.clone();
        let rs = g.meta(r).expected_shape.clone();
        let cat = g.declare(
            "concat_channels",
            &[feat16, r],
            &[],
            &[fs[0], fs[1] + rs[1], fs[2], fs[3]],
        );
        let h2 = g.scoped("h2pre", |g| self.head2_pre.declare(g, ps, cat, train_bn));
        let fine = g.scoped("h2", |g| self.head2.declare(g, ps, h2));

        YoloOutputs { coarse, fine }
    }

    /// Statically validates the wiring of the model against the parameter
    /// shapes registered in `ps`, before any kernel runs. Returns every
    /// shape inconsistency found, each anchored to the offending layer's
    /// scope path (e.g. `c4/conv2d: conv2d weight OC×C×K×K has C=16,
    /// input NCHW has C=32`).
    pub fn validate(
        &self,
        ps: &ParamSet,
        batch: usize,
    ) -> Result<(), Vec<rd_analysis::ShapeIssue>> {
        let mut g = Graph::new();
        let out = self.declare_forward(&mut g, ps, batch);
        rd_analysis::validate_with_root(&g, out.fine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(cfg: YoloConfig) -> (TinyYolo, ParamSet) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let m = TinyYolo::new(&mut ps, &mut rng, cfg);
        (m, ps)
    }

    #[test]
    fn output_shapes_standard() {
        let (m, mut ps) = build(YoloConfig::standard());
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 3, 96, 96]));
        let out = m.forward(&mut g, &mut ps, x, false);
        assert_eq!(g.value(out.coarse).shape(), &[2, 30, 3, 3]);
        assert_eq!(g.value(out.fine).shape(), &[2, 30, 6, 6]);
    }

    #[test]
    fn parameter_count_is_modest() {
        let (_, ps) = build(YoloConfig::standard());
        let n = ps.num_scalars();
        assert!(n > 100_000, "suspiciously small model: {n}");
        assert!(n < 1_500_000, "model too large for CPU training: {n}");
    }

    #[test]
    fn training_mode_updates_running_stats() {
        let (m, mut ps) = build(YoloConfig::smoke());
        let mut rng = StdRng::seed_from_u64(2);
        let before: Vec<f32> = ps
            .iter()
            .filter(|(_, p)| p.name().ends_with(".rmean"))
            .flat_map(|(_, p)| p.value().data().to_vec())
            .collect();
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[2, 3, 64, 64], 1.0));
        let _ = m.forward(&mut g, &mut ps, x, true);
        let after: Vec<f32> = ps
            .iter()
            .filter(|(_, p)| p.name().ends_with(".rmean"))
            .flat_map(|(_, p)| p.value().data().to_vec())
            .collect();
        assert_ne!(before, after, "running means should move in training");
    }

    #[test]
    fn eval_mode_is_deterministic_and_stats_frozen() {
        let (m, mut ps) = build(YoloConfig::smoke());
        let mut rng = StdRng::seed_from_u64(3);
        let x0 = Tensor::randn(&mut rng, &[1, 3, 64, 64], 1.0);
        let run = |ps: &mut ParamSet| {
            let mut g = Graph::new();
            let x = g.input(x0.clone());
            let out = m.forward(&mut g, ps, x, false);
            g.value(out.coarse).clone()
        };
        let a = run(&mut ps);
        let b = run(&mut ps);
        assert_eq!(a, b);
    }

    #[test]
    fn gradients_reach_the_input() {
        // The whole attack depends on d(logits)/d(input pixels) != 0.
        let (m, mut ps) = build(YoloConfig::smoke());
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[1, 3, 64, 64], 0.5));
        let out = m.forward(&mut g, &mut ps, x, false);
        let s1 = g.sum_all(out.coarse);
        let s2 = g.sum_all(out.fine);
        let loss = g.add(s1, s2);
        let grads = g.backward(loss);
        assert!(grads.get(x).sq_norm() > 0.0, "no gradient at the input");
    }

    #[test]
    fn validate_accepts_well_formed_model() {
        let (m, ps) = build(YoloConfig::standard());
        m.validate(&ps, 2)
            .expect("well-formed model must validate cleanly");
    }

    #[test]
    fn validate_names_the_miswired_layer() {
        let (m, mut ps) = build(YoloConfig::standard());
        // Seed a wiring bug: c4's weight claims 16 input channels while
        // its input (c3's output) carries 32.
        let id = ps
            .iter()
            .find(|(_, p)| p.name() == "c4.w")
            .map(|(id, _)| id)
            .unwrap();
        *ps.get_mut(id).value_mut() = Tensor::zeros(&[64, 16, 3, 3]);
        let issues = m.validate(&ps, 1).unwrap_err();
        let msg: String = issues
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            msg.contains("c4/conv2d"),
            "issue must name the layer:\n{msg}"
        );
        assert!(
            msg.contains("C=16") && msg.contains("C=32"),
            "issue must carry both channel counts:\n{msg}"
        );
        // the mis-wiring must not cascade into reports for every later layer
        assert!(issues.len() <= 3, "claimed-shape recovery failed:\n{msg}");
    }

    #[test]
    fn objectness_bias_starts_negative() {
        let (m, ps) = build(YoloConfig::smoke());
        let _ = m;
        let bias = ps
            .iter()
            .find(|(_, p)| p.name() == "h1.b")
            .map(|(_, p)| p.value().clone())
            .unwrap();
        assert_eq!(bias.data()[4], -2.0);
        assert_eq!(bias.data()[14], -2.0);
        assert_eq!(bias.data()[0], 0.0);
    }
}
