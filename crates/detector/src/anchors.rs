//! Anchor boxes and head geometry for the two-scale detection head.

/// Anchors and stride of one detection head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadSpec {
    /// Input-pixels per grid cell.
    pub stride: usize,
    /// Anchor `(width, height)` pairs in normalized image units.
    pub anchors: [(f32, f32); 3],
}

/// Anchors per head.
pub const ANCHORS_PER_HEAD: usize = 3;

/// The two heads of the scaled YOLOv3-tiny: a coarse stride-32 head for
/// large/near objects and a fine stride-16 head for small/far objects.
/// Anchor shapes were chosen from the procedural dataset's box statistics
/// (the same way the paper's anchors come from its fine-tuning dataset).
pub fn head_specs() -> [HeadSpec; 2] {
    [
        HeadSpec {
            stride: 32,
            anchors: [(0.34, 0.28), (0.55, 0.42), (0.85, 0.66)],
        },
        HeadSpec {
            stride: 16,
            anchors: [(0.10, 0.08), (0.17, 0.13), (0.25, 0.20)],
        },
    ]
}

/// Shape-only IoU between two boxes of the given sizes (both centred at
/// the origin) — the criterion for anchor assignment.
pub fn shape_iou(w1: f32, h1: f32, w2: f32, h2: f32) -> f32 {
    let inter = w1.min(w2) * h1.min(h2);
    let union = w1 * h1 + w2 * h2 - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Picks the `(head, anchor)` pair whose shape best matches a box.
pub fn best_anchor(w: f32, h: f32) -> (usize, usize) {
    let specs = head_specs();
    let mut best = (0, 0);
    let mut best_iou = -1.0;
    for (hi, spec) in specs.iter().enumerate() {
        for (ai, &(aw, ah)) in spec.anchors.iter().enumerate() {
            let iou = shape_iou(w, h, aw, ah);
            if iou > best_iou {
                best_iou = iou;
                best = (hi, ai);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_iou_bounds() {
        assert!((shape_iou(0.2, 0.2, 0.2, 0.2) - 1.0).abs() < 1e-6);
        assert!(shape_iou(0.1, 0.1, 0.9, 0.9) < 0.05);
    }

    #[test]
    fn large_boxes_go_to_coarse_head() {
        let (head, _) = best_anchor(0.8, 0.6);
        assert_eq!(head, 0);
    }

    #[test]
    fn small_boxes_go_to_fine_head() {
        let (head, _) = best_anchor(0.1, 0.08);
        assert_eq!(head, 1);
    }

    #[test]
    fn anchors_are_distinct_and_sorted_by_area() {
        for spec in head_specs() {
            for w in spec.anchors.windows(2) {
                assert!(w[0].0 * w[0].1 < w[1].0 * w[1].1);
            }
        }
    }
}
