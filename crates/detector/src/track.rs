//! Minimal IoU-based multi-object tracking — the stage between raw
//! per-frame detections and the AV's consecutive-frame confirmation.
//!
//! The paper argues that AVs act only on *temporally consistent*
//! detections; [`Tracker`] makes that concrete: detections are associated
//! across frames by IoU, each track carries its own [`Confirmer`], and a
//! track surfaces as [`TrackState::Confirmed`] only after its class has
//! been stable for the confirmation window. The decal attack's CWC
//! criterion is exactly "some track confirms the target class".

use rd_scene::{GtBox, ObjectClass};

use crate::confirm::Confirmer;
use crate::decode::Detection;

/// Lifecycle state of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackState {
    /// Seen, but not yet stable for the confirmation window.
    Tentative,
    /// Class held for the confirmation window — the AV would act on it.
    Confirmed,
}

/// One tracked object.
#[derive(Debug, Clone)]
pub struct Track {
    /// Stable identifier, unique within the tracker's lifetime.
    pub id: u64,
    /// Last associated box.
    pub bbox: GtBox,
    /// Class of the last associated detection.
    pub class: ObjectClass,
    /// Lifecycle state.
    pub state: TrackState,
    /// Frames since the last association.
    pub misses: usize,
    /// Total associations.
    pub hits: usize,
    confirmer: Confirmer,
    confirmed_class: Option<ObjectClass>,
}

impl Track {
    /// The class the track confirmed, if any (stays set even if the class
    /// later drifts — an AV has already reacted).
    pub fn confirmed_class(&self) -> Option<ObjectClass> {
        self.confirmed_class
    }
}

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// Minimum IoU to associate a detection with an existing track.
    pub iou_threshold: f32,
    /// Frames a track survives without an association.
    pub max_misses: usize,
    /// Consecutive same-class frames required to confirm.
    pub confirm_window: usize,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            iou_threshold: 0.3,
            max_misses: 2,
            confirm_window: 3,
        }
    }
}

/// Greedy IoU tracker.
///
/// # Examples
///
/// ```
/// use rd_detector::{Tracker, TrackerConfig};
///
/// let mut tracker = Tracker::new(TrackerConfig::default());
/// // feed per-frame detections with tracker.step(&detections)
/// assert_eq!(tracker.tracks().len(), 0);
/// ```
#[derive(Debug)]
pub struct Tracker {
    cfg: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u64,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new(cfg: TrackerConfig) -> Self {
        Tracker {
            cfg,
            tracks: Vec::new(),
            next_id: 0,
        }
    }

    /// Live tracks after the last step.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Whether any track has ever confirmed `class`.
    pub fn ever_confirmed(&self, class: ObjectClass) -> bool {
        self.tracks
            .iter()
            .any(|t| t.confirmed_class() == Some(class))
    }

    /// Advances one frame. Detections are greedily matched to tracks by
    /// descending IoU; unmatched detections spawn new tracks; stale tracks
    /// are dropped. Returns the ids of tracks that *newly confirmed* a
    /// class this frame.
    pub fn step(&mut self, detections: &[Detection]) -> Vec<(u64, ObjectClass)> {
        // candidate pairs sorted by IoU
        let mut pairs: Vec<(usize, usize, f32)> = Vec::new();
        for (ti, track) in self.tracks.iter().enumerate() {
            for (di, det) in detections.iter().enumerate() {
                let iou = det.iou(&track.bbox);
                if iou >= self.cfg.iou_threshold {
                    pairs.push((ti, di, iou));
                }
            }
        }
        pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
        let mut track_used = vec![false; self.tracks.len()];
        let mut det_used = vec![false; detections.len()];
        let mut assigned: Vec<(usize, usize)> = Vec::new();
        for (ti, di, _) in pairs {
            if !track_used[ti] && !det_used[di] {
                track_used[ti] = true;
                det_used[di] = true;
                assigned.push((ti, di));
            }
        }

        let mut newly_confirmed = Vec::new();
        // update matched tracks
        for &(ti, di) in &assigned {
            let det = &detections[di];
            let track = &mut self.tracks[ti];
            track.bbox = det.to_box();
            track.class = det.class;
            track.misses = 0;
            track.hits += 1;
            if let Some(confirmed) = track.confirmer.push(Some(det.class)) {
                track.state = TrackState::Confirmed;
                if track.confirmed_class.is_none() {
                    track.confirmed_class = Some(confirmed);
                }
                newly_confirmed.push((track.id, confirmed));
            }
        }
        // age unmatched tracks
        for (ti, used) in track_used.iter().enumerate() {
            if !used {
                let track = &mut self.tracks[ti];
                track.misses += 1;
                track.confirmer.push(None);
            }
        }
        self.tracks.retain(|t| t.misses <= self.cfg.max_misses);
        // spawn new tracks
        for (di, det) in detections.iter().enumerate() {
            if det_used[di] {
                continue;
            }
            let mut confirmer = Confirmer::new(self.cfg.confirm_window);
            let first = confirmer.push(Some(det.class));
            let mut track = Track {
                id: self.next_id,
                bbox: det.to_box(),
                class: det.class,
                state: TrackState::Tentative,
                misses: 0,
                hits: 1,
                confirmer,
                confirmed_class: None,
            };
            if let Some(c) = first {
                track.state = TrackState::Confirmed;
                track.confirmed_class = Some(c);
                newly_confirmed.push((track.id, c));
            }
            self.next_id += 1;
            self.tracks.push(track);
        }
        newly_confirmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: ObjectClass, cx: f32, conf: f32) -> Detection {
        let mut probs = vec![0.0; 5];
        probs[class.index()] = 1.0;
        Detection {
            class,
            class_probs: probs,
            objectness: conf,
            cx,
            cy: 0.5,
            w: 0.3,
            h: 0.3,
            head: 0,
            anchor: 0,
            cell: (0, 0),
        }
    }

    #[test]
    fn stable_detection_confirms_after_window() {
        let mut tr = Tracker::new(TrackerConfig::default());
        assert!(tr.step(&[det(ObjectClass::Car, 0.5, 0.9)]).is_empty());
        assert!(tr.step(&[det(ObjectClass::Car, 0.51, 0.9)]).is_empty());
        let confirmed = tr.step(&[det(ObjectClass::Car, 0.52, 0.9)]);
        assert_eq!(confirmed.len(), 1);
        assert_eq!(confirmed[0].1, ObjectClass::Car);
        assert!(tr.ever_confirmed(ObjectClass::Car));
        assert_eq!(tr.tracks().len(), 1);
        assert_eq!(tr.tracks()[0].state, TrackState::Confirmed);
        assert_eq!(tr.tracks()[0].hits, 3);
    }

    #[test]
    fn flickering_class_never_confirms() {
        let mut tr = Tracker::new(TrackerConfig::default());
        for i in 0..8 {
            let class = if i % 2 == 0 {
                ObjectClass::Car
            } else {
                ObjectClass::Word
            };
            assert!(tr.step(&[det(class, 0.5, 0.9)]).is_empty());
        }
        assert!(!tr.ever_confirmed(ObjectClass::Car));
        assert!(!tr.ever_confirmed(ObjectClass::Word));
    }

    #[test]
    fn separate_objects_get_separate_tracks() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.step(&[
            det(ObjectClass::Car, 0.2, 0.9),
            det(ObjectClass::Person, 0.8, 0.8),
        ]);
        assert_eq!(tr.tracks().len(), 2);
        let ids: Vec<u64> = tr.tracks().iter().map(|t| t.id).collect();
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn stale_tracks_are_dropped() {
        let mut tr = Tracker::new(TrackerConfig {
            max_misses: 1,
            ..TrackerConfig::default()
        });
        tr.step(&[det(ObjectClass::Car, 0.5, 0.9)]);
        assert_eq!(tr.tracks().len(), 1);
        tr.step(&[]);
        assert_eq!(tr.tracks().len(), 1); // one miss allowed
        tr.step(&[]);
        assert_eq!(tr.tracks().len(), 0); // dropped
    }

    #[test]
    fn track_identity_survives_small_motion() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.step(&[det(ObjectClass::Car, 0.50, 0.9)]);
        let id = tr.tracks()[0].id;
        tr.step(&[det(ObjectClass::Car, 0.55, 0.9)]);
        assert_eq!(tr.tracks().len(), 1);
        assert_eq!(tr.tracks()[0].id, id);
    }

    #[test]
    fn interruption_resets_confirmation_progress() {
        let mut tr = Tracker::new(TrackerConfig {
            max_misses: 5,
            ..TrackerConfig::default()
        });
        tr.step(&[det(ObjectClass::Car, 0.5, 0.9)]);
        tr.step(&[det(ObjectClass::Car, 0.5, 0.9)]);
        tr.step(&[]); // gap: confirmer sees None
        tr.step(&[det(ObjectClass::Car, 0.5, 0.9)]);
        tr.step(&[det(ObjectClass::Car, 0.5, 0.9)]);
        assert!(!tr.ever_confirmed(ObjectClass::Car));
        let confirmed = tr.step(&[det(ObjectClass::Car, 0.5, 0.9)]);
        assert_eq!(confirmed.len(), 1);
    }
}
