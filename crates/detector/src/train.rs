//! Detector training, evaluation and convenience inference.
//!
//! Training is exposed two ways: the classic [`train`] convenience loop,
//! and the step-wise [`DetectorTrainer`] that can snapshot and restore
//! its complete state (parameters, Adam moments, RNG stream, shuffle
//! order, epoch position) as an [`rd_tensor::io::Checkpoint`], enabling
//! crash-safe resume and divergence rollback. A healthy `train` run and
//! a `DetectorTrainer` run draw identical RNG streams and produce
//! bitwise-identical weights.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rd_scene::dataset::Sample;
use rd_scene::GtBox;
use rd_tensor::io::{Checkpoint, CheckpointError};
use rd_tensor::optim::{Adam, StepOutcome};
use rd_tensor::{Graph, ParamSet, Runtime, Tensor};
use rd_vision::Image;

use crate::decode::{postprocess, Detection};
use crate::loss::{build_targets, yolo_head_loss, HeadTargets, YoloLossWeights};
use crate::model::TinyYolo;

/// Training hyper-parameters. Defaults mirror the paper's optimizer choice
/// (Adam, lr 1e-4) with epoch counts scaled to CPU budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Images per step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Gradient-norm clip (0 disables).
    pub clip: f32,
    /// Print a progress line every this many steps (0 = silent).
    pub log_every: usize,
    /// Route steps through the compiled [`rd_tensor::TrainPlan`]
    /// (bitwise-identical to the tape; the tape stays available as the
    /// reference path). Not part of the checkpoint fingerprint — the two
    /// paths produce interchangeable checkpoints.
    pub compiled: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 1e-3,
            seed: 0,
            clip: 10.0,
            log_every: 0,
            compiled: true,
        }
    }
}

/// Per-epoch mean losses returned by [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().unwrap_or(&f32::NAN)
    }
}

/// A gradient hook: called with the global step index after gradients
/// are written and clipped, before the finiteness check and optimizer
/// update. The fault-injection harness uses this to corrupt gradients at
/// a precise, reproducible point.
pub type GradHook<'h> = &'h dyn Fn(u64, &mut ParamSet);

/// Step-wise detector training with full-state snapshot/restore.
///
/// Drives the exact computation of [`train`] one optimizer step at a
/// time. All state a resume needs — parameters, Adam moments, the RNG
/// stream position, the epoch shuffle order and loss accumulators — can
/// be exported as a [`Checkpoint`] and restored bitwise-identically.
pub struct DetectorTrainer<'a> {
    model: &'a TinyYolo,
    ps: &'a mut ParamSet,
    data: &'a [Sample],
    /// Runtime every step re-enters, so concurrent trainers keep their
    /// arena traffic, thread budgets and tiers apart.
    rt: Runtime,
    cfg: TrainConfig,
    rng: StdRng,
    opt: Adam,
    order: Vec<usize>,
    epoch: usize,
    /// Start index of the next chunk within `order`.
    pos: usize,
    epoch_loss: f32,
    epoch_steps: usize,
    epoch_losses: Vec<f32>,
    steps_done: u64,
    /// Cumulative im2col column-cache (hits, misses) over every compiled
    /// step this trainer ran; stays (0, 0) on the tape path.
    col_cache: (u64, u64),
}

impl<'a> DetectorTrainer<'a> {
    /// Prepares a trainer; no RNG is consumed until the first step.
    pub fn new(
        model: &'a TinyYolo,
        ps: &'a mut ParamSet,
        data: &'a [Sample],
        cfg: TrainConfig,
    ) -> Self {
        assert!(!data.is_empty(), "empty training set");
        DetectorTrainer {
            model,
            ps,
            data,
            rt: rd_tensor::runtime::current(),
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            opt: Adam::new(cfg.lr),
            order: (0..data.len()).collect(),
            epoch: 0,
            pos: 0,
            epoch_loss: 0.0,
            epoch_steps: 0,
            epoch_losses: Vec::with_capacity(cfg.epochs),
            steps_done: 0,
            col_cache: (0, 0),
        }
    }

    /// Rebinds the trainer to an explicit [`Runtime`]; subsequent steps
    /// run under it (builder style, for supervised jobs that pin each
    /// attempt to a fresh runtime).
    pub fn with_runtime(mut self, rt: Runtime) -> Self {
        self.rt = rt;
        self
    }

    /// The runtime this trainer's steps execute under.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Optimizer steps completed (or skipped) so far.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// Cumulative activation-column cache (hits, misses) across every
    /// compiled step so far — (0, 0) when running on the tape path.
    pub fn col_cache_stats(&self) -> (u64, u64) {
        self.col_cache
    }

    /// Total optimizer steps a full run takes.
    pub fn total_steps(&self) -> u64 {
        (self.cfg.epochs as u64) * (self.data.len().div_ceil(self.cfg.batch_size) as u64)
    }

    /// Whether every epoch has been consumed.
    pub fn is_done(&self) -> bool {
        self.epoch >= self.cfg.epochs
    }

    /// Scales the optimizer's learning rate relative to the configured
    /// base rate (backoff policy hook; 1.0 restores the base rate).
    pub fn set_lr_scale(&mut self, scale: f32) {
        self.opt.set_lr(self.cfg.lr * scale);
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.opt.lr()
    }

    fn begin_epoch_if_needed(&mut self) {
        if self.pos == 0 {
            self.order.shuffle(&mut self.rng);
        }
    }

    fn advance(&mut self) {
        self.pos += self.cfg.batch_size.min(self.data.len() - self.pos);
        self.steps_done += 1;
        if self.pos >= self.data.len() {
            self.epoch_losses
                .push(self.epoch_loss / self.epoch_steps.max(1) as f32);
            self.epoch += 1;
            self.pos = 0;
            self.epoch_loss = 0.0;
            self.epoch_steps = 0;
        }
    }

    /// Runs one optimizer step. On a non-finite loss or gradient the
    /// update is suppressed, the batch position does **not** advance, and
    /// the returned [`StepOutcome::NonFinite`] carries provenance (the
    /// offending parameters plus a tape audit). Batch-norm running stats
    /// still move (they update during the forward pass); a rollback that
    /// restores the whole [`ParamSet`] undoes that too.
    pub fn step(&mut self, hook: Option<GradHook<'_>>) -> StepOutcome {
        let rt = self.rt.clone();
        rt.enter(|| self.step_inner(hook))
    }

    fn step_inner(&mut self, hook: Option<GradHook<'_>>) -> StepOutcome {
        assert!(!self.is_done(), "step() called on a finished trainer");
        self.begin_epoch_if_needed();
        let input = self.model.config().input;
        let num_classes = self.model.config().num_classes;
        let chunk_end = (self.pos + self.cfg.batch_size).min(self.data.len());
        let chunk = &self.order[self.pos..chunk_end];
        let images: Vec<Image> = chunk.iter().map(|&i| self.data[i].image.clone()).collect();
        let boxes: Vec<Vec<GtBox>> = chunk.iter().map(|&i| self.data[i].boxes.clone()).collect();
        let batch = Image::batch_to_tensor(&images);
        let targets = build_targets(&boxes, input);

        self.ps.zero_grads();
        let (lval, g) = if self.cfg.compiled {
            self.forward_backward_compiled(&batch, &targets, num_classes)
        } else {
            self.forward_backward_tape(batch, &targets, num_classes)
        };
        if self.cfg.clip > 0.0 {
            self.ps.clip_grad_norm(self.cfg.clip);
        }
        if let Some(h) = hook {
            h(self.steps_done, self.ps);
        }

        if let Some(detail) = non_finite_detail(lval, self.ps, &g) {
            return StepOutcome::NonFinite { detail };
        }

        self.opt.step(self.ps);
        self.epoch_loss += lval;
        self.epoch_steps += 1;
        if self.cfg.log_every > 0 {
            let step_in_epoch = self.pos / self.cfg.batch_size;
            if step_in_epoch.is_multiple_of(self.cfg.log_every) {
                eprintln!("epoch {} step {step_in_epoch}: loss {lval:.4}", self.epoch);
            }
        }
        self.advance();
        StepOutcome::Ran { loss: lval }
    }

    /// Reference tape path: full autodiff graph, gradients written into
    /// the `ParamSet`. Returns the loss value and the tape (kept for
    /// non-finite provenance audits).
    fn forward_backward_tape(
        &mut self,
        batch: Tensor,
        targets: &[HeadTargets; 2],
        num_classes: usize,
    ) -> (f32, Graph) {
        let mut g = Graph::new();
        let x = g.input(batch);
        let out = self.model.forward(&mut g, self.ps, x, true);
        let l1 = yolo_head_loss(
            &mut g,
            out.coarse,
            &targets[0],
            num_classes,
            YoloLossWeights::default(),
        );
        let l2 = yolo_head_loss(
            &mut g,
            out.fine,
            &targets[1],
            num_classes,
            YoloLossWeights::default(),
        );
        let loss = g.add(l1, l2);
        let lval = g.value(loss).data()[0];
        let grads = g.backward(loss);
        g.write_grads(&grads, self.ps);
        (lval, g)
    }

    /// Compiled path: the cached [`rd_tensor::TrainPlan`] runs the
    /// network forward and backward; only the loss itself is built as a
    /// small tape on the head outputs, whose input gradients seed the
    /// plan backward. Bitwise-identical to
    /// [`Self::forward_backward_tape`] — loss value, running-stat fold,
    /// parameter gradients — at any worker-pool thread count. The
    /// returned graph is the loss tape (what a non-finite audit can
    /// still inspect on this path).
    fn forward_backward_compiled(
        &mut self,
        batch: &Tensor,
        targets: &[HeadTargets; 2],
        num_classes: usize,
    ) -> (f32, Graph) {
        let plan = self.model.train_plan(self.ps);
        let mut step = plan.forward(self.ps, batch, true);
        // same fold point as the tape path: end of forward, before the
        // loss and any non-finite gating
        TinyYolo::fold_running_stats(self.ps, step.bn_stats());
        let mut g = Graph::new();
        let coarse = g.input(step.output(0));
        let fine = g.input(step.output(1));
        let l1 = yolo_head_loss(
            &mut g,
            coarse,
            &targets[0],
            num_classes,
            YoloLossWeights::default(),
        );
        let l2 = yolo_head_loss(
            &mut g,
            fine,
            &targets[1],
            num_classes,
            YoloLossWeights::default(),
        );
        let loss = g.add(l1, l2);
        let lval = g.value(loss).data()[0];
        let grads = g.backward(loss);
        step.backward(self.ps, &[grads.get(coarse), grads.get(fine)], false);
        step.write_param_grads(self.ps);
        let (hits, misses) = step.col_cache_stats();
        self.col_cache.0 += hits;
        self.col_cache.1 += misses;
        (lval, g)
    }

    /// Skips the current batch without touching parameters or optimizer
    /// state — the runner's last resort once LR backoff is exhausted.
    /// The detector draws no per-step randomness, so skipping costs no
    /// compute and keeps the RNG trajectory aligned.
    pub fn skip_step(&mut self) {
        assert!(!self.is_done(), "skip_step() called on a finished trainer");
        self.begin_epoch_if_needed();
        self.advance();
    }

    /// Exports the complete training state.
    pub fn checkpoint(&self) -> Checkpoint {
        let mut ck = Checkpoint::new();
        ck.put_params("params", self.ps);
        ck.put_adam("adam", &self.opt);
        ck.put_rng("rng", &self.rng);
        ck.put_u64s("order", self.order.iter().map(|&i| i as u64).collect());
        ck.put_u64s(
            "counters",
            vec![
                self.epoch as u64,
                self.pos as u64,
                self.epoch_steps as u64,
                self.steps_done,
            ],
        );
        ck.put_f32s("epoch_loss", vec![self.epoch_loss]);
        ck.put_f32s("epoch_losses", self.epoch_losses.clone());
        ck.put_u64s("fingerprint", self.fingerprint());
        ck
    }

    fn fingerprint(&self) -> Vec<u64> {
        vec![
            self.data.len() as u64,
            self.cfg.epochs as u64,
            self.cfg.batch_size as u64,
            self.cfg.lr.to_bits() as u64,
            self.cfg.seed,
        ]
    }

    /// Restores a state exported by [`checkpoint`](Self::checkpoint),
    /// after which training continues bitwise-identically to the run
    /// that produced it.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::StateMismatch`] when the checkpoint
    /// came from a different dataset/config, or a structural error when
    /// sections are missing or malformed.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        let fp = ck.u64s("fingerprint")?;
        if fp != self.fingerprint() {
            return Err(CheckpointError::StateMismatch(format!(
                "detector checkpoint fingerprint {fp:?} != this run's {:?} \
                 (dataset size, epochs, batch size, lr bits, seed)",
                self.fingerprint()
            )));
        }
        ck.load_params_into("params", self.ps)?;
        let mut opt = Adam::new(self.cfg.lr);
        opt.load_state(ck.get_adam("adam")?)
            .map_err(CheckpointError::StateMismatch)?;
        let order: Vec<usize> = ck.u64s("order")?.iter().map(|&v| v as usize).collect();
        if order.len() != self.data.len() {
            return Err(CheckpointError::StateMismatch(format!(
                "checkpoint shuffle order covers {} sample(s), dataset has {}",
                order.len(),
                self.data.len()
            )));
        }
        let counters = ck.u64s("counters")?;
        let [epoch, pos, epoch_steps, steps_done] = *counters else {
            return Err(CheckpointError::Malformed(format!(
                "counters section holds {} value(s), expected 4",
                counters.len()
            )));
        };
        let epoch_loss = match ck.f32s("epoch_loss")? {
            [v] => *v,
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "epoch_loss section holds {} value(s), expected 1",
                    other.len()
                )))
            }
        };
        self.rng = ck.get_rng("rng")?;
        self.opt = opt;
        self.order = order;
        self.epoch = epoch as usize;
        self.pos = pos as usize;
        self.epoch_steps = epoch_steps as usize;
        self.steps_done = steps_done;
        self.epoch_loss = epoch_loss;
        self.epoch_losses = ck.f32s("epoch_losses")?.to_vec();
        Ok(())
    }

    /// Consumes the trainer, producing the per-epoch loss report.
    pub fn finish(self) -> TrainReport {
        TrainReport {
            epoch_losses: self.epoch_losses,
        }
    }
}

/// Builds a provenance string when the loss or any gradient is
/// non-finite; `None` when everything is healthy.
fn non_finite_detail(loss: f32, ps: &ParamSet, g: &Graph) -> Option<String> {
    let bad_params: Vec<String> = ps
        .iter()
        .filter(|(_, p)| p.grad().data().iter().any(|v| !v.is_finite()))
        .map(|(_, p)| format!("{}{:?}", p.name(), p.value().shape()))
        .collect();
    if loss.is_finite() && bad_params.is_empty() {
        return None;
    }
    let mut detail = if loss.is_finite() {
        format!("non-finite gradient(s) in [{}]", bad_params.join(", "))
    } else if bad_params.is_empty() {
        format!("non-finite loss {loss}")
    } else {
        format!(
            "non-finite loss {loss}; non-finite gradient(s) in [{}]",
            bad_params.join(", ")
        )
    };
    if let Some(report) = rd_analysis::audit_non_finite(g) {
        detail.push_str(&format!("\ntape audit: {report}"));
    }
    Some(detail)
}

/// Trains the detector in place.
///
/// Convenience wrapper over [`DetectorTrainer`]: runs every step, and on
/// a non-finite loss/gradient skips the offending batch (leaving
/// parameters untouched) rather than poisoning the weights. For
/// checkpointed, resumable training drive [`DetectorTrainer`] directly
/// or through the workspace's recovery runner.
pub fn train(
    model: &TinyYolo,
    ps: &mut ParamSet,
    data: &[Sample],
    cfg: &TrainConfig,
) -> TrainReport {
    let mut trainer = DetectorTrainer::new(model, ps, data, *cfg);
    while !trainer.is_done() {
        if let StepOutcome::NonFinite { detail } = trainer.step(None) {
            eprintln!(
                "detector train: skipping batch at step {}: {detail}",
                trainer.steps_done()
            );
            trainer.skip_step();
        }
    }
    trainer.finish()
}

/// Runs inference on a batch of images through the compiled grad-free
/// plan (eval-mode batch norm; bitwise-identical to the tape forward).
pub fn detect(
    model: &TinyYolo,
    ps: &ParamSet,
    images: &[Image],
    obj_threshold: f32,
) -> Vec<Vec<Detection>> {
    let batch = Image::batch_to_tensor(images);
    let (coarse, fine) = model.infer(ps, &batch);
    postprocess(
        &coarse,
        &fine,
        model.config().num_classes,
        obj_threshold,
        0.45,
    )
}

/// Raw head outputs for one batch (used by evaluation helpers that need
/// logits rather than detections). Grad-free compiled path.
pub fn forward_raw(model: &TinyYolo, ps: &ParamSet, images: &[Image]) -> (Tensor, Tensor) {
    let batch = Image::batch_to_tensor(images);
    model.infer(ps, &batch)
}

/// Detection quality metrics over a labelled set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMetrics {
    /// Fraction of GT boxes matched by any detection (IoU ≥ 0.3).
    pub recall: f32,
    /// Fraction of matched boxes whose class is correct.
    pub class_accuracy: f32,
    /// Mean IoU of matched boxes.
    pub mean_iou: f32,
    /// Mean number of detections per image (sanity signal).
    pub dets_per_image: f32,
}

/// Evaluates the detector on a labelled dataset (compiled inference).
pub fn evaluate(
    model: &TinyYolo,
    ps: &ParamSet,
    data: &[Sample],
    obj_threshold: f32,
) -> EvalMetrics {
    let mut total_boxes = 0usize;
    let mut matched = 0usize;
    let mut correct = 0usize;
    let mut iou_sum = 0.0f32;
    let mut det_count = 0usize;
    for chunk in data.chunks(16) {
        let images: Vec<Image> = chunk.iter().map(|s| s.image.clone()).collect();
        let dets = detect(model, ps, &images, obj_threshold);
        for (s, dlist) in chunk.iter().zip(&dets) {
            det_count += dlist.len();
            for b in &s.boxes {
                total_boxes += 1;
                let best = dlist
                    .iter()
                    .map(|d| (d, d.iou(b)))
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                if let Some((d, iou)) = best {
                    if iou >= 0.3 {
                        matched += 1;
                        iou_sum += iou;
                        if d.class == b.class {
                            correct += 1;
                        }
                    }
                }
            }
        }
    }
    EvalMetrics {
        recall: matched as f32 / total_boxes.max(1) as f32,
        class_accuracy: correct as f32 / matched.max(1) as f32,
        mean_iou: iou_sum / matched.max(1) as f32,
        dets_per_image: det_count as f32 / data.len().max(1) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::YoloConfig;
    use rd_scene::dataset::{generate, DatasetConfig};
    use rd_scene::CameraRig;

    fn smoke_data(n: usize) -> Vec<Sample> {
        generate(&DatasetConfig {
            rig: CameraRig::smoke(),
            n_images: n,
            seed: 77,
            augment: false,
        })
    }

    #[test]
    fn one_epoch_reduces_loss() {
        let data = smoke_data(24);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
        let report = train(
            &model,
            &mut ps,
            &data,
            &TrainConfig {
                epochs: 3,
                batch_size: 8,
                lr: 5e-4,
                ..TrainConfig::default()
            },
        );
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "loss should fall: {:?}",
            report.epoch_losses
        );
        assert!(report.final_loss().is_finite());
    }

    #[test]
    fn trainer_loop_matches_train_bitwise() {
        let data = smoke_data(12);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            lr: 5e-4,
            ..TrainConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps_a = ParamSet::new();
        let model_a = TinyYolo::new(&mut ps_a, &mut rng, YoloConfig::smoke());
        let report_a = train(&model_a, &mut ps_a, &data, &cfg);

        let mut rng = StdRng::seed_from_u64(5);
        let mut ps_b = ParamSet::new();
        let model_b = TinyYolo::new(&mut ps_b, &mut rng, YoloConfig::smoke());
        let mut trainer = DetectorTrainer::new(&model_b, &mut ps_b, &data, cfg);
        while !trainer.is_done() {
            match trainer.step(None) {
                StepOutcome::Ran { .. } => {}
                StepOutcome::NonFinite { detail } => panic!("unexpected non-finite: {detail}"),
            }
        }
        let report_b = trainer.finish();
        assert_eq!(report_a, report_b);
        for ((_, a), (_, b)) in ps_a.iter().zip(ps_b.iter()) {
            assert_eq!(a.value().data(), b.value().data(), "param {}", a.name());
        }
    }

    #[test]
    fn trainer_checkpoint_resume_is_bitwise() {
        let data = smoke_data(12);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            lr: 5e-4,
            ..TrainConfig::default()
        };
        // straight run
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps_a = ParamSet::new();
        let model_a = TinyYolo::new(&mut ps_a, &mut rng, YoloConfig::smoke());
        let mut t = DetectorTrainer::new(&model_a, &mut ps_a, &data, cfg);
        while !t.is_done() {
            t.step(None);
        }
        drop(t);

        // interrupted run: 2 steps, checkpoint through the byte codec,
        // rebuild everything from scratch, restore, finish
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps_b = ParamSet::new();
        let model_b = TinyYolo::new(&mut ps_b, &mut rng, YoloConfig::smoke());
        let bytes = {
            let mut t = DetectorTrainer::new(&model_b, &mut ps_b, &data, cfg);
            t.step(None);
            t.step(None);
            rd_tensor::io::encode_checkpoint(&t.checkpoint())
        };
        let mut rng = StdRng::seed_from_u64(99); // different init on purpose
        let mut ps_c = ParamSet::new();
        let model_c = TinyYolo::new(&mut ps_c, &mut rng, YoloConfig::smoke());
        let mut t = DetectorTrainer::new(&model_c, &mut ps_c, &data, cfg);
        let ck = rd_tensor::io::decode_checkpoint(&bytes).unwrap();
        t.restore(&ck).unwrap();
        assert_eq!(t.steps_done(), 2);
        while !t.is_done() {
            t.step(None);
        }
        drop(t);
        for ((_, a), (_, c)) in ps_a.iter().zip(ps_c.iter()) {
            assert_eq!(a.value().data(), c.value().data(), "param {}", a.name());
        }
    }

    #[test]
    fn grad_hook_nan_is_detected_and_params_untouched() {
        let data = smoke_data(8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
        let before: Vec<Vec<f32>> = ps.iter().map(|(_, p)| p.value().data().to_vec()).collect();
        let mut t = DetectorTrainer::new(&model, &mut ps, &data, TrainConfig::default());
        let poison = |_step: u64, ps: &mut ParamSet| {
            let (_, p) = ps.iter_mut().next().unwrap();
            p.grad_mut().data_mut()[0] = f32::NAN;
        };
        match t.step(Some(&poison)) {
            StepOutcome::NonFinite { detail } => {
                assert!(detail.contains("non-finite"), "{detail}");
            }
            StepOutcome::Ran { .. } => panic!("poisoned gradient not detected"),
        }
        assert_eq!(t.steps_done(), 0, "poisoned step must not advance");
        drop(t);
        // BN running stats update during the forward pass itself, so only
        // optimizer-driven parameters are expected to be untouched.
        for ((_, p), b) in ps.iter().zip(&before) {
            if p.name().contains("rmean") || p.name().contains("rvar") {
                continue;
            }
            assert_eq!(p.value().data(), &b[..], "param {} was modified", p.name());
        }
    }

    #[test]
    fn restore_rejects_wrong_fingerprint() {
        let data = smoke_data(8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
        let ck = {
            let t = DetectorTrainer::new(&model, &mut ps, &data, TrainConfig::default());
            t.checkpoint()
        };
        let mut t = DetectorTrainer::new(
            &model,
            &mut ps,
            &data,
            TrainConfig {
                lr: 9e-1,
                ..TrainConfig::default()
            },
        );
        assert!(matches!(
            t.restore(&ck),
            Err(rd_tensor::io::CheckpointError::StateMismatch(_))
        ));
    }

    #[test]
    fn untrained_detector_is_quiet() {
        let data = smoke_data(4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
        let m = evaluate(&model, &ps, &data, 0.3);
        // negative objectness bias keeps the fresh model from spamming
        assert!(m.dets_per_image < 12.0, "{m:?}");
    }

    #[test]
    fn detect_returns_one_list_per_image() {
        let data = smoke_data(3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
        let images: Vec<Image> = data.iter().map(|s| s.image.clone()).collect();
        let d = detect(&model, &ps, &images, 0.3);
        assert_eq!(d.len(), 3);
    }
}
