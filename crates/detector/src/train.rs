//! Detector training, evaluation and convenience inference.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rd_scene::dataset::Sample;
use rd_scene::GtBox;
use rd_tensor::{optim::Adam, Graph, ParamSet, Tensor};
use rd_vision::Image;

use crate::decode::{postprocess, Detection};
use crate::loss::{build_targets, yolo_head_loss, YoloLossWeights};
use crate::model::TinyYolo;

/// Training hyper-parameters. Defaults mirror the paper's optimizer choice
/// (Adam, lr 1e-4) with epoch counts scaled to CPU budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Images per step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Gradient-norm clip (0 disables).
    pub clip: f32,
    /// Print a progress line every this many steps (0 = silent).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 1e-3,
            seed: 0,
            clip: 10.0,
            log_every: 0,
        }
    }
}

/// Per-epoch mean losses returned by [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().unwrap_or(&f32::NAN)
    }
}

/// Trains the detector in place.
pub fn train(
    model: &TinyYolo,
    ps: &mut ParamSet,
    data: &[Sample],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!data.is_empty(), "empty training set");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let input = model.config().input;
    let num_classes = model.config().num_classes;
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut steps = 0usize;
        for (step, chunk) in order.chunks(cfg.batch_size).enumerate() {
            let images: Vec<Image> = chunk.iter().map(|&i| data[i].image.clone()).collect();
            let boxes: Vec<Vec<GtBox>> = chunk.iter().map(|&i| data[i].boxes.clone()).collect();
            let batch = Image::batch_to_tensor(&images);
            let targets = build_targets(&boxes, input);

            ps.zero_grads();
            let mut g = Graph::new();
            let x = g.input(batch);
            let out = model.forward(&mut g, ps, x, true);
            let l1 = yolo_head_loss(
                &mut g,
                out.coarse,
                &targets[0],
                num_classes,
                YoloLossWeights::default(),
            );
            let l2 = yolo_head_loss(
                &mut g,
                out.fine,
                &targets[1],
                num_classes,
                YoloLossWeights::default(),
            );
            let loss = g.add(l1, l2);
            let grads = g.backward(loss);
            g.write_grads(&grads, ps);
            if cfg.clip > 0.0 {
                ps.clip_grad_norm(cfg.clip);
            }
            opt.step(ps);
            let lval = g.value(loss).data()[0];
            epoch_loss += lval;
            steps += 1;
            if cfg.log_every > 0 && step % cfg.log_every == 0 {
                eprintln!("epoch {epoch} step {step}: loss {lval:.4}");
            }
        }
        epoch_losses.push(epoch_loss / steps.max(1) as f32);
    }
    TrainReport { epoch_losses }
}

/// Runs inference on a batch of images (eval-mode batch norm).
pub fn detect(
    model: &TinyYolo,
    ps: &mut ParamSet,
    images: &[Image],
    obj_threshold: f32,
) -> Vec<Vec<Detection>> {
    let batch = Image::batch_to_tensor(images);
    let mut g = Graph::new();
    let x = g.input(batch);
    let out = model.forward(&mut g, ps, x, false);
    postprocess(
        g.value(out.coarse),
        g.value(out.fine),
        model.config().num_classes,
        obj_threshold,
        0.45,
    )
}

/// Raw head outputs for one batch (used by evaluation helpers that need
/// logits rather than detections).
pub fn forward_raw(model: &TinyYolo, ps: &mut ParamSet, images: &[Image]) -> (Tensor, Tensor) {
    let batch = Image::batch_to_tensor(images);
    let mut g = Graph::new();
    let x = g.input(batch);
    let out = model.forward(&mut g, ps, x, false);
    (g.value(out.coarse).clone(), g.value(out.fine).clone())
}

/// Detection quality metrics over a labelled set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMetrics {
    /// Fraction of GT boxes matched by any detection (IoU ≥ 0.3).
    pub recall: f32,
    /// Fraction of matched boxes whose class is correct.
    pub class_accuracy: f32,
    /// Mean IoU of matched boxes.
    pub mean_iou: f32,
    /// Mean number of detections per image (sanity signal).
    pub dets_per_image: f32,
}

/// Evaluates the detector on a labelled dataset.
pub fn evaluate(
    model: &TinyYolo,
    ps: &mut ParamSet,
    data: &[Sample],
    obj_threshold: f32,
) -> EvalMetrics {
    let mut total_boxes = 0usize;
    let mut matched = 0usize;
    let mut correct = 0usize;
    let mut iou_sum = 0.0f32;
    let mut det_count = 0usize;
    for chunk in data.chunks(16) {
        let images: Vec<Image> = chunk.iter().map(|s| s.image.clone()).collect();
        let dets = detect(model, ps, &images, obj_threshold);
        for (s, dlist) in chunk.iter().zip(&dets) {
            det_count += dlist.len();
            for b in &s.boxes {
                total_boxes += 1;
                let best = dlist
                    .iter()
                    .map(|d| (d, d.iou(b)))
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                if let Some((d, iou)) = best {
                    if iou >= 0.3 {
                        matched += 1;
                        iou_sum += iou;
                        if d.class == b.class {
                            correct += 1;
                        }
                    }
                }
            }
        }
    }
    EvalMetrics {
        recall: matched as f32 / total_boxes.max(1) as f32,
        class_accuracy: correct as f32 / matched.max(1) as f32,
        mean_iou: iou_sum / matched.max(1) as f32,
        dets_per_image: det_count as f32 / data.len().max(1) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::YoloConfig;
    use rd_scene::dataset::{generate, DatasetConfig};
    use rd_scene::CameraRig;

    fn smoke_data(n: usize) -> Vec<Sample> {
        generate(&DatasetConfig {
            rig: CameraRig::smoke(),
            n_images: n,
            seed: 77,
            augment: false,
        })
    }

    #[test]
    fn one_epoch_reduces_loss() {
        let data = smoke_data(24);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
        let report = train(
            &model,
            &mut ps,
            &data,
            &TrainConfig {
                epochs: 3,
                batch_size: 8,
                lr: 5e-4,
                ..TrainConfig::default()
            },
        );
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "loss should fall: {:?}",
            report.epoch_losses
        );
        assert!(report.final_loss().is_finite());
    }

    #[test]
    fn untrained_detector_is_quiet() {
        let data = smoke_data(4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
        let m = evaluate(&model, &mut ps, &data, 0.3);
        // negative objectness bias keeps the fresh model from spamming
        assert!(m.dets_per_image < 12.0, "{m:?}");
    }

    #[test]
    fn detect_returns_one_list_per_image() {
        let data = smoke_data(3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
        let images: Vec<Image> = data.iter().map(|s| s.image.clone()).collect();
        let d = detect(&model, &mut ps, &images, 0.3);
        assert_eq!(d.len(), 3);
    }
}
