//! # rd-detector
//!
//! A from-scratch, CPU-trainable reproduction of YOLOv3-tiny — the victim
//! model of *Road Decals as Trojans* (DSN 2024) — scaled down per
//! DESIGN.md so white-box attacks run on a laptop.
//!
//! The crate provides the [`TinyYolo`] model (conv/BN/leaky backbone with
//! coarse + fine anchor heads), target assignment and the fused YOLO
//! training loss ([`loss`]), decoding and NMS ([`Detection`]), a training
//! loop ([`train`]) and the consecutive-frame [`Confirmer`] that the
//! paper's CWC metric is built on. The targeted attack loss of the
//! paper's Eq. 2 lives in [`loss::targeted_class_loss`].

#![warn(missing_docs)]

pub mod anchors;
mod confirm;
mod decode;
pub mod loss;
pub mod map;
mod model;
mod track;
mod train;

pub use confirm::{has_consecutive, ConfirmState, Confirmer};
pub use decode::{
    decode_head, decode_head_into, nms, nms_into, postprocess, postprocess_into, DecodeBuffers,
    Detection,
};
pub use model::{TinyYolo, YoloConfig, YoloOutputs};
pub use track::{Track, TrackState, Tracker, TrackerConfig};
pub use train::{
    detect, evaluate, forward_raw, train, DetectorTrainer, EvalMetrics, GradHook, TrainConfig,
    TrainReport,
};
