//! Decoding raw head tensors into detections, plus non-maximum
//! suppression.

use rd_scene::{GtBox, ObjectClass};
use rd_tensor::Tensor;

use crate::anchors::{head_specs, ANCHORS_PER_HEAD};

/// A decoded detection in normalized image coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Most probable class.
    pub class: ObjectClass,
    /// Softmax distribution over classes.
    pub class_probs: Vec<f32>,
    /// Objectness (sigmoid of the objectness logit).
    pub objectness: f32,
    /// Box centre x in `[0,1]`.
    pub cx: f32,
    /// Box centre y in `[0,1]`.
    pub cy: f32,
    /// Box width in `[0,1]`.
    pub w: f32,
    /// Box height in `[0,1]`.
    pub h: f32,
    /// Which head produced it (0 = coarse/stride-32, 1 = fine/stride-16).
    pub head: usize,
    /// Anchor index within the head.
    pub anchor: usize,
    /// Grid cell `(row, col)`.
    pub cell: (usize, usize),
}

impl Detection {
    /// Confidence = objectness × best class probability (YOLO convention).
    pub fn confidence(&self) -> f32 {
        self.objectness * self.class_probs[self.class.index()]
    }

    /// The detection's box as a [`GtBox`].
    pub fn to_box(&self) -> GtBox {
        GtBox {
            class: self.class,
            cx: self.cx,
            cy: self.cy,
            w: self.w,
            h: self.h,
        }
    }

    /// IoU with a ground-truth box.
    pub fn iou(&self, b: &GtBox) -> f32 {
        self.to_box().iou(b)
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - m).exp()).collect();
    let s: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / s).collect()
}

/// Decodes one head tensor `[N, A*(5+C), S, S]` into per-image raw
/// detections above `obj_threshold`, writing into `out`.
///
/// `out` is resized to `N` entries and each inner vector is cleared and
/// refilled, so a caller in a video loop reuses the same allocations
/// frame after frame.
///
/// # Panics
///
/// Panics if the tensor shape is inconsistent with `num_classes`.
pub fn decode_head_into(
    preds: &Tensor,
    head: usize,
    num_classes: usize,
    obj_threshold: f32,
    out: &mut Vec<Vec<Detection>>,
) {
    assert_eq!(preds.shape().len(), 4);
    let (n, ch, s, s2) = (
        preds.shape()[0],
        preds.shape()[1],
        preds.shape()[2],
        preds.shape()[3],
    );
    assert_eq!(s, s2, "heads are square");
    let cpa = 5 + num_classes;
    assert_eq!(ch, ANCHORS_PER_HEAD * cpa, "channel count mismatch");
    let spec = head_specs()[head];
    out.resize_with(n, Vec::new);
    out.truncate(n);
    for (ni, dets) in out.iter_mut().enumerate() {
        dets.clear();
        for a in 0..ANCHORS_PER_HEAD {
            for cy in 0..s {
                for cx in 0..s {
                    let at = |k: usize| preds.at4(ni, a * cpa + k, cy, cx);
                    let obj = sigmoid(at(4));
                    if obj < obj_threshold {
                        continue;
                    }
                    let bx = (cx as f32 + sigmoid(at(0))) / s as f32;
                    let by = (cy as f32 + sigmoid(at(1))) / s as f32;
                    let (aw, ah) = spec.anchors[a];
                    let bw = aw * at(2).clamp(-4.0, 4.0).exp();
                    let bh = ah * at(3).clamp(-4.0, 4.0).exp();
                    let logits: Vec<f32> = (0..num_classes).map(|c| at(5 + c)).collect();
                    let probs = softmax(&logits);
                    let mut best = 0;
                    for (i, &p) in probs.iter().enumerate() {
                        if p > probs[best] {
                            best = i;
                        }
                    }
                    dets.push(Detection {
                        class: ObjectClass::from_index(best),
                        class_probs: probs,
                        objectness: obj,
                        cx: bx,
                        cy: by,
                        w: bw,
                        h: bh,
                        head,
                        anchor: a,
                        cell: (cy, cx),
                    });
                }
            }
        }
    }
}

/// Decodes one head tensor into freshly allocated per-image detection
/// lists. Convenience wrapper over [`decode_head_into`].
///
/// # Panics
///
/// Panics if the tensor shape is inconsistent with `num_classes`.
pub fn decode_head(
    preds: &Tensor,
    head: usize,
    num_classes: usize,
    obj_threshold: f32,
) -> Vec<Vec<Detection>> {
    let mut out = Vec::new();
    decode_head_into(preds, head, num_classes, obj_threshold, &mut out);
    out
}

/// In-place class-agnostic non-maximum suppression: sorts `dets` by
/// descending confidence and removes every detection overlapping a
/// higher-confidence survivor by more than `iou_threshold`.
///
/// `suppressed` is the reusable keep-mask — it is cleared and regrown
/// each call, so a per-frame caller pays no mask allocation after the
/// first frame.
pub fn nms_into(dets: &mut Vec<Detection>, iou_threshold: f32, suppressed: &mut Vec<bool>) {
    dets.sort_by(|a, b| b.confidence().total_cmp(&a.confidence()));
    suppressed.clear();
    suppressed.resize(dets.len(), false);
    for i in 0..dets.len() {
        if suppressed[i] {
            continue;
        }
        let kept = dets[i].to_box();
        for j in i + 1..dets.len() {
            if !suppressed[j] && dets[j].iou(&kept) > iou_threshold {
                suppressed[j] = true;
            }
        }
    }
    let mut idx = 0;
    dets.retain(|_| {
        let keep = !suppressed[idx];
        idx += 1;
        keep
    });
}

/// Class-agnostic non-maximum suppression, keeping the highest-confidence
/// detection per overlapping group. Convenience wrapper over [`nms_into`].
pub fn nms(mut dets: Vec<Detection>, iou_threshold: f32) -> Vec<Detection> {
    let mut mask = Vec::new();
    nms_into(&mut dets, iou_threshold, &mut mask);
    dets
}

/// Reusable scratch for [`postprocess_into`]: per-head decode lists plus
/// the NMS keep-mask, all recycled across frames.
#[derive(Debug, Default)]
pub struct DecodeBuffers {
    coarse: Vec<Vec<Detection>>,
    fine: Vec<Vec<Detection>>,
    suppressed: Vec<bool>,
}

/// Full post-processing into caller-provided buffers: decode both heads,
/// merge per image, threshold and NMS. `out` is resized to the batch and
/// each inner vector cleared and refilled; `bufs` carries the decode
/// scratch between calls. Results are identical to [`postprocess`].
pub fn postprocess_into(
    coarse: &Tensor,
    fine: &Tensor,
    num_classes: usize,
    obj_threshold: f32,
    iou_threshold: f32,
    bufs: &mut DecodeBuffers,
    out: &mut Vec<Vec<Detection>>,
) {
    decode_head_into(coarse, 0, num_classes, obj_threshold, &mut bufs.coarse);
    decode_head_into(fine, 1, num_classes, obj_threshold, &mut bufs.fine);
    let n = bufs.coarse.len();
    out.resize_with(n, Vec::new);
    out.truncate(n);
    for (i, dets) in out.iter_mut().enumerate() {
        dets.clear();
        dets.append(&mut bufs.coarse[i]);
        dets.append(&mut bufs.fine[i]);
        nms_into(dets, iou_threshold, &mut bufs.suppressed);
    }
}

/// Full post-processing: decode both heads, merge, threshold and NMS.
/// Convenience wrapper over [`postprocess_into`].
pub fn postprocess(
    coarse: &Tensor,
    fine: &Tensor,
    num_classes: usize,
    obj_threshold: f32,
    iou_threshold: f32,
) -> Vec<Vec<Detection>> {
    let mut bufs = DecodeBuffers::default();
    let mut out = Vec::new();
    postprocess_into(
        coarse,
        fine,
        num_classes,
        obj_threshold,
        iou_threshold,
        &mut bufs,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_head(n: usize, s: usize) -> Tensor {
        let mut t = Tensor::zeros(&[n, 30, s, s]);
        // push objectness very low everywhere
        for ni in 0..n {
            for a in 0..3 {
                for cy in 0..s {
                    for cx in 0..s {
                        t.set4(ni, a * 10 + 4, cy, cx, -10.0);
                    }
                }
            }
        }
        t
    }

    #[test]
    fn silent_head_yields_no_detections() {
        let t = empty_head(2, 3);
        let d = decode_head(&t, 0, 5, 0.3);
        assert_eq!(d.len(), 2);
        assert!(d[0].is_empty() && d[1].is_empty());
    }

    #[test]
    fn decode_recovers_planted_box() {
        let mut t = empty_head(1, 3);
        // plant a confident detection at cell (1,2), anchor 1, class 3
        t.set4(0, 10 + 4, 1, 2, 5.0); // objectness
        t.set4(0, 10, 1, 2, 0.0); // tx -> 0.5
        t.set4(0, 10 + 1, 1, 2, 0.0); // ty -> 0.5
        t.set4(0, 10 + 2, 1, 2, 0.0); // tw -> anchor w
        t.set4(0, 10 + 3, 1, 2, 0.0);
        t.set4(0, 10 + 5 + 3, 1, 2, 8.0); // class 3 logit
        let d = decode_head(&t, 0, 5, 0.3);
        assert_eq!(d[0].len(), 1);
        let det = &d[0][0];
        assert_eq!(det.class, ObjectClass::from_index(3));
        assert!((det.cx - 2.5 / 3.0).abs() < 1e-5);
        assert!((det.cy - 1.5 / 3.0).abs() < 1e-5);
        let spec = head_specs()[0];
        assert!((det.w - spec.anchors[1].0).abs() < 1e-5);
        assert!(det.objectness > 0.99);
        assert!(det.confidence() > 0.9);
    }

    #[test]
    fn nms_suppresses_overlaps_keeps_best() {
        let mk = |conf: f32, cx: f32| Detection {
            class: ObjectClass::Car,
            class_probs: vec![0.0, 0.0, 0.0, 1.0, 0.0],
            objectness: conf,
            cx,
            cy: 0.5,
            w: 0.2,
            h: 0.2,
            head: 0,
            anchor: 0,
            cell: (0, 0),
        };
        let kept = nms(vec![mk(0.9, 0.50), mk(0.8, 0.52), mk(0.7, 0.9)], 0.45);
        assert_eq!(kept.len(), 2);
        assert!((kept[0].objectness - 0.9).abs() < 1e-6);
        assert!((kept[1].cx - 0.9).abs() < 1e-6);
    }

    #[test]
    fn reused_buffers_match_fresh_postprocess() {
        let mk_frame = |seed: f32| {
            let mut coarse = empty_head(2, 3);
            let mut fine = empty_head(2, 6);
            coarse.set4(0, 4, 1, 1, 4.0 + seed);
            coarse.set4(0, 5, 1, 1, 3.0);
            coarse.set4(1, 10 + 4, 0, 2, 3.5 - seed);
            coarse.set4(1, 10 + 7, 0, 2, 2.0);
            fine.set4(0, 20 + 4, 3, 3, 5.0);
            fine.set4(0, 20 + 6, 3, 3, 4.0 + seed);
            (coarse, fine)
        };
        let mut bufs = DecodeBuffers::default();
        let mut out = Vec::new();
        // two frames through the same buffers, each checked against the
        // allocating reference path
        for seed in [0.0, 1.5] {
            let (coarse, fine) = mk_frame(seed);
            let fresh = postprocess(&coarse, &fine, 5, 0.3, 0.45);
            postprocess_into(&coarse, &fine, 5, 0.3, 0.45, &mut bufs, &mut out);
            assert_eq!(out, fresh, "buffer reuse changed results (seed {seed})");
        }
    }

    #[test]
    fn nms_into_matches_nms() {
        let mk = |conf: f32, cx: f32| Detection {
            class: ObjectClass::Car,
            class_probs: vec![0.0, 0.0, 0.0, 1.0, 0.0],
            objectness: conf,
            cx,
            cy: 0.5,
            w: 0.2,
            h: 0.2,
            head: 0,
            anchor: 0,
            cell: (0, 0),
        };
        let dets = vec![
            mk(0.6, 0.50),
            mk(0.9, 0.52),
            mk(0.8, 0.53),
            mk(0.7, 0.90),
            mk(0.5, 0.91),
        ];
        let reference = nms(dets.clone(), 0.45);
        let mut in_place = dets;
        let mut mask = vec![true; 1]; // stale mask must be rebuilt
        nms_into(&mut in_place, 0.45, &mut mask);
        assert_eq!(in_place, reference);
    }

    #[test]
    fn extreme_tw_is_clamped() {
        let mut t = empty_head(1, 3);
        t.set4(0, 4, 0, 0, 5.0);
        t.set4(0, 2, 0, 0, 100.0); // absurd tw
        let d = decode_head(&t, 0, 5, 0.3);
        assert!(d[0][0].w.is_finite());
        assert!(d[0][0].w < 60.0);
    }
}
