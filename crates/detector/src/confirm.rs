//! The AV's temporal confirmation rule.
//!
//! The paper's key observation: an autonomous vehicle acts on a detection
//! only after it persists for several consecutive frames ("an object is
//! confirmed by AVs only after the object is detected for consecutive
//! frames"), so a patch that fools single frames intermittently never
//! actually diverts the vehicle. [`Confirmer`] implements that rule and is
//! what the CWC metric is computed against.

use rd_scene::ObjectClass;

/// Streaming consecutive-frame confirmation with window `m` (the paper
/// uses `m = 3`).
///
/// # Examples
///
/// ```
/// use rd_detector::Confirmer;
/// use rd_scene::ObjectClass;
///
/// let mut c = Confirmer::new(3);
/// assert_eq!(c.push(Some(ObjectClass::Car)), None);
/// assert_eq!(c.push(Some(ObjectClass::Car)), None);
/// assert_eq!(c.push(Some(ObjectClass::Car)), Some(ObjectClass::Car));
/// ```
#[derive(Debug, Clone)]
pub struct Confirmer {
    window: usize,
    current: Option<ObjectClass>,
    run: usize,
    confirmed: Vec<ObjectClass>,
}

impl Confirmer {
    /// Creates a confirmer requiring `window` consecutive detections.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Confirmer {
            window,
            current: None,
            run: 0,
            confirmed: Vec::new(),
        }
    }

    /// The confirmation window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Feeds the per-frame classification of the tracked object (or `None`
    /// when nothing was detected). Returns `Some(class)` on the frame the
    /// class becomes confirmed.
    pub fn push(&mut self, observation: Option<ObjectClass>) -> Option<ObjectClass> {
        match observation {
            Some(class) if self.current == Some(class) => {
                self.run += 1;
            }
            Some(class) => {
                self.current = Some(class);
                self.run = 1;
            }
            None => {
                self.current = None;
                self.run = 0;
            }
        }
        if self.run == self.window {
            let class = self.current.expect("run > 0 implies a class");
            self.confirmed.push(class);
            Some(class)
        } else {
            None
        }
    }

    /// Every class that has been confirmed so far (in order).
    pub fn confirmed(&self) -> &[ObjectClass] {
        &self.confirmed
    }

    /// Whether `class` was ever confirmed.
    pub fn ever_confirmed(&self, class: ObjectClass) -> bool {
        self.confirmed.contains(&class)
    }
}

/// Streaming CWC state for one *target* class: the O(1)-per-frame
/// replacement for buffering a whole classification history and scanning
/// it with [`has_consecutive`] afterwards.
///
/// Feeding every frame of a history through [`ConfirmState::push`] and
/// reading [`ConfirmState::confirmed`] gives exactly
/// `has_consecutive(&history, class, window)` — the streaming evaluation
/// pipeline relies on that equivalence (it is property-tested), because
/// its CWC must be bitwise-identical to the buffered reference path's.
///
/// Unlike [`Confirmer`], which tracks whichever class is currently
/// persisting, `ConfirmState` watches a single class fixed at
/// construction and latches once the window is reached.
///
/// # Examples
///
/// ```
/// use rd_detector::ConfirmState;
/// use rd_scene::ObjectClass;
///
/// let mut s = ConfirmState::new(ObjectClass::Car, 3);
/// for _ in 0..3 {
///     s.push(Some(ObjectClass::Car));
/// }
/// assert!(s.confirmed());
/// ```
#[derive(Debug, Clone)]
pub struct ConfirmState {
    class: ObjectClass,
    window: usize,
    run: usize,
    confirmed: bool,
}

impl ConfirmState {
    /// Creates streaming confirmation state for `class` with the given
    /// consecutive-frame `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(class: ObjectClass, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        ConfirmState {
            class,
            window,
            run: 0,
            confirmed: false,
        }
    }

    /// The class being watched.
    pub fn class(&self) -> ObjectClass {
        self.class
    }

    /// The confirmation window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Feeds one frame's classification. Any observation other than the
    /// watched class (including `None`) resets the run, exactly like the
    /// run-length scan in [`has_consecutive`].
    pub fn push(&mut self, observation: Option<ObjectClass>) {
        if observation == Some(self.class) {
            self.run += 1;
            if self.run >= self.window {
                self.confirmed = true;
            }
        } else {
            self.run = 0;
        }
    }

    /// Whether the watched class has ever persisted for a full window.
    pub fn confirmed(&self) -> bool {
        self.confirmed
    }
}

/// Offline helper: does `history` contain `window` consecutive frames of
/// `class`? This is exactly the paper's CWC criterion.
pub fn has_consecutive(history: &[Option<ObjectClass>], class: ObjectClass, window: usize) -> bool {
    let mut run = 0usize;
    for &h in history {
        if h == Some(class) {
            run += 1;
            if run >= window {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interruption_resets_the_run() {
        let mut c = Confirmer::new(3);
        assert_eq!(c.push(Some(ObjectClass::Car)), None);
        assert_eq!(c.push(Some(ObjectClass::Car)), None);
        assert_eq!(c.push(None), None);
        assert_eq!(c.push(Some(ObjectClass::Car)), None);
        assert_eq!(c.push(Some(ObjectClass::Car)), None);
        assert_eq!(c.push(Some(ObjectClass::Car)), Some(ObjectClass::Car));
    }

    #[test]
    fn class_switch_resets_the_run() {
        let mut c = Confirmer::new(2);
        c.push(Some(ObjectClass::Car));
        c.push(Some(ObjectClass::Word));
        assert_eq!(c.confirmed(), &[] as &[ObjectClass]);
        assert_eq!(c.push(Some(ObjectClass::Word)), Some(ObjectClass::Word));
        assert!(c.ever_confirmed(ObjectClass::Word));
        assert!(!c.ever_confirmed(ObjectClass::Car));
    }

    #[test]
    fn confirmation_fires_once_per_run() {
        let mut c = Confirmer::new(2);
        c.push(Some(ObjectClass::Car));
        assert_eq!(c.push(Some(ObjectClass::Car)), Some(ObjectClass::Car));
        // further frames of the same run do not re-confirm
        assert_eq!(c.push(Some(ObjectClass::Car)), None);
        assert_eq!(c.confirmed().len(), 1);
    }

    #[test]
    fn offline_matches_streaming() {
        let hist = vec![
            Some(ObjectClass::Car),
            Some(ObjectClass::Car),
            None,
            Some(ObjectClass::Word),
            Some(ObjectClass::Word),
            Some(ObjectClass::Word),
        ];
        assert!(!has_consecutive(&hist, ObjectClass::Car, 3));
        assert!(has_consecutive(&hist, ObjectClass::Word, 3));
        let mut c = Confirmer::new(3);
        for &h in &hist {
            c.push(h);
        }
        assert!(c.ever_confirmed(ObjectClass::Word));
        assert!(!c.ever_confirmed(ObjectClass::Car));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = Confirmer::new(0);
    }

    #[test]
    fn confirm_state_matches_offline_scan() {
        let hist = vec![
            Some(ObjectClass::Car),
            Some(ObjectClass::Car),
            None,
            Some(ObjectClass::Car),
            Some(ObjectClass::Word),
            Some(ObjectClass::Car),
            Some(ObjectClass::Car),
            Some(ObjectClass::Car),
        ];
        for window in 1..=4 {
            for class in [ObjectClass::Car, ObjectClass::Word, ObjectClass::Mark] {
                let mut s = ConfirmState::new(class, window);
                for &h in &hist {
                    s.push(h);
                }
                assert_eq!(
                    s.confirmed(),
                    has_consecutive(&hist, class, window),
                    "class {class:?} window {window}"
                );
            }
        }
    }

    #[test]
    fn confirm_state_latches() {
        let mut s = ConfirmState::new(ObjectClass::Car, 2);
        s.push(Some(ObjectClass::Car));
        s.push(Some(ObjectClass::Car));
        assert!(s.confirmed());
        s.push(None);
        assert!(s.confirmed(), "confirmation is permanent for CWC");
        assert_eq!((s.class(), s.window()), (ObjectClass::Car, 2));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn confirm_state_zero_window_rejected() {
        let _ = ConfirmState::new(ObjectClass::Car, 0);
    }
}
