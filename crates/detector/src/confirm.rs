//! The AV's temporal confirmation rule.
//!
//! The paper's key observation: an autonomous vehicle acts on a detection
//! only after it persists for several consecutive frames ("an object is
//! confirmed by AVs only after the object is detected for consecutive
//! frames"), so a patch that fools single frames intermittently never
//! actually diverts the vehicle. [`Confirmer`] implements that rule and is
//! what the CWC metric is computed against.

use rd_scene::ObjectClass;

/// Streaming consecutive-frame confirmation with window `m` (the paper
/// uses `m = 3`).
///
/// # Examples
///
/// ```
/// use rd_detector::Confirmer;
/// use rd_scene::ObjectClass;
///
/// let mut c = Confirmer::new(3);
/// assert_eq!(c.push(Some(ObjectClass::Car)), None);
/// assert_eq!(c.push(Some(ObjectClass::Car)), None);
/// assert_eq!(c.push(Some(ObjectClass::Car)), Some(ObjectClass::Car));
/// ```
#[derive(Debug, Clone)]
pub struct Confirmer {
    window: usize,
    current: Option<ObjectClass>,
    run: usize,
    confirmed: Vec<ObjectClass>,
}

impl Confirmer {
    /// Creates a confirmer requiring `window` consecutive detections.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Confirmer {
            window,
            current: None,
            run: 0,
            confirmed: Vec::new(),
        }
    }

    /// The confirmation window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Feeds the per-frame classification of the tracked object (or `None`
    /// when nothing was detected). Returns `Some(class)` on the frame the
    /// class becomes confirmed.
    pub fn push(&mut self, observation: Option<ObjectClass>) -> Option<ObjectClass> {
        match observation {
            Some(class) if self.current == Some(class) => {
                self.run += 1;
            }
            Some(class) => {
                self.current = Some(class);
                self.run = 1;
            }
            None => {
                self.current = None;
                self.run = 0;
            }
        }
        if self.run == self.window {
            let class = self.current.expect("run > 0 implies a class");
            self.confirmed.push(class);
            Some(class)
        } else {
            None
        }
    }

    /// Every class that has been confirmed so far (in order).
    pub fn confirmed(&self) -> &[ObjectClass] {
        &self.confirmed
    }

    /// Whether `class` was ever confirmed.
    pub fn ever_confirmed(&self, class: ObjectClass) -> bool {
        self.confirmed.contains(&class)
    }
}

/// Offline helper: does `history` contain `window` consecutive frames of
/// `class`? This is exactly the paper's CWC criterion.
pub fn has_consecutive(history: &[Option<ObjectClass>], class: ObjectClass, window: usize) -> bool {
    let mut run = 0usize;
    for &h in history {
        if h == Some(class) {
            run += 1;
            if run >= window {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interruption_resets_the_run() {
        let mut c = Confirmer::new(3);
        assert_eq!(c.push(Some(ObjectClass::Car)), None);
        assert_eq!(c.push(Some(ObjectClass::Car)), None);
        assert_eq!(c.push(None), None);
        assert_eq!(c.push(Some(ObjectClass::Car)), None);
        assert_eq!(c.push(Some(ObjectClass::Car)), None);
        assert_eq!(c.push(Some(ObjectClass::Car)), Some(ObjectClass::Car));
    }

    #[test]
    fn class_switch_resets_the_run() {
        let mut c = Confirmer::new(2);
        c.push(Some(ObjectClass::Car));
        c.push(Some(ObjectClass::Word));
        assert_eq!(c.confirmed(), &[] as &[ObjectClass]);
        assert_eq!(c.push(Some(ObjectClass::Word)), Some(ObjectClass::Word));
        assert!(c.ever_confirmed(ObjectClass::Word));
        assert!(!c.ever_confirmed(ObjectClass::Car));
    }

    #[test]
    fn confirmation_fires_once_per_run() {
        let mut c = Confirmer::new(2);
        c.push(Some(ObjectClass::Car));
        assert_eq!(c.push(Some(ObjectClass::Car)), Some(ObjectClass::Car));
        // further frames of the same run do not re-confirm
        assert_eq!(c.push(Some(ObjectClass::Car)), None);
        assert_eq!(c.confirmed().len(), 1);
    }

    #[test]
    fn offline_matches_streaming() {
        let hist = vec![
            Some(ObjectClass::Car),
            Some(ObjectClass::Car),
            None,
            Some(ObjectClass::Word),
            Some(ObjectClass::Word),
            Some(ObjectClass::Word),
        ];
        assert!(!has_consecutive(&hist, ObjectClass::Car, 3));
        assert!(has_consecutive(&hist, ObjectClass::Word, 3));
        let mut c = Confirmer::new(3);
        for &h in &hist {
            c.push(h);
        }
        assert!(c.ever_confirmed(ObjectClass::Word));
        assert!(!c.ever_confirmed(ObjectClass::Car));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = Confirmer::new(0);
    }
}
