//! Plan corruption helpers for analyzer mutation tests.
//!
//! Each [`Corruption`] is a minimal, targeted break of one invariant a
//! specific lint is supposed to guard. The analyzer test suite applies
//! each one to a freshly lifted [`PlanMeta`] and asserts that the
//! intended [`PlanLintKind`](crate::PlanLintKind) fires **at the exact
//! op path** — proving the lints detect, not merely describe.

use rd_tensor::PlanMeta;

/// A single targeted plan corruption.
#[derive(Debug, Clone, Copy)]
pub enum Corruption {
    /// Swap op `op`'s first read with its first write, making it
    /// consume its own (unwritten) output. Target: `use-before-def`.
    SwapBufferIndices {
        /// Op index to corrupt.
        op: usize,
    },
    /// Redirect op `op`'s first read to slot `to` (e.g. an op's output
    /// that already has a producer, orphaning the real input). Targets:
    /// `dead-buffer` / `race` depending on geometry.
    RedirectRead {
        /// Op index to corrupt.
        op: usize,
        /// New slot for the op's first read.
        to: usize,
    },
    /// Make op `op` write the same slot as op `victim`, creating a
    /// second producer. Target: `alias` (and the train fan-out race).
    DuplicateWrite {
        /// Op index to corrupt.
        op: usize,
        /// Op whose output slot gets a second producer.
        victim: usize,
    },
    /// Drop op `op`'s first parameter reference (e.g. the conv weight).
    /// Target: `fusion-order` / `param-coverage`.
    DropParam {
        /// Op index to corrupt.
        op: usize,
    },
    /// Reverse op `op`'s fused chain, e.g. `conv→bn→leaky` into
    /// `leaky→bn→conv`. Target: `fusion-order`.
    ReorderFusedChain {
        /// Op index to corrupt.
        op: usize,
    },
    /// Flip op `op`'s stored `gx_direct` routing flag. Target:
    /// `gx-routing`.
    FlipGxDirect {
        /// Op index to corrupt.
        op: usize,
    },
    /// Corrupt op `op`'s conv output height so the group chunk strides
    /// disagree with the slot table. Target: `race`.
    CorruptConvGeom {
        /// Op index to corrupt.
        op: usize,
    },
    /// Shrink the train plan's column-cache budget below the smallest
    /// conv's single-sample column matrix. Target: `col-budget`.
    ShrinkColBudget,
}

/// Apply `c` to `meta` in place.
///
/// # Panics
///
/// Panics when the corruption does not fit the plan (op index out of
/// range, flipping `gx_direct` on a non-conv, ...) — mutation tests
/// should corrupt something real.
pub fn apply(meta: &mut PlanMeta, c: Corruption) {
    match c {
        Corruption::SwapBufferIndices { op } => {
            let o = &mut meta.ops[op];
            assert!(
                !o.reads.is_empty() && !o.writes.is_empty(),
                "op {op} has no read/write pair to swap"
            );
            std::mem::swap(&mut o.reads[0], &mut o.writes[0]);
        }
        Corruption::RedirectRead { op, to } => {
            assert!(to < meta.slots.len(), "slot {to} out of range");
            *meta.ops[op].reads.first_mut().expect("op has no reads") = to;
        }
        Corruption::DuplicateWrite { op, victim } => {
            let slot = *meta.ops[victim]
                .writes
                .first()
                .expect("victim writes nothing");
            *meta.ops[op].writes.first_mut().expect("op writes nothing") = slot;
        }
        Corruption::DropParam { op } => {
            assert!(!meta.ops[op].params.is_empty(), "op {op} has no params");
            meta.ops[op].params.remove(0);
        }
        Corruption::ReorderFusedChain { op } => {
            assert!(meta.ops[op].fused.len() > 1, "op {op} fuses a single stage");
            meta.ops[op].fused.reverse();
        }
        Corruption::FlipGxDirect { op } => {
            let g = meta.ops[op]
                .gx_direct
                .as_mut()
                .expect("op carries no gx_direct flag");
            *g = !*g;
        }
        Corruption::CorruptConvGeom { op } => {
            let c = meta.ops[op].conv.as_mut().expect("op is not a conv");
            c.ho += 1;
        }
        Corruption::ShrinkColBudget => {
            let smallest = meta
                .ops
                .iter()
                .filter_map(|o| o.conv.as_ref().map(|c| c.cols_len()))
                .min()
                .expect("plan has no convs");
            meta.col_budget = Some((smallest * std::mem::size_of::<f32>()).saturating_sub(1));
        }
    }
}
