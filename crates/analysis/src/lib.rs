//! # rd-analysis
//!
//! Static analyses over the `rd-tensor` autograd tape.
//!
//! The attack pipeline (GAN patch synthesis → EOT composite → YOLO
//! detector) builds long single-use [`rd_tensor::Graph`]s where a silent
//! shape mismatch or a NaN poisons an entire multi-epoch run. Every tape
//! node records declarative [`rd_tensor::OpMeta`] alongside its opaque
//! backward closure, and this crate works entirely off that metadata:
//!
//! * [`validate`] — symbolic shape inference. Per-op shape rules
//!   re-derive every node's output shape from its parents and report
//!   *all* mismatches with op-path traces (e.g.
//!   `head16/conv3: conv2d weight OC×C×K×K has C=32, input NCHW has
//!   C=64`) instead of panicking on the first. Works on eager tapes and
//!   on shape-only tapes built with [`rd_tensor::Graph::declare`], which
//!   lets model builders check their wiring before any kernel runs.
//! * [`lint`] — graph lints: parameters unreachable from the loss, dead
//!   nodes never consumed, fan-in anomalies, and parameters whose
//!   gradient is structurally always zero.
//! * [`audit_non_finite`] — NaN/Inf provenance: finds the first
//!   non-finite value on the tape and reports the producing op, its
//!   parents' value ranges and the nearest fully-finite ancestor.
//! * [`grad_audit`] — a harness sweeping every op's backward pass
//!   against central differences, emitting a pass/fail table.
//!
//! Since PR 4/5 the hot paths no longer execute tapes — they execute
//! *compiled plans* ([`rd_tensor::InferPlan`] / [`rd_tensor::TrainPlan`]),
//! and those have their own analyzer, working off the
//! [`rd_tensor::PlanMeta`] introspection each plan exports:
//!
//! * [`ir`] — the dataflow IR ([`PlanIr`]: per-slot def/use chains)
//!   plus fusion-legality, parameter-coverage/orphan and column-budget
//!   lints; [`audit_plan`] runs everything, and
//!   [`audit_plan_or_panic`] is the compile-site hook the model crates
//!   call on every freshly cached plan (debug builds, or release with
//!   `RD_PLAN_AUDIT=1`).
//! * [`liveness`] — buffers proven written-before-read, roots defined,
//!   dead buffers flagged; plus live-range/peak-footprint statistics.
//! * [`alias`] — single-producer/no-in-place/input-read-only proofs
//!   and re-derivation of the train convs' `gx_direct` routing.
//! * [`race`] — a static data-race check for the worker-group fan-out:
//!   the sample partition is exhaustively verified and every conv's
//!   chunk strides are proven consistent with the slot table.
//! * [`bounds`] — interval + ulp-error propagation certifying a
//!   [`bounds::LogitBound`] for a candidate GEMM kernel substitution
//!   (the `f32x8`/FMA tier): a static max-abs-divergence bound on the
//!   logits, checked against observed divergence by the test suite.
//! * [`plan_mutate`] — targeted plan corruptions for mutation-testing
//!   the lints themselves.
//!
//! # Examples
//!
//! Validate a shape-only model description before running it:
//!
//! ```
//! use rd_tensor::Graph;
//!
//! let mut g = Graph::new();
//! let x = g.declare("input", &[], &[], &[1, 64, 12, 12]);
//! g.push_scope("head16");
//! // 3x3 conv whose weight expects 32 input channels — mis-wired.
//! let w = g.declare("param", &[], &[], &[18, 32, 3, 3]);
//! g.push_scope("conv3");
//! let y = g.declare("conv2d", &[x, w], &[("stride", 1), ("pad", 1)], &[1, 18, 12, 12]);
//! g.pop_scope();
//! g.pop_scope();
//! let issues = rd_analysis::validate(&g).unwrap_err();
//! assert!(issues[0].to_string().contains("head16/conv3"));
//! assert!(issues[0].to_string().contains("C=32"));
//! # let _ = y;
//! ```

pub mod alias;
pub mod bounds;
pub mod grad_audit;
pub mod ir;
mod lints;
pub mod liveness;
mod nan;
pub mod plan_mutate;
pub mod race;
mod shape;

pub use bounds::{certify_logit_bounds, KernelModel, LogitBound};
pub use grad_audit::{render_table, run_grad_audit, OpReport};
pub use ir::{
    audit_plan, audit_plan_or_panic, check_col_budget, check_fusion, check_params, orphan_params,
    plan_audit_enabled, PlanIr, PlanIssue, PlanLintKind,
};
pub use lints::{lint, lint_with_params, LintIssue, LintKind};
pub use nan::{audit_non_finite, NanReport, ValueRange};
pub use plan_mutate::Corruption;
pub use shape::{validate, validate_with_root, ShapeIssue};
