//! # rd-analysis
//!
//! Static analyses over the `rd-tensor` autograd tape.
//!
//! The attack pipeline (GAN patch synthesis → EOT composite → YOLO
//! detector) builds long single-use [`rd_tensor::Graph`]s where a silent
//! shape mismatch or a NaN poisons an entire multi-epoch run. Every tape
//! node records declarative [`rd_tensor::OpMeta`] alongside its opaque
//! backward closure, and this crate works entirely off that metadata:
//!
//! * [`validate`] — symbolic shape inference. Per-op shape rules
//!   re-derive every node's output shape from its parents and report
//!   *all* mismatches with op-path traces (e.g.
//!   `head16/conv3: conv2d weight OC×C×K×K has C=32, input NCHW has
//!   C=64`) instead of panicking on the first. Works on eager tapes and
//!   on shape-only tapes built with [`rd_tensor::Graph::declare`], which
//!   lets model builders check their wiring before any kernel runs.
//! * [`lint`] — graph lints: parameters unreachable from the loss, dead
//!   nodes never consumed, fan-in anomalies, and parameters whose
//!   gradient is structurally always zero.
//! * [`audit_non_finite`] — NaN/Inf provenance: finds the first
//!   non-finite value on the tape and reports the producing op, its
//!   parents' value ranges and the nearest fully-finite ancestor.
//! * [`grad_audit`] — a harness sweeping every op's backward pass
//!   against central differences, emitting a pass/fail table.
//!
//! # Examples
//!
//! Validate a shape-only model description before running it:
//!
//! ```
//! use rd_tensor::Graph;
//!
//! let mut g = Graph::new();
//! let x = g.declare("input", &[], &[], &[1, 64, 12, 12]);
//! g.push_scope("head16");
//! // 3x3 conv whose weight expects 32 input channels — mis-wired.
//! let w = g.declare("param", &[], &[], &[18, 32, 3, 3]);
//! g.push_scope("conv3");
//! let y = g.declare("conv2d", &[x, w], &[("stride", 1), ("pad", 1)], &[1, 18, 12, 12]);
//! g.pop_scope();
//! g.pop_scope();
//! let issues = rd_analysis::validate(&g).unwrap_err();
//! assert!(issues[0].to_string().contains("head16/conv3"));
//! assert!(issues[0].to_string().contains("C=32"));
//! # let _ = y;
//! ```

pub mod grad_audit;
mod lints;
mod nan;
mod shape;

pub use grad_audit::{render_table, run_grad_audit, OpReport};
pub use lints::{lint, lint_with_params, LintIssue, LintKind};
pub use nan::{audit_non_finite, NanReport, ValueRange};
pub use shape::{validate, validate_with_root, ShapeIssue};
