//! Symbolic shape inference and pre-run validation over the tape.
//!
//! Every [`Graph`] node carries [`OpMeta`] with the shape it claims to
//! produce. This module re-derives each node's output shape from its
//! parents' shapes using per-op rules and collects *every* disagreement,
//! instead of panicking on the first one the way the eager kernels do.
//! Recovery after an error uses the node's claimed shape, so one
//! mis-wired layer produces one report rather than a cascade.

use rd_tensor::{Graph, OpMeta, VarId};

/// One shape disagreement, anchored to a tape node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeIssue {
    /// Tape position of the offending node.
    pub node: usize,
    /// `scope/op` label of the node (e.g. `head16/conv3: conv2d`).
    pub path: String,
    /// What went wrong, in the validator's wording.
    pub message: String,
}

impl std::fmt::Display for ShapeIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

fn issue(node: usize, meta: &OpMeta, message: String) -> ShapeIssue {
    let path = if meta.scope.is_empty() {
        format!("{}#{}", meta.op, node)
    } else {
        format!("{}/{}", meta.scope, meta.op)
    };
    ShapeIssue {
        node,
        path,
        message,
    }
}

/// Ops whose metadata is trusted as-is: leaves, shape-only declarations
/// of leaves, and fused ops without a registered rule.
fn is_leaf(op: &str) -> bool {
    matches!(op, "input" | "param")
}

fn fmt_shape(s: &[usize]) -> String {
    let dims: Vec<String> = s.iter().map(|d| d.to_string()).collect();
    format!("[{}]", dims.join("×"))
}

/// Derives the output shape of one op from its parents' shapes, or
/// explains why it cannot. `Ok(None)` means "no rule for this op; trust
/// the claimed shape".
fn derive(op: &str, parents: &[&[usize]], meta: &OpMeta) -> Result<Option<Vec<usize>>, String> {
    let arity = |n: usize| -> Result<(), String> {
        if parents.len() == n {
            Ok(())
        } else {
            Err(format!(
                "{op} expects {n} parent(s), metadata records {}",
                parents.len()
            ))
        }
    };
    let same_as_parent = |n: usize| -> Result<Option<Vec<usize>>, String> {
        arity(n)?;
        Ok(Some(parents[0].to_vec()))
    };
    let scalar = |n: usize| -> Result<Option<Vec<usize>>, String> {
        arity(n)?;
        Ok(Some(vec![1]))
    };
    let nchw = |which: &str, s: &[usize]| -> Result<(usize, usize, usize, usize), String> {
        if s.len() == 4 {
            Ok((s[0], s[1], s[2], s[3]))
        } else {
            Err(format!("{op} {which} must be NCHW, got {}", fmt_shape(s)))
        }
    };
    let attr = |name: &str| -> Result<usize, String> {
        meta.attr(name)
            .ok_or_else(|| format!("{op} metadata is missing the `{name}` attribute"))
    };

    match op {
        "add" | "sub" | "mul" | "lerp_mask" => {
            arity(2)?;
            if parents[0] != parents[1] {
                return Err(format!(
                    "{op} operands must match: lhs {}, rhs {}",
                    fmt_shape(parents[0]),
                    fmt_shape(parents[1])
                ));
            }
            Ok(Some(parents[0].to_vec()))
        }
        "scale" | "add_scalar" | "mul_const" | "add_const" | "relu" | "leaky_relu" | "sigmoid"
        | "tanh" | "powf_const" | "clamp" => same_as_parent(1),
        "reshape" => {
            arity(1)?;
            let from: usize = parents[0].iter().product();
            let to: usize = meta.expected_shape.iter().product();
            if from != to {
                return Err(format!(
                    "reshape changes element count: input {} has {from} elements, target {} has {to}",
                    fmt_shape(parents[0]),
                    fmt_shape(&meta.expected_shape)
                ));
            }
            Ok(Some(meta.expected_shape.clone()))
        }
        "repeat_channels" => {
            arity(1)?;
            let (n, c, h, w) = nchw("input", parents[0])?;
            if c != 1 {
                return Err(format!(
                    "repeat_channels input must have 1 channel, got C={c}"
                ));
            }
            Ok(Some(vec![n, attr("k")?, h, w]))
        }
        "concat_channels" => {
            arity(2)?;
            let (n, ca, h, w) = nchw("lhs", parents[0])?;
            let (nb, cb, hb, wb) = nchw("rhs", parents[1])?;
            if n != nb || (h, w) != (hb, wb) {
                return Err(format!(
                    "concat_channels batch/spatial dims must match: lhs {}, rhs {}",
                    fmt_shape(parents[0]),
                    fmt_shape(parents[1])
                ));
            }
            Ok(Some(vec![n, ca + cb, h, w]))
        }
        "concat_batch" => {
            if parents.is_empty() {
                return Err("concat_batch needs at least one parent".to_string());
            }
            let rest = &parents[0][1..];
            let mut total = 0usize;
            for (i, p) in parents.iter().enumerate() {
                if p.is_empty() || &p[1..] != rest {
                    return Err(format!(
                        "concat_batch part {i} has trailing dims {}, part 0 has {}",
                        fmt_shape(p),
                        fmt_shape(parents[0])
                    ));
                }
                total += p[0];
            }
            let mut out = vec![total];
            out.extend_from_slice(rest);
            Ok(Some(out))
        }
        "sum_all" | "mean_all" => scalar(1),
        "matmul" => {
            arity(2)?;
            let (a, b) = (parents[0], parents[1]);
            if a.len() != 2 || b.len() != 2 {
                return Err(format!(
                    "matmul needs rank-2 operands, got {} and {}",
                    fmt_shape(a),
                    fmt_shape(b)
                ));
            }
            if a[1] != b[0] {
                return Err(format!(
                    "matmul inner dims must match: lhs {} has K={}, rhs {} has K={}",
                    fmt_shape(a),
                    a[1],
                    fmt_shape(b),
                    b[0]
                ));
            }
            Ok(Some(vec![a[0], b[1]]))
        }
        "linear" => {
            arity(3)?;
            let (x, w, b) = (parents[0], parents[1], parents[2]);
            if x.len() != 2 || w.len() != 2 {
                return Err(format!(
                    "linear needs x [N×I] and w [O×I], got {} and {}",
                    fmt_shape(x),
                    fmt_shape(w)
                ));
            }
            if x[1] != w[1] {
                return Err(format!(
                    "linear weight O×I has I={}, input N×I has I={}",
                    w[1], x[1]
                ));
            }
            let blen: usize = b.iter().product();
            if blen != w[0] {
                return Err(format!(
                    "linear bias has {blen} elements, weight O×I has O={}",
                    w[0]
                ));
            }
            Ok(Some(vec![x[0], w[0]]))
        }
        "add_bias_channel" => {
            arity(2)?;
            let (_, c, _, _) = nchw("input", parents[0])?;
            let blen: usize = parents[1].iter().product();
            if blen != c {
                return Err(format!(
                    "add_bias_channel bias has {blen} elements, input NCHW has C={c}"
                ));
            }
            Ok(Some(parents[0].to_vec()))
        }
        "conv2d" => {
            arity(2)?;
            let (n, c, h, w) = nchw("input", parents[0])?;
            let (o, c2, kh, kw) = nchw("weight", parents[1])?;
            if c2 != c {
                return Err(format!(
                    "conv2d weight OC×C×K×K has C={c2}, input NCHW has C={c}"
                ));
            }
            let (stride, pad) = (attr("stride")?, attr("pad")?);
            if stride == 0 {
                return Err("conv2d stride must be positive".to_string());
            }
            if h + 2 * pad < kh || w + 2 * pad < kw {
                return Err(format!(
                    "conv2d kernel {kh}×{kw} is larger than padded input {}×{}",
                    h + 2 * pad,
                    w + 2 * pad
                ));
            }
            Ok(Some(vec![
                n,
                o,
                (h + 2 * pad - kh) / stride + 1,
                (w + 2 * pad - kw) / stride + 1,
            ]))
        }
        "max_pool2d" => {
            arity(1)?;
            let (n, c, h, w) = nchw("input", parents[0])?;
            let (k, stride, pad) = (attr("k")?, attr("stride")?, attr("pad")?);
            if stride == 0 {
                return Err("max_pool2d stride must be positive".to_string());
            }
            if h + pad < k || w + pad < k {
                return Err(format!(
                    "max_pool2d window {k}×{k} is larger than padded input {}×{}",
                    h + pad,
                    w + pad
                ));
            }
            Ok(Some(vec![
                n,
                c,
                (h + pad - k) / stride + 1,
                (w + pad - k) / stride + 1,
            ]))
        }
        "upsample_nearest2x" => {
            arity(1)?;
            let (n, c, h, w) = nchw("input", parents[0])?;
            Ok(Some(vec![n, c, 2 * h, 2 * w]))
        }
        "batch_norm2d_train" | "batch_norm2d_eval" => {
            arity(3)?;
            let (_, c, _, _) = nchw("input", parents[0])?;
            for (name, p) in [("gamma", parents[1]), ("beta", parents[2])] {
                let plen: usize = p.iter().product();
                if plen != c {
                    return Err(format!(
                        "{op} {name} has {plen} elements, input NCHW has C={c}"
                    ));
                }
            }
            Ok(Some(parents[0].to_vec()))
        }
        "softmax_cross_entropy_rows" => {
            arity(1)?;
            if parents[0].len() != 2 {
                return Err(format!(
                    "softmax_cross_entropy_rows logits must be [N×C], got {}",
                    fmt_shape(parents[0])
                ));
            }
            if let Some(classes) = meta.attr("classes") {
                if parents[0][1] != classes {
                    return Err(format!(
                        "softmax_cross_entropy_rows logits have {} columns, targets assume {classes} classes",
                        parents[0][1]
                    ));
                }
            }
            Ok(Some(vec![1]))
        }
        "bce_with_logits" | "mse" => scalar(1),
        "warp" => {
            arity(1)?;
            let (n, c, _, _) = nchw("input", parents[0])?;
            Ok(Some(vec![n, c, attr("out_h")?, attr("out_w")?]))
        }
        _ => Ok(None),
    }
}

/// How many parents the rule table expects for `op`; `None` when the op
/// is unknown or variadic. Used by the fan-in lint.
pub(crate) fn expected_arity(op: &str) -> Option<(usize, usize)> {
    match op {
        "input" | "param" => Some((0, 0)),
        "add" | "sub" | "mul" | "lerp_mask" | "concat_channels" | "matmul" | "add_bias_channel"
        | "conv2d" => Some((2, 2)),
        "scale"
        | "add_scalar"
        | "mul_const"
        | "add_const"
        | "relu"
        | "leaky_relu"
        | "sigmoid"
        | "tanh"
        | "powf_const"
        | "clamp"
        | "reshape"
        | "repeat_channels"
        | "sum_all"
        | "mean_all"
        | "max_pool2d"
        | "upsample_nearest2x"
        | "softmax_cross_entropy_rows"
        | "bce_with_logits"
        | "mse"
        | "warp" => Some((1, 1)),
        "linear" | "batch_norm2d_train" | "batch_norm2d_eval" => Some((3, 3)),
        "concat_batch" => Some((1, usize::MAX)),
        _ => None,
    }
}

/// Validates every node up to and including `root`, reporting all shape
/// disagreements. See [`validate`] for the whole-tape convenience form.
pub fn validate_with_root(g: &Graph, root: VarId) -> Result<(), Vec<ShapeIssue>> {
    let metas = g.metas();
    let mut derived: Vec<Vec<usize>> = Vec::with_capacity(metas.len());
    let mut issues = Vec::new();
    for (i, meta) in metas.iter().enumerate().take(root.index() + 1) {
        // Recovery principle: after reporting, continue with the claimed
        // shape — downstream ops consumed the actual tensor, so later
        // genuine mismatches still surface without cascade noise.
        let claimed = meta.expected_shape.clone();
        // Degenerate-shape rule (applies to leaves too): a zero-sized
        // dimension is never a meaningful tensor here and is the
        // signature of underflowed output-shape arithmetic.
        if claimed.contains(&0) {
            issues.push(issue(
                i,
                meta,
                format!(
                    "{} declares shape {} with a zero-sized dimension \
                     (underflowed output-shape arithmetic?)",
                    meta.op,
                    fmt_shape(&claimed)
                ),
            ));
        }
        if is_leaf(meta.op) {
            derived.push(claimed);
            continue;
        }
        if meta.parents.iter().any(|p| p.index() >= i) {
            issues.push(issue(
                i,
                meta,
                format!("{} records a forward reference to a later node", meta.op),
            ));
            derived.push(claimed);
            continue;
        }
        let parent_shapes: Vec<&[usize]> = meta
            .parents
            .iter()
            .map(|p| derived[p.index()].as_slice())
            .collect();
        match derive(meta.op, &parent_shapes, meta) {
            Err(msg) => {
                issues.push(issue(i, meta, msg));
                derived.push(claimed);
            }
            Ok(None) => derived.push(claimed),
            Ok(Some(rule_shape)) => {
                if rule_shape != claimed {
                    issues.push(issue(
                        i,
                        meta,
                        format!(
                            "{} claims output shape {}, rule derives {}",
                            meta.op,
                            fmt_shape(&claimed),
                            fmt_shape(&rule_shape)
                        ),
                    ));
                    derived.push(claimed);
                } else {
                    derived.push(rule_shape);
                }
            }
        }
    }
    if issues.is_empty() {
        Ok(())
    } else {
        Err(issues)
    }
}

/// Validates the whole tape. Returns all shape disagreements, in tape
/// order, or `Ok(())` for an empty or consistent graph.
pub fn validate(g: &Graph) -> Result<(), Vec<ShapeIssue>> {
    if g.is_empty() {
        return Ok(());
    }
    validate_with_root(g, VarId::from_index(g.len() - 1))
}
