//! Buffer-lifetime analysis over the plan IR.
//!
//! Compiled plans hand every op raw slot indices into a flat buffer
//! table ([`rd_tensor::arena`]-backed at execution time); nothing at
//! runtime checks that a slot was produced before it is consumed. This
//! module proves it statically:
//!
//! * **written-before-read** — walking ops in plan order, every read
//!   must be dominated by a write (the plan input slot counts as
//!   written: the executor copies the batch in before op 0). A
//!   violation means the executor would publish whatever the arena
//!   handed out — zeros today, but the contract is the write, not the
//!   arena's fill value.
//! * **roots are defined** — every plan output slot must be written by
//!   some op (or be the input slot).
//! * **dead buffers** — a slot that no op reads and that is not a plan
//!   root is allocated and computed for nothing; in these lowerings it
//!   only appears when a plan was corrupted or a fusion went wrong.
//!
//! [`live_ranges`] and [`peak_live_elems`] expose the def/last-use
//! interval per slot and the worst-case live footprint, which the
//! `plan_audit` binary reports as per-plan buffer statistics.

use crate::ir::{op_issue, PlanIr, PlanIssue, PlanLintKind};

/// Written-before-read, root-definedness and dead-buffer lints.
pub fn check(ir: &PlanIr) -> Vec<PlanIssue> {
    let meta = ir.meta;
    let nslots = meta.slots.len();
    let mut issues = Vec::new();

    let mut defined = vec![false; nslots];
    if meta.input_slot < nslots {
        defined[meta.input_slot] = true;
    }
    for (oi, op) in meta.ops.iter().enumerate() {
        for &r in &op.reads {
            if !defined[r] {
                let def = ir.defs[r].iter().find(|&&d| d > oi);
                let when = match def {
                    Some(&d) => format!("first written later by op #{d}"),
                    None => "never written".into(),
                };
                issues.push(op_issue(
                    meta,
                    PlanLintKind::UseBeforeDef,
                    oi,
                    format!("reads slot {r} before it is written ({when})"),
                ));
            }
        }
        for &w in &op.writes {
            defined[w] = true;
        }
    }

    for (ri, &s) in meta.outputs.iter().enumerate() {
        if !defined[s] {
            issues.push(PlanIssue {
                kind: PlanLintKind::UseBeforeDef,
                op: None,
                path: "plan".into(),
                message: format!("root {ri} slot {s} is never written by any op"),
            });
        }
    }

    for (s, slot_uses) in ir.uses.iter().enumerate() {
        if slot_uses.is_empty() && !meta.outputs.contains(&s) {
            if s == meta.input_slot {
                issues.push(PlanIssue {
                    kind: PlanLintKind::DeadBuffer,
                    op: None,
                    path: "plan".into(),
                    message: "plan input slot is read by no op and is not a root".into(),
                });
            } else if let Some(&d) = ir.defs[s].first() {
                issues.push(op_issue(
                    meta,
                    PlanLintKind::DeadBuffer,
                    d,
                    format!("writes slot {s}, which no op reads and no root returns"),
                ));
            }
            // a slot neither written nor read is unreachable garbage in
            // the table; harmless, and the plans never produce one
        }
    }
    issues
}

/// Per-slot live interval `(def_op, last_use_op)` in op indices. The
/// input slot's def is `None` (the executor writes it before op 0);
/// slots a root returns stay live to the end (`last = num_ops`).
pub fn live_ranges(ir: &PlanIr) -> Vec<(Option<usize>, Option<usize>)> {
    let meta = ir.meta;
    (0..meta.slots.len())
        .map(|s| {
            let def = ir.defs[s].first().copied();
            let mut last = ir.uses[s].last().copied();
            if meta.outputs.contains(&s) {
                last = Some(meta.ops.len());
            }
            (def, last)
        })
        .collect()
}

/// Worst-case per-sample live activation footprint, in `f32` elements:
/// the maximum over program points of the summed lengths of all slots
/// whose live range covers that point.
pub fn peak_live_elems(ir: &PlanIr) -> usize {
    let meta = ir.meta;
    let ranges = live_ranges(ir);
    let mut peak = 0usize;
    for point in 0..=meta.ops.len() {
        let live: usize = ranges
            .iter()
            .enumerate()
            .filter(|(s, (def, last))| {
                let born = def.map_or(*s == meta.input_slot, |d| d <= point);
                born && last.is_some_and(|l| l >= point)
            })
            .map(|(s, _)| meta.slots[s].len)
            .sum();
        peak = peak.max(live);
    }
    peak
}
