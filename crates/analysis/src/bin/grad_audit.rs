//! Sweeps every rd-tensor op's backward pass against central
//! differences and prints a pass/fail table. Exits nonzero if any case
//! fails, so `ci.sh` can gate on it.

use rd_analysis::{render_table, run_grad_audit};

fn main() {
    let tol = 1e-2;
    let reports = run_grad_audit(tol);
    print!("{}", render_table(&reports, tol));
    if reports.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
