//! Static interval + ulp-error certification for kernel substitution.
//!
//! ROADMAP item 1 wants to swap the scalar GEMM inner loops for an
//! `f32x8`/FMA tier. That substitution changes *rounding*, not math:
//! a vectorised kernel reassociates the reduction (8 partial sums) and
//! FMA skips the intermediate product rounding. This module certifies,
//! statically, how far a candidate kernel's logits can drift from the
//! scalar reference on any input inside a declared box.
//!
//! The analysis propagates per-slot triples `(lo, hi, err)` through the
//! plan in `f64`: `[lo, hi]` bounds every *computed* activation value
//! (of both executions) and `err` bounds the absolute divergence
//! between the reference and candidate executions of the same plan on
//! the same input bits.
//!
//! * A reduction of `k` products carries the standard forward bound
//!   `|fl(dot) − dot| ≤ γ(k)·Σ|wᵢ||xᵢ|` with `γ(k) = k·u/(1−k·u)`,
//!   `u = 2⁻²⁴`, for **any** summation order — so reference and
//!   candidate each sit within `γ(k)·L1·tmax` of the exact dot, and
//!   their mutual divergence is at most `2γ(k)·L1·(tmax+err_in)` plus
//!   the `L1·err_in` carried in from diverged inputs. (An FMA halves
//!   the rounding count; bounding it by the same γ stays sound.)
//! * A kernel that neither reassociates nor uses FMA executes the
//!   *identical* instruction sequence, so equal input bits give equal
//!   output bits: `err` stays exactly `0` and the certificate for
//!   [`KernelModel::reference`] is the bitwise-identity guarantee the
//!   runtime tests already enforce.
//! * Pointwise post-ops propagate `err` by their Lipschitz constants
//!   (leaky `max(1,|α|)`, relu/pool/copies `1`, sigmoid `¼`) with a
//!   few-ulp slack for their own rounding once `err > 0`.
//! * Batch-norm **train** ops mix batch statistics into the values, so
//!   no input-box bound exists statically; certification returns `Err`
//!   rather than guessing.
//!
//! The final [`LogitBound`] per plan root reports `max_abs_err` and the
//! same normalised as ulps at the logit scale (`err / ulp32(max|logit|)`),
//! which is the number the CI gate compares against observed runtime
//! divergence.

use rd_tensor::{Param, ParamRef, ParamRole, ParamSet, PlanMeta, PlanOpMeta};

/// Unit roundoff of `f32` round-to-nearest: `2⁻²⁴`.
const U: f64 = 5.960_464_477_539_063e-8;

/// Rounding model of a candidate GEMM inner-loop implementation.
#[derive(Debug, Clone, Copy)]
pub struct KernelModel {
    /// Human-readable tag reported in certificates.
    pub name: &'static str,
    /// Whether the kernel may sum the reduction in a different order
    /// than the scalar reference (e.g. 8 SIMD partial sums).
    pub reassociates: bool,
    /// Whether the kernel may contract `a*b + c` into a fused
    /// multiply-add (skipping the product rounding).
    pub fma: bool,
}

impl KernelModel {
    /// The scalar reference kernel itself: identical instruction
    /// sequence, certified divergence exactly zero.
    pub fn reference() -> Self {
        KernelModel {
            name: "scalar-reference",
            reassociates: false,
            fma: false,
        }
    }

    /// The ROADMAP item-1 candidate: 8-lane SIMD partial sums with FMA.
    pub fn f32x8_fma() -> Self {
        KernelModel {
            name: "f32x8-fma",
            reassociates: true,
            fma: true,
        }
    }

    /// The model a plan must certify under to run at the given
    /// execution tier: the reference tier is the scalar oracle itself
    /// (zero divergence), the fast tier is the f32x8+FMA kernels.
    pub fn for_tier(tier: rd_tensor::Tier) -> Self {
        match tier {
            rd_tensor::Tier::Reference => Self::reference(),
            rd_tensor::Tier::Fast => Self::f32x8_fma(),
        }
    }

    fn divergent(&self) -> bool {
        self.reassociates || self.fma
    }
}

/// Certified bound for one plan root under a [`KernelModel`].
#[derive(Debug, Clone, Copy)]
pub struct LogitBound {
    /// Root position in the plan's output list.
    pub root: usize,
    /// Slot the root reads.
    pub slot: usize,
    /// Lower bound on every computed value of the root.
    pub lo: f64,
    /// Upper bound on every computed value of the root.
    pub hi: f64,
    /// Max absolute reference-vs-candidate divergence of any root
    /// element, over all inputs in the declared box.
    pub max_abs_err: f64,
    /// `max_abs_err` in units of one `f32` ulp at the logit scale
    /// `max(|lo|, |hi|)`.
    pub ulps_at_scale: f64,
}

#[derive(Clone, Copy)]
struct SlotState {
    lo: f64,
    hi: f64,
    err: f64,
}

/// `γ(k) = k·u / (1 − k·u)`: relative bound for a `k`-term reduction.
fn gamma_k(k: usize) -> Result<f64, String> {
    let ku = k as f64 * U;
    if ku >= 1.0 {
        return Err(format!("reduction of {k} terms overflows the γ(k) model"));
    }
    Ok(ku / (1.0 - ku))
}

/// Size of one `f32` ulp at magnitude `m` (subnormal floor `2⁻¹⁴⁹`).
pub fn ulp32(m: f64) -> f64 {
    let m = m.abs();
    if !m.is_finite() {
        return f64::INFINITY;
    }
    let e = if m > 0.0 {
        m.log2().floor().clamp(-126.0, 127.0) as i32
    } else {
        -126
    };
    (2f64).powi(e - 23).max((2f64).powi(-149))
}

fn finite_param<'p>(p: &'p Param, what: &str) -> Result<&'p [f32], String> {
    let data = p.value().data();
    if data.iter().any(|v| !v.is_finite()) {
        return Err(format!(
            "{what} parameter `{}` holds non-finite values",
            p.name()
        ));
    }
    Ok(data)
}

fn role_param<'p>(
    op: &PlanOpMeta,
    params: &[&'p Param],
    role: ParamRole,
) -> Result<&'p Param, String> {
    let r: &ParamRef = op
        .params
        .iter()
        .find(|p| p.role == role)
        .ok_or_else(|| format!("{}: missing {} parameter reference", op.path, role.label()))?;
    params
        .get(r.index)
        .copied()
        .ok_or_else(|| format!("{}: parameter index {} out of range", op.path, r.index))
}

/// One dense row bank: conv rows of `ckk` taps or linear rows of
/// `in_dim` taps, followed by the op's fused per-channel post-chain.
#[allow(clippy::too_many_arguments)]
fn dot_bank(
    op: &PlanOpMeta,
    params: &[&Param],
    x: SlotState,
    rows: usize,
    k: usize,
    pad: bool,
    model: &KernelModel,
) -> Result<SlotState, String> {
    let w = finite_param(role_param(op, params, weight_role(op))?, "weight")?;
    if w.len() != rows * k {
        return Err(format!(
            "{}: weight holds {} values, geometry needs {rows}x{k}",
            op.path,
            w.len()
        ));
    }
    let g = gamma_k(k)?;
    // Zero padding injects literal zeros into the taps.
    let (tlo, thi) = if pad {
        (x.lo.min(0.0), x.hi.max(0.0))
    } else {
        (x.lo, x.hi)
    };
    let tmax = tlo.abs().max(thi.abs());

    let bias = bias_role(op)
        .map(|role| finite_param(role_param(op, params, role)?, "bias"))
        .transpose()?;
    let bn = bn_scale_shift(op, params, rows)?;

    let mut out = SlotState {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
        err: 0.0,
    };
    for r in 0..rows {
        let row = &w[r * k..(r + 1) * k];
        let mut l1 = 0.0f64;
        let mut dot_lo = 0.0f64;
        let mut dot_hi = 0.0f64;
        for &wj in row {
            let wj = wj as f64;
            l1 += wj.abs();
            let (a, b) = (wj * tlo, wj * thi);
            dot_lo += a.min(b);
            dot_hi += a.max(b);
        }
        // Both executions land within γ·L1·|tap|max of the exact dot;
        // diverged inputs shift taps by up to err more.
        let round = g * l1 * (tmax + x.err);
        let mut lo = dot_lo - x.err * l1 - round;
        let mut hi = dot_hi + x.err * l1 + round;
        let mut err = if model.divergent() || x.err > 0.0 {
            l1 * x.err * (1.0 + g) + if model.divergent() { 2.0 * round } else { 0.0 }
        } else {
            0.0
        };

        // Linear layers carry their bias implicitly (fused list is just
        // ["linear"]); convs list every fused stage explicitly.
        let implicit_bias = op.linear.is_some() && bias.is_some();
        let stages = op
            .fused
            .iter()
            .skip(1)
            .map(String::as_str)
            .chain(implicit_bias.then_some("add_bias_channel"));
        for stage in stages {
            let mag = lo.abs().max(hi.abs());
            match stage {
                "add_bias_channel" => {
                    let b = bias
                        .ok_or_else(|| format!("{}: fused bias without a bias param", op.path))?;
                    let br = *b
                        .get(r)
                        .ok_or_else(|| format!("{}: bias shorter than {rows} channels", op.path))?
                        as f64;
                    lo += br;
                    hi += br;
                    if err > 0.0 {
                        err = err * (1.0 + 2.0 * U) + 2.0 * U * (mag + br.abs());
                    }
                }
                "batch_norm2d_eval" => {
                    let (s, t) = bn
                        .as_ref()
                        .ok_or_else(|| format!("{}: fused bn without bn params", op.path))?[r];
                    let (a, b) = (s * lo + t, s * hi + t);
                    (lo, hi) = (a.min(b), a.max(b));
                    // The executor folds the scale/shift in f32; widen
                    // the interval and err by a few ulps for that.
                    let slack = 8.0 * U * lo.abs().max(hi.abs()) + 1e-40;
                    lo -= slack;
                    hi += slack;
                    if err > 0.0 {
                        err = s.abs() * err * (1.0 + 8.0 * U) + slack;
                    }
                }
                "batch_norm2d_train" => {
                    return Err(format!(
                        "{}: batch_norm2d_train mixes batch statistics; no static input-box bound exists",
                        op.path
                    ));
                }
                "leaky_relu" => {
                    let a = op
                        .alpha
                        .ok_or_else(|| format!("{}: fused leaky without alpha", op.path))?
                        as f64;
                    let (fl, fh) = (leaky(lo, a), leaky(hi, a));
                    lo = fl.min(fh).min(if a < 0.0 { 0.0 } else { fl });
                    hi = fl.max(fh).max(if a < 0.0 { 0.0 } else { fh });
                    if err > 0.0 {
                        err = err * a.abs().max(1.0) * (1.0 + 2.0 * U);
                    }
                }
                "relu" => {
                    lo = lo.max(0.0);
                    hi = hi.max(0.0);
                    // exact, 1-Lipschitz: err unchanged
                }
                other => {
                    return Err(format!("{}: unknown fused stage `{other}`", op.path));
                }
            }
        }
        out.lo = out.lo.min(lo);
        out.hi = out.hi.max(hi);
        out.err = out.err.max(err);
    }
    if !out.lo.is_finite() || !out.hi.is_finite() || !out.err.is_finite() {
        return Err(format!("{}: bound diverged to non-finite values", op.path));
    }
    Ok(out)
}

fn weight_role(op: &PlanOpMeta) -> ParamRole {
    if op.linear.is_some() {
        ParamRole::LinearWeight
    } else {
        ParamRole::ConvWeight
    }
}

fn bias_role(op: &PlanOpMeta) -> Option<ParamRole> {
    if op.linear.is_some() {
        op.params
            .iter()
            .any(|p| p.role == ParamRole::LinearBias)
            .then_some(ParamRole::LinearBias)
    } else {
        op.params
            .iter()
            .any(|p| p.role == ParamRole::ConvBias)
            .then_some(ParamRole::ConvBias)
    }
}

/// Per-channel `(scale, shift)` of a fused eval-mode batch norm, in
/// `f64`: `s = γ/√(rvar+ε)`, `t = β − s·rmean`.
fn bn_scale_shift(
    op: &PlanOpMeta,
    params: &[&Param],
    rows: usize,
) -> Result<Option<Vec<(f64, f64)>>, String> {
    if !op.params.iter().any(|p| p.role == ParamRole::BnGamma) {
        return Ok(None);
    }
    let eps = op
        .bn_eps
        .ok_or_else(|| format!("{}: bn params without an epsilon", op.path))? as f64;
    let ga = finite_param(role_param(op, params, ParamRole::BnGamma)?, "bn gamma")?;
    let be = finite_param(role_param(op, params, ParamRole::BnBeta)?, "bn beta")?;
    let rm = finite_param(role_param(op, params, ParamRole::BnRunningMean)?, "bn mean")?;
    let rv = finite_param(role_param(op, params, ParamRole::BnRunningVar)?, "bn var")?;
    for v in [ga, be, rm, rv] {
        if v.len() < rows {
            return Err(format!(
                "{}: bn params shorter than {rows} channels",
                op.path
            ));
        }
    }
    (0..rows)
        .map(|r| {
            let var = rv[r] as f64 + eps;
            if var <= 0.0 {
                return Err(format!(
                    "{}: running-var + eps = {var} <= 0 in channel {r}",
                    op.path
                ));
            }
            let s = ga[r] as f64 / var.sqrt();
            Ok((s, be[r] as f64 - s * rm[r] as f64))
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

fn leaky(x: f64, a: f64) -> f64 {
    if x >= 0.0 {
        x
    } else {
        a * x
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Certify per-root logit bounds for `meta` executed against `ps` on
/// any input inside `[input_lo, input_hi]`, comparing the scalar
/// reference against `model`.
///
/// Returns `Err` when no sound static bound exists (train-mode batch
/// norm, non-finite parameters, unsupported ops) — callers must treat
/// that as "substitution not certified", never as zero.
pub fn certify_logit_bounds(
    meta: &PlanMeta,
    ps: &ParamSet,
    input_lo: f64,
    input_hi: f64,
    model: &KernelModel,
) -> Result<Vec<LogitBound>, String> {
    // NaN endpoints must fail too, so check for a proven-valid box
    // rather than negating the comparison.
    if input_lo > input_hi || input_lo.is_nan() || input_hi.is_nan() {
        return Err(format!("empty input box [{input_lo}, {input_hi}]"));
    }
    let params: Vec<&Param> = ps.iter().map(|(_, p)| p).collect();
    let mut states: Vec<Option<SlotState>> = vec![None; meta.slots.len()];
    if meta.input_slot >= meta.slots.len() {
        return Err("input slot out of range".into());
    }
    states[meta.input_slot] = Some(SlotState {
        lo: input_lo,
        hi: input_hi,
        err: 0.0,
    });

    for op in &meta.ops {
        let read = |i: usize| -> Result<SlotState, String> {
            op.reads
                .get(i)
                .and_then(|&s| states.get(s).copied().flatten())
                .ok_or_else(|| format!("{}: reads an unbounded slot (plan malformed?)", op.path))
        };
        let out = if let Some(c) = &op.conv {
            let k = c.cin * c.kh * c.kw;
            dot_bank(op, &params, read(0)?, c.cout, k, c.pad > 0, model)?
        } else if let Some((i, o)) = op.linear {
            dot_bank(op, &params, read(0)?, o, i, false, model)?
        } else {
            let x = read(0)?;
            match op.name.as_str() {
                // Selection/copy ops: 1-Lipschitz, exact in f32.
                "max_pool2d" | "upsample_nearest2x" => x,
                "relu" => SlotState {
                    lo: x.lo.max(0.0),
                    hi: x.hi.max(0.0),
                    err: x.err,
                },
                "leaky_relu" => {
                    let a = op
                        .alpha
                        .ok_or_else(|| format!("{}: leaky without alpha", op.path))?
                        as f64;
                    let (fl, fh) = (leaky(x.lo, a), leaky(x.hi, a));
                    SlotState {
                        lo: fl.min(fh).min(if a < 0.0 { 0.0 } else { fl }),
                        hi: fl.max(fh).max(if a < 0.0 { 0.0 } else { fh }),
                        err: if x.err > 0.0 {
                            x.err * a.abs().max(1.0) * (1.0 + 2.0 * U)
                        } else {
                            0.0
                        },
                    }
                }
                "sigmoid" => SlotState {
                    lo: sigmoid(x.lo) - 4.0 * U,
                    hi: sigmoid(x.hi) + 4.0 * U,
                    err: if x.err > 0.0 {
                        x.err * 0.25 + 4.0 * U
                    } else {
                        0.0
                    },
                },
                "concat_channels" => {
                    let b = read(1)?;
                    SlotState {
                        lo: x.lo.min(b.lo),
                        hi: x.hi.max(b.hi),
                        err: x.err.max(b.err),
                    }
                }
                other => return Err(format!("{}: op `{other}` has no bound model", op.path)),
            }
        };
        for &w in &op.writes {
            states[w] = Some(out);
        }
    }

    meta.outputs
        .iter()
        .enumerate()
        .map(|(root, &slot)| {
            let s = states
                .get(slot)
                .copied()
                .flatten()
                .ok_or_else(|| format!("root {root} slot {slot} was never bounded"))?;
            if !s.lo.is_finite() || !s.hi.is_finite() || !s.err.is_finite() {
                return Err(format!("root {root}: non-finite certified bound"));
            }
            let scale = s.lo.abs().max(s.hi.abs());
            Ok(LogitBound {
                root,
                slot,
                lo: s.lo,
                hi: s.hi,
                max_abs_err: s.err,
                ulps_at_scale: s.err / ulp32(scale),
            })
        })
        .collect()
}
