//! Dataflow IR over compiled plans, plus the plan-level lints.
//!
//! [`rd_tensor::PlanMeta`] (lifted from `InferPlan::meta()` /
//! `TrainPlan::meta()`) is a flat op list; [`PlanIr`] adds the derived
//! def/use chains every analysis walks: which op writes each slot,
//! which ops read it. On top of the IR this module implements the
//! plan-level lints that don't need a dataflow walk of their own:
//!
//! * **fusion legality** — every fused kernel's tape-op chain must be
//!   in canonical lowering order (`conv2d` → at most one of
//!   `add_bias_channel` / `batch_norm2d_*` → at most one activation),
//!   batch norm must never be algebraically folded into the conv
//!   weights (its four parameters must still be dereferenced at
//!   execution time), and a train-plan fused leaky needs `alpha > 0`
//!   (the backward reconstructs the input sign from the fused output).
//! * **parameter coverage** — every [`rd_tensor::ParamRef`] must
//!   resolve inside the [`ParamSet`] with the shape its role implies,
//!   so every plan parameter is restorable from a checkpoint section.
//!   The complementary orphan check ([`orphan_params`]) takes *all*
//!   plans compiled against a set and reports parameters none of them
//!   reference.
//! * **column-cache budget feasibility** — a nonzero train-plan budget
//!   that cannot cache even the smallest conv at batch 1 is a silent
//!   misconfiguration (the cache would never hit).
//!
//! The buffer-lifetime, alias and fan-out checks live in
//! [`crate::liveness`], [`crate::alias`] and [`crate::race`];
//! [`audit_plan`] runs everything and returns the combined findings.

use rd_tensor::{ParamRole, ParamSet, PlanKind, PlanMeta};

/// Category of a [`PlanIssue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanLintKind {
    /// Structurally invalid IR: slot index out of range, impossible
    /// geometry, an infer op carrying train-only state.
    Malformed,
    /// A slot is read before any op writes it (or a root is never
    /// written) — the executor would publish uninitialized data.
    UseBeforeDef,
    /// A slot is written but never read and is not a plan root.
    DeadBuffer,
    /// Buffer aliasing: two ops write one slot, an op writes its own
    /// input slot, or an op overwrites the plan input.
    Alias,
    /// The stored direct-vs-temp input-gradient routing of a train conv
    /// contradicts what the consumer structure implies.
    GxRouting,
    /// The worker-group fan-out would not tile a buffer into disjoint,
    /// covering chunks (conv geometry vs slot length, or a broken
    /// `groups_for` partition).
    Race,
    /// A fused kernel's tape-op chain violates the lowering rules.
    Fusion,
    /// A parameter reference does not resolve in the [`ParamSet`] with
    /// the shape its role implies.
    ParamCoverage,
    /// A parameter in the set is referenced by no plan at all.
    OrphanParam,
    /// The im2col column-cache budget cannot cache any conv.
    ColBudget,
}

impl PlanLintKind {
    /// Short kebab-case label used in rendered issues.
    pub fn label(self) -> &'static str {
        match self {
            PlanLintKind::Malformed => "malformed-ir",
            PlanLintKind::UseBeforeDef => "use-before-def",
            PlanLintKind::DeadBuffer => "dead-buffer",
            PlanLintKind::Alias => "alias",
            PlanLintKind::GxRouting => "gx-routing",
            PlanLintKind::Race => "race",
            PlanLintKind::Fusion => "fusion-order",
            PlanLintKind::ParamCoverage => "param-coverage",
            PlanLintKind::OrphanParam => "orphan-param",
            PlanLintKind::ColBudget => "col-budget",
        }
    }
}

/// One plan-analyzer finding, anchored to an op when one is at fault.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanIssue {
    /// Category of the finding.
    pub kind: PlanLintKind,
    /// Index of the offending op in the plan's op list, when the
    /// finding is op-local.
    pub op: Option<usize>,
    /// Profile path of the offending op (`infer/<scope>/<fused>`), or a
    /// plan-level anchor like `plan` / `parallel::groups_for`.
    pub path: String,
    /// Explanation of the finding.
    pub message: String,
}

impl std::fmt::Display for PlanIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.kind.label(), self.path, self.message)
    }
}

/// Builds an issue anchored at op `oi` of `meta`.
pub(crate) fn op_issue(
    meta: &PlanMeta,
    kind: PlanLintKind,
    oi: usize,
    message: String,
) -> PlanIssue {
    PlanIssue {
        kind,
        op: Some(oi),
        path: op_path(meta, oi),
        message,
    }
}

/// `path#index` anchor of op `oi` (the profile path disambiguated with
/// the op position, since fused names repeat across a network).
pub(crate) fn op_path(meta: &PlanMeta, oi: usize) -> String {
    format!("{}#{oi}", meta.ops[oi].path)
}

/// Dataflow IR over a [`PlanMeta`]: per-slot def/use chains.
#[derive(Debug)]
pub struct PlanIr<'m> {
    /// The lifted plan.
    pub meta: &'m PlanMeta,
    /// `defs[s]` = ops writing slot `s`, in op order.
    pub defs: Vec<Vec<usize>>,
    /// `uses[s]` = ops reading slot `s`, in op order.
    pub uses: Vec<Vec<usize>>,
}

impl<'m> PlanIr<'m> {
    /// Lifts a plan into the IR, checking every slot index first.
    ///
    /// # Errors
    ///
    /// Returns `Malformed` issues when an op or the plan header refers
    /// to a slot outside the slot table — nothing downstream is
    /// meaningful then.
    pub fn lift(meta: &'m PlanMeta) -> Result<PlanIr<'m>, Vec<PlanIssue>> {
        let nslots = meta.slots.len();
        let mut issues = Vec::new();
        if meta.input_slot >= nslots {
            issues.push(PlanIssue {
                kind: PlanLintKind::Malformed,
                op: None,
                path: "plan".into(),
                message: format!(
                    "input slot {} out of range ({nslots} slots)",
                    meta.input_slot
                ),
            });
        }
        for (ri, &s) in meta.outputs.iter().enumerate() {
            if s >= nslots {
                issues.push(PlanIssue {
                    kind: PlanLintKind::Malformed,
                    op: None,
                    path: "plan".into(),
                    message: format!("root {ri} slot {s} out of range ({nslots} slots)"),
                });
            }
        }
        let mut defs = vec![Vec::new(); nslots];
        let mut uses = vec![Vec::new(); nslots];
        for (oi, op) in meta.ops.iter().enumerate() {
            for (what, slots, table) in [
                ("reads", &op.reads, &mut uses),
                ("writes", &op.writes, &mut defs),
            ] {
                for &s in slots.iter() {
                    if s >= nslots {
                        issues.push(op_issue(
                            meta,
                            PlanLintKind::Malformed,
                            oi,
                            format!("{what} slot {s} out of range ({nslots} slots)"),
                        ));
                    } else {
                        table[s].push(oi);
                    }
                }
            }
        }
        if issues.is_empty() {
            Ok(PlanIr { meta, defs, uses })
        } else {
            Err(issues)
        }
    }
}

/// Fusion-legality lint. See the module docs for the rules.
pub fn check_fusion(meta: &PlanMeta) -> Vec<PlanIssue> {
    let mut issues = Vec::new();
    for (oi, op) in meta.ops.iter().enumerate() {
        let fused: Vec<&str> = op.fused.iter().map(String::as_str).collect();
        let issue = |msg: String| op_issue(meta, PlanLintKind::Fusion, oi, msg);
        if op.conv.is_none() {
            // non-conv kernels never fuse: their chain is themselves
            if fused != [op.name.as_str()] {
                issues.push(issue(format!(
                    "non-conv op must fuse exactly itself, got {:?}",
                    op.fused
                )));
            }
            continue;
        }
        if fused.first() != Some(&"conv2d") {
            issues.push(issue(format!(
                "fused chain must start with conv2d (tape order), got {:?}",
                op.fused
            )));
            continue;
        }
        let mut rest = &fused[1..];
        let mut has_bn = false;
        if let Some(&mid) = rest.first() {
            match mid {
                "add_bias_channel" => rest = &rest[1..],
                "batch_norm2d_eval" => {
                    has_bn = true;
                    rest = &rest[1..];
                }
                "batch_norm2d_train" => {
                    has_bn = true;
                    if meta.kind == PlanKind::Infer {
                        issues.push(issue(
                            "train-mode batch norm fused into a grad-free infer plan".into(),
                        ));
                    }
                    rest = &rest[1..];
                }
                _ => {}
            }
        }
        match rest {
            [] => {}
            ["leaky_relu"] => {
                let Some(alpha) = op.alpha else {
                    issues.push(issue("fused leaky_relu but op carries no alpha".into()));
                    continue;
                };
                if meta.kind == PlanKind::Train && alpha <= 0.0 {
                    issues.push(issue(format!(
                        "train plan fused leaky_relu needs alpha > 0 to reconstruct \
                         the input sign from the fused output, got alpha = {alpha}"
                    )));
                }
            }
            ["relu"] if meta.kind == PlanKind::Infer => {}
            ["relu"] => issues.push(issue(
                "train plans never fuse relu (backward cannot recover the sign)".into(),
            )),
            _ => issues.push(issue(format!(
                "fused chain {:?} does not match the lowering order \
                 conv2d [bias|bn] [activation]",
                op.fused
            ))),
        }
        if has_bn {
            // BN must never be folded into the conv weights: all four
            // bn parameters must still be read at execution time.
            for role in [
                ParamRole::BnGamma,
                ParamRole::BnBeta,
                ParamRole::BnRunningMean,
                ParamRole::BnRunningVar,
            ] {
                if !op.params.iter().any(|p| p.role == role) {
                    issues.push(issue(format!(
                        "fused batch norm no longer dereferences its {} parameter — \
                         bn must be applied at execution time, never folded into weights",
                        role.label()
                    )));
                }
            }
        } else if op
            .params
            .iter()
            .any(|p| matches!(p.role, ParamRole::BnGamma | ParamRole::BnBeta))
        {
            issues.push(issue(
                "op dereferences bn parameters but fuses no batch norm".into(),
            ));
        }
    }
    issues
}

/// Parameter-coverage lint: every [`rd_tensor::ParamRef`] must resolve
/// inside `ps` with the shape its role implies, so every plan parameter
/// can be restored from a checkpoint section.
pub fn check_params(meta: &PlanMeta, ps: &ParamSet) -> Vec<PlanIssue> {
    let params: Vec<_> = ps.iter().map(|(_, p)| p).collect();
    let mut issues = Vec::new();
    for (oi, op) in meta.ops.iter().enumerate() {
        let issue = |msg: String| op_issue(meta, PlanLintKind::ParamCoverage, oi, msg);
        // Presence: the op geometry dictates which parameters *must* be
        // dereferenced at execution time. A conv without a weight
        // reference would execute against garbage (and could never be
        // restored from a checkpoint section).
        let needs: &[(bool, ParamRole)] = &[
            (op.conv.is_some(), ParamRole::ConvWeight),
            (op.linear.is_some(), ParamRole::LinearWeight),
        ];
        for &(required, role) in needs {
            if required && !op.params.iter().any(|p| p.role == role) {
                issues.push(issue(format!(
                    "op geometry requires a {} parameter but the op dereferences none",
                    role.label()
                )));
            }
        }
        for r in &op.params {
            let Some(p) = params.get(r.index) else {
                issues.push(issue(format!(
                    "{} param #{} out of range: ParamSet has {} params \
                     (not restorable from any checkpoint section)",
                    r.role.label(),
                    r.index,
                    params.len()
                )));
                continue;
            };
            let shape = p.value().shape();
            let want: Option<Vec<usize>> = match (r.role, &op.conv, &op.linear) {
                (ParamRole::ConvWeight, Some(c), _) => Some(vec![c.cout, c.cin, c.kh, c.kw]),
                (ParamRole::ConvBias, Some(c), _)
                | (ParamRole::BnGamma, Some(c), _)
                | (ParamRole::BnBeta, Some(c), _)
                | (ParamRole::BnRunningMean, Some(c), _)
                | (ParamRole::BnRunningVar, Some(c), _) => Some(vec![c.cout]),
                (ParamRole::LinearWeight, _, Some((i, o))) => Some(vec![*o, *i]),
                (ParamRole::LinearBias, _, Some((_, o))) => Some(vec![*o]),
                _ => None,
            };
            match want {
                Some(w) if shape != &w[..] => issues.push(issue(format!(
                    "{} param '{}' has shape {:?}, op geometry implies {:?}",
                    r.role.label(),
                    p.name(),
                    shape,
                    w
                ))),
                Some(_) => {}
                None => issues.push(issue(format!(
                    "{} param '{}' referenced by an op without matching geometry",
                    r.role.label(),
                    p.name()
                ))),
            }
        }
    }
    issues
}

/// Orphan check across every plan compiled against one [`ParamSet`]:
/// parameters referenced by none of `metas` cannot receive gradients or
/// influence any compiled path — usually a wiring bug.
pub fn orphan_params(metas: &[&PlanMeta], ps: &ParamSet) -> Vec<PlanIssue> {
    let mut referenced = vec![false; ps.len()];
    for meta in metas {
        for op in &meta.ops {
            for r in &op.params {
                if let Some(f) = referenced.get_mut(r.index) {
                    *f = true;
                }
            }
        }
    }
    ps.iter()
        .zip(&referenced)
        .filter(|(_, &seen)| !seen)
        .map(|((_, p), _)| PlanIssue {
            kind: PlanLintKind::OrphanParam,
            op: None,
            path: "plan".into(),
            message: format!(
                "param '{}' is referenced by none of the {} audited plan(s)",
                p.name(),
                metas.len()
            ),
        })
        .collect()
}

/// Column-cache budget feasibility: a nonzero budget smaller than the
/// smallest conv's per-sample column matrix can never cache anything.
pub fn check_col_budget(meta: &PlanMeta) -> Vec<PlanIssue> {
    let Some(budget) = meta.col_budget else {
        return Vec::new();
    };
    if budget == 0 {
        return Vec::new(); // explicit opt-out: backward recomputes im2col
    }
    let budget_elems = budget / std::mem::size_of::<f32>();
    let mut issues = Vec::new();
    let mut min_cols: Option<(usize, usize)> = None;
    for (oi, op) in meta.ops.iter().enumerate() {
        if let Some(c) = &op.conv {
            let cols = c.cols_len();
            if min_cols.is_none_or(|(_, best)| cols < best) {
                min_cols = Some((oi, cols));
            }
        }
    }
    if let Some((oi, cols)) = min_cols {
        if budget_elems < cols {
            issues.push(op_issue(
                meta,
                PlanLintKind::ColBudget,
                oi,
                format!(
                    "col-cache budget of {budget} bytes ({budget_elems} f32) cannot cache \
                     even the smallest conv ({cols} f32 per sample at batch 1) — \
                     the cache would never hit; set the budget to 0 to opt out explicitly"
                ),
            ));
        }
    }
    issues
}

/// Runs every structural analysis over one plan: IR lift, buffer
/// liveness, alias/routing, fan-out race model, fusion legality,
/// parameter coverage and column-budget feasibility. Orphan detection
/// needs all plans of a [`ParamSet`] at once — see [`orphan_params`].
pub fn audit_plan(meta: &PlanMeta, ps: &ParamSet) -> Vec<PlanIssue> {
    let ir = match PlanIr::lift(meta) {
        Ok(ir) => ir,
        Err(issues) => return issues,
    };
    let mut issues = Vec::new();
    issues.extend(crate::liveness::check(&ir));
    issues.extend(crate::alias::check(&ir));
    issues.extend(crate::race::check(&ir));
    issues.extend(check_fusion(meta));
    issues.extend(check_params(meta, ps));
    issues.extend(check_col_budget(meta));
    issues
}

/// Whether plan compile sites should run [`audit_plan`]: always in
/// debug builds, and in release when `RD_PLAN_AUDIT` is set in the
/// environment.
pub fn plan_audit_enabled() -> bool {
    cfg!(debug_assertions) || std::env::var_os("RD_PLAN_AUDIT").is_some()
}

/// Compile-time audit hook for plan caches: when
/// [`plan_audit_enabled`], runs [`audit_plan`] and panics with every
/// finding if the freshly compiled plan is not clean. A plan that fails
/// its own structural audit is a compiler bug, not a runtime condition,
/// so panicking at the compile site is the right failure mode.
///
/// # Panics
///
/// Panics listing all findings when the audit is enabled and reports
/// at least one issue.
pub fn audit_plan_or_panic(tag: &str, meta: &PlanMeta, ps: &ParamSet) {
    if !plan_audit_enabled() {
        return;
    }
    let issues = audit_plan(meta, ps);
    if !issues.is_empty() {
        let rendered: Vec<String> = issues.iter().map(|i| format!("  {i}")).collect();
        panic!(
            "plan audit failed for {tag} ({} issue(s)):\n{}",
            issues.len(),
            rendered.join("\n")
        );
    }
}
