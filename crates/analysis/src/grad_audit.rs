//! Gradient audit harness: every op's backward pass vs central
//! differences.
//!
//! This generalizes the ad-hoc checks in `rd_tensor::check` into a sweep
//! over the full op surface exported by `rd-tensor`. Each case builds a
//! small graph around one op, differentiates a scalar reduction of its
//! output with respect to one chosen tensor, and compares against a
//! central-difference estimate. Multi-input ops get one row per input
//! (`conv2d ∂x`, `conv2d ∂w`, ...). The binary `grad_audit` prints the
//! table; [`run_grad_audit`] returns it for tests and CI.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rd_tensor::check::numeric_grad;
use rd_tensor::{Graph, LinearMap, ParamId, ParamSet, Tensor, TrainPlan, VarId, WarpEntry};
use std::sync::Arc;

/// Result of auditing one op's backward pass with respect to one input.
#[derive(Debug, Clone, PartialEq)]
pub struct OpReport {
    /// Row label: op name plus the differentiated input, e.g. `conv2d ∂w`.
    pub case: &'static str,
    /// Largest normalized deviation between analytic and numeric
    /// gradients (`|a - n| / max(1, |a|, |n|)`).
    pub max_err: f32,
    /// Whether `max_err` is below the audit tolerance.
    pub pass: bool,
}

/// Finite-difference step. Large enough to dominate `f32` round-off on
/// the summed losses used here, small enough for the quadratic
/// truncation error to stay far below the audit tolerance.
const EPS: f32 = 1e-2;

fn max_normalized_err(analytic: &Tensor, numeric: &Tensor) -> f32 {
    analytic
        .data()
        .iter()
        .zip(numeric.data())
        .map(|(&a, &n)| (a - n).abs() / 1.0f32.max(a.abs()).max(n.abs()))
        .fold(0.0, f32::max)
}

/// Audits one case: `build` applies the op under test to the graph,
/// returning the op's output node; the loss is `sum_all` of that output.
/// The gradient is taken with respect to `x0` (always the first `input`
/// registered by the harness — `build` decides which operand that is).
fn audit_case(
    case: &'static str,
    x0: &Tensor,
    tol: f32,
    build: impl Fn(&mut Graph, VarId) -> VarId,
) -> OpReport {
    let forward = |t: &Tensor| -> (Graph, VarId, VarId) {
        let mut g = Graph::new();
        let x = g.input(t.clone());
        let y = build(&mut g, x);
        let loss = g.sum_all(y);
        (g, x, loss)
    };
    let (g, x, loss) = forward(x0);
    let analytic = {
        let grads = g.backward(loss);
        grads.get(x).clone()
    };
    let numeric = numeric_grad(
        |t| {
            let (g, _, loss) = forward(t);
            g.value(loss).data()[0]
        },
        x0,
        EPS,
    );
    let max_err = max_normalized_err(&analytic, &numeric);
    OpReport {
        case,
        max_err,
        pass: max_err < tol,
    }
}

/// Audits one fused backward kernel of a compiled [`TrainPlan`]: runs
/// the plan's own forward, seeds the backward with the output itself
/// (i.e. the loss is `sum(out^2)/2`), and compares the resulting input
/// or parameter gradient against central differences of the plan's
/// forward pass. `wrt = None` differentiates the input, `Some(pid)` the
/// named parameter.
fn audit_plan_case(
    case: &'static str,
    ps: &mut ParamSet,
    plan: &TrainPlan,
    x0: &Tensor,
    wrt: Option<ParamId>,
    tol: f32,
) -> OpReport {
    let loss_of = |ps: &ParamSet, x: &Tensor| -> f32 {
        let step = plan.forward(ps, x, false);
        step.output(0).data().iter().map(|v| 0.5 * v * v).sum()
    };
    ps.zero_grads();
    let analytic = {
        let mut step = plan.forward(ps, x0, wrt.is_some());
        let seed = step.output(0);
        step.backward(ps, &[&seed], wrt.is_none());
        match wrt {
            None => step.input_grad(),
            Some(pid) => {
                step.write_param_grads(ps);
                ps.get(pid).grad().clone()
            }
        }
    };
    let numeric = match wrt {
        None => numeric_grad(|t| loss_of(ps, t), x0, EPS),
        Some(pid) => {
            let base = ps.get(pid).value().clone();
            numeric_grad(
                |t| {
                    let mut ps2 = ps.clone();
                    *ps2.get_mut(pid).value_mut() = t.clone();
                    loss_of(&ps2, x0)
                },
                &base,
                EPS,
            )
        }
    };
    let max_err = max_normalized_err(&analytic, &numeric);
    OpReport {
        case,
        max_err,
        pass: max_err < tol,
    }
}

fn warp_map() -> Arc<LinearMap> {
    // A deterministic 3x3 → 2x2 bilinear-style shrink: each output pixel
    // mixes two source pixels so the transpose scatter is exercised.
    let entries = vec![
        WarpEntry {
            dst: 0,
            src: 0,
            weight: 0.7,
        },
        WarpEntry {
            dst: 0,
            src: 1,
            weight: 0.3,
        },
        WarpEntry {
            dst: 1,
            src: 2,
            weight: 0.6,
        },
        WarpEntry {
            dst: 1,
            src: 1,
            weight: 0.4,
        },
        WarpEntry {
            dst: 2,
            src: 6,
            weight: 0.8,
        },
        WarpEntry {
            dst: 2,
            src: 3,
            weight: 0.2,
        },
        WarpEntry {
            dst: 3,
            src: 8,
            weight: 0.5,
        },
        WarpEntry {
            dst: 3,
            src: 4,
            weight: 0.5,
        },
    ];
    Arc::new(LinearMap::new((3, 3), (2, 2), entries))
}

/// Runs the full audit at the given tolerance and returns one report per
/// `(op, differentiated input)` case, covering every op exported by
/// `rd-tensor`.
pub fn run_grad_audit(tol: f32) -> Vec<OpReport> {
    let mut rng = StdRng::seed_from_u64(2024);
    // Shared operands. Activation inputs stay away from the kinks of
    // relu/clamp (|x| >= 0.1) so the central difference never straddles a
    // non-differentiable point.
    let vec4 = Tensor::from_vec(vec![0.5, -0.8, 1.2, -0.3], &[4]);
    let vec4b = Tensor::from_vec(vec![-0.4, 0.9, 0.6, -1.1], &[4]);
    let pos4 = Tensor::from_vec(vec![0.3, 0.7, 0.45, 0.9], &[4]);
    let img = Tensor::randn(&mut rng, &[1, 2, 4, 4], 0.8);
    let img1c = Tensor::randn(&mut rng, &[1, 1, 3, 3], 0.8);
    let cw = Tensor::randn(&mut rng, &[3, 2, 3, 3], 0.5);
    let lin_x = Tensor::randn(&mut rng, &[2, 3], 0.8);
    let lin_w = Tensor::randn(&mut rng, &[4, 3], 0.5);
    let lin_b = Tensor::randn(&mut rng, &[4], 0.5);
    let mm_a = Tensor::randn(&mut rng, &[2, 3], 0.8);
    let mm_b = Tensor::randn(&mut rng, &[3, 2], 0.8);
    let gamma = Tensor::from_vec(vec![1.1, 0.9], &[2]);
    let beta = Tensor::from_vec(vec![0.2, -0.1], &[2]);
    let run_mean = Tensor::from_vec(vec![0.05, -0.1], &[2]);
    let run_var = Tensor::from_vec(vec![0.8, 1.3], &[2]);
    let logits = Tensor::randn(&mut rng, &[3, 4], 1.0);
    let bce_target = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]);
    let mse_target = Tensor::from_vec(vec![0.1, -0.2, 0.4, 0.0], &[4]);
    let mask = Tensor::from_vec(
        vec![0.0, 0.25, 0.5, 0.75, 1.0, 0.3, 0.6, 0.9, 0.1],
        &[1, 1, 3, 3],
    );
    let map = warp_map();

    let mut reports = Vec::new();
    let mut case = |name: &'static str, x0: &Tensor, build: &dyn Fn(&mut Graph, VarId) -> VarId| {
        reports.push(audit_case(name, x0, tol, build));
    };

    case("add", &vec4, &|g, x| {
        let b = g.input(vec4b.clone());
        g.add(x, b)
    });
    case("sub", &vec4, &|g, x| {
        let b = g.input(vec4b.clone());
        g.sub(x, b)
    });
    case("mul", &vec4, &|g, x| {
        let b = g.input(vec4b.clone());
        g.mul(x, b)
    });
    case("scale", &vec4, &|g, x| g.scale(x, 1.7));
    case("add_scalar", &vec4, &|g, x| g.add_scalar(x, 0.3));
    case("mul_const", &vec4, &|g, x| g.mul_const(x, &vec4b));
    case("add_const", &vec4, &|g, x| g.add_const(x, &vec4b));
    case("lerp_mask ∂a", &img1c, &|g, x| {
        let b = g.input(mask.clone().reshape(&[1, 1, 3, 3]));
        g.lerp_mask(x, b, &mask)
    });
    case("lerp_mask ∂b", &img1c, &|g, x| {
        let a = g.input(Tensor::full(&[1, 1, 3, 3], 0.4));
        g.lerp_mask(a, x, &mask)
    });
    case("relu", &vec4, &|g, x| g.relu(x));
    case("leaky_relu", &vec4, &|g, x| g.leaky_relu(x, 0.1));
    case("sigmoid", &vec4, &|g, x| g.sigmoid(x));
    case("tanh", &vec4, &|g, x| g.tanh(x));
    case("powf_const", &pos4, &|g, x| g.powf_const(x, 1.7));
    case("clamp", &vec4, &|g, x| g.clamp(x, -1.0, 1.0));
    case("reshape", &vec4, &|g, x| g.reshape(x, &[2, 2]));
    case("repeat_channels", &img1c, &|g, x| g.repeat_channels(x, 3));
    case("concat_channels ∂a", &img, &|g, x| {
        let b = g.input(Tensor::full(&[1, 1, 4, 4], 0.6));
        g.concat_channels(x, b)
    });
    case("concat_channels ∂b", &img1c, &|g, x| {
        let a = g.input(Tensor::full(&[1, 2, 3, 3], 0.2));
        g.concat_channels(a, x)
    });
    case("concat_batch", &lin_x, &|g, x| {
        let b = g.input(Tensor::full(&[1, 3], 0.5));
        g.concat_batch(&[x, b])
    });
    case("sum_all", &vec4, &|g, x| g.sum_all(x));
    case("mean_all", &vec4, &|g, x| g.mean_all(x));
    case("matmul ∂a", &mm_a, &|g, x| {
        let b = g.input(mm_b.clone());
        g.matmul(x, b)
    });
    case("matmul ∂b", &mm_b, &|g, x| {
        let a = g.input(mm_a.clone());
        g.matmul(a, x)
    });
    case("linear ∂x", &lin_x, &|g, x| {
        let w = g.input(lin_w.clone());
        let b = g.input(lin_b.clone());
        g.linear(x, w, b)
    });
    case("linear ∂w", &lin_w, &|g, x| {
        let xx = g.input(lin_x.clone());
        let b = g.input(lin_b.clone());
        g.linear(xx, x, b)
    });
    case("linear ∂b", &lin_b, &|g, x| {
        let xx = g.input(lin_x.clone());
        let w = g.input(lin_w.clone());
        g.linear(xx, w, x)
    });
    case("add_bias_channel ∂x", &img, &|g, x| {
        let b = g.input(gamma.clone());
        g.add_bias_channel(x, b)
    });
    case("add_bias_channel ∂b", &gamma, &|g, x| {
        let xx = g.input(img.clone());
        g.add_bias_channel(xx, x)
    });
    case("conv2d ∂x", &img, &|g, x| {
        let w = g.input(cw.clone());
        g.conv2d(x, w, None, 1, 1)
    });
    case("conv2d ∂w", &cw, &|g, x| {
        let xx = g.input(img.clone());
        g.conv2d(xx, x, None, 1, 1)
    });
    case("max_pool2d", &img, &|g, x| g.max_pool2d(x, 2, 2, 0));
    case("upsample_nearest2x", &img, &|g, x| g.upsample_nearest2x(x));
    case("batch_norm2d_train ∂x", &img, &|g, x| {
        let ga = g.input(gamma.clone());
        let be = g.input(beta.clone());
        // sum_all of plain batch norm is gradient-free in x (the output
        // mean is pinned to beta), so square the output to exercise the
        // full backward formula.
        let (y, _) = g.batch_norm2d_train(x, ga, be, 1e-5);
        g.mul(y, y)
    });
    case("batch_norm2d_train ∂gamma", &gamma, &|g, x| {
        let xx = g.input(img.clone());
        let be = g.input(beta.clone());
        let (y, _) = g.batch_norm2d_train(xx, x, be, 1e-5);
        g.mul(y, y)
    });
    case("batch_norm2d_train ∂beta", &beta, &|g, x| {
        let xx = g.input(img.clone());
        let ga = g.input(gamma.clone());
        let (y, _) = g.batch_norm2d_train(xx, ga, x, 1e-5);
        g.mul(y, y)
    });
    case("batch_norm2d_eval ∂x", &img, &|g, x| {
        let ga = g.input(gamma.clone());
        let be = g.input(beta.clone());
        g.batch_norm2d_eval(x, ga, be, &run_mean, &run_var, 1e-5)
    });
    case("batch_norm2d_eval ∂gamma", &gamma, &|g, x| {
        let xx = g.input(img.clone());
        let be = g.input(beta.clone());
        g.batch_norm2d_eval(xx, x, be, &run_mean, &run_var, 1e-5)
    });
    case("softmax_cross_entropy_rows", &logits, &|g, x| {
        g.softmax_cross_entropy_rows(x, &[0, 3, 1])
    });
    case("bce_with_logits", &vec4, &|g, x| {
        g.bce_with_logits(x, &bce_target)
    });
    case("mse", &vec4, &|g, x| g.mse(x, &mse_target));
    case("warp", &img1c, &|g, x| g.warp(x, &map));

    // ---- compiled-plan fused backward kernels ----
    // The rows above audit the tape's backward closures; the rows below
    // audit the fused kernels of the compiled training step instead.
    // Each net is declared at batch 1 (params carrying their pids),
    // compiled into a TrainPlan, and differentiated through the plan's
    // own forward/backward, covering conv+bn(train|eval)+leaky chains,
    // conv+bias, max-pool scatter, nearest-upsample scatter, channel
    // concat, and the standalone leaky kernel.
    {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::randn(&mut rng, &[3, 2, 3, 3], 0.5));
        let gamma = ps.register("gamma", Tensor::from_vec(vec![1.1, 0.9, 1.05], &[3]));
        let beta = ps.register("beta", Tensor::from_vec(vec![0.2, -0.1, 0.05], &[3]));
        let rmean = ps.register("rmean", Tensor::from_vec(vec![0.05, -0.1, 0.0], &[3]));
        let rvar = ps.register("rvar", Tensor::from_vec(vec![0.8, 1.3, 1.0], &[3]));
        let declare = |train_bn: bool| -> (Graph, VarId) {
            let mut g = Graph::new();
            let x = g.declare("input", &[], &[], &[1, 2, 4, 4]);
            let wv = g.declare("param", &[], &[("pid", w.index())], &[3, 2, 3, 3]);
            let y = g.declare(
                "conv2d",
                &[x, wv],
                &[("stride", 1), ("pad", 1)],
                &[1, 3, 4, 4],
            );
            let ga = g.declare("param", &[], &[("pid", gamma.index())], &[3]);
            let be = g.declare("param", &[], &[("pid", beta.index())], &[3]);
            let y = g.declare(
                if train_bn {
                    "batch_norm2d_train"
                } else {
                    "batch_norm2d_eval"
                },
                &[y, ga, be],
                &[
                    ("rmean_pid", rmean.index()),
                    ("rvar_pid", rvar.index()),
                    ("eps_bits", 1e-5f32.to_bits() as usize),
                ],
                &[1, 3, 4, 4],
            );
            let y = g.declare(
                "leaky_relu",
                &[y],
                &[("alpha_bits", 0.1f32.to_bits() as usize)],
                &[1, 3, 4, 4],
            );
            (g, y)
        };
        let (g, root) = declare(true);
        let plan = TrainPlan::compile(&g, &[root]).expect("fused bn-train chain compiles");
        for (name, wrt) in [
            ("plan conv_bn_train_leaky ∂x", None),
            ("plan conv_bn_train_leaky ∂w", Some(w)),
            ("plan conv_bn_train_leaky ∂gamma", Some(gamma)),
            ("plan conv_bn_train_leaky ∂beta", Some(beta)),
        ] {
            reports.push(audit_plan_case(name, &mut ps, &plan, &img, wrt, tol));
        }
        let (g, root) = declare(false);
        let plan = TrainPlan::compile(&g, &[root]).expect("fused bn-eval chain compiles");
        for (name, wrt) in [
            ("plan conv_bn_eval_leaky ∂x", None),
            ("plan conv_bn_eval_leaky ∂gamma", Some(gamma)),
            ("plan conv_bn_eval_leaky ∂beta", Some(beta)),
        ] {
            reports.push(audit_plan_case(name, &mut ps, &plan, &img, wrt, tol));
        }
    }
    {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::randn(&mut rng, &[2, 2, 1, 1], 0.6));
        let b = ps.register("b", Tensor::from_vec(vec![0.3, -0.2], &[2]));
        let mut g = Graph::new();
        let x = g.declare("input", &[], &[], &[1, 2, 4, 4]);
        let wv = g.declare("param", &[], &[("pid", w.index())], &[2, 2, 1, 1]);
        let y = g.declare(
            "conv2d",
            &[x, wv],
            &[("stride", 1), ("pad", 0)],
            &[1, 2, 4, 4],
        );
        let bv = g.declare("param", &[], &[("pid", b.index())], &[2]);
        let y = g.declare("add_bias_channel", &[y, bv], &[], &[1, 2, 4, 4]);
        // branch 1: pool then upsample back to 4x4
        let p = g.declare(
            "max_pool2d",
            &[y],
            &[("k", 2), ("stride", 2), ("pad", 0)],
            &[1, 2, 2, 2],
        );
        let u = g.declare("upsample_nearest2x", &[p], &[], &[1, 2, 4, 4]);
        // branch 2: leaky off the same conv output — a second reader,
        // so it compiles to the standalone (unfused) leaky kernel
        let l = g.declare(
            "leaky_relu",
            &[y],
            &[("alpha_bits", 0.1f32.to_bits() as usize)],
            &[1, 2, 4, 4],
        );
        let cat = g.declare("concat_channels", &[u, l], &[], &[1, 4, 4, 4]);
        let plan = TrainPlan::compile(&g, &[cat]).expect("pool/upsample/concat net compiles");
        for (name, wrt) in [
            ("plan conv_bias+pool+up+concat ∂x", None),
            ("plan conv_bias+pool+up+concat ∂w", Some(w)),
            ("plan conv_bias+pool+up+concat ∂b", Some(b)),
        ] {
            reports.push(audit_plan_case(name, &mut ps, &plan, &img, wrt, tol));
        }
    }

    reports
}

/// Renders the audit as an aligned pass/fail table.
pub fn render_table(reports: &[OpReport], tol: f32) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:>12} {:>6}\n",
        "op ∂input", "max err", "status"
    ));
    out.push_str(&format!("{}\n", "-".repeat(52)));
    for r in reports {
        out.push_str(&format!(
            "{:<32} {:>12.3e} {:>6}\n",
            r.case,
            r.max_err,
            if r.pass { "ok" } else { "FAIL" }
        ));
    }
    let failed = reports.iter().filter(|r| !r.pass).count();
    out.push_str(&format!(
        "{} case(s), {} failed, tolerance {tol:.0e}\n",
        reports.len(),
        failed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_passes_at_audit_tolerance() {
        let reports = run_grad_audit(1e-2);
        let failing: Vec<&OpReport> = reports.iter().filter(|r| !r.pass).collect();
        assert!(
            failing.is_empty(),
            "failing cases:\n{}",
            render_table(&reports, 1e-2)
        );
        // the sweep must cover the full op surface, not a subset —
        // including the compiled-plan fused backward kernels
        assert!(reports.len() >= 50, "only {} cases", reports.len());
        assert!(
            reports
                .iter()
                .filter(|r| r.case.starts_with("plan "))
                .count()
                >= 10,
            "missing compiled-plan cases"
        );
    }
}
