//! Alias analysis over the plan IR.
//!
//! The compiled executors assume SSA-like buffer discipline: every
//! activation slot has exactly one producer, no op updates a slot in
//! place, and the plan input slot is read-only after the executor
//! copies the batch in. The lowering guarantees all three today —
//! `Graph::declare` allocates a fresh slot per tape op and reshapes
//! alias without writing — but nothing downstream re-checks it, and the
//! parallel fan-out silently depends on it (two producers for one slot
//! in different groups is a write-write race; see [`crate::race`]).
//!
//! This module also re-derives the train plans' `gx_direct` routing:
//! a conv backward may `col2im`-scatter straight into its input slot's
//! gradient *only* when that slot has no later forward reader and is
//! not a plan root; otherwise the scatter must go through a temp + add
//! so earlier consumers' contributions accumulate. The flag is computed
//! once at compile time — [`check`] recomputes the sole-consumer
//! property from the IR and flags any disagreement.

use crate::ir::{op_issue, PlanIr, PlanIssue, PlanLintKind};
use rd_tensor::PlanKind;

/// Single-producer / no-in-place / input-read-only alias lints plus
/// `gx_direct` routing verification.
pub fn check(ir: &PlanIr) -> Vec<PlanIssue> {
    let meta = ir.meta;
    let mut issues = Vec::new();

    for (s, defs) in ir.defs.iter().enumerate() {
        if defs.len() > 1 {
            let writers: Vec<String> = defs
                .iter()
                .map(|&d| format!("{}#{d}", meta.ops[d].path))
                .collect();
            issues.push(op_issue(
                meta,
                PlanLintKind::Alias,
                defs[1],
                format!(
                    "slot {s} has {} producers ({}); compiled buffers are single-assignment",
                    defs.len(),
                    writers.join(", ")
                ),
            ));
        }
    }

    for (oi, op) in meta.ops.iter().enumerate() {
        for &w in &op.writes {
            if op.reads.contains(&w) {
                issues.push(op_issue(
                    meta,
                    PlanLintKind::Alias,
                    oi,
                    format!("reads and writes slot {w} (in-place update; no plan kernel is in-place safe)"),
                ));
            }
            if w == meta.input_slot {
                issues.push(op_issue(
                    meta,
                    PlanLintKind::Alias,
                    oi,
                    format!("writes the plan input slot {w}; the input is read-only after batch copy-in"),
                ));
            }
        }
    }

    issues.extend(check_gx_routing(ir));
    issues
}

/// Recompute each train conv's sole-consumer property and compare with
/// the stored `gx_direct` flag.
fn check_gx_routing(ir: &PlanIr) -> Vec<PlanIssue> {
    let meta = ir.meta;
    let mut issues = Vec::new();
    for (oi, op) in meta.ops.iter().enumerate() {
        let Some(stored) = op.gx_direct else { continue };
        if meta.kind == PlanKind::Infer {
            issues.push(op_issue(
                meta,
                PlanLintKind::GxRouting,
                oi,
                "carries a gx_direct flag in an inference plan (no backward pass exists)".into(),
            ));
            continue;
        }
        let Some(&x) = op.reads.first() else { continue };
        let later_reader = meta.ops[oi + 1..]
            .iter()
            .position(|o| o.reads.contains(&x))
            .map(|j| oi + 1 + j);
        let is_root = meta.outputs.contains(&x);
        let expected = later_reader.is_none() && !is_root;
        if stored != expected {
            let why = if let Some(j) = later_reader {
                format!("slot {x} is also read by {}#{j}", meta.ops[j].path)
            } else if is_root {
                format!("slot {x} is a plan root")
            } else {
                format!("slot {x} has no later reader and is not a root")
            };
            issues.push(op_issue(
                meta,
                PlanLintKind::GxRouting,
                oi,
                format!(
                    "gx_direct is {stored} but the IR derives {expected}: {why}; \
                     direct col2im scatter would {} gradient contributions",
                    if stored {
                        "clobber earlier consumers'"
                    } else {
                        "needlessly stage"
                    }
                ),
            ));
        }
    }
    issues
}
