//! Static data-race checks for the worker-group fan-out.
//!
//! The compiled engines parallelise with
//! [`rd_tensor::parallel::groups_for`]: inference gives each group a
//! private slot table and a disjoint chunk of the output copy, while
//! training shares full-batch buffers and fans only the conv kernels
//! out over per-group *sample* chunks (`per = n.div_ceil(groups)`,
//! group `g` owning samples `[g*per, min((g+1)*per, n))`). Freedom from
//! data races therefore rests on two static facts:
//!
//! 1. the partition arithmetic covers every sample exactly once for
//!    every batch size and group count, and
//! 2. each conv's per-sample strides are consistent — the slot lengths
//!    match the op geometry and the output dims match the conv formula
//!    — so chunk `g` of the output is written from chunk `g` of the
//!    input and nothing else.
//!
//! Both are decidable from the IR alone; [`check`] proves them and
//! reports violations as [`PlanLintKind::Race`]. Together with the
//! single-producer lint in [`crate::alias`] (two writers for one slot
//!    would be a cross-group write-write race in the train fan-out)
//! this is a static data-race detector for the plan executors.

use crate::ir::{op_issue, PlanIr, PlanIssue, PlanLintKind};
use rd_tensor::parallel::groups_for;

/// Largest batch size the partition arithmetic is exhaustively checked
/// for. `groups_for` clamps to 8 groups, so behaviour is periodic well
/// below this bound.
const MAX_CHECKED_BATCH: usize = 256;

/// Partition-coverage and chunk-tiling race lints.
pub fn check(ir: &PlanIr) -> Vec<PlanIssue> {
    let meta = ir.meta;
    let mut issues = Vec::new();

    // 1. Exhaustively prove the sample partition is exact: every batch
    //    size up to the bound splits into disjoint chunks that sum back
    //    to n. A gap double-assigns or drops samples — a race or silent
    //    wrong answer depending on scheduling.
    for n in 1..=MAX_CHECKED_BATCH {
        let groups = groups_for(n);
        if groups == 0 || groups > n.max(1) {
            issues.push(PlanIssue {
                kind: PlanLintKind::Race,
                op: None,
                path: "parallel::groups_for".into(),
                message: format!("groups_for({n}) = {groups}, outside [1, {n}]"),
            });
            continue;
        }
        let per = n.div_ceil(groups);
        let covered: usize = (0..groups)
            .map(|g| per.min(n.saturating_sub(g * per)))
            .sum();
        if covered != n {
            issues.push(PlanIssue {
                kind: PlanLintKind::Race,
                op: None,
                path: "parallel::groups_for".into(),
                message: format!(
                    "sample partition for n={n} (groups={groups}, per={per}) covers {covered} samples"
                ),
            });
        }
    }

    // 2. Per-conv stride consistency: group g's output chunk starts at
    //    g*per*cout*ho*wo and its input chunk at g*per*cin*hin*win, so
    //    the per-sample strides must equal the slot lengths and the
    //    output dims must follow from the geometry. Any mismatch makes
    //    adjacent groups' chunks overlap or leave gaps.
    for (oi, op) in meta.ops.iter().enumerate() {
        let Some(c) = &op.conv else { continue };
        let (Some(&x), Some(&out)) = (op.reads.first(), op.writes.first()) else {
            continue; // lift() already reported malformed def/use lists
        };
        let in_len = c.cin * c.hin * c.win;
        if meta.slots[x].len != in_len {
            issues.push(op_issue(
                meta,
                PlanLintKind::Race,
                oi,
                format!(
                    "input slot {x} holds {} elems per sample but the conv geometry \
                     strides by cin*hin*win = {in_len}; group chunks would misalign",
                    meta.slots[x].len
                ),
            ));
        }
        let out_len = c.cout * c.ho * c.wo;
        if meta.slots[out].len != out_len {
            issues.push(op_issue(
                meta,
                PlanLintKind::Race,
                oi,
                format!(
                    "output slot {out} holds {} elems per sample but the conv geometry \
                     strides by cout*ho*wo = {out_len}; group chunks would overlap or gap",
                    meta.slots[out].len
                ),
            ));
        }
        if c.stride == 0 {
            issues.push(op_issue(
                meta,
                PlanLintKind::Race,
                oi,
                "conv stride is 0; output geometry is undefined".into(),
            ));
            continue;
        }
        let padded_h = c.hin + 2 * c.pad;
        let padded_w = c.win + 2 * c.pad;
        if c.kh == 0 || c.kw == 0 || c.kh > padded_h || c.kw > padded_w {
            issues.push(op_issue(
                meta,
                PlanLintKind::Race,
                oi,
                format!(
                    "kernel {}x{} does not fit the padded {padded_h}x{padded_w} input",
                    c.kh, c.kw
                ),
            ));
            continue;
        }
        let ho = (padded_h - c.kh) / c.stride + 1;
        let wo = (padded_w - c.kw) / c.stride + 1;
        if (c.ho, c.wo) != (ho, wo) {
            issues.push(op_issue(
                meta,
                PlanLintKind::Race,
                oi,
                format!(
                    "stored output dims {}x{} disagree with the conv formula {ho}x{wo}; \
                     per-group chunk offsets would be computed from the wrong strides",
                    c.ho, c.wo
                ),
            ));
        }
    }
    issues
}
