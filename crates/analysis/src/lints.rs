//! Structural lints over the metadata tape.
//!
//! These catch graphs that execute fine but silently train wrong:
//! parameters the loss never sees, nodes computed and thrown away, and
//! parameters whose gradient is structurally zero because every path to
//! the loss crosses a node without a backward closure.
//!
//! Opaque `custom` nodes (recorded without parent metadata) force
//! conservatism: an opaque node is treated as if it could read every
//! earlier node, so reachability-based lints never report a false
//! positive because of one.

use crate::shape::expected_arity;
use rd_tensor::{Graph, ParamSet, VarId};

/// Category of a [`LintIssue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// A parameter leaf with no forward path to the root node.
    UnusedParam,
    /// A non-leaf node never consumed by any later node or the root.
    DeadNode,
    /// A parameter that reaches the root, but only through nodes with no
    /// backward closure — its gradient is always zero.
    AlwaysZeroGrad,
    /// A node whose recorded parent list is malformed (forward
    /// reference, self-reference, or arity outside the op's rule).
    FanInAnomaly,
}

impl LintKind {
    fn label(self) -> &'static str {
        match self {
            LintKind::UnusedParam => "unused-param",
            LintKind::DeadNode => "dead-node",
            LintKind::AlwaysZeroGrad => "always-zero-grad",
            LintKind::FanInAnomaly => "fan-in-anomaly",
        }
    }
}

/// One lint finding, anchored to a tape node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintIssue {
    /// Category of the finding.
    pub kind: LintKind,
    /// Tape position of the offending node.
    pub node: usize,
    /// `scope/op` label of the node.
    pub path: String,
    /// Explanation of the finding.
    pub message: String,
}

impl std::fmt::Display for LintIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.kind.label(), self.path, self.message)
    }
}

fn node_path(g: &Graph, i: usize) -> String {
    let meta = g.meta(VarId::from_index(i));
    if meta.scope.is_empty() {
        format!("{}#{i}", meta.op)
    } else {
        format!("{}/{}#{i}", meta.scope, meta.op)
    }
}

fn is_opaque(g: &Graph, i: usize) -> bool {
    let meta = g.meta(VarId::from_index(i));
    meta.op == "custom" && meta.parents.is_empty()
}

/// Marks everything reachable backwards from `root` by following parent
/// lists. When `grad_only` is set, edges out of a node are only followed
/// if that node has a backward closure (or is the root itself), which
/// yields the set of nodes that can receive a nonzero gradient.
fn reach_backwards(g: &Graph, root: usize, grad_only: bool) -> Vec<bool> {
    let mut seen = vec![false; g.len()];
    let mut stack = vec![root];
    seen[root] = true;
    while let Some(i) = stack.pop() {
        let id = VarId::from_index(i);
        if grad_only && i != root && !g.has_back(id) {
            continue;
        }
        if is_opaque(g, i) && g.has_back(id) {
            // Unknown closure: assume it reads (and back-propagates to)
            // every earlier node.
            for j in 0..i {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
            continue;
        }
        for p in g.meta(id).parents.iter() {
            let j = p.index();
            if j < i && !seen[j] {
                seen[j] = true;
                stack.push(j);
            }
        }
    }
    seen
}

/// Lints the tape with its last node as the root (the conventional loss
/// position). See [`lint_with_params`] to resolve parameter names.
pub fn lint(g: &Graph) -> Vec<LintIssue> {
    lint_impl(g, None)
}

/// Lints the tape and resolves parameter names through `ps` for links
/// that belong to it (links to other parameter sets keep positional
/// labels).
pub fn lint_with_params(g: &Graph, ps: &ParamSet) -> Vec<LintIssue> {
    lint_impl(g, Some(ps))
}

fn lint_impl(g: &Graph, ps: Option<&ParamSet>) -> Vec<LintIssue> {
    let mut issues = Vec::new();
    if g.is_empty() {
        return issues;
    }
    let root = g.len() - 1;

    // Fan-in anomalies first: they are metadata bugs that make the
    // reachability answers below unreliable for the offending node.
    for i in 0..g.len() {
        let meta = g.meta(VarId::from_index(i));
        for p in meta.parents.iter() {
            if p.index() >= i {
                issues.push(LintIssue {
                    kind: LintKind::FanInAnomaly,
                    node: i,
                    path: node_path(g, i),
                    message: format!(
                        "parent #{} does not precede the node on the tape",
                        p.index()
                    ),
                });
            }
        }
        if let Some((lo, hi)) = expected_arity(meta.op) {
            let n = meta.parents.len();
            if n < lo || n > hi {
                issues.push(LintIssue {
                    kind: LintKind::FanInAnomaly,
                    node: i,
                    path: node_path(g, i),
                    message: if lo == hi {
                        format!("{} expects {lo} parent(s), metadata records {n}", meta.op)
                    } else {
                        format!(
                            "{} expects at least {lo} parent(s), metadata records {n}",
                            meta.op
                        )
                    },
                });
            }
        }
    }

    let fwd = reach_backwards(g, root, false);
    let grad = reach_backwards(g, root, true);
    let any_opaque = (0..g.len()).any(|i| is_opaque(g, i));

    // Unused / zero-grad parameters.
    for (link_idx, &(var, pid, uid)) in g.param_links().iter().enumerate() {
        let name = match ps {
            Some(ps) if ps.uid() == uid => format!("`{}`", ps.get(pid).name()),
            _ => format!("link #{link_idx}"),
        };
        let i = var.index();
        if !fwd[i] {
            issues.push(LintIssue {
                kind: LintKind::UnusedParam,
                node: i,
                path: node_path(g, i),
                message: format!("parameter {name} is never used by the loss at node #{root}"),
            });
        } else if !grad[i] {
            issues.push(LintIssue {
                kind: LintKind::AlwaysZeroGrad,
                node: i,
                path: node_path(g, i),
                message: format!(
                    "every path from parameter {name} to the loss crosses a node without a backward closure; its gradient is structurally zero"
                ),
            });
        }
    }

    // Dead nodes: computed, never consumed. Suppressed entirely when an
    // opaque custom node exists, because consumers are then unknowable.
    if !any_opaque {
        let mut consumed = vec![false; g.len()];
        for i in 0..g.len() {
            for p in g.meta(VarId::from_index(i)).parents.iter() {
                if p.index() < i {
                    consumed[p.index()] = true;
                }
            }
        }
        for (i, &used) in consumed.iter().enumerate() {
            let meta = g.meta(VarId::from_index(i));
            if i != root && !used && !matches!(meta.op, "input" | "param") {
                issues.push(LintIssue {
                    kind: LintKind::DeadNode,
                    node: i,
                    path: node_path(g, i),
                    message: format!("{} output is never consumed", meta.op),
                });
            }
        }
    }

    issues
}
