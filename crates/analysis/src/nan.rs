//! NaN/Inf provenance over an executed tape.
//!
//! When a loss diverges, the interesting question is not *that* a NaN
//! exists but *where it was born*. [`audit_non_finite`] scans the value
//! tape in execution order, stops at the first node holding a non-finite
//! value, and reports the producing op, its parents' value ranges, and
//! the nearest fully-finite ancestor — the last place the numbers were
//! still healthy.

use rd_tensor::{Graph, Tensor, VarId};

/// Summary of one tensor's values for a provenance report.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueRange {
    /// Tape position of the summarized node.
    pub node: usize,
    /// `scope/op` label of the node.
    pub path: String,
    /// Smallest finite value (`None` when no element is finite).
    pub min: Option<f32>,
    /// Largest finite value (`None` when no element is finite).
    pub max: Option<f32>,
    /// Number of non-finite elements.
    pub non_finite: usize,
    /// Total number of elements.
    pub len: usize,
}

impl std::fmt::Display for ValueRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) if self.non_finite == 0 => {
                write!(f, "#{} {}: range [{lo:.4}, {hi:.4}]", self.node, self.path)
            }
            (Some(lo), Some(hi)) => write!(
                f,
                "#{} {}: range [{lo:.4}, {hi:.4}], {}/{} non-finite",
                self.node, self.path, self.non_finite, self.len
            ),
            _ => write!(
                f,
                "#{} {}: all {} element(s) non-finite",
                self.node, self.path, self.len
            ),
        }
    }
}

fn summarize(g: &Graph, i: usize) -> ValueRange {
    let t: &Tensor = g.value(VarId::from_index(i));
    let mut min = None;
    let mut max = None;
    let mut non_finite = 0usize;
    for &v in t.data() {
        if v.is_finite() {
            min = Some(min.map_or(v, |m: f32| m.min(v)));
            max = Some(max.map_or(v, |m: f32| m.max(v)));
        } else {
            non_finite += 1;
        }
    }
    ValueRange {
        node: i,
        path: path_of(g, i),
        min,
        max,
        non_finite,
        len: t.len(),
    }
}

fn path_of(g: &Graph, i: usize) -> String {
    let meta = g.meta(VarId::from_index(i));
    if meta.scope.is_empty() {
        meta.op.to_string()
    } else {
        format!("{}/{}", meta.scope, meta.op)
    }
}

/// Where the first non-finite value on the tape came from.
#[derive(Debug, Clone, PartialEq)]
pub struct NanReport {
    /// The first node (in execution order) holding a non-finite value.
    pub culprit: ValueRange,
    /// Value ranges of the culprit's recorded parents.
    pub parents: Vec<ValueRange>,
    /// Nearest ancestor whose value is fully finite, if any.
    pub last_finite_ancestor: Option<ValueRange>,
}

impl std::fmt::Display for NanReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "first non-finite value produced by {}", self.culprit)?;
        if self.parents.is_empty() {
            writeln!(f, "  parents: none recorded (leaf or opaque custom op)")?;
        } else {
            for p in &self.parents {
                writeln!(f, "  parent {p}")?;
            }
        }
        match &self.last_finite_ancestor {
            Some(a) => write!(f, "  last finite ancestor {a}"),
            None => write!(f, "  no fully-finite ancestor"),
        }
    }
}

/// Scans the executed tape for its first non-finite value and explains
/// its provenance. Returns `None` when every node is finite. Intended as
/// an opt-in audit (`--audit` on the train/repro binaries): it touches
/// every element of every tensor on the tape.
pub fn audit_non_finite(g: &Graph) -> Option<NanReport> {
    let culprit_idx = (0..g.len()).find(|&i| g.value(VarId::from_index(i)).has_non_finite())?;
    let culprit = summarize(g, culprit_idx);
    let meta = g.meta(VarId::from_index(culprit_idx));
    let parents: Vec<ValueRange> = meta
        .parents
        .iter()
        .map(|p| summarize(g, p.index()))
        .collect();

    // Breadth-first walk up the ancestry for the nearest finite tensor.
    let mut seen = vec![false; g.len()];
    let mut frontier: Vec<usize> = meta.parents.iter().map(|p| p.index()).collect();
    for &i in &frontier {
        seen[i] = true;
    }
    let mut last_finite_ancestor = None;
    while !frontier.is_empty() {
        if let Some(&i) = frontier
            .iter()
            .find(|&&i| !g.value(VarId::from_index(i)).has_non_finite())
        {
            last_finite_ancestor = Some(summarize(g, i));
            break;
        }
        let mut next = Vec::new();
        for &i in &frontier {
            for p in g.meta(VarId::from_index(i)).parents.iter() {
                if p.index() < i && !seen[p.index()] {
                    seen[p.index()] = true;
                    next.push(p.index());
                }
            }
        }
        frontier = next;
    }

    Some(NanReport {
        culprit,
        parents,
        last_finite_ancestor,
    })
}
