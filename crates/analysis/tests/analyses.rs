//! Integration fixtures for the three rd-analysis passes: shape
//! validation on a declared graph, structural lints over an executed
//! tape, and NaN provenance with a mid-tape injection.

use rd_analysis::{audit_non_finite, lint_with_params, validate, LintKind};
use rd_tensor::{Graph, ParamSet, Tensor};

#[test]
fn validation_names_the_offending_layer_in_a_declared_net() {
    // A three-block conv stack declared shape-only; the middle block's
    // weight claims 8 input channels while block one produces 16.
    let mut g = Graph::new();
    let x = g.declare("input", &[], &[], &[1, 3, 32, 32]);
    let y = g.scoped("stem/conv1", |g| {
        let w = g.declare("param", &[], &[], &[16, 3, 3, 3]);
        g.declare(
            "conv2d",
            &[x, w],
            &[("stride", 1), ("pad", 1)],
            &[1, 16, 32, 32],
        )
    });
    let y = g.scoped("stem/conv2", |g| {
        let w = g.declare("param", &[], &[], &[32, 8, 3, 3]);
        g.declare(
            "conv2d",
            &[y, w],
            &[("stride", 1), ("pad", 1)],
            &[1, 32, 32, 32],
        )
    });
    g.scoped("stem/conv3", |g| {
        let w = g.declare("param", &[], &[], &[32, 32, 3, 3]);
        g.declare(
            "conv2d",
            &[y, w],
            &[("stride", 1), ("pad", 1)],
            &[1, 32, 32, 32],
        )
    });

    let issues = validate(&g).unwrap_err();
    assert_eq!(issues.len(), 1, "claimed-shape recovery must stop cascades");
    let msg = issues[0].to_string();
    assert!(msg.contains("stem/conv2"), "wrong layer named: {msg}");
    assert!(msg.contains("C=8") && msg.contains("C=16"), "{msg}");
}

#[test]
fn zero_sized_dimension_is_flagged_as_underflow() {
    // The silent-shape-underflow class: a conv whose kernel exceeds the
    // padded input used to be declared with a saturated (bogus) output
    // dim. The validator must flag both the impossible conv and any
    // node that declares a zero-sized dimension outright.
    let mut g = Graph::new();
    let x = g.declare("input", &[], &[], &[1, 3, 2, 2]);
    g.scoped("stem/conv1", |g| {
        let w = g.declare("param", &[], &[], &[4, 3, 5, 5]);
        g.declare(
            "conv2d",
            &[x, w],
            &[("stride", 1), ("pad", 1)],
            &[1, 4, 1, 1],
        )
    });
    let issues = validate(&g).unwrap_err();
    let msg = issues[0].to_string();
    assert!(
        msg.contains("larger than padded input"),
        "conv underflow not named: {msg}"
    );

    let mut g = Graph::new();
    let x = g.declare("input", &[], &[], &[1, 3, 0, 8]);
    g.declare("relu", &[x], &[], &[1, 3, 0, 8]);
    let issues = validate(&g).unwrap_err();
    assert!(
        issues
            .iter()
            .any(|i| i.to_string().contains("zero-sized dimension")),
        "zero-dim rule did not fire: {issues:?}"
    );
}

#[test]
fn unused_param_lint_names_the_parameter() {
    let mut ps = ParamSet::new();
    let used = ps.register("used.w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
    let forgotten = ps.register("forgotten.w", Tensor::from_vec(vec![3.0], &[1]));

    let mut g = Graph::new();
    let a = g.param(&ps, used);
    let _b = g.param(&ps, forgotten); // enters the tape, never reaches the loss
    let doubled = g.scale(a, 2.0);
    let _loss = g.sum_all(doubled);

    let issues = lint_with_params(&g, &ps);
    let unused: Vec<_> = issues
        .iter()
        .filter(|i| i.kind == LintKind::UnusedParam)
        .collect();
    assert_eq!(unused.len(), 1, "exactly one unused param: {issues:?}");
    assert!(
        unused[0].message.contains("`forgotten.w`"),
        "must resolve the parameter name: {}",
        unused[0]
    );
}

#[test]
fn structurally_zero_grad_param_is_flagged() {
    let mut ps = ParamSet::new();
    let p = ps.register("w", Tensor::from_vec(vec![1.0, -1.0], &[2]));

    let mut g = Graph::new();
    let v = g.param(&ps, p);
    // A named custom node *without* a backward closure: the parameter is
    // forward-reachable but no gradient can flow through.
    let blocked = {
        let t = g.value(v).clone();
        g.custom_named("detach", &[v], &[], t, None)
    };
    let _loss = g.sum_all(blocked);

    let issues = lint_with_params(&g, &ps);
    assert!(
        issues
            .iter()
            .any(|i| i.kind == LintKind::AlwaysZeroGrad && i.message.contains("`w`")),
        "zero-grad param not flagged: {issues:?}"
    );
}

#[test]
fn nan_provenance_points_at_the_injection_site() {
    let mut g = Graph::new();
    let x = g.input(Tensor::from_vec(vec![0.5, 1.5, -0.25, 2.0], &[4]));
    let healthy = g.scale(x, 2.0);
    // inject a NaN mid-tape through a named fused op
    let poisoned = {
        let mut t = g.value(healthy).clone();
        t.data_mut()[2] = f32::NAN;
        g.custom_named("flaky_kernel", &[healthy], &[], t, None)
    };
    let downstream = g.add_scalar(poisoned, 1.0); // inherits the NaN
    let _loss = g.sum_all(downstream);

    let report = audit_non_finite(&g).expect("tape contains a NaN");
    assert!(
        report.culprit.path.contains("flaky_kernel"),
        "culprit is the injection site, got {}",
        report.culprit
    );
    assert_eq!(report.culprit.non_finite, 1);
    assert_eq!(report.culprit.len, 4);
    // the recorded parent was still healthy
    assert_eq!(report.parents.len(), 1);
    assert_eq!(report.parents[0].non_finite, 0);
    assert_eq!(report.parents[0].min, Some(-0.5));
    assert_eq!(report.parents[0].max, Some(4.0));
    // and the nearest fully-finite ancestor is that same parent
    let anc = report
        .last_finite_ancestor
        .as_ref()
        .expect("finite ancestor");
    assert_eq!(anc.node, report.parents[0].node);
}

#[test]
fn clean_tape_produces_no_nan_report() {
    let mut g = Graph::new();
    let x = g.input(Tensor::from_vec(vec![1.0, 2.0], &[2]));
    let y = g.relu(x);
    let _ = g.sum_all(y);
    assert!(audit_non_finite(&g).is_none());
}
