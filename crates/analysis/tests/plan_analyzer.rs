//! Plan-analyzer integration tests: clean audits over every real plan,
//! mutation tests proving each lint fires at the exact op path, and
//! soundness checks for the static ulp-error certificates.
//!
//! The mutation half is the analyzer's negative-path coverage demanded
//! by ISSUE 6: a lint that never fires is indistinguishable from a lint
//! that cannot fire, so every [`Corruption`] is applied to a freshly
//! lifted real plan and the *intended* [`PlanLintKind`] must be
//! reported at the *corrupted op's* path — not merely somewhere.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rd_analysis::{
    audit_plan, certify_logit_bounds, liveness, plan_mutate, Corruption, KernelModel, PlanIr,
    PlanLintKind,
};
use rd_detector::{TinyYolo, YoloConfig};
use rd_gan::{Discriminator, GanConfig, Generator};
use rd_tensor::{
    ConvGeom, Graph, ParamRef, ParamRole, ParamSet, PlanKind, PlanMeta, PlanOpMeta, SlotMeta,
    Tensor,
};

/// Smoke-scale detector with fully randomized parameters (running
/// variances kept positive), as in the infer/train equivalence tests.
fn random_detector(seed: u64) -> (TinyYolo, ParamSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let model = TinyYolo::new(&mut ps, &mut rng, YoloConfig::smoke());
    for (_, p) in ps.iter_mut() {
        let rvar = p.name().ends_with(".rvar");
        for v in p.value_mut().data_mut() {
            let r: f32 = rng.gen_range(-0.5..0.5);
            *v = if rvar { 0.1 + (r + 0.5) } else { *v + r };
        }
    }
    (model, ps)
}

fn gan_models(seed: u64) -> (Generator, Discriminator, ParamSet, ParamSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = GanConfig::default();
    let mut ps_g = ParamSet::new();
    let mut ps_d = ParamSet::new();
    let gen = Generator::new(&mut ps_g, &mut rng, cfg);
    let disc = Discriminator::new(&mut ps_d, &mut rng, cfg);
    (gen, disc, ps_g, ps_d)
}

/// `path#index` anchor the analyzer reports for op `oi`.
fn anchor(meta: &PlanMeta, oi: usize) -> String {
    format!("{}#{oi}", meta.ops[oi].path)
}

/// Asserts that auditing `meta` yields at least one `kind` finding at
/// exactly `path`, and returns all findings for further inspection.
fn assert_fires(meta: &PlanMeta, ps: &ParamSet, kind: PlanLintKind, path: &str) {
    let issues = audit_plan(meta, ps);
    assert!(
        issues.iter().any(|i| i.kind == kind && i.path == path),
        "expected a {kind:?} finding at `{path}`, got: {:?}",
        issues.iter().map(|i| i.to_string()).collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------
// positive paths: every real plan audits clean
// ---------------------------------------------------------------------

#[test]
fn every_real_plan_audits_clean() {
    let (det, ps_det) = random_detector(11);
    let (gen, disc, ps_g, ps_d) = gan_models(12);
    let plans = [
        ("detector/infer", det.infer_plan(&ps_det).meta(), &ps_det),
        ("detector/train", det.train_plan(&ps_det).meta(), &ps_det),
        ("detector/grad", det.grad_plan(&ps_det).meta(), &ps_det),
        ("gan/generator", gen.infer_plan(&ps_g).meta(), &ps_g),
        ("gan/discriminator", disc.infer_plan(&ps_d).meta(), &ps_d),
    ];
    for (tag, meta, ps) in &plans {
        let issues = audit_plan(meta, ps);
        assert!(
            issues.is_empty(),
            "{tag}: expected a clean audit, got: {:?}",
            issues.iter().map(|i| i.to_string()).collect::<Vec<_>>()
        );
    }
    // No orphans: every parameter of each set is reachable from its
    // compiled plans.
    let det_metas: Vec<&PlanMeta> = plans[..3].iter().map(|(_, m, _)| m).collect();
    assert!(rd_analysis::orphan_params(&det_metas, &ps_det).is_empty());
    assert!(rd_analysis::orphan_params(&[&plans[3].1], &ps_g).is_empty());
    assert!(rd_analysis::orphan_params(&[&plans[4].1], &ps_d).is_empty());
}

#[test]
fn orphan_params_reports_unreferenced_parameter() {
    let (det, mut ps) = random_detector(13);
    let meta = det.infer_plan(&ps).meta();
    ps.register("stray.weight", Tensor::zeros(&[3, 3]));
    let orphans = rd_analysis::orphan_params(&[&meta], &ps);
    assert_eq!(orphans.len(), 1, "exactly the stray param is orphaned");
    assert_eq!(orphans[0].kind, PlanLintKind::OrphanParam);
    assert!(orphans[0].message.contains("stray.weight"));
}

#[test]
fn liveness_statistics_are_consistent() {
    let (det, ps) = random_detector(17);
    let meta = det.train_plan(&ps).meta();
    let ir = PlanIr::lift(&meta).expect("real plan lifts");
    let ranges = liveness::live_ranges(&ir);
    assert_eq!(ranges.len(), meta.slots.len());
    let peak = liveness::peak_live_elems(&ir);
    let max_slot = meta.slots.iter().map(|s| s.len).max().unwrap();
    let total: usize = meta.slots.iter().map(|s| s.len).sum();
    assert!(
        peak >= max_slot && peak <= total,
        "peak {peak} outside [{max_slot}, {total}]"
    );
}

// ---------------------------------------------------------------------
// negative paths: every corruption is caught by the intended lint
// ---------------------------------------------------------------------

/// First op index with a fused conv (chain length > 1, has params).
fn first_fused_conv(meta: &PlanMeta) -> usize {
    meta.ops
        .iter()
        .position(|o| o.conv.is_some() && o.fused.len() > 1 && !o.params.is_empty())
        .expect("plan has a fused conv")
}

#[test]
fn swap_buffer_indices_is_use_before_def() {
    let (det, ps) = random_detector(21);
    let mut meta = det.train_plan(&ps).meta();
    let op = first_fused_conv(&meta);
    plan_mutate::apply(&mut meta, Corruption::SwapBufferIndices { op });
    assert_fires(&meta, &ps, PlanLintKind::UseBeforeDef, &anchor(&meta, op));
}

#[test]
fn redirect_read_orphans_the_real_input_as_dead_buffer() {
    let (det, ps) = random_detector(22);
    let mut meta = det.infer_plan(&ps).meta();
    let ir = PlanIr::lift(&meta).expect("real plan lifts");
    // A slot with a producer and exactly one reader: redirecting that
    // reader elsewhere leaves the producer's output dead.
    let (slot, reader) = (0..meta.slots.len())
        .find_map(|s| {
            (!ir.defs[s].is_empty() && ir.uses[s].len() == 1 && !meta.outputs.contains(&s))
                .then(|| (s, ir.uses[s][0]))
        })
        .expect("plan has a single-reader slot");
    let producer = ir.defs[slot][0];
    let to = meta.input_slot;
    plan_mutate::apply(&mut meta, Corruption::RedirectRead { op: reader, to });
    assert_fires(
        &meta,
        &ps,
        PlanLintKind::DeadBuffer,
        &anchor(&meta, producer),
    );
}

#[test]
fn duplicate_write_is_an_alias_violation() {
    let (det, ps) = random_detector(23);
    let mut meta = det.train_plan(&ps).meta();
    let victim = first_fused_conv(&meta);
    let op = meta.ops[victim + 1..]
        .iter()
        .position(|o| o.conv.is_some())
        .map(|j| victim + 1 + j)
        .expect("a second conv exists");
    plan_mutate::apply(&mut meta, Corruption::DuplicateWrite { op, victim });
    // Two producers for one slot: the later writer is the anchor (in
    // the train fan-out this is a cross-group write-write race).
    assert_fires(&meta, &ps, PlanLintKind::Alias, &anchor(&meta, op));
}

#[test]
fn dropped_weight_param_breaks_coverage() {
    let (det, ps) = random_detector(24);
    let mut meta = det.train_plan(&ps).meta();
    let op = first_fused_conv(&meta);
    assert_eq!(meta.ops[op].params[0].role, ParamRole::ConvWeight);
    plan_mutate::apply(&mut meta, Corruption::DropParam { op });
    assert_fires(&meta, &ps, PlanLintKind::ParamCoverage, &anchor(&meta, op));
}

#[test]
fn reordered_fused_chain_breaks_fusion_legality() {
    let (det, ps) = random_detector(25);
    let mut meta = det.infer_plan(&ps).meta();
    let op = first_fused_conv(&meta);
    plan_mutate::apply(&mut meta, Corruption::ReorderFusedChain { op });
    assert_fires(&meta, &ps, PlanLintKind::Fusion, &anchor(&meta, op));
}

#[test]
fn flipped_gx_direct_breaks_grad_routing() {
    let (det, ps) = random_detector(26);
    let mut meta = det.train_plan(&ps).meta();
    let op = meta
        .ops
        .iter()
        .position(|o| o.gx_direct.is_some())
        .expect("train plan convs carry gx_direct");
    plan_mutate::apply(&mut meta, Corruption::FlipGxDirect { op });
    assert_fires(&meta, &ps, PlanLintKind::GxRouting, &anchor(&meta, op));
}

#[test]
fn corrupted_conv_geometry_is_a_fanout_race() {
    let (det, ps) = random_detector(27);
    let mut meta = det.train_plan(&ps).meta();
    let op = first_fused_conv(&meta);
    plan_mutate::apply(&mut meta, Corruption::CorruptConvGeom { op });
    assert_fires(&meta, &ps, PlanLintKind::Race, &anchor(&meta, op));
}

#[test]
fn shrunk_col_budget_is_infeasible() {
    let (det, ps) = random_detector(28);
    let mut meta = det.train_plan(&ps).meta();
    plan_mutate::apply(&mut meta, Corruption::ShrinkColBudget);
    let smallest = meta
        .ops
        .iter()
        .enumerate()
        .filter_map(|(i, o)| o.conv.as_ref().map(|c| (i, c.cols_len())))
        .min_by_key(|&(_, c)| c)
        .map(|(i, _)| i)
        .unwrap();
    assert_fires(
        &meta,
        &ps,
        PlanLintKind::ColBudget,
        &anchor(&meta, smallest),
    );
}

// ---------------------------------------------------------------------
// ulp-error certification
// ---------------------------------------------------------------------

#[test]
fn reference_kernel_certifies_zero_divergence() {
    let (det, ps) = random_detector(31);
    let meta = det.infer_plan(&ps).meta();
    let bounds = certify_logit_bounds(&meta, &ps, 0.0, 1.0, &KernelModel::reference())
        .expect("inference plan certifies");
    assert_eq!(bounds.len(), 2, "two detector heads");
    for b in &bounds {
        assert_eq!(
            b.max_abs_err, 0.0,
            "identical instruction sequences cannot diverge"
        );
        assert!(b.lo.is_finite() && b.hi.is_finite() && b.lo <= b.hi);
    }
}

#[test]
fn candidate_kernel_bound_is_finite_and_covers_observed_divergence() {
    let (det, ps) = random_detector(32);
    let meta = det.infer_plan(&ps).meta();
    let bounds = certify_logit_bounds(&meta, &ps, 0.0, 1.0, &KernelModel::f32x8_fma())
        .expect("inference plan certifies");
    let cert: f64 = bounds.iter().map(|b| b.max_abs_err).fold(0.0, f64::max);
    assert!(
        cert.is_finite() && cert > 0.0,
        "divergent model, bound {cert}"
    );

    // Observed divergence of the *scalar* compiled path vs the tape is
    // bitwise zero (the runtime equivalence tests enforce it); zero is
    // trivially within any sound candidate bound. This anchors the
    // certificate against a real execution rather than only the model.
    let mut rng = StdRng::seed_from_u64(99);
    let n = 2usize;
    let x = {
        let len = n * 3 * 64 * 64;
        let data: Vec<f32> = (0..len).map(|_| rng.gen_range(0.0..1.0)).collect();
        Tensor::from_vec(data, &[n, 3, 64, 64])
    };
    let (cc, cf) = det.infer(&ps, &x);
    let mut g = Graph::new();
    let xin = g.input(x);
    let out = det.forward_frozen(&mut g, &ps, xin);
    let (tc, tf) = (g.value(out.coarse), g.value(out.fine));
    let observed = tc
        .data()
        .iter()
        .zip(cc.data())
        .chain(tf.data().iter().zip(cf.data()))
        .map(|(a, b)| (*a as f64 - *b as f64).abs())
        .fold(0.0, f64::max);
    assert!(
        observed <= cert,
        "observed divergence {observed} exceeds certified bound {cert}"
    );
}

#[test]
fn train_mode_batch_norm_refuses_certification() {
    let (det, ps) = random_detector(33);
    let meta = det.train_plan(&ps).meta();
    let err = certify_logit_bounds(&meta, &ps, 0.0, 1.0, &KernelModel::f32x8_fma())
        .expect_err("batch statistics admit no static input-box bound");
    assert!(err.contains("batch_norm2d_train"), "got: {err}");
}

/// Soundness against a *real* reassociated+FMA execution: a hand-built
/// single-conv plan is certified, then the same convolution is computed
/// with the scalar k-ascending reduction and with an 8-lane
/// partial-sum-plus-`mul_add` reduction (the exact rounding shape of
/// the ROADMAP item-1 `f32x8`/FMA kernel). Their divergence must sit
/// inside the certificate on every random input in the declared box.
#[test]
fn certified_bound_covers_a_simulated_f32x8_fma_kernel() {
    let (cin, kh, kw, hin, win, cout) = (3usize, 3usize, 3usize, 8usize, 8usize, 4usize);
    let (ho, wo) = (hin - kh + 1, win - kw + 1);
    let k = cin * kh * kw;

    let mut rng = StdRng::seed_from_u64(5);
    let wdata: Vec<f32> = (0..cout * k).map(|_| rng.gen_range(-0.5..0.5)).collect();
    let mut ps = ParamSet::new();
    ps.register("w", Tensor::from_vec(wdata.clone(), &[cout, cin, kh, kw]));

    let meta = PlanMeta {
        kind: PlanKind::Infer,
        ops: vec![PlanOpMeta {
            name: "conv".into(),
            path: "test/conv".into(),
            reads: vec![0],
            writes: vec![1],
            params: vec![ParamRef {
                role: ParamRole::ConvWeight,
                index: 0,
            }],
            fused: vec!["conv2d".into()],
            conv: Some(ConvGeom {
                stride: 1,
                pad: 0,
                cin,
                hin,
                win,
                cout,
                kh,
                kw,
                ho,
                wo,
            }),
            linear: None,
            alpha: None,
            bn_train: None,
            bn_eps: None,
            gx_direct: None,
        }],
        slots: vec![
            SlotMeta {
                len: cin * hin * win,
                shape: vec![cin, hin, win],
            },
            SlotMeta {
                len: cout * ho * wo,
                shape: vec![cout, ho, wo],
            },
        ],
        input_slot: 0,
        outputs: vec![1],
        col_budget: None,
    };
    assert!(audit_plan(&meta, &ps).is_empty(), "synthetic plan is clean");

    let bound = certify_logit_bounds(&meta, &ps, 0.0, 1.0, &KernelModel::f32x8_fma())
        .expect("single conv certifies")[0];
    assert!(bound.max_abs_err.is_finite() && bound.max_abs_err > 0.0);
    assert!(bound.ulps_at_scale.is_finite());

    let mut worst = 0.0f64;
    for _ in 0..20 {
        let x: Vec<f32> = (0..cin * hin * win)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        for o in 0..cout {
            let row = &wdata[o * k..(o + 1) * k];
            for y in 0..ho {
                for xx in 0..wo {
                    // taps in (c, i, j) order, shared by both reductions
                    let mut taps = Vec::with_capacity(k);
                    for c in 0..cin {
                        for i in 0..kh {
                            for j in 0..kw {
                                taps.push(x[(c * hin + y + i) * win + xx + j]);
                            }
                        }
                    }
                    // scalar reference: k-ascending accumulation
                    let mut reference = 0.0f32;
                    for (w, t) in row.iter().zip(&taps) {
                        reference += w * t;
                    }
                    // candidate: 8 partial lanes + FMA, lanes summed last
                    let mut lanes = [0.0f32; 8];
                    for (t, (w, tap)) in row.iter().zip(&taps).enumerate() {
                        lanes[t % 8] = w.mul_add(*tap, lanes[t % 8]);
                    }
                    let candidate: f32 = lanes.iter().sum();
                    worst = worst.max((reference as f64 - candidate as f64).abs());
                }
            }
        }
    }
    assert!(
        worst <= bound.max_abs_err,
        "simulated f32x8+FMA kernel diverged by {worst}, certificate allows {}",
        bound.max_abs_err
    );
    assert!(worst > 0.0, "the simulation should actually diverge");
}
