//! # rd-gan
//!
//! A small DCGAN-style generator/discriminator pair over monochrome decal
//! canvases, for the `road-decals` reproduction of *Road Decals as
//! Trojans* (DSN 2024).
//!
//! The paper synthesizes its adversarial patches with a GAN trained on the
//! Four Shapes dataset (Eq. 1): the generator learns to emit plausible
//! shape-like monochrome decals, the discriminator enforces realism, and
//! an attack term `α·L_f` (added by the attack pipeline in the
//! `road-decals` crate) pulls the decals toward fooling the detector.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use rd_gan::{GanConfig, Generator};
//! use rd_tensor::{Graph, ParamSet, Tensor};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = GanConfig::default();
//! let mut ps = ParamSet::new();
//! let gen = Generator::new(&mut ps, &mut rng, cfg);
//! let mut g = Graph::new();
//! let z = g.input(Tensor::randn(&mut rng, &[2, cfg.z_dim], 1.0));
//! let decal = gen.forward(&mut g, &mut ps, z, false);
//! assert_eq!(g.value(decal).shape(), &[2, 1, 16, 16]);
//! assert!(g.value(decal).min() >= 0.0 && g.value(decal).max() <= 1.0);
//! ```

#![warn(missing_docs)]

use rand::Rng;

use std::sync::OnceLock;

use rd_tensor::{
    init, optim::Adam, shape::conv_out_dim, Graph, InferPlan, ParamId, ParamSet, Tensor, VarId,
};
use rd_vision::shapes::{four_shapes_sample, Shape};

/// Architecture hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GanConfig {
    /// Latent dimension of the generator input.
    pub z_dim: usize,
    /// Side length of the generated decal canvas.
    pub canvas: usize,
    /// Base channel width.
    pub base: usize,
}

impl Default for GanConfig {
    fn default() -> Self {
        GanConfig {
            z_dim: 16,
            canvas: 16,
            base: 16,
        }
    }
}

const BN_EPS: f32 = 1e-5;
const BN_MOMENTUM: f32 = 0.9;

/// conv + BN + relu sub-block used by the generator.
#[derive(Debug)]
struct GenBlock {
    w: ParamId,
    gamma: ParamId,
    beta: ParamId,
    rmean: ParamId,
    rvar: ParamId,
}

impl GenBlock {
    fn new<R: Rng>(ps: &mut ParamSet, rng: &mut R, name: &str, cin: usize, cout: usize) -> Self {
        GenBlock {
            w: ps.register(
                format!("{name}.w"),
                init::kaiming_conv(rng, cout, cin, 3, 3),
            ),
            gamma: ps.register(format!("{name}.gamma"), Tensor::ones(&[cout])),
            beta: ps.register(format!("{name}.beta"), Tensor::zeros(&[cout])),
            rmean: ps.register(format!("{name}.rmean"), Tensor::zeros(&[cout])),
            rvar: ps.register(format!("{name}.rvar"), Tensor::ones(&[cout])),
        }
    }

    fn forward(&self, g: &mut Graph, ps: &mut ParamSet, x: VarId, training: bool) -> VarId {
        let w = g.param(ps, self.w);
        let y = g.conv2d(x, w, None, 1, 1);
        let gamma = g.param(ps, self.gamma);
        let beta = g.param(ps, self.beta);
        let y = if training {
            let (y, stats) = g.batch_norm2d_train(y, gamma, beta, BN_EPS);
            let rm = ps.get_mut(self.rmean).value_mut();
            for (r, &b) in rm.data_mut().iter_mut().zip(stats.mean.data()) {
                *r = BN_MOMENTUM * *r + (1.0 - BN_MOMENTUM) * b;
            }
            let rv = ps.get_mut(self.rvar).value_mut();
            for (r, &b) in rv.data_mut().iter_mut().zip(stats.var.data()) {
                *r = BN_MOMENTUM * *r + (1.0 - BN_MOMENTUM) * b;
            }
            y
        } else {
            let rm = ps.get(self.rmean).value().clone();
            let rv = ps.get(self.rvar).value().clone();
            g.batch_norm2d_eval(y, gamma, beta, &rm, &rv, BN_EPS)
        };
        g.relu(y)
    }

    /// Shape-only lowering of the block (see [`Generator::validate`]).
    /// Parameters carry their `pid` so the lowering also compiles into
    /// an [`InferPlan`].
    fn declare(&self, g: &mut Graph, ps: &ParamSet, x: VarId) -> VarId {
        let xs = g.meta(x).expected_shape.clone();
        let ws = ps.get(self.w).value().shape().to_vec();
        let w = g.declare("param", &[], &[("pid", self.w.index())], &ws);
        let ho = conv_out_dim("h", xs[2], ws[2], 1, 1);
        let wo = conv_out_dim("w", xs[3], ws[3], 1, 1);
        let y = g.declare(
            "conv2d",
            &[x, w],
            &[("stride", 1), ("pad", 1)],
            &[xs[0], ws[0], ho, wo],
        );
        let os = g.meta(y).expected_shape.clone();
        let gamma = g.declare(
            "param",
            &[],
            &[("pid", self.gamma.index())],
            ps.get(self.gamma).value().shape(),
        );
        let beta = g.declare(
            "param",
            &[],
            &[("pid", self.beta.index())],
            ps.get(self.beta).value().shape(),
        );
        let y = g.declare(
            "batch_norm2d_eval",
            &[y, gamma, beta],
            &[
                ("rmean_pid", self.rmean.index()),
                ("rvar_pid", self.rvar.index()),
                ("eps_bits", BN_EPS.to_bits() as usize),
            ],
            &os,
        );
        g.declare("relu", &[y], &[], &os)
    }
}

/// The decal generator: `z -> [N, 1, canvas, canvas]` in `[0, 1]`.
#[derive(Debug)]
pub struct Generator {
    cfg: GanConfig,
    fc_w: ParamId,
    fc_b: ParamId,
    b1: GenBlock,
    b2: GenBlock,
    out_w: ParamId,
    out_b: ParamId,
    /// Lazily compiled grad-free inference plan (structure only; weights
    /// are read from the `ParamSet` at execution time).
    plan: OnceLock<InferPlan>,
}

impl Generator {
    /// Builds a generator, registering parameters into `ps`.
    ///
    /// # Panics
    ///
    /// Panics unless `cfg.canvas` is divisible by 4.
    pub fn new<R: Rng>(ps: &mut ParamSet, rng: &mut R, cfg: GanConfig) -> Self {
        assert_eq!(cfg.canvas % 4, 0, "canvas must be divisible by 4");
        let s0 = cfg.canvas / 4;
        let c0 = cfg.base * 2;
        Generator {
            cfg,
            fc_w: ps.register(
                "gen.fc.w",
                init::xavier_linear(rng, c0 * s0 * s0, cfg.z_dim),
            ),
            fc_b: ps.register("gen.fc.b", Tensor::zeros(&[c0 * s0 * s0])),
            b1: GenBlock::new(ps, rng, "gen.b1", c0, cfg.base),
            b2: GenBlock::new(ps, rng, "gen.b2", cfg.base, cfg.base),
            out_w: ps.register("gen.out.w", init::kaiming_conv(rng, 1, cfg.base, 3, 3)),
            out_b: ps.register("gen.out.b", Tensor::zeros(&[1])),
            plan: OnceLock::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> GanConfig {
        self.cfg
    }

    /// Maps latents `z: [N, z_dim]` to decals `[N, 1, canvas, canvas]`.
    pub fn forward(&self, g: &mut Graph, ps: &mut ParamSet, z: VarId, training: bool) -> VarId {
        let n = g.value(z).shape()[0];
        let s0 = self.cfg.canvas / 4;
        let c0 = self.cfg.base * 2;
        let (y, ow, ob) = g.scoped("gen", |g| {
            let w = g.param(ps, self.fc_w);
            let b = g.param(ps, self.fc_b);
            let y = g.linear(z, w, b);
            let y = g.leaky_relu(y, 0.1);
            let y = g.reshape(y, &[n, c0, s0, s0]);
            let y = g.upsample_nearest2x(y);
            let y = g.scoped("b1", |g| self.b1.forward(g, ps, y, training));
            let y = g.upsample_nearest2x(y);
            let y = g.scoped("b2", |g| self.b2.forward(g, ps, y, training));
            let ow = g.param(ps, self.out_w);
            let ob = g.param(ps, self.out_b);
            (y, ow, ob)
        });
        let y = g.conv2d(y, ow, Some(ob), 1, 1);
        g.sigmoid(y)
    }

    /// Shape-only lowering of the generator (eval mode), mirroring
    /// [`Generator::forward`] node for node.
    pub fn declare_forward(&self, g: &mut Graph, ps: &ParamSet, batch: usize) -> VarId {
        let s0 = self.cfg.canvas / 4;
        let c0 = self.cfg.base * 2;
        let z = g.declare("input", &[], &[], &[batch, self.cfg.z_dim]);
        let y = g.scoped("gen", |g| {
            let ws = ps.get(self.fc_w).value().shape().to_vec();
            let w = g.declare("param", &[], &[("pid", self.fc_w.index())], &ws);
            let b = g.declare(
                "param",
                &[],
                &[("pid", self.fc_b.index())],
                ps.get(self.fc_b).value().shape(),
            );
            let y = g.declare("linear", &[z, w, b], &[], &[batch, ws[0]]);
            let y = g.declare(
                "leaky_relu",
                &[y],
                &[("alpha_bits", 0.1f32.to_bits() as usize)],
                &[batch, ws[0]],
            );
            let y = g.declare("reshape", &[y], &[], &[batch, c0, s0, s0]);
            let y = g.declare(
                "upsample_nearest2x",
                &[y],
                &[],
                &[batch, c0, s0 * 2, s0 * 2],
            );
            let y = g.scoped("b1", |g| self.b1.declare(g, ps, y));
            let ys = g.meta(y).expected_shape.clone();
            let y = g.declare(
                "upsample_nearest2x",
                &[y],
                &[],
                &[ys[0], ys[1], ys[2] * 2, ys[3] * 2],
            );
            g.scoped("b2", |g| self.b2.declare(g, ps, y))
        });
        let ys = g.meta(y).expected_shape.clone();
        let ws = ps.get(self.out_w).value().shape().to_vec();
        let ow = g.declare("param", &[], &[("pid", self.out_w.index())], &ws);
        let ho = conv_out_dim("h", ys[2], ws[2], 1, 1);
        let wo = conv_out_dim("w", ys[3], ws[3], 1, 1);
        let y = g.declare(
            "conv2d",
            &[y, ow],
            &[("stride", 1), ("pad", 1)],
            &[ys[0], ws[0], ho, wo],
        );
        let os = g.meta(y).expected_shape.clone();
        let ob = g.declare(
            "param",
            &[],
            &[("pid", self.out_b.index())],
            ps.get(self.out_b).value().shape(),
        );
        let y = g.declare("add_bias_channel", &[y, ob], &[], &os);
        g.declare("sigmoid", &[y], &[], &os)
    }

    /// The compiled grad-free inference plan for the generator's eval
    /// path, built on first use from the shape-only declare lowering.
    pub fn infer_plan(&self, ps: &ParamSet) -> &InferPlan {
        self.plan.get_or_init(|| {
            let mut g = Graph::new();
            let out = self.declare_forward(&mut g, ps, 1);
            let plan = InferPlan::compile(&g, &[out])
                .expect("generator lowering must compile to an inference plan");
            rd_analysis::audit_plan_or_panic("gan/generator", &plan.meta(), ps);
            plan
        })
    }

    /// Tape-free batched sampling: maps latents `z: [N, z_dim]` to
    /// decals `[N, 1, canvas, canvas]`, bitwise-identical to
    /// [`Generator::forward`] with `training = false` on the same
    /// weights at any worker-pool thread count.
    pub fn infer(&self, ps: &ParamSet, z: &Tensor) -> Tensor {
        let mut out = self.infer_plan(ps).execute(ps, z);
        out.pop().expect("plan has one root")
    }

    /// Statically validates the generator's wiring against the parameter
    /// shapes registered in `ps`, before any kernel runs.
    pub fn validate(
        &self,
        ps: &ParamSet,
        batch: usize,
    ) -> Result<(), Vec<rd_analysis::ShapeIssue>> {
        let mut g = Graph::new();
        let out = self.declare_forward(&mut g, ps, batch);
        rd_analysis::validate_with_root(&g, out)
    }
}

/// The shape discriminator: decals -> real/fake logits `[N, 1]`.
#[derive(Debug)]
pub struct Discriminator {
    cfg: GanConfig,
    c1_w: ParamId,
    c1_b: ParamId,
    c2_w: ParamId,
    c2_b: ParamId,
    fc_w: ParamId,
    fc_b: ParamId,
    /// Lazily compiled grad-free inference plan (structure only; weights
    /// are read from the `ParamSet` at execution time).
    plan: OnceLock<InferPlan>,
}

impl Discriminator {
    /// Builds a discriminator, registering parameters into `ps`.
    pub fn new<R: Rng>(ps: &mut ParamSet, rng: &mut R, cfg: GanConfig) -> Self {
        let s = cfg.canvas / 4;
        Discriminator {
            cfg,
            c1_w: ps.register("disc.c1.w", init::kaiming_conv(rng, cfg.base, 1, 3, 3)),
            c1_b: ps.register("disc.c1.b", Tensor::zeros(&[cfg.base])),
            c2_w: ps.register(
                "disc.c2.w",
                init::kaiming_conv(rng, cfg.base * 2, cfg.base, 3, 3),
            ),
            c2_b: ps.register("disc.c2.b", Tensor::zeros(&[cfg.base * 2])),
            fc_w: ps.register(
                "disc.fc.w",
                init::xavier_linear(rng, 1, cfg.base * 2 * s * s),
            ),
            fc_b: ps.register("disc.fc.b", Tensor::zeros(&[1])),
            plan: OnceLock::new(),
        }
    }

    /// Maps decals `[N, 1, canvas, canvas]` to real/fake logits `[N, 1]`.
    ///
    /// With `frozen = true` the weights enter the graph as constants so
    /// gradient write-back never reaches this discriminator (used for the
    /// generator step).
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: VarId, frozen: bool) -> VarId {
        let n = g.value(x).shape()[0];
        let s = self.cfg.canvas / 4;
        let p = |g: &mut Graph, id: ParamId| {
            if frozen {
                g.input(ps.get(id).value().clone())
            } else {
                g.param(ps, id)
            }
        };
        g.scoped("disc", |g| {
            let w1 = p(g, self.c1_w);
            let b1 = p(g, self.c1_b);
            let y = g.conv2d(x, w1, Some(b1), 2, 1);
            let y = g.leaky_relu(y, 0.2);
            let w2 = p(g, self.c2_w);
            let b2 = p(g, self.c2_b);
            let y = g.conv2d(y, w2, Some(b2), 2, 1);
            let y = g.leaky_relu(y, 0.2);
            let y = g.reshape(y, &[n, self.cfg.base * 2 * s * s]);
            let fw = p(g, self.fc_w);
            let fb = p(g, self.fc_b);
            g.linear(y, fw, fb)
        })
    }

    /// Shape-only lowering of the discriminator, mirroring
    /// [`Discriminator::forward`] node for node.
    pub fn declare_forward(&self, g: &mut Graph, ps: &ParamSet, batch: usize) -> VarId {
        let canvas = self.cfg.canvas;
        let s = canvas / 4;
        let x = g.declare("input", &[], &[], &[batch, 1, canvas, canvas]);
        g.scoped("disc", |g| {
            let conv = |g: &mut Graph, x: VarId, w: ParamId, b: ParamId| {
                let xs = g.meta(x).expected_shape.clone();
                let ws = ps.get(w).value().shape().to_vec();
                let w = g.declare("param", &[], &[("pid", w.index())], &ws);
                let ho = conv_out_dim("h", xs[2], ws[2], 1, 2);
                let wo = conv_out_dim("w", xs[3], ws[3], 1, 2);
                let y = g.declare(
                    "conv2d",
                    &[x, w],
                    &[("stride", 2), ("pad", 1)],
                    &[xs[0], ws[0], ho, wo],
                );
                let os = g.meta(y).expected_shape.clone();
                let bv = g.declare(
                    "param",
                    &[],
                    &[("pid", b.index())],
                    ps.get(b).value().shape(),
                );
                let y = g.declare("add_bias_channel", &[y, bv], &[], &os);
                g.declare(
                    "leaky_relu",
                    &[y],
                    &[("alpha_bits", 0.2f32.to_bits() as usize)],
                    &os,
                )
            };
            let y = conv(g, x, self.c1_w, self.c1_b);
            let y = conv(g, y, self.c2_w, self.c2_b);
            let flat = self.cfg.base * 2 * s * s;
            let y = g.declare("reshape", &[y], &[], &[batch, flat]);
            let ws = ps.get(self.fc_w).value().shape().to_vec();
            let fw = g.declare("param", &[], &[("pid", self.fc_w.index())], &ws);
            let fb = g.declare(
                "param",
                &[],
                &[("pid", self.fc_b.index())],
                ps.get(self.fc_b).value().shape(),
            );
            g.declare("linear", &[y, fw, fb], &[], &[batch, ws[0]])
        })
    }

    /// The compiled grad-free inference plan for the discriminator's eval
    /// path, built on first use from the shape-only declare lowering.
    pub fn infer_plan(&self, ps: &ParamSet) -> &InferPlan {
        self.plan.get_or_init(|| {
            let mut g = Graph::new();
            let out = self.declare_forward(&mut g, ps, 1);
            let plan = InferPlan::compile(&g, &[out])
                .expect("discriminator lowering must compile to an inference plan");
            rd_analysis::audit_plan_or_panic("gan/discriminator", &plan.meta(), ps);
            plan
        })
    }

    /// Tape-free batched scoring: maps decals `[N, 1, canvas, canvas]` to
    /// logits `[N, 1]`, bitwise-identical to
    /// [`Discriminator::forward`] with `frozen = true` on the same
    /// weights at any worker-pool thread count.
    pub fn infer(&self, ps: &ParamSet, x: &Tensor) -> Tensor {
        let mut out = self.infer_plan(ps).execute(ps, x);
        out.pop().expect("plan has one root")
    }

    /// Statically validates the discriminator's wiring against the
    /// parameter shapes registered in `ps`, before any kernel runs.
    pub fn validate(
        &self,
        ps: &ParamSet,
        batch: usize,
    ) -> Result<(), Vec<rd_analysis::ShapeIssue>> {
        let mut g = Graph::new();
        let out = self.declare_forward(&mut g, ps, batch);
        rd_analysis::validate_with_root(&g, out)
    }
}

/// One alternating GAN training step on a batch of real shape images.
/// Returns `(d_loss, g_adv_loss)`.
///
/// The attack pipeline in the `road-decals` crate performs its own
/// generator step with the extra `α·L_f` term; this function is the plain
/// Eq.-1-without-attack baseline used for pre-training and tests.
#[allow(clippy::too_many_arguments)]
pub fn gan_step<R: Rng>(
    gen: &Generator,
    disc: &Discriminator,
    ps_g: &mut ParamSet,
    ps_d: &mut ParamSet,
    opt_g: &mut Adam,
    opt_d: &mut Adam,
    real: &Tensor,
    rng: &mut R,
) -> (f32, f32) {
    let n = real.shape()[0];
    let zdim = gen.config().z_dim;

    // ---- discriminator step ----
    ps_d.zero_grads();
    let d_loss_val;
    {
        // fakes are generated eval-mode and detached; the compiled
        // generator plan skips the tape entirely (no gradient is wanted
        // here) and is bitwise-identical to the eval-mode forward
        let z = Tensor::randn(rng, &[n, zdim], 1.0);
        let fake_t = gen.infer(ps_g, &z);
        let mut g = Graph::new();
        let real_v = g.input(real.clone());
        let fake_v = g.input(fake_t);
        let d_real = disc.forward(&mut g, ps_d, real_v, false);
        let d_fake = disc.forward(&mut g, ps_d, fake_v, false);
        let ones = Tensor::ones(&[n, 1]);
        let zeros = Tensor::zeros(&[n, 1]);
        let l_real = g.bce_with_logits(d_real, &ones);
        let l_fake = g.bce_with_logits(d_fake, &zeros);
        let loss = g.add(l_real, l_fake);
        let grads = g.backward(loss);
        g.write_grads(&grads, ps_d);
        opt_d.step(ps_d);
        d_loss_val = g.value(loss).data()[0];
    }

    // ---- generator step ----
    ps_g.zero_grads();
    let g_loss_val;
    {
        let mut g = Graph::new();
        let z = g.input(Tensor::randn(rng, &[n, zdim], 1.0));
        let fake = gen.forward(&mut g, ps_g, z, true);
        let d_fake = disc.forward(&mut g, ps_d, fake, true);
        let ones = Tensor::ones(&[n, 1]);
        let loss = g.bce_with_logits(d_fake, &ones);
        let grads = g.backward(loss);
        g.write_grads(&grads, ps_g);
        opt_g.step(ps_g);
        g_loss_val = g.value(loss).data()[0];
    }
    (d_loss_val, g_loss_val)
}

/// Builds a batch of real Four-Shapes samples as a `[N, 1, s, s]` tensor.
pub fn real_shape_batch<R: Rng>(rng: &mut R, shape: Shape, n: usize, canvas: usize) -> Tensor {
    let mut data = Vec::with_capacity(n * canvas * canvas);
    for _ in 0..n {
        let s = four_shapes_sample(rng, shape, canvas);
        data.extend_from_slice(s.data());
    }
    Tensor::from_vec(data, &[n, 1, canvas, canvas])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Generator, Discriminator, ParamSet, ParamSet, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GanConfig::default();
        let mut ps_g = ParamSet::new();
        let mut ps_d = ParamSet::new();
        let gen = Generator::new(&mut ps_g, &mut rng, cfg);
        let disc = Discriminator::new(&mut ps_d, &mut rng, cfg);
        (gen, disc, ps_g, ps_d, rng)
    }

    #[test]
    fn generator_output_range_and_shape() {
        let (gen, _, mut ps_g, _, mut rng) = setup();
        let mut g = Graph::new();
        let z = g.input(Tensor::randn(&mut rng, &[3, 16], 1.0));
        let out = gen.forward(&mut g, &mut ps_g, z, false);
        let v = g.value(out);
        assert_eq!(v.shape(), &[3, 1, 16, 16]);
        assert!(v.min() >= 0.0 && v.max() <= 1.0);
    }

    #[test]
    fn discriminator_output_shape() {
        let (_, disc, _, ps_d, mut rng) = setup();
        let mut g = Graph::new();
        let x = g.input(Tensor::rand_uniform(&mut rng, &[4, 1, 16, 16], 0.0, 1.0));
        let out = disc.forward(&mut g, &ps_d, x, false);
        assert_eq!(g.value(out).shape(), &[4, 1]);
    }

    #[test]
    fn frozen_discriminator_gets_no_grads() {
        let (gen, disc, mut ps_g, mut ps_d, mut rng) = setup();
        let mut g = Graph::new();
        let z = g.input(Tensor::randn(&mut rng, &[2, 16], 1.0));
        let fake = gen.forward(&mut g, &mut ps_g, z, true);
        let d = disc.forward(&mut g, &ps_d, fake, true);
        let ones = Tensor::ones(&[2, 1]);
        let loss = g.bce_with_logits(d, &ones);
        let grads = g.backward(loss);
        g.write_grads(&grads, &mut ps_g);
        g.write_grads(&grads, &mut ps_d);
        assert!(ps_g.grad_norm() > 0.0, "generator must receive gradients");
        assert_eq!(ps_d.grad_norm(), 0.0, "frozen discriminator must not");
    }

    #[test]
    fn gan_step_runs_and_improves_discrimination() {
        let (gen, disc, mut ps_g, mut ps_d, mut rng) = setup();
        let mut opt_g = Adam::with_betas(2e-3, 0.5, 0.999);
        let mut opt_d = Adam::with_betas(2e-3, 0.5, 0.999);
        let mut first_d = 0.0;
        let mut last_d = 0.0;
        for i in 0..12 {
            let real = real_shape_batch(&mut rng, Shape::Star, 8, 16);
            let (d, _g) = gan_step(
                &gen, &disc, &mut ps_g, &mut ps_d, &mut opt_g, &mut opt_d, &real, &mut rng,
            );
            if i == 0 {
                first_d = d;
            }
            last_d = d;
            assert!(d.is_finite());
        }
        // the discriminator should at least beat its starting loss
        assert!(last_d < first_d, "d loss {first_d} -> {last_d}");
    }

    #[test]
    fn real_batches_look_like_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = real_shape_batch(&mut rng, Shape::Circle, 4, 16);
        assert_eq!(b.shape(), &[4, 1, 16, 16]);
        // dark shape on light background: both tails present
        assert!(b.min() < 0.2);
        assert!(b.max() > 0.8);
    }

    #[test]
    fn both_networks_validate_cleanly() {
        let (gen, disc, ps_g, ps_d, _) = setup();
        gen.validate(&ps_g, 2).expect("generator wiring");
        disc.validate(&ps_d, 2).expect("discriminator wiring");
    }

    #[test]
    fn validate_catches_wrong_fc_width() {
        let (gen, _, mut ps_g, _, _) = setup();
        // Shrink the fc weight's output so the reshape no longer fits
        // 32 channels of an 4x4 grid.
        let id = ps_g
            .iter()
            .find(|(_, p)| p.name() == "gen.fc.w")
            .map(|(id, _)| id)
            .unwrap();
        *ps_g.get_mut(id).value_mut() = Tensor::zeros(&[100, 16]);
        let issues = gen.validate(&ps_g, 1).unwrap_err();
        let msg: String = issues
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(msg.contains("gen/reshape"), "must name the layer:\n{msg}");
    }

    #[test]
    fn discriminator_infer_matches_tape_bitwise() {
        let (_, disc, _, ps_d, mut rng) = setup();
        let x0 = Tensor::rand_uniform(&mut rng, &[5, 1, 16, 16], 0.0, 1.0);
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let out = disc.forward(&mut g, &ps_d, x, true);
        let tape = g.value(out).clone();
        let compiled = disc.infer(&ps_d, &x0);
        assert_eq!(tape.shape(), compiled.shape());
        assert_eq!(
            tape.data(),
            compiled.data(),
            "compiled discriminator must be bitwise-identical to the tape"
        );
    }

    #[test]
    fn generator_infer_matches_tape_bitwise() {
        let (gen, _, mut ps_g, _, mut rng) = setup();
        let z0 = Tensor::randn(&mut rng, &[5, 16], 1.0);
        let mut g = Graph::new();
        let z = g.input(z0.clone());
        let out = gen.forward(&mut g, &mut ps_g, z, false);
        let tape = g.value(out).clone();
        let compiled = gen.infer(&ps_g, &z0);
        assert_eq!(tape.shape(), compiled.shape());
        assert_eq!(
            tape.data(),
            compiled.data(),
            "compiled generator must be bitwise-identical to the tape"
        );
    }

    #[test]
    fn generator_is_deterministic_in_eval() {
        let (gen, _, mut ps_g, _, mut rng) = setup();
        let z0 = Tensor::randn(&mut rng, &[1, 16], 1.0);
        let run = |ps: &mut ParamSet| {
            let mut g = Graph::new();
            let z = g.input(z0.clone());
            let o = gen.forward(&mut g, ps, z, false);
            g.value(o).clone()
        };
        assert_eq!(run(&mut ps_g), run(&mut ps_g));
    }
}
