//! Constructors turning geometric transforms into differentiable
//! [`LinearMap`]s (bilinear sampling).

use rd_tensor::{LinearMap, WarpEntry};

use crate::geometry::Mat3;

/// Builds a bilinear-sampling [`LinearMap`] from a *destination → source*
/// coordinate function. Pixel centers sit at integer + 0.5; destinations
/// whose source falls outside the input grid receive (partially) zero
/// weight, which is exactly the transparent-border behaviour patches need.
pub fn map_from_inverse(
    in_hw: (usize, usize),
    out_hw: (usize, usize),
    inv: impl Fn(f32, f32) -> (f32, f32),
) -> LinearMap {
    let (oh, ow) = out_hw;
    map_from_inverse_ranged(in_hw, out_hw, (0, oh), (0, ow), inv)
}

/// [`map_from_inverse`] restricted to a destination window: only pixels
/// with `oy` in `ys` and `ox` in `xs` are scanned. The per-pixel entry
/// arithmetic is shared with the full scan, so restricting the window to
/// a superset of the pixels that sample inside the source grid yields
/// the identical entry list.
fn map_from_inverse_ranged(
    in_hw: (usize, usize),
    out_hw: (usize, usize),
    ys: (usize, usize),
    xs: (usize, usize),
    inv: impl Fn(f32, f32) -> (f32, f32),
) -> LinearMap {
    let (ih, iw) = in_hw;
    let (_, ow) = out_hw;
    let mut entries = Vec::with_capacity(ys.1.saturating_sub(ys.0) * xs.1.saturating_sub(xs.0) * 4);
    for oy in ys.0..ys.1 {
        for ox in xs.0..xs.1 {
            let (sx, sy) = inv(ox as f32 + 0.5, oy as f32 + 0.5);
            let u = sx - 0.5;
            let v = sy - 0.5;
            let x0 = u.floor();
            let y0 = v.floor();
            let fx = u - x0;
            let fy = v - y0;
            let dst = (oy * ow + ox) as u32;
            for (dy, wy) in [(0i64, 1.0 - fy), (1, fy)] {
                let yy = y0 as i64 + dy;
                if yy < 0 || yy >= ih as i64 || wy == 0.0 {
                    continue;
                }
                for (dx, wx) in [(0i64, 1.0 - fx), (1, fx)] {
                    let xx = x0 as i64 + dx;
                    if xx < 0 || xx >= iw as i64 || wx == 0.0 {
                        continue;
                    }
                    let weight = wx * wy;
                    if weight.abs() < 1e-8 {
                        continue;
                    }
                    entries.push(WarpEntry {
                        dst,
                        src: (yy as usize * iw + xx as usize) as u32,
                        weight,
                    });
                }
            }
        }
    }
    LinearMap::new(in_hw, out_hw, entries)
}

/// Bilinear resize from `in_hw` to `out_hw`.
pub fn resize(in_hw: (usize, usize), out_hw: (usize, usize)) -> LinearMap {
    let sx = in_hw.1 as f32 / out_hw.1 as f32;
    let sy = in_hw.0 as f32 / out_hw.0 as f32;
    map_from_inverse(in_hw, out_hw, move |x, y| (x * sx, y * sy))
}

/// Rotation by `theta` radians (counter-clockwise) about the grid centre,
/// preserving the grid size.
pub fn rotate(hw: (usize, usize), theta: f32) -> LinearMap {
    let cy = hw.0 as f32 / 2.0;
    let cx = hw.1 as f32 / 2.0;
    let (s, c) = theta.sin_cos();
    map_from_inverse(hw, hw, move |x, y| {
        let dx = x - cx;
        let dy = y - cy;
        // inverse rotation of the destination offset
        (cx + c * dx + s * dy, cy - s * dx + c * dy)
    })
}

/// A vertical box-blur as a [`LinearMap`] (radius in pixels), used to
/// make motion blur differentiable inside attack training graphs.
pub fn vertical_box_blur_map(hw: (usize, usize), radius: usize) -> LinearMap {
    let (h, w) = hw;
    let mut entries = Vec::with_capacity(h * w * (2 * radius + 1));
    for y in 0..h {
        let y0 = y.saturating_sub(radius);
        let y1 = (y + radius + 1).min(h);
        let weight = 1.0 / (y1 - y0) as f32;
        for x in 0..w {
            let dst = (y * w + x) as u32;
            for yy in y0..y1 {
                entries.push(WarpEntry {
                    dst,
                    src: (yy * w + x) as u32,
                    weight,
                });
            }
        }
    }
    LinearMap::new(hw, hw, entries)
}

/// Applies a forward homography `h` (source → destination coordinates):
/// each destination pixel samples `h^-1 (dst)`.
///
/// Returns `None` when `h` is singular.
pub fn homography(in_hw: (usize, usize), out_hw: (usize, usize), h: &Mat3) -> Option<LinearMap> {
    let hi = h.inverse()?;
    Some(map_from_inverse(in_hw, out_hw, move |x, y| hi.apply(x, y)))
}

/// [`homography`] that scans only the destination bounding box of the
/// projected source canvas instead of the full output grid — the render
/// fast path for decals and camera warps, where the source covers a
/// small fraction of the frame.
///
/// Produces the *identical* entry list (and therefore bitwise-identical
/// applies): only destination pixels whose inverse sample lands strictly
/// inside the padded source rect can emit entries, the forward image of
/// that rect is the convex hull of its projected corners (the projective
/// denominator is affine in the source plane, so a positive value at all
/// four corners holds over the whole rect), and the box is padded by a
/// pixel on each side to absorb the inverse/forward round trip error.
/// When any corner projects to a non-positive denominator the hull
/// argument fails and this falls back to the full scan.
///
/// Returns `None` when `h` is singular.
pub fn homography_bounded(
    in_hw: (usize, usize),
    out_hw: (usize, usize),
    h: &Mat3,
) -> Option<LinearMap> {
    let hi = h.inverse()?;
    let (oh, ow) = out_hw;
    // Source rect padded one pixel beyond the bilinear sampling window
    // (entries need the sample within 0.5px of the grid).
    let (ihf, iwf) = (in_hw.0 as f32, in_hw.1 as f32);
    let corners = [
        (-1.0f32, -1.0f32),
        (iwf + 1.0, -1.0),
        (iwf + 1.0, ihf + 1.0),
        (-1.0, ihf + 1.0),
    ];
    let (mut x0, mut y0) = (f32::INFINITY, f32::INFINITY);
    let (mut x1, mut y1) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
    for (cx, cy) in corners {
        let den = h.m[6] * cx + h.m[7] * cy + h.m[8];
        if den <= 1e-6 {
            return Some(map_from_inverse(in_hw, out_hw, move |x, y| hi.apply(x, y)));
        }
        let (u, v) = h.apply(cx, cy);
        x0 = x0.min(u);
        y0 = y0.min(v);
        x1 = x1.max(u);
        y1 = y1.max(v);
    }
    // One more pixel of slack each side; float-to-usize casts saturate,
    // so a fully off-grid box collapses to an empty window.
    let bx0 = ((x0 - 1.0).floor() as usize).min(ow);
    let by0 = ((y0 - 1.0).floor() as usize).min(oh);
    let bx1 = (((x1 + 2.0).ceil()) as usize).min(ow).max(bx0);
    let by1 = (((y1 + 2.0).ceil()) as usize).min(oh).max(by0);
    Some(map_from_inverse_ranged(
        in_hw,
        out_hw,
        (by0, by1),
        (bx0, bx1),
        move |x, y| hi.apply(x, y),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_tensor::{Graph, Tensor};
    use std::sync::Arc;

    fn apply(map: LinearMap, t: &Tensor) -> Tensor {
        let map: Arc<LinearMap> = map.into();
        let mut g = Graph::new();
        let x = g.input(t.clone());
        let y = g.warp(x, &map);
        g.value(y).clone()
    }

    #[test]
    fn resize_identity_when_same_size() {
        let t = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let out = apply(resize((4, 4), (4, 4)), &t);
        for (a, b) in out.data().iter().zip(t.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn resize_2x_down_averages_regions() {
        // constant image stays constant under any proper resize
        let t = Tensor::full(&[1, 1, 8, 8], 0.7);
        let out = apply(resize((8, 8), (4, 4)), &t);
        for &v in out.data() {
            assert!((v - 0.7).abs() < 1e-4, "{v}");
        }
    }

    #[test]
    fn resize_upsample_interior_bilinear_values() {
        let t = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[1, 1, 2, 2]);
        let out = apply(resize((2, 2), (4, 4)), &t);
        assert_eq!(out.shape(), &[1, 1, 4, 4]);
        // Hand-computed bilinear samples of the checkerboard's interior.
        assert!((out.at4(0, 0, 1, 1) - 0.375).abs() < 1e-4);
        assert!((out.at4(0, 0, 1, 2) - 0.625).abs() < 1e-4);
        // interior 2x2 block averages to exactly 0.5 by symmetry
        let inner =
            (out.at4(0, 0, 1, 1) + out.at4(0, 0, 1, 2) + out.at4(0, 0, 2, 1) + out.at4(0, 0, 2, 2))
                / 4.0;
        assert!((inner - 0.5).abs() < 1e-4);
    }

    #[test]
    fn rotate_quarter_turn_moves_corner_blob() {
        let mut t = Tensor::zeros(&[1, 1, 9, 9]);
        // blob near top-left
        t.set4(0, 0, 1, 1, 1.0);
        let out = apply(rotate((9, 9), std::f32::consts::FRAC_PI_2), &t);
        // a quarter turn sends the top-left blob to the top-right
        let mut best = (0, 0);
        let mut bv = f32::NEG_INFINITY;
        for y in 0..9 {
            for x in 0..9 {
                if out.at4(0, 0, y, x) > bv {
                    bv = out.at4(0, 0, y, x);
                    best = (y, x);
                }
            }
        }
        assert!(bv > 0.2);
        assert!(best.0 <= 2 && best.1 >= 6, "blob at {best:?}");
    }

    #[test]
    fn rotation_roughly_preserves_interior_mass() {
        // Bilinear inverse sampling is mass-preserving only on average, so
        // use a 3x3 blob and a loose bound.
        let mut t = Tensor::zeros(&[1, 1, 15, 15]);
        for y in 6..9 {
            for x in 6..9 {
                t.set4(0, 0, y, x, 1.0);
            }
        }
        let out = apply(rotate((15, 15), 0.4), &t);
        assert!((out.sum() - 9.0).abs() < 0.8, "sum {}", out.sum());
    }

    #[test]
    fn homography_identity() {
        let t = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[1, 1, 3, 3]);
        let out = apply(homography((3, 3), (3, 3), &Mat3::identity()).unwrap(), &t);
        for (a, b) in out.data().iter().zip(t.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn homography_translation_shifts() {
        let mut t = Tensor::zeros(&[1, 1, 8, 8]);
        t.set4(0, 0, 2, 2, 1.0);
        let h = Mat3::translation(3.0, 1.0);
        let out = apply(homography((8, 8), (8, 8), &h).unwrap(), &t);
        assert!(out.at4(0, 0, 3, 5) > 0.9, "{:?}", out);
    }

    #[test]
    fn singular_homography_is_none() {
        let z = Mat3 { m: [0.0; 9] };
        assert!(homography((4, 4), (4, 4), &z).is_none());
    }

    #[test]
    fn out_of_range_samples_are_transparent() {
        let t = Tensor::ones(&[1, 1, 4, 4]);
        let h = Mat3::translation(10.0, 10.0); // everything shifts out
        let out = apply(homography((4, 4), (4, 4), &h).unwrap(), &t);
        assert_eq!(out.sum(), 0.0);
    }

    #[test]
    fn bounded_homography_entries_match_full_scan_exactly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..60 {
            // Placement-style chains: scale + rotate + perspective +
            // translate, covering on-grid, partly off-grid and fully
            // off-grid footprints.
            let s = rng.gen_range(0.1f32..2.5);
            let h = Mat3::translation(rng.gen_range(-30.0..90.0), rng.gen_range(-30.0..90.0))
                .mul(&Mat3::perspective(
                    rng.gen_range(-0.01..0.01),
                    rng.gen_range(-0.01..0.01),
                ))
                .mul(&Mat3::rotation(rng.gen_range(-1.0..1.0)))
                .mul(&Mat3::scaling(s, s * rng.gen_range(0.5..1.5)));
            let full = homography((16, 16), (64, 64), &h).unwrap();
            let bounded = homography_bounded((16, 16), (64, 64), &h).unwrap();
            assert_eq!(
                full.entries(),
                bounded.entries(),
                "case {case}: bounded scan changed the entry list"
            );
            assert_eq!(full, bounded, "case {case}");
        }
        // Degenerate denominator: must fall back to the full scan.
        let tilted = Mat3::perspective(-0.5, -0.5);
        let full = homography((8, 8), (8, 8), &tilted).unwrap();
        let bounded = homography_bounded((8, 8), (8, 8), &tilted).unwrap();
        assert_eq!(full, bounded);
        assert!(homography_bounded((8, 8), (8, 8), &Mat3 { m: [0.0; 9] }).is_none());
    }
}
