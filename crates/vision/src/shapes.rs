//! The four decal shapes (star, circle, square, triangle) as alpha masks,
//! plus a procedural stand-in for the paper's *Four Shapes* dataset.
//!
//! The paper constrains its adversarial patches to simple monochrome
//! shapes so they can be cut from a single material and pass as ordinary
//! road markings. Masks here are anti-aliased by 3x3 supersampling so the
//! compositing gradient is smooth at the silhouette boundary.

use rand::Rng;

use crate::image::{point_in_polygon, Plane};

/// One of the paper's four decal shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Shape {
    /// Equilateral triangle, apex up.
    Triangle,
    /// Disc.
    Circle,
    /// Five-pointed star (the paper's best performer).
    Star,
    /// Axis-aligned square.
    Square,
}

impl Shape {
    /// All four shapes in the order of the paper's Table V.
    pub const ALL: [Shape; 4] = [Shape::Triangle, Shape::Circle, Shape::Star, Shape::Square];

    /// The lowercase name used in tables and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Triangle => "triangle",
            Shape::Circle => "circle",
            Shape::Star => "star",
            Shape::Square => "square",
        }
    }

    /// Number of convex corners of the silhouette (the paper observes that
    /// more corners → stronger attacks; the circle has none).
    pub fn corner_count(self) -> usize {
        match self {
            Shape::Triangle => 3,
            Shape::Circle => 0,
            Shape::Star => 10,
            Shape::Square => 4,
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Shape {
    type Err = ParseShapeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "triangle" => Ok(Shape::Triangle),
            "circle" => Ok(Shape::Circle),
            "star" => Ok(Shape::Star),
            "square" => Ok(Shape::Square),
            _ => Err(ParseShapeError),
        }
    }
}

/// Error returned when parsing an unknown shape name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseShapeError;

impl std::fmt::Display for ParseShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("unknown shape (expected triangle, circle, star or square)")
    }
}

impl std::error::Error for ParseShapeError {}

/// Vertices of a five-pointed star centred at `(cx, cy)`.
fn star_vertices(cx: f32, cy: f32, r_outer: f32, r_inner: f32, phase: f32) -> Vec<(f32, f32)> {
    (0..10)
        .map(|i| {
            let r = if i % 2 == 0 { r_outer } else { r_inner };
            let a = phase + std::f32::consts::PI * i as f32 / 5.0 - std::f32::consts::FRAC_PI_2;
            (cx + r * a.cos(), cy + r * a.sin())
        })
        .collect()
}

fn inside(shape: Shape, x: f32, y: f32, cx: f32, cy: f32, r: f32) -> bool {
    match shape {
        Shape::Circle => {
            let dx = x - cx;
            let dy = y - cy;
            dx * dx + dy * dy <= r * r
        }
        Shape::Square => {
            let s = r / std::f32::consts::SQRT_2;
            (x - cx).abs() <= s && (y - cy).abs() <= s
        }
        Shape::Triangle => {
            let pts = [
                (cx, cy - r),
                (cx + r * (std::f32::consts::PI / 6.0).cos(), cy + r * 0.5),
                (cx - r * (std::f32::consts::PI / 6.0).cos(), cy + r * 0.5),
            ];
            point_in_polygon(x, y, &pts)
        }
        Shape::Star => {
            let pts = star_vertices(cx, cy, r, r * 0.45, 0.0);
            point_in_polygon(x, y, &pts)
        }
    }
}

/// Renders an anti-aliased `size x size` alpha mask of the shape
/// (1 inside, 0 outside), inscribed with a small margin.
///
/// # Examples
///
/// ```
/// use rd_vision::shapes::{mask, Shape};
///
/// let m = mask(Shape::Circle, 32);
/// assert_eq!(m.height(), 32);
/// assert!(m.get(16, 16) > 0.99); // centre is inside
/// assert!(m.get(0, 0) < 0.01);   // corner is outside
/// ```
pub fn mask(shape: Shape, size: usize) -> Plane {
    let c = size as f32 / 2.0;
    let r = size as f32 * 0.46;
    let mut out = Plane::new(size, size, 0.0);
    const SS: usize = 3;
    for y in 0..size {
        for x in 0..size {
            let mut acc = 0.0f32;
            for sy in 0..SS {
                for sx in 0..SS {
                    let px = x as f32 + (sx as f32 + 0.5) / SS as f32;
                    let py = y as f32 + (sy as f32 + 0.5) / SS as f32;
                    if inside(shape, px, py, c, c, r) {
                        acc += 1.0;
                    }
                }
            }
            out.set(y, x, acc / (SS * SS) as f32);
        }
    }
    out
}

/// One sample of the procedural Four-Shapes dataset: a dark shape on a
/// light background with jittered position, scale and rotation — the
/// distribution the paper trains its GAN discriminator on.
pub fn four_shapes_sample<R: Rng>(rng: &mut R, shape: Shape, size: usize) -> Plane {
    let c = size as f32 / 2.0;
    let cx = c + rng.gen_range(-0.08..0.08) * size as f32;
    let cy = c + rng.gen_range(-0.08..0.08) * size as f32;
    let r = size as f32 * rng.gen_range(0.30..0.44);
    let rot: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    let fg = rng.gen_range(0.0..0.12); // near-black shape
    let bg = rng.gen_range(0.88..1.0); // near-white paper
    let mut out = Plane::new(size, size, bg);
    const SS: usize = 2;
    let (s, co) = rot.sin_cos();
    for y in 0..size {
        for x in 0..size {
            let mut acc = 0.0f32;
            for sy in 0..SS {
                for sx in 0..SS {
                    let px = x as f32 + (sx as f32 + 0.5) / SS as f32;
                    let py = y as f32 + (sy as f32 + 0.5) / SS as f32;
                    // rotate the sample point around the shape centre
                    let dx = px - cx;
                    let dy = py - cy;
                    let rx = cx + co * dx + s * dy;
                    let ry = cy - s * dx + co * dy;
                    if inside(shape, rx, ry, cx, cy, r) {
                        acc += 1.0;
                    }
                }
            }
            let a = acc / (SS * SS) as f32;
            out.set(y, x, bg + (fg - bg) * a);
        }
    }
    out
}

/// A random shape drawn uniformly from the four classes.
pub fn random_shape<R: Rng>(rng: &mut R) -> Shape {
    Shape::ALL[rng.gen_range(0..4)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_roundtrip() {
        for s in Shape::ALL {
            assert_eq!(s.name().parse::<Shape>().unwrap(), s);
        }
        assert!("hexagon".parse::<Shape>().is_err());
    }

    #[test]
    fn masks_have_expected_relative_coverage() {
        let circle = mask(Shape::Circle, 40).coverage();
        let square = mask(Shape::Square, 40).coverage();
        let star = mask(Shape::Star, 40).coverage();
        let tri = mask(Shape::Triangle, 40).coverage();
        // circle > square > triangle ~ star, all nonzero
        assert!(circle > square, "circle {circle} square {square}");
        assert!(square > star, "square {square} star {star}");
        assert!(star > 0.1 && tri > 0.1);
        // circle area ≈ π r² / size² with r = 0.46·size
        assert!((circle - std::f32::consts::PI * 0.46 * 0.46).abs() < 0.02);
    }

    #[test]
    fn masks_are_antialised_at_boundary() {
        let m = mask(Shape::Circle, 32);
        let partial = m.data().iter().filter(|&&v| v > 0.05 && v < 0.95).count();
        assert!(partial > 10, "expected soft boundary pixels, got {partial}");
    }

    #[test]
    fn star_mask_is_concave() {
        // Between two adjacent star points (at the top corners), the mask
        // must dip to zero — that's what distinguishes it from the circle.
        let m = mask(Shape::Star, 64);
        // top centre is a point of the star
        assert!(m.get(6, 32) > 0.5, "apex missing");
        // upper-left diagonal at the same radius falls between points
        assert!(m.get(12, 14) < 0.3, "no concavity: {}", m.get(12, 14));
    }

    #[test]
    fn four_shapes_sample_is_dark_on_light() {
        let mut rng = StdRng::seed_from_u64(5);
        for shape in Shape::ALL {
            let s = four_shapes_sample(&mut rng, shape, 24);
            let min = s.data().iter().cloned().fold(f32::INFINITY, f32::min);
            let max = s.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert!(
                min < 0.15,
                "{shape}: shape pixels should be dark, min {min}"
            );
            assert!(max > 0.85, "{shape}: background should be light, max {max}");
        }
    }

    #[test]
    fn four_shapes_samples_vary() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = four_shapes_sample(&mut rng, Shape::Star, 24);
        let b = four_shapes_sample(&mut rng, Shape::Star, 24);
        assert_ne!(a, b);
    }

    #[test]
    fn corner_counts_match_paper_ordering() {
        assert!(Shape::Star.corner_count() > Shape::Square.corner_count());
        assert!(Shape::Square.corner_count() > Shape::Circle.corner_count());
    }

    #[test]
    fn random_shape_hits_all_variants() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(random_shape(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }
}
