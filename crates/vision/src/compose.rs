//! Patch placement and (differentiable) compositing onto scenes.
//!
//! A [`PatchPlacement`] describes where a square decal canvas lands in an
//! image: translation, scale, in-plane rotation and a perspective tilt.
//! [`PatchPlacement::to_image_map`] turns it into a [`LinearMap`] so the
//! decal's pixels stay differentiable end-to-end, and [`paste_patch`]
//! builds the full graph: warp → channel broadcast → alpha compositing.

use std::sync::Arc;

use rd_tensor::arena::ScratchBuf;
use rd_tensor::{Graph, LinearMap, Tensor, VarId};

use crate::geometry::Mat3;
use crate::image::{Image, Plane, Rgb};
use crate::warp::homography;

/// Where and how a square patch canvas is placed in an image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatchPlacement {
    /// Destination of the patch centre, in image pixels `(x, y)`.
    pub center: (f32, f32),
    /// Image pixels per patch pixel.
    pub scale: f32,
    /// In-plane rotation in radians.
    pub rotation: f32,
    /// Perspective coefficients `(px, py)`; see [`Mat3::perspective`].
    pub perspective: (f32, f32),
}

impl PatchPlacement {
    /// An axis-aligned placement at `center` with the given `scale`.
    pub fn new(center: (f32, f32), scale: f32) -> Self {
        PatchPlacement {
            center,
            scale,
            rotation: 0.0,
            perspective: (0.0, 0.0),
        }
    }

    /// Sets the rotation (builder style).
    pub fn with_rotation(mut self, rotation: f32) -> Self {
        self.rotation = rotation;
        self
    }

    /// Sets the perspective tilt (builder style).
    pub fn with_perspective(mut self, px: f32, py: f32) -> Self {
        self.perspective = (px, py);
        self
    }

    /// The forward homography mapping patch coordinates to image
    /// coordinates.
    pub fn homography(&self, patch_size: usize) -> Mat3 {
        let pc = patch_size as f32 / 2.0;
        Mat3::translation(self.center.0, self.center.1)
            .mul(&Mat3::perspective(self.perspective.0, self.perspective.1))
            .mul(&Mat3::rotation(self.rotation))
            .mul(&Mat3::scaling(self.scale, self.scale))
            .mul(&Mat3::translation(-pc, -pc))
    }

    /// Builds the sparse bilinear map from a `patch_size x patch_size`
    /// canvas onto an `image_hw` grid.
    ///
    /// # Panics
    ///
    /// Panics if the placement is degenerate (zero scale).
    pub fn to_image_map(&self, patch_size: usize, image_hw: (usize, usize)) -> LinearMap {
        let h = self.homography(patch_size);
        homography((patch_size, patch_size), image_hw, &h)
            .expect("degenerate patch placement (scale must be nonzero)")
    }
}

/// Warps a patch-canvas alpha mask onto the image grid.
pub fn mask_on_image(map: &LinearMap, mask: &Plane) -> Plane {
    let (h, w) = map.out_hw();
    Plane::from_vec(
        map.apply_plane(mask.data())
            .into_iter()
            .map(|v| v.clamp(0.0, 1.0))
            .collect(),
        h,
        w,
    )
}

/// Differentiably pastes a single-channel patch into an RGB scene batch.
///
/// * `scene` — `[N, 3, H, W]` node.
/// * `patch` — `[N, 1, p, p]` node (monochrome decal intensity).
/// * `map` — patch-canvas → image-grid map (from
///   [`PatchPlacement::to_image_map`]).
/// * `mask` — patch-canvas alpha mask (shape silhouette).
///
/// Returns the composited `[N, 3, H, W]` node. Gradients flow into both
/// the scene and the patch.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn paste_patch(
    g: &mut Graph,
    scene: VarId,
    patch: VarId,
    map: &Arc<LinearMap>,
    mask: &Plane,
) -> VarId {
    let sshape = g.value(scene).shape().to_vec();
    assert_eq!(sshape.len(), 4, "scene must be NCHW");
    assert_eq!(sshape[1], 3, "scene must be RGB");
    let n = sshape[0];
    let (h, w) = (sshape[2], sshape[3]);
    assert_eq!(map.out_hw(), (h, w), "map output must match the scene");
    let pshape = g.value(patch).shape().to_vec();
    assert_eq!(pshape.len(), 4, "patch must be NCHW");
    assert_eq!(pshape[0], n, "patch batch must match the scene");
    assert_eq!(pshape[1], 1, "patch must be single-channel (monochrome)");
    assert_eq!(
        (mask.height(), mask.width()),
        map.in_hw(),
        "mask must live on the patch canvas"
    );

    let warped = g.warp(patch, map); // [N,1,H,W]
    let warped_rgb = g.repeat_channels(warped, 3); // [N,3,H,W]
    let image_mask = mask_on_image(map, mask);
    // broadcast the mask to [N,3,H,W]
    let mut mdata = Vec::with_capacity(n * 3 * h * w);
    for _ in 0..n * 3 {
        mdata.extend_from_slice(image_mask.data());
    }
    let mask_t = Tensor::from_vec(mdata, &[n, 3, h, w]);
    g.lerp_mask(scene, warped_rgb, &mask_t)
}

/// Non-differentiable compositing of a finished gray decal onto an
/// [`Image`] (used at evaluation time, when the decal is "printed").
pub fn paste_plane(img: &mut Image, patch: &Plane, mask: &Plane, placement: &PatchPlacement) {
    assert_eq!(patch.height(), patch.width(), "patch canvas must be square");
    assert_eq!(patch.height(), mask.height());
    assert_eq!(patch.width(), mask.width());
    let map = placement.to_image_map(patch.height(), (img.height(), img.width()));
    paste_plane_map(img, patch, mask, &map);
}

/// Differentiably pastes a *colored* (3-channel) patch into an RGB scene
/// batch — the compositing path of the colored baseline attack [34].
///
/// Same contract as [`paste_patch`] but `patch` is `[N, 3, p, p]`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn paste_patch_rgb(
    g: &mut Graph,
    scene: VarId,
    patch: VarId,
    map: &Arc<LinearMap>,
    mask: &Plane,
) -> VarId {
    let sshape = g.value(scene).shape().to_vec();
    assert_eq!(sshape.len(), 4, "scene must be NCHW");
    assert_eq!(sshape[1], 3, "scene must be RGB");
    let n = sshape[0];
    let (h, w) = (sshape[2], sshape[3]);
    assert_eq!(map.out_hw(), (h, w), "map output must match the scene");
    let pshape = g.value(patch).shape().to_vec();
    assert_eq!(pshape[0], n, "patch batch must match the scene");
    assert_eq!(pshape[1], 3, "patch must be RGB");
    let warped = g.warp(patch, map);
    let image_mask = mask_on_image(map, mask);
    let mut mdata = Vec::with_capacity(n * 3 * h * w);
    for _ in 0..n * 3 {
        mdata.extend_from_slice(image_mask.data());
    }
    let mask_t = Tensor::from_vec(mdata, &[n, 3, h, w]);
    g.lerp_mask(scene, warped, &mask_t)
}

/// Non-differentiable compositing of a gray decal through an arbitrary
/// patch-canvas → image map (used when the decal's pose comes from a
/// camera homography rather than a flat [`PatchPlacement`]).
pub fn paste_plane_map(img: &mut Image, patch: &Plane, mask: &Plane, map: &LinearMap) {
    assert_eq!((patch.height(), patch.width()), map.in_hw());
    assert_eq!((mask.height(), mask.width()), map.in_hw());
    let alpha = mask_on_image(map, mask);
    paste_plane_alpha(img, patch.data(), map, &alpha, (0, img.height()));
}

/// [`paste_plane_map`] with a precomputed image-grid alpha plane, a raw
/// patch buffer and a destination row span — the cached render fast
/// path. Bitwise-identical to the fresh call: pixels outside `rows`
/// have zero alpha by construction (the map writes nothing there) and
/// are skipped by the `a > 0.0` guard either way.
///
/// # Panics
///
/// Panics on grid-size mismatches.
pub fn paste_plane_alpha(
    img: &mut Image,
    patch: &[f32],
    map: &LinearMap,
    alpha: &Plane,
    rows: (usize, usize),
) {
    assert_eq!(patch.len(), map.in_hw().0 * map.in_hw().1);
    assert_eq!((img.height(), img.width()), map.out_hw());
    assert_eq!((alpha.height(), alpha.width()), map.out_hw());
    let mut warped = ScratchBuf::zeroed(img.height() * img.width());
    map.apply_plane_into(patch, &mut warped);
    // exactly the differentiable path's arithmetic:
    // out = img * (1 - m) + warp(patch) * m  (premultiplied convention)
    for y in rows.0..rows.1.min(img.height()) {
        for x in 0..img.width() {
            let a = alpha.get(y, x);
            if a > 0.0 {
                let v = warped[y * img.width() + x].clamp(0.0, 1.0);
                img.blend(y, x, Rgb::gray(v), a);
            }
        }
    }
}

/// Non-differentiable compositing of a *colored* patch through an
/// arbitrary map (evaluation path of the baseline [34]).
///
/// `patch_rgb` holds three planar channels of `map.in_hw()` size each.
///
/// # Panics
///
/// Panics if the buffer length is not `3 * in_h * in_w`.
pub fn paste_rgb_map(img: &mut Image, patch_rgb: &[f32], mask: &Plane, map: &LinearMap) {
    let alpha = mask_on_image(map, mask);
    paste_rgb_alpha(img, patch_rgb, map, &alpha, (0, img.height()));
}

/// [`paste_rgb_map`] with a precomputed alpha plane and row span (see
/// [`paste_plane_alpha`] for the bitwise argument).
///
/// # Panics
///
/// Panics on grid-size mismatches.
pub fn paste_rgb_alpha(
    img: &mut Image,
    patch_rgb: &[f32],
    map: &LinearMap,
    alpha: &Plane,
    rows: (usize, usize),
) {
    let (ph, pw) = map.in_hw();
    assert_eq!(patch_rgb.len(), 3 * ph * pw, "patch buffer size mismatch");
    assert_eq!((img.height(), img.width()), map.out_hw());
    assert_eq!((alpha.height(), alpha.width()), map.out_hw());
    let hw = img.height() * img.width();
    let mut planes = ScratchBuf::zeroed(3 * hw);
    for c in 0..3 {
        map.apply_plane_into(
            &patch_rgb[c * ph * pw..(c + 1) * ph * pw],
            &mut planes[c * hw..(c + 1) * hw],
        );
    }
    // premultiplied convention, matching the differentiable path exactly
    for y in rows.0..rows.1.min(img.height()) {
        for x in 0..img.width() {
            let a = alpha.get(y, x);
            if a > 0.0 {
                let i = y * img.width() + x;
                let cl = |v: f32| v.clamp(0.0, 1.0);
                img.blend(
                    y,
                    x,
                    Rgb(cl(planes[i]), cl(planes[hw + i]), cl(planes[2 * hw + i])),
                    a,
                );
            }
        }
    }
}

/// Evenly spreads `n` placements around a ring of `radius` pixels centred
/// at `center` — the paper's layout for its N decals around the target
/// road marking (Fig. 6).
pub fn ring_layout(center: (f32, f32), radius: f32, n: usize, scale: f32) -> Vec<PatchPlacement> {
    (0..n)
        .map(|i| {
            let a = std::f32::consts::TAU * i as f32 / n as f32 - std::f32::consts::FRAC_PI_2;
            PatchPlacement::new(
                (center.0 + radius * a.cos(), center.1 + radius * a.sin()),
                scale,
            )
            .with_rotation(a)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{mask as shape_mask, Shape};

    #[test]
    fn homography_sends_patch_center_to_target() {
        let p = PatchPlacement::new((30.0, 20.0), 2.0).with_rotation(0.7);
        let h = p.homography(16);
        let (x, y) = h.apply(8.0, 8.0);
        assert!((x - 30.0).abs() < 1e-3 && (y - 20.0).abs() < 1e-3);
    }

    #[test]
    fn scale_expands_footprint() {
        let small = PatchPlacement::new((32.0, 32.0), 1.0).to_image_map(8, (64, 64));
        let big = PatchPlacement::new((32.0, 32.0), 3.0).to_image_map(8, (64, 64));
        let ones = Plane::new(8, 8, 1.0);
        let a = mask_on_image(&small, &ones);
        let b = mask_on_image(&big, &ones);
        let ca: f32 = a.data().iter().sum();
        let cb: f32 = b.data().iter().sum();
        assert!(
            cb > ca * 6.0,
            "3x scale should cover ~9x the area: {ca} vs {cb}"
        );
    }

    #[test]
    fn paste_patch_changes_only_masked_region() {
        let mut g = Graph::new();
        let scene = g.input(Tensor::full(&[1, 3, 32, 32], 0.5));
        let patch = g.input(Tensor::zeros(&[1, 1, 8, 8])); // black decal
        let placement = PatchPlacement::new((16.0, 16.0), 2.0);
        let map: Arc<LinearMap> = placement.to_image_map(8, (32, 32)).into();
        let m = shape_mask(Shape::Square, 8);
        let out = paste_patch(&mut g, scene, patch, &map, &m);
        let v = g.value(out);
        // centre is black now
        assert!(v.at4(0, 0, 16, 16) < 0.1);
        // far corner untouched
        assert!((v.at4(0, 2, 2, 2) - 0.5).abs() < 1e-4);
    }

    #[test]
    fn paste_patch_gradient_reaches_patch() {
        let mut g = Graph::new();
        let scene = g.input(Tensor::full(&[1, 3, 24, 24], 0.5));
        let patch = g.input(Tensor::full(&[1, 1, 8, 8], 0.3));
        let placement = PatchPlacement::new((12.0, 12.0), 2.0);
        let map: Arc<LinearMap> = placement.to_image_map(8, (24, 24)).into();
        let m = shape_mask(Shape::Star, 8);
        let out = paste_patch(&mut g, scene, patch, &map, &m);
        let loss = g.sum_all(out);
        let grads = g.backward(loss);
        let gp = grads.get(patch);
        assert!(gp.sum() > 0.0, "patch must receive gradient");
        // pixels well outside the star silhouette receive ~none
        assert!(gp.at4(0, 0, 0, 0).abs() < 0.2);
    }

    #[test]
    fn paste_plane_matches_differentiable_path_exactly() {
        let patch_t = Tensor::full(&[1, 1, 8, 8], 0.9);
        let placement = PatchPlacement::new((16.0, 16.0), 2.0);
        let m = shape_mask(Shape::Circle, 8);
        // graph path
        let mut g = Graph::new();
        let scene = g.input(Tensor::full(&[1, 3, 32, 32], 0.2));
        let patch = g.input(patch_t);
        let map: Arc<LinearMap> = placement.to_image_map(8, (32, 32)).into();
        let out = paste_patch(&mut g, scene, patch, &map, &m);
        let graph_img = Image::from_tensor(g.value(out), 0);
        // plain path
        let mut img = Image::new(32, 32, Rgb::gray(0.2));
        let p = Plane::new(8, 8, 0.9);
        paste_plane(&mut img, &p, &m, &placement);
        // the two paths share the premultiplied convention and must agree
        // to float precision (adversarial patterns are brittle, so eval
        // must see exactly what training optimized)
        let mut max_diff = 0.0f32;
        for (a, b) in img.data().iter().zip(graph_img.data()) {
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(max_diff < 1e-4, "paths diverge at a pixel by {max_diff}");
    }

    #[test]
    fn ring_layout_properties() {
        let ring = ring_layout((50.0, 50.0), 20.0, 4, 1.5);
        assert_eq!(ring.len(), 4);
        for p in &ring {
            let dx = p.center.0 - 50.0;
            let dy = p.center.1 - 50.0;
            assert!(((dx * dx + dy * dy).sqrt() - 20.0).abs() < 1e-3);
            assert_eq!(p.scale, 1.5);
        }
        // distinct angles
        assert_ne!(ring[0].center, ring[2].center);
    }
}
