//! RGB images and single-channel planes, with simple rasterization.
//!
//! Layout is planar CHW (`[3, H, W]` flattened) so an [`Image`] converts to
//! and from [`rd_tensor::Tensor`] batches without reshuffling.

use rd_tensor::Tensor;

/// An RGB color with components in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rgb(pub f32, pub f32, pub f32);

impl Rgb {
    /// Pure black.
    pub const BLACK: Rgb = Rgb(0.0, 0.0, 0.0);
    /// Pure white.
    pub const WHITE: Rgb = Rgb(1.0, 1.0, 1.0);

    /// A neutral gray of the given level.
    pub fn gray(v: f32) -> Rgb {
        Rgb(v, v, v)
    }

    /// Linear interpolation toward `other`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        Rgb(
            self.0 + (other.0 - self.0) * t,
            self.1 + (other.1 - self.1) * t,
            self.2 + (other.2 - self.2) * t,
        )
    }

    /// Multiplies every channel by `s` (shading).
    pub fn scale(self, s: f32) -> Rgb {
        Rgb(self.0 * s, self.1 * s, self.2 * s)
    }
}

/// A single-channel float plane (masks, gray patches).
#[derive(Debug, Clone, PartialEq)]
pub struct Plane {
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Plane {
    /// Creates a plane filled with `v`.
    pub fn new(h: usize, w: usize, v: f32) -> Self {
        Plane {
            h,
            w,
            data: vec![v; h * w],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != h * w`.
    pub fn from_vec(data: Vec<f32>, h: usize, w: usize) -> Self {
        assert_eq!(data.len(), h * w, "plane buffer size mismatch");
        Plane { h, w, data }
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at `(row, col)`.
    pub fn get(&self, y: usize, x: usize) -> f32 {
        self.data[y * self.w + x]
    }

    /// Sets the value at `(row, col)`.
    pub fn set(&mut self, y: usize, x: usize, v: f32) {
        self.data[y * self.w + x] = v;
    }

    /// Fraction of pixels above 0.5 (mask coverage).
    pub fn coverage(&self) -> f32 {
        self.data.iter().filter(|&&v| v > 0.5).count() as f32 / self.data.len() as f32
    }

    /// Converts to a `[1, 1, H, W]` tensor.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.clone(), &[1, 1, self.h, self.w])
    }
}

/// A planar RGB image with components in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rd_vision::{Image, Rgb};
///
/// let mut img = Image::new(8, 8, Rgb::gray(0.5));
/// img.fill_rect(2, 2, 4, 4, Rgb::WHITE);
/// assert_eq!(img.get(3, 3), Rgb::WHITE);
/// assert_eq!(img.get(0, 0), Rgb::gray(0.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    h: usize,
    w: usize,
    /// CHW-planar buffer: `[r-plane, g-plane, b-plane]`.
    data: Vec<f32>,
}

impl Image {
    /// Creates an image filled with `color`.
    pub fn new(h: usize, w: usize, color: Rgb) -> Self {
        let mut data = Vec::with_capacity(3 * h * w);
        data.extend(std::iter::repeat_n(color.0, h * w));
        data.extend(std::iter::repeat_n(color.1, h * w));
        data.extend(std::iter::repeat_n(color.2, h * w));
        Image { h, w, data }
    }

    /// Wraps an existing CHW buffer (typically runtime-arena scratch) as
    /// an image without copying.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 3 * h * w`.
    pub fn from_vec(data: Vec<f32>, h: usize, w: usize) -> Self {
        assert_eq!(data.len(), 3 * h * w, "CHW buffer size mismatch");
        Image { h, w, data }
    }

    /// Consumes the image, handing back the CHW buffer (so frame buffers
    /// can be recycled into the runtime arena).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Flat CHW buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat CHW buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Pixel at `(row, col)`.
    pub fn get(&self, y: usize, x: usize) -> Rgb {
        let hw = self.h * self.w;
        let i = y * self.w + x;
        Rgb(self.data[i], self.data[hw + i], self.data[2 * hw + i])
    }

    /// Sets the pixel at `(row, col)`.
    pub fn set(&mut self, y: usize, x: usize, c: Rgb) {
        let hw = self.h * self.w;
        let i = y * self.w + x;
        self.data[i] = c.0;
        self.data[hw + i] = c.1;
        self.data[2 * hw + i] = c.2;
    }

    /// Alpha-blends `c` over the pixel at `(row, col)`.
    pub fn blend(&mut self, y: usize, x: usize, c: Rgb, alpha: f32) {
        let cur = self.get(y, x);
        self.set(y, x, cur.lerp(c, alpha.clamp(0.0, 1.0)));
    }

    /// Fills an axis-aligned rectangle (clipped to the image).
    pub fn fill_rect(&mut self, y: usize, x: usize, h: usize, w: usize, c: Rgb) {
        for yy in y..(y + h).min(self.h) {
            for xx in x..(x + w).min(self.w) {
                self.set(yy, xx, c);
            }
        }
    }

    /// Fills a circle centred at `(cy, cx)` (clipped to the image).
    pub fn fill_circle(&mut self, cy: f32, cx: f32, r: f32, c: Rgb) {
        let y0 = (cy - r).floor().max(0.0) as usize;
        let y1 = ((cy + r).ceil() as usize).min(self.h);
        let x0 = (cx - r).floor().max(0.0) as usize;
        let x1 = ((cx + r).ceil() as usize).min(self.w);
        for y in y0..y1 {
            for x in x0..x1 {
                let dy = y as f32 + 0.5 - cy;
                let dx = x as f32 + 0.5 - cx;
                if dy * dy + dx * dx <= r * r {
                    self.set(y, x, c);
                }
            }
        }
    }

    /// Fills a convex or concave polygon by even-odd scanline testing.
    pub fn fill_polygon(&mut self, pts: &[(f32, f32)], c: Rgb) {
        if pts.len() < 3 {
            return;
        }
        let ymin = pts
            .iter()
            .map(|p| p.1)
            .fold(f32::INFINITY, f32::min)
            .floor()
            .max(0.0) as usize;
        let ymax = (pts
            .iter()
            .map(|p| p.1)
            .fold(f32::NEG_INFINITY, f32::max)
            .ceil() as usize)
            .min(self.h);
        let xmin = pts
            .iter()
            .map(|p| p.0)
            .fold(f32::INFINITY, f32::min)
            .floor()
            .max(0.0) as usize;
        let xmax = (pts
            .iter()
            .map(|p| p.0)
            .fold(f32::NEG_INFINITY, f32::max)
            .ceil() as usize)
            .min(self.w);
        for y in ymin..ymax {
            for x in xmin..xmax {
                if point_in_polygon(x as f32 + 0.5, y as f32 + 0.5, pts) {
                    self.set(y, x, c);
                }
            }
        }
    }

    /// Draws a 1-pixel-wide line segment.
    pub fn draw_line(&mut self, y0: f32, x0: f32, y1: f32, x1: f32, c: Rgb) {
        let steps = ((y1 - y0).abs().max((x1 - x0).abs()).ceil() as usize).max(1);
        for i in 0..=steps {
            let t = i as f32 / steps as f32;
            let y = y0 + (y1 - y0) * t;
            let x = x0 + (x1 - x0) * t;
            if y >= 0.0 && x >= 0.0 && (y as usize) < self.h && (x as usize) < self.w {
                self.set(y as usize, x as usize, c);
            }
        }
    }

    /// Converts to an NCHW tensor `[1, 3, H, W]`.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.clone(), &[1, 3, self.h, self.w])
    }

    /// Builds an image from the `n`-th item of an NCHW tensor batch,
    /// clamping to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `[N, 3, H, W]` or `n` is out of range.
    pub fn from_tensor(t: &Tensor, n: usize) -> Self {
        assert_eq!(t.shape().len(), 4, "expected NCHW tensor");
        assert_eq!(t.shape()[1], 3, "expected 3 channels");
        assert!(n < t.shape()[0], "batch index out of range");
        let (h, w) = (t.shape()[2], t.shape()[3]);
        let chw = 3 * h * w;
        let data = t.data()[n * chw..(n + 1) * chw]
            .iter()
            .map(|v| v.clamp(0.0, 1.0))
            .collect();
        Image { h, w, data }
    }

    /// Stacks images (all same size) into an NCHW batch tensor.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty or sizes differ.
    pub fn batch_to_tensor(images: &[Image]) -> Tensor {
        assert!(!images.is_empty(), "empty batch");
        let (h, w) = (images[0].h, images[0].w);
        let mut data = Vec::with_capacity(images.len() * 3 * h * w);
        for img in images {
            assert_eq!((img.h, img.w), (h, w), "batch images must share a size");
            data.extend_from_slice(&img.data);
        }
        Tensor::from_vec(data, &[images.len(), 3, h, w])
    }

    /// Encodes as a binary PPM (P6) file body.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.w, self.h).into_bytes();
        let hw = self.h * self.w;
        for i in 0..hw {
            for ch in 0..3 {
                out.push((self.data[ch * hw + i].clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out
    }

    /// Writes a PPM file.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save_ppm(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_ppm())
    }

    /// Horizontally concatenates images of equal height with a 2-px gap.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty or heights differ.
    pub fn hstack(images: &[Image]) -> Image {
        assert!(!images.is_empty(), "empty stack");
        let h = images[0].h;
        let total_w: usize = images.iter().map(|i| i.w + 2).sum::<usize>() - 2;
        let mut out = Image::new(h, total_w, Rgb::gray(0.2));
        let mut x0 = 0;
        for img in images {
            assert_eq!(img.h, h, "hstack heights must match");
            for y in 0..h {
                for x in 0..img.w {
                    out.set(y, x0 + x, img.get(y, x));
                }
            }
            x0 += img.w + 2;
        }
        out
    }
}

/// Even-odd point-in-polygon test.
pub fn point_in_polygon(x: f32, y: f32, pts: &[(f32, f32)]) -> bool {
    let mut inside = false;
    let n = pts.len();
    let mut j = n - 1;
    for i in 0..n {
        let (xi, yi) = pts[i];
        let (xj, yj) = pts[j];
        if ((yi > y) != (yj > y)) && (x < (xj - xi) * (y - yi) / (yj - yi) + xi) {
            inside = !inside;
        }
        j = i;
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_roundtrip() {
        let mut img = Image::new(4, 5, Rgb::BLACK);
        img.set(2, 3, Rgb(0.1, 0.5, 0.9));
        let c = img.get(2, 3);
        assert!((c.0 - 0.1).abs() < 1e-6 && (c.1 - 0.5).abs() < 1e-6 && (c.2 - 0.9).abs() < 1e-6);
    }

    #[test]
    fn tensor_roundtrip() {
        let mut img = Image::new(3, 3, Rgb::gray(0.25));
        img.set(1, 1, Rgb(1.0, 0.0, 0.5));
        let t = img.to_tensor();
        assert_eq!(t.shape(), &[1, 3, 3, 3]);
        let back = Image::from_tensor(&t, 0);
        assert_eq!(img, back);
    }

    #[test]
    fn batch_to_tensor_shapes() {
        let a = Image::new(2, 2, Rgb::BLACK);
        let b = Image::new(2, 2, Rgb::WHITE);
        let t = Image::batch_to_tensor(&[a, b]);
        assert_eq!(t.shape(), &[2, 3, 2, 2]);
        assert_eq!(t.at4(1, 0, 0, 0), 1.0);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn fill_circle_inside_outside() {
        let mut img = Image::new(20, 20, Rgb::BLACK);
        img.fill_circle(10.0, 10.0, 5.0, Rgb::WHITE);
        assert_eq!(img.get(10, 10), Rgb::WHITE);
        assert_eq!(img.get(0, 0), Rgb::BLACK);
        assert_eq!(img.get(10, 14), Rgb::WHITE);
        assert_eq!(img.get(10, 16), Rgb::BLACK);
    }

    #[test]
    fn fill_polygon_triangle() {
        let mut img = Image::new(10, 10, Rgb::BLACK);
        img.fill_polygon(&[(1.0, 1.0), (9.0, 1.0), (5.0, 9.0)], Rgb::WHITE);
        assert_eq!(img.get(2, 5), Rgb::WHITE); // inside near the top edge
        assert_eq!(img.get(8, 1), Rgb::BLACK); // bottom-left is outside
    }

    #[test]
    fn blend_is_convex() {
        let mut img = Image::new(1, 1, Rgb::BLACK);
        img.blend(0, 0, Rgb::WHITE, 0.25);
        assert!((img.get(0, 0).0 - 0.25).abs() < 1e-6);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(2, 3, Rgb::WHITE);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), b"P6\n3 2\n255\n".len() + 2 * 3 * 3);
        assert_eq!(*ppm.last().unwrap(), 255);
    }

    #[test]
    fn plane_coverage() {
        let mut p = Plane::new(2, 2, 0.0);
        p.set(0, 0, 1.0);
        p.set(1, 1, 0.9);
        assert!((p.coverage() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn hstack_concatenates() {
        let a = Image::new(2, 2, Rgb::BLACK);
        let b = Image::new(2, 3, Rgb::WHITE);
        let s = Image::hstack(&[a, b]);
        assert_eq!(s.width(), 2 + 2 + 3);
        assert_eq!(s.get(0, 0), Rgb::BLACK);
        assert_eq!(s.get(0, 4), Rgb::WHITE);
    }

    #[test]
    fn clipped_rect_does_not_panic() {
        let mut img = Image::new(4, 4, Rgb::BLACK);
        img.fill_rect(2, 2, 100, 100, Rgb::WHITE);
        assert_eq!(img.get(3, 3), Rgb::WHITE);
    }
}
